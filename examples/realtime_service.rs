//! Production shape: the threaded detection service (Fig. 1's pipeline)
//! plus engine snapshots (Fig. 4's storage system).
//!
//! An ingest thread feeds transactions through a bounded queue; moderator
//! threads read the continuously published detection; on shutdown the
//! engine state is snapshotted and restored without re-peeling.
//!
//! Run with: `cargo run --release --example realtime_service`

use spade::core::{
    load_engine, save_engine, GroupingConfig, SpadeConfig, SpadeEngine, SpadeService,
    WeightedDensity,
};
use spade::gen::transactions::{TransactionStream, TransactionStreamConfig};
use spade::graph::VertexId;

fn main() {
    // Bootstrap an engine from history, then serve live traffic.
    let history = TransactionStream::generate(&TransactionStreamConfig {
        customers: 1_000,
        merchants: 300,
        transactions: 10_000,
        seed: 77,
        ..Default::default()
    });
    let engine = SpadeEngine::bootstrap(
        WeightedDensity,
        SpadeConfig::default(),
        history.edges.iter().map(|e| (e.src, e.dst, e.raw)),
    )
    .expect("bootstrap");
    println!(
        "bootstrapped on {} transactions ({} vertices)",
        history.edges.len(),
        engine.graph().num_vertices()
    );

    let service = SpadeService::spawn(engine, Some(GroupingConfig::default()), 1024);

    // Live traffic: organic background + a wash-trading ring.
    for i in 0..500u32 {
        service.submit(VertexId(i % 900), VertexId(1_000 + (i * 7) % 290), 5.0);
    }
    let ring: Vec<u32> = (5_000..5_006).collect();
    for &a in &ring {
        for &b in &ring {
            if a != b {
                service.submit(VertexId(a), VertexId(b), 500.0);
            }
        }
    }
    service.flush();

    // A moderator polls the published detection without touching ingest.
    let mut last = service.current_detection();
    for _ in 0..200 {
        last = service.current_detection();
        if last.members.iter().any(|m| ring.contains(&m.0)) {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    println!(
        "moderator sees: {} members at density {:.1} after {} updates",
        last.size, last.density, last.updates_applied
    );

    // Shut down and snapshot — restart resumes without a static peel.
    let final_detection = service.shutdown();
    println!(
        "final detection: {} members, density {:.1}",
        final_detection.size, final_detection.density
    );
    assert!(final_detection.members.iter().any(|m| ring.contains(&m.0)));

    // (The service consumed the engine; rebuild one from the same inputs
    // to demonstrate the snapshot path.)
    let mut engine = SpadeEngine::bootstrap(
        WeightedDensity,
        SpadeConfig::default(),
        history.edges.iter().map(|e| (e.src, e.dst, e.raw)),
    )
    .expect("bootstrap");
    let mut snapshot = Vec::new();
    save_engine(&engine, &mut snapshot).expect("snapshot");
    println!("snapshot size: {} KiB", snapshot.len() / 1024);
    let mut restored =
        load_engine(WeightedDensity, SpadeConfig::default(), snapshot.as_slice()).expect("restore");
    assert_eq!(restored.detect(), engine.detect());
    println!("restored engine detects identically — no re-peel needed");
}
