//! Criterion: single-edge incremental maintenance (Fig. 10's IncDG /
//! IncDW / IncFD columns) — inserts one increment edge into a bootstrapped
//! engine per iteration.

#![allow(missing_docs)] // criterion macros generate undocumented items

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spade_bench::replay::{bootstrap_engine, MetricKind};
use spade_bench::table3_datasets;

fn bench_insert_edge(c: &mut Criterion) {
    let mut group = c.benchmark_group("insert_edge");
    for data in table3_datasets() {
        if data.name != "Grab1" && data.name != "Epinion" {
            continue;
        }
        for kind in MetricKind::ALL {
            group.bench_function(BenchmarkId::new(kind.inc_name(), data.name), |b| {
                // Rebuild periodically so the growing graph stays close to
                // the bootstrapped size.
                let mut engine = bootstrap_engine(kind, &data.initial);
                let mut cursor = 0usize;
                b.iter(|| {
                    if cursor >= data.increments.len() {
                        engine = bootstrap_engine(kind, &data.initial);
                        cursor = 0;
                    }
                    let e = &data.increments[cursor];
                    cursor += 1;
                    std::hint::black_box(engine.insert_edge(e.src, e.dst, e.raw).unwrap());
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_insert_edge);
criterion_main!(benches);
