//! Offline stand-in for `crossbeam`.
//!
//! Implements the `crossbeam::channel` surface this workspace uses: a
//! bounded blocking MPMC channel (`bounded`, `Sender`, `Receiver`) with
//! disconnection semantics and O(1) `len()`. Built on `Mutex` + `Condvar`
//! — adequate for the per-shard ingest queues here, where contention is a
//! handful of producer threads against one consumer.

pub mod channel {
    //! Bounded blocking channels.

    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        /// Signalled when the queue gains an item or all senders leave.
        not_empty: Condvar,
        /// Signalled when the queue loses an item or all receivers leave.
        not_full: Condvar,
    }

    struct Inner<T> {
        queue: VecDeque<T>,
        capacity: usize,
        senders: usize,
        receivers: usize,
        /// Threads blocked in `recv` — `send` only signals `not_empty`
        /// when someone is actually waiting, keeping the futex out of the
        /// hot path while the consumer is busy draining.
        recv_waiters: usize,
        /// Threads blocked in `send` (queue full).
        send_waiters: usize,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone; the
    /// unsent message is handed back.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl<T: std::fmt::Debug> std::error::Error for SendError<T> {}

    /// Error returned by [`Sender::try_send`]; carries the message back.
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is at capacity; receivers remain.
        Full(T),
        /// Every receiver has been dropped.
        Disconnected(T),
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty but senders remain.
        Empty,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The wait elapsed without a message arriving.
        Timeout,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    /// The sending half; clone freely for multiple producers.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; clone freely for multiple consumers.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates a bounded channel holding at most `capacity` messages
    /// (minimum 1); `send` blocks while full, `recv` blocks while empty.
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::with_capacity(capacity.max(1)),
                capacity: capacity.max(1),
                senders: 1,
                receivers: 1,
                recv_waiters: 0,
                send_waiters: 0,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
    }

    impl<T> Sender<T> {
        /// Blocks until space is available, then enqueues `msg`. Fails and
        /// returns the message when every receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut inner = self.shared.inner.lock().unwrap();
            loop {
                if inner.receivers == 0 {
                    return Err(SendError(msg));
                }
                if inner.queue.len() < inner.capacity {
                    inner.queue.push_back(msg);
                    let wake = inner.recv_waiters > 0;
                    drop(inner);
                    if wake {
                        self.shared.not_empty.notify_one();
                    }
                    return Ok(());
                }
                inner.send_waiters += 1;
                inner = self.shared.not_full.wait(inner).unwrap();
                inner.send_waiters -= 1;
            }
        }

        /// Non-blocking send: enqueues `msg` only if space is available
        /// right now, handing the message back on a full or disconnected
        /// channel.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            let mut inner = self.shared.inner.lock().unwrap();
            if inner.receivers == 0 {
                return Err(TrySendError::Disconnected(msg));
            }
            if inner.queue.len() >= inner.capacity {
                return Err(TrySendError::Full(msg));
            }
            inner.queue.push_back(msg);
            let wake = inner.recv_waiters > 0;
            drop(inner);
            if wake {
                self.shared.not_empty.notify_one();
            }
            Ok(())
        }

        /// Messages currently queued.
        pub fn len(&self) -> usize {
            self.shared.inner.lock().unwrap().queue.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.inner.lock().unwrap().senders += 1;
            Sender { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.inner.lock().unwrap();
            inner.senders -= 1;
            if inner.senders == 0 {
                drop(inner);
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives; fails once the channel is empty
        /// and every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.shared.inner.lock().unwrap();
            loop {
                if let Some(msg) = inner.queue.pop_front() {
                    let wake = inner.send_waiters > 0;
                    drop(inner);
                    if wake {
                        self.shared.not_full.notify_one();
                    }
                    return Ok(msg);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner.recv_waiters += 1;
                inner = self.shared.not_empty.wait(inner).unwrap();
                inner.recv_waiters -= 1;
            }
        }

        /// Blocks until a message arrives or `timeout` elapses, whichever
        /// comes first. Fails with [`RecvTimeoutError::Disconnected`] once
        /// the channel is empty and every sender has been dropped.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut inner = self.shared.inner.lock().unwrap();
            loop {
                if let Some(msg) = inner.queue.pop_front() {
                    let wake = inner.send_waiters > 0;
                    drop(inner);
                    if wake {
                        self.shared.not_full.notify_one();
                    }
                    return Ok(msg);
                }
                if inner.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = std::time::Instant::now();
                let Some(remaining) = deadline.checked_duration_since(now).filter(|d| !d.is_zero())
                else {
                    return Err(RecvTimeoutError::Timeout);
                };
                inner.recv_waiters += 1;
                let (guard, _timed_out) =
                    self.shared.not_empty.wait_timeout(inner, remaining).unwrap();
                inner = guard;
                inner.recv_waiters -= 1;
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = self.shared.inner.lock().unwrap();
            if let Some(msg) = inner.queue.pop_front() {
                let wake = inner.send_waiters > 0;
                drop(inner);
                if wake {
                    self.shared.not_full.notify_one();
                }
                return Ok(msg);
            }
            if inner.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Messages currently queued.
        pub fn len(&self) -> usize {
            self.shared.inner.lock().unwrap().queue.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.inner.lock().unwrap().receivers += 1;
            Receiver { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.inner.lock().unwrap();
            inner.receivers -= 1;
            if inner.receivers == 0 {
                drop(inner);
                self.shared.not_full.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, RecvError, RecvTimeoutError, TryRecvError};

    #[test]
    fn fifo_roundtrip() {
        let (tx, rx) = bounded(4);
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        assert_eq!(tx.len(), 4);
        for i in 0..4 {
            assert_eq!(rx.recv(), Ok(i));
        }
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn backpressure_blocks_until_consumed() {
        let (tx, rx) = bounded(1);
        tx.send(1u32).unwrap();
        let producer = std::thread::spawn(move || {
            tx.send(2).unwrap(); // blocks until the consumer drains one
            tx.send(3).unwrap();
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
        producer.join().unwrap();
    }

    #[test]
    fn disconnection_semantics() {
        let (tx, rx) = bounded::<u32>(2);
        drop(rx);
        assert!(tx.send(1).is_err());

        let (tx, rx) = bounded(2);
        tx.send(7u32).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = bounded(2);
        let t0 = std::time::Instant::now();
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_millis(20)),
            Err(RecvTimeoutError::Timeout)
        );
        assert!(t0.elapsed() >= std::time::Duration::from_millis(20));

        let producer = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(10));
            tx.send(42u32).unwrap();
        });
        assert_eq!(rx.recv_timeout(std::time::Duration::from_secs(5)), Ok(42));
        producer.join().unwrap();
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_millis(1)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn multiple_producers_drain_completely() {
        let (tx, rx) = bounded(8);
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for i in 0..100u64 {
                        tx.send(t * 100 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let mut got = Vec::new();
        while let Ok(v) = rx.recv() {
            got.push(v);
        }
        for h in handles {
            h.join().unwrap();
        }
        got.sort_unstable();
        assert_eq!(got.len(), 400);
        got.dedup();
        assert_eq!(got.len(), 400);
    }
}
