#!/usr/bin/env python3
"""Connection fan-in gate over BENCH_fanin.json trajectories.

Compares a freshly measured fan-in sweep (the reactor front end under
{4, 16, 64, 128} concurrent producers) against the committed baseline
and asserts:

1. coverage — the fresh sweep carries every producer count the baseline
   does, and each count acked exactly `producers * edges_per_producer`
   edges (a shortfall means a producer gave up or the server dropped a
   connection mid-quota);
2. zero lost acked edges — `lost_acked_edges` is 0 at every count. This
   is the wire-level acked == applied invariant and gates absolutely:
   an acknowledged edge that never reached a shard engine is data loss,
   not noise;
3. monotone-ish throughput — aggregate acked throughput may fall as
   producer counts rise (Busy retries are real work), but no count may
   collapse below `--min-peak-ratio` of the sweep's own peak. A
   fairness bug (one connection wedging a loop, retry livelock) shows
   up here as a cliff at the high counts;
4. 128-producer wall clock — the largest count completes (producers
   through drain) inside `--wall-budget-s`. A stall that the bench's
   own drain deadline converts into lost edges also lands here;
5. baseline throughput — per matching count, fresh throughput must not
   drop more than `--max-drop` below the committed baseline. The
   tolerance is deliberately loose (default 50%): the baseline is
   machine-specific (see the check_ingest_regression caveat) and
   fan-in numbers swing harder across runner classes than single-queue
   ingest. Regenerate with
   `cargo run --release -p spade-bench --bin bench_fanin`.

Usage:
    ci/check_fanin.py BASELINE.json FRESH.json
        [--max-drop 0.5] [--min-peak-ratio 0.01] [--wall-budget-s 180]
    ci/check_fanin.py --self-test
"""

import argparse
import json
import sys


def by_producers(trajectory):
    return {s["producers"]: s for s in trajectory["samples"]}


def self_test():
    """Re-runs this gate against the committed fixtures: the good sweep
    must pass and the lossy sweep must fail."""
    import os
    import subprocess

    fixtures = os.path.join(os.path.dirname(os.path.abspath(__file__)), "fixtures")
    script = os.path.abspath(__file__)
    cases = [
        (True, [os.path.join(fixtures, "fanin_pass.json"),
                os.path.join(fixtures, "fanin_pass.json")]),
        (False, [os.path.join(fixtures, "fanin_pass.json"),
                 os.path.join(fixtures, "fanin_fail.json")]),
    ]
    for expect_ok, argv in cases:
        proc = subprocess.run([sys.executable, script, *argv],
                              capture_output=True, text=True)
        ok = proc.returncode == 0
        if ok != expect_ok:
            print(proc.stdout)
            print(proc.stderr, file=sys.stderr)
            sys.exit(f"FAIL: self-test case {argv} expected "
                     f"{'pass' if expect_ok else 'fail'} but got rc "
                     f"{proc.returncode}")
    print("OK: self-test — good fixture passes, lossy fixture fails")
    return 0


def main():
    if "--self-test" in sys.argv[1:]:
        return self_test()

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed BENCH_fanin.json")
    parser.add_argument("fresh", help="freshly measured sweep")
    parser.add_argument(
        "--max-drop", type=float, default=0.5,
        help="max tolerated fractional throughput drop vs baseline per "
             "count (default 0.5)")
    parser.add_argument(
        "--min-peak-ratio", type=float, default=0.01,
        help="every count must sustain at least this fraction of the "
             "fresh sweep's own peak throughput (default 0.01)")
    parser.add_argument(
        "--wall-budget-s", type=float, default=180.0,
        help="wall-clock budget for the largest producer count, "
             "producers through drain (default 180s)")
    args = parser.parse_args()

    with open(args.baseline) as f:
        base_traj = json.load(f)
    with open(args.fresh) as f:
        fresh_traj = json.load(f)
    baseline = by_producers(base_traj)
    fresh = by_producers(fresh_traj)

    failures = []

    # 1. Coverage and exact acked counts.
    for count in sorted(baseline):
        if count not in fresh:
            failures.append(f"producer count {count} missing from the fresh sweep")
    per_producer = fresh_traj.get("edges_per_producer", 0)
    for count, s in sorted(fresh.items()):
        want = count * per_producer
        if per_producer and s["edges_acked"] != want:
            failures.append(
                f"{count} producers acked {s['edges_acked']} edges, expected {want}")

    # 2. Zero lost acked edges, every count.
    for count, s in sorted(fresh.items()):
        if s["lost_acked_edges"] != 0:
            failures.append(
                f"{count} producers lost {s['lost_acked_edges']} acknowledged "
                f"edges — acked == applied violated")

    # 3. No throughput collapse relative to the sweep's own peak.
    peak = max((s["throughput_eps"] for s in fresh.values()), default=0.0)
    floor = peak * args.min_peak_ratio
    for count, s in sorted(fresh.items()):
        if s["throughput_eps"] < floor:
            failures.append(
                f"{count} producers sustained {s['throughput_eps']:,.0f} tx/s, "
                f"below {args.min_peak_ratio:.0%} of the sweep peak "
                f"{peak:,.0f} tx/s — fan-in collapsed")

    # 4. Wall-clock budget at the largest count.
    largest = max(fresh) if fresh else 0
    if fresh:
        wall_s = fresh[largest]["wall_clock_ms"] / 1e3
        if wall_s > args.wall_budget_s:
            failures.append(
                f"{largest} producers took {wall_s:.1f}s wall clock, over the "
                f"{args.wall_budget_s:.0f}s budget")

    # 5. Per-count throughput vs the committed baseline.
    rows = []
    for count in sorted(baseline):
        if count not in fresh:
            continue
        base_tps = baseline[count]["throughput_eps"]
        fresh_tps = fresh[count]["throughput_eps"]
        ratio = fresh_tps / base_tps if base_tps > 0 else float("inf")
        verdict = "ok"
        if ratio < 1.0 - args.max_drop:
            verdict = "REGRESSION"
            failures.append(
                f"{count} producers: {fresh_tps:,.0f} tx/s is "
                f"{(1.0 - ratio) * 100:.1f}% below the baseline "
                f"{base_tps:,.0f} tx/s")
        rows.append((count, base_tps, fresh_tps, ratio,
                     fresh[count]["ack_p99_us"] / 1e3,
                     fresh[count]["busy_rate"], verdict))

    print(f"{'producers':>9} {'baseline tx/s':>14} {'fresh tx/s':>12} "
          f"{'ratio':>6} {'ack p99 ms':>11} {'busy':>6}  verdict")
    for count, base_tps, fresh_tps, ratio, p99_ms, busy, verdict in rows:
        print(f"{count:>9} {base_tps:>14,.0f} {fresh_tps:>12,.0f} "
              f"{ratio:>6.2f} {p99_ms:>11.1f} {busy:>5.0%}  {verdict}")

    if failures:
        print("\nFAIL: fan-in gates regressed:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"\nOK: zero lost acked edges at every count, no count below "
          f"{args.min_peak_ratio:.0%} of peak, {largest}-producer wall clock "
          f"inside {args.wall_budget_s:.0f}s, no count more than "
          f"{args.max_drop:.0%} under baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
