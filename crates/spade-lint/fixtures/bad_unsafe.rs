// Self-test fixture: an `unsafe` block with no `// SAFETY:` comment in
// its paragraph must be flagged as unallowable. Never compiled.

pub fn read_raw(ptr: *const u64) -> u64 {
    unsafe { *ptr }
}
