#!/usr/bin/env python3
"""Smoke checks over a BENCH_frontier.json latency/throughput frontier.

Asserts the structural properties the SLO batch scheduler promises,
without comparing against a committed baseline (the frontier's *shape*
is machine-independent even when its absolute numbers are not):

1. coverage — every scenario carries at least 4 budgeted points, and the
   two reference rows (paced per-edge latency floor, unpaced cap-1024
   throughput ceiling) are present;
2. zero misses where feasible — no budgeted row marked `feasible: true`
   records a single deadline miss (infeasible rows, e.g. sub-backlog
   budgets under bursty replay, are reported but never gate);
3. monotone frontier — within each *paced* scenario, a tighter budget
   never buys a *higher* p99 queue wait (relative tolerance for
   measurement noise, plus an absolute slop floor for scheduler wakeup
   jitter on sub-millisecond rows). Bursty rows are excluded: under a
   standing backlog the queue wait is set by the offered load, not the
   scheduler, so p99 ordering across budgets there is replay noise —
   the bursty contract is the throughput anchor (4b) instead;
4. anchors — the tightest drip budget stays within 2x of the per-edge
   reference p99 (plus the jitter slop; a budget at or under the
   scheduler's peel margin degenerates to immediate per-edge applies,
   so its latency must track the per-edge floor), and the loosest
   bursty budget sustains at least 90% of the unbudgeted cap-1024
   throughput.

Usage:
    ci/check_frontier.py BENCH_frontier.json
    ci/check_frontier.py --self-test
"""

import json
import sys

# Relative headroom for run-to-run noise in the monotonicity check.
REL_TOL = 1.25
# Absolute slop (ns): scheduler wakeup jitter dominates sub-millisecond
# rows, where a pure ratio check would flake on noise.
ABS_SLOP_NS = 500_000


def fail(msg):
    sys.exit(f"FAIL: {msg}")


def self_test():
    """Re-runs this gate against the committed fixtures: a healthy
    frontier must pass and a feasible-with-misses row must fail."""
    import os
    import subprocess

    fixtures = os.path.join(os.path.dirname(os.path.abspath(__file__)), "fixtures")
    script = os.path.abspath(__file__)
    cases = [
        (True, [os.path.join(fixtures, "frontier_pass.json")]),
        (False, [os.path.join(fixtures, "frontier_fail.json")]),
    ]
    for expect_ok, argv in cases:
        proc = subprocess.run([sys.executable, script, *argv],
                              capture_output=True, text=True)
        ok = proc.returncode == 0
        if ok != expect_ok:
            print(proc.stdout)
            print(proc.stderr, file=sys.stderr)
            sys.exit(f"FAIL: self-test case {argv} expected "
                     f"{'pass' if expect_ok else 'fail'} but got rc "
                     f"{proc.returncode}")
    print("OK: self-test — healthy frontier passes, feasible-with-misses fails")
    return 0


def main():
    if "--self-test" in sys.argv[1:]:
        return self_test()
    if len(sys.argv) != 2:
        sys.exit(__doc__)
    with open(sys.argv[1]) as f:
        frontier = json.load(f)
    samples = frontier["samples"]

    by_scenario = {}
    for s in samples:
        by_scenario.setdefault(s["scenario"], []).append(s)

    # 1. Coverage.
    for scenario in ("bursty", "drip"):
        budgeted = [s for s in by_scenario.get(scenario, []) if s["budget_us"] > 0]
        if len(budgeted) < 4:
            fail(f"{scenario}: only {len(budgeted)} budgeted points (need >= 4)")
    drip_ref = next(
        (s for s in by_scenario.get("drip", []) if s["budget_us"] == 0), None)
    bursty_ref = next(
        (s for s in by_scenario.get("bursty", []) if s["budget_us"] == 0), None)
    if drip_ref is None:
        fail("missing paced per-edge reference row (drip, budget_us=0)")
    if bursty_ref is None:
        fail("missing unpaced cap-1024 reference row (bursty, budget_us=0)")

    # 2. Zero misses at feasible operating points.
    for s in samples:
        if s["budget_us"] > 0 and s["feasible"] and s["deadline_miss"] != 0:
            fail(f"{s['scenario']} budget {s['budget_us']}us is feasible but "
                 f"recorded {s['deadline_miss']} deadline misses")

    # 3. Monotone frontier per paced scenario. Bursty rows are
    # backlog-bound (queue wait is the offered load's, whatever the
    # budget), so only the throughput anchor below gates them.
    for scenario, rows in by_scenario.items():
        if scenario == "bursty":
            continue
        budgeted = sorted(
            (s for s in rows if s["budget_us"] > 0), key=lambda s: s["budget_us"])
        for tighter, looser in zip(budgeted, budgeted[1:]):
            bound = looser["queue_wait_p99_ns"] * REL_TOL + ABS_SLOP_NS
            if tighter["queue_wait_p99_ns"] > bound:
                fail(f"{scenario}: budget {tighter['budget_us']}us has p99 "
                     f"{tighter['queue_wait_p99_ns']:,}ns, above the looser "
                     f"{looser['budget_us']}us point's "
                     f"{looser['queue_wait_p99_ns']:,}ns (tolerance "
                     f"{bound:,.0f}ns) — tighter budgets must not cost tail "
                     f"latency")

    # 4a. Tightest drip budget tracks the per-edge floor (sub-margin
    # budgets short-circuit to immediate per-edge applies).
    budgeted_drip = sorted(
        (s for s in by_scenario["drip"] if s["budget_us"] > 0),
        key=lambda s: s["budget_us"])
    tightest = budgeted_drip[0]
    bound = 2 * drip_ref["queue_wait_p99_ns"] + ABS_SLOP_NS
    if tightest["queue_wait_p99_ns"] > bound:
        fail(f"tightest drip budget ({tightest['budget_us']}us) "
             f"has p99 {tightest['queue_wait_p99_ns']:,}ns, above 2x the "
             f"per-edge reference {drip_ref['queue_wait_p99_ns']:,}ns "
             f"(+ slop)")

    # 4b. Loosest bursty budget sustains the cap-1024 throughput.
    bursty_budgeted = sorted(
        (s for s in by_scenario["bursty"] if s["budget_us"] > 0),
        key=lambda s: s["budget_us"])
    loosest = bursty_budgeted[-1]
    floor = 0.90 * bursty_ref["throughput_eps"]
    if loosest["throughput_eps"] < floor:
        fail(f"loosest bursty budget ({loosest['budget_us']}us) sustains only "
             f"{loosest['throughput_eps']:,.0f} tx/s, below 90% of the "
             f"unbudgeted cap-1024 reference "
             f"{bursty_ref['throughput_eps']:,.0f} tx/s")

    feasible = sum(1 for s in samples if s["budget_us"] > 0 and s["feasible"])
    print(f"OK: {len(samples)} frontier points ({feasible} feasible budgeted), "
          f"zero misses where feasible, paced p99 monotone in budget, "
          f"anchors hold "
          f"(tightest drip p99 {tightest['queue_wait_p99_ns']:,}ns vs "
          f"per-edge {drip_ref['queue_wait_p99_ns']:,}ns; loosest bursty "
          f"{loosest['throughput_eps']:,.0f} tx/s vs cap-1024 "
          f"{bursty_ref['throughput_eps']:,.0f} tx/s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
