//! The sharded parallel detection runtime.
//!
//! [`ShardedSpadeService`] fans the single-engine worker loop of
//! [`crate::service`] out across N shards: a [`Partitioner`] routes each
//! arriving transaction to one shard, every shard runs a full
//! [`SpadeEngine`] (plus optional §4.3 edge grouping) behind its own
//! bounded ingest queue on its own thread, and a [`DetectionAggregator`]
//! merges the per-shard snapshots into a global densest-community view on
//! every read.
//!
//! With the connectivity partitioner (the default), a community whose
//! component is born and stays on one home shard has all of its edges
//! co-resident, so that shard detects exactly what a single engine over
//! the whole stream would — while benign traffic spreads across all
//! cores. Exactness is *per component home*: edges routed before two
//! already-homed components merge stay on their original shards (no
//! migration — see `shard::partition`), and components that outgrow the
//! spill bound hash-spread. Shutdown fans out: every queue is drained,
//! every grouper flushed, every worker joined, and the final aggregate
//! reflects every submitted transaction.

use crate::engine::SpadeEngine;
use crate::grouping::GroupingConfig;
use crate::metric::DensityMetric;
use crate::service::{IngestConfig, PublishedDetection, ServiceStats, SpadeService};
use crate::shard::aggregate::{DetectionAggregator, GlobalDetection};
use crate::shard::partition::{HashPartitioner, PartitionStrategy, Partitioner};
use parking_lot::Mutex;
use spade_graph::VertexId;

/// Configuration of the sharded runtime.
#[derive(Clone, Copy, Debug)]
pub struct ShardedConfig {
    /// Number of worker shards (engines/threads). Minimum 1.
    pub shards: usize,
    /// Per-shard ingest queue bound (back-pressure per shard).
    pub queue_capacity: usize,
    /// Per-shard drain-coalescing cap: how many queued commands a shard
    /// worker applies per wake-up as one batch (one reorder pass, one
    /// publish). `1` means strict per-edge processing; see
    /// [`IngestConfig::coalesce`].
    pub coalesce: usize,
    /// Edge-grouping configuration applied inside every shard.
    pub grouping: Option<GroupingConfig>,
    /// Edge-to-shard routing policy.
    pub strategy: PartitionStrategy,
    /// Ranked shard entries kept in each [`GlobalDetection`].
    pub top_k: usize,
}

impl Default for ShardedConfig {
    fn default() -> Self {
        let ingest = IngestConfig::default();
        ShardedConfig {
            shards: std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4).min(8),
            queue_capacity: ingest.queue_capacity,
            coalesce: ingest.coalesce,
            grouping: None,
            strategy: PartitionStrategy::default(),
            top_k: 4,
        }
    }
}

impl ShardedConfig {
    /// A config with `shards` workers and defaults elsewhere.
    pub fn with_shards(shards: usize) -> Self {
        ShardedConfig { shards: shards.max(1), ..Default::default() }
    }
}

/// Point-in-time statistics of one shard: the shard index plus its
/// worker's [`ServiceStats`] (queue depth, counters, detection
/// descriptor).
#[derive(Clone, Copy, Debug, Default)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// The shard worker's service statistics.
    pub service: ServiceStats,
}

/// Handle to a running sharded detection runtime. Each shard is a full
/// [`SpadeService`] (engine + bounded queue + worker thread); this type
/// adds routing and aggregation on top.
pub struct ShardedSpadeService {
    shards: Vec<SpadeService>,
    router: Router,
    aggregator: DetectionAggregator,
}

/// The routing fast path: stateless policies route lock-free; stateful
/// ones (union-find) serialize behind a mutex.
enum Router {
    /// Lock-free hash-by-source.
    Hash(HashPartitioner),
    /// Any stateful [`Partitioner`].
    Locked(Mutex<Box<dyn Partitioner>>),
}

impl Router {
    fn new(strategy: PartitionStrategy) -> Self {
        match strategy {
            PartitionStrategy::HashBySource => Router::Hash(HashPartitioner),
            other => Router::Locked(Mutex::new(other.build())),
        }
    }

    #[inline]
    fn route(&self, src: VertexId, dst: VertexId, num_shards: usize) -> usize {
        match self {
            // `HashPartitioner::route` takes `&mut self` to satisfy the
            // trait but touches no state; a copy keeps this lock-free.
            Router::Hash(p) => {
                let mut p = *p;
                p.route(src, dst, num_shards)
            }
            Router::Locked(p) => p.lock().route(src, dst, num_shards),
        }
    }
}

impl ShardedSpadeService {
    /// Spawns `config.shards` worker engines built by `factory` (called
    /// once per shard index — use it to pre-bootstrap shards from
    /// snapshots or to vary per-shard configuration).
    pub fn spawn_with<M, F>(config: ShardedConfig, mut factory: F) -> Self
    where
        M: DensityMetric + Send + 'static,
        F: FnMut(usize) -> SpadeEngine<M>,
    {
        let num_shards = config.shards.max(1);
        let mut shards = Vec::with_capacity(num_shards);
        let ingest =
            IngestConfig { queue_capacity: config.queue_capacity, coalesce: config.coalesce };
        for shard in 0..num_shards {
            shards.push(SpadeService::spawn_with(
                factory(shard),
                config.grouping,
                ingest,
                format!("spade-shard-{shard}"),
            ));
        }
        ShardedSpadeService {
            shards,
            router: Router::new(config.strategy),
            aggregator: DetectionAggregator::new(config.top_k.max(1)),
        }
    }

    /// Spawns the runtime with one empty engine per shard sharing the
    /// given metric.
    pub fn spawn<M>(metric: M, config: ShardedConfig) -> Self
    where
        M: DensityMetric + Clone + Send + 'static,
    {
        Self::spawn_with(config, |_| SpadeEngine::new(metric.clone()))
    }

    /// Number of worker shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Routes one transaction to its shard and enqueues it; blocks when
    /// that shard's queue is full (per-shard back-pressure). Returns
    /// `false` if the runtime has shut down.
    pub fn submit(&self, src: VertexId, dst: VertexId, raw: f64) -> bool {
        let shard = self.router.route(src, dst, self.shards.len());
        self.shards[shard].submit(src, dst, raw)
    }

    /// Asks every shard to flush buffered benign edges. Returns `false`
    /// if any shard has shut down.
    pub fn flush(&self) -> bool {
        self.shards.iter().all(|s| s.flush())
    }

    /// The merged global detection across all shards (densest community
    /// wins), computed from each shard's latest snapshot.
    pub fn current_detection(&self) -> GlobalDetection {
        self.aggregator.merge(self.shards.iter().map(|s| s.current_detection()).collect())
    }

    /// One shard's latest published detection.
    pub fn shard_detection(&self, shard: usize) -> PublishedDetection {
        self.shards[shard].current_detection()
    }

    /// Per-shard statistics: queue depth, updates applied, flush and
    /// publish counts, current detection descriptor.
    pub fn stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .enumerate()
            .map(|(shard, s)| ShardStats { shard, service: s.stats() })
            .collect()
    }

    /// Shuts every shard down in turn, waiting for each queue to drain
    /// and each worker to exit, and returns the final merged detection —
    /// it reflects every transaction ever submitted. (Workers keep
    /// draining their own queues concurrently while earlier shards are
    /// joined, so the total wait is governed by the slowest shard.)
    pub fn shutdown(mut self) -> GlobalDetection {
        let snapshots: Vec<PublishedDetection> =
            self.shards.drain(..).map(SpadeService::shutdown).collect();
        self.aggregator.merge(snapshots)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::WeightedDensity;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    /// Noise path + a dense ring, mirroring the single-service test.
    fn feed_ring(service: &ShardedSpadeService) -> u64 {
        let mut submitted = 0;
        for i in 0..10u32 {
            assert!(service.submit(v(i), v(i + 1), 1.0));
            submitted += 1;
        }
        for a in 50..54u32 {
            for b in 50..54u32 {
                if a != b {
                    assert!(service.submit(v(a), v(b), 25.0));
                    submitted += 1;
                }
            }
        }
        submitted
    }

    #[test]
    fn sharded_runtime_detects_the_ring() {
        let service = ShardedSpadeService::spawn(WeightedDensity, ShardedConfig::with_shards(4));
        assert_eq!(service.num_shards(), 4);
        let submitted = feed_ring(&service);
        let global = service.shutdown();
        assert!(global.best.density > 10.0);
        assert!(global.best.members.iter().all(|m| (50..54).contains(&m.0)));
        assert_eq!(global.total_updates, submitted);
    }

    #[test]
    fn one_shard_equals_the_single_service() {
        let sharded = ShardedSpadeService::spawn(WeightedDensity, ShardedConfig::with_shards(1));
        feed_ring(&sharded);
        let global = sharded.shutdown();

        let single =
            crate::service::SpadeService::spawn(SpadeEngine::new(WeightedDensity), None, 64);
        for i in 0..10u32 {
            single.submit(v(i), v(i + 1), 1.0);
        }
        for a in 50..54u32 {
            for b in 50..54u32 {
                if a != b {
                    single.submit(v(a), v(b), 25.0);
                }
            }
        }
        let want = single.shutdown();
        assert_eq!(global.best.size, want.size);
        assert!((global.best.density - want.density).abs() < 1e-12);
        assert_eq!(global.best.members, want.members);
    }

    #[test]
    fn per_shard_stats_cover_all_submissions() {
        let service = ShardedSpadeService::spawn(WeightedDensity, ShardedConfig::with_shards(3));
        let submitted = feed_ring(&service);
        // Drain deterministically before reading stats.
        let global = service.current_detection();
        let _ = global;
        let final_global = {
            let stats_before = service.stats();
            assert_eq!(stats_before.len(), 3);
            service.shutdown()
        };
        assert_eq!(final_global.total_updates, submitted);
    }

    #[test]
    fn grouped_shards_flush_on_shutdown() {
        let config = ShardedConfig {
            shards: 2,
            grouping: Some(GroupingConfig::default()),
            ..Default::default()
        };
        let service = ShardedSpadeService::spawn_with(config, |_| {
            // Pre-established community so benign traffic buffers.
            let mut engine = SpadeEngine::new(WeightedDensity);
            for a in 100..103u32 {
                for b in 100..103u32 {
                    if a != b {
                        engine.insert_edge(v(a), v(b), 20.0).unwrap();
                    }
                }
            }
            engine
        });
        // Benign edges: buffered inside their shard until shutdown drains.
        for i in 0..6u32 {
            assert!(service.submit(v(i), v(i + 1), 0.01));
        }
        let global = service.shutdown();
        assert_eq!(global.total_updates, 6);
        assert!(global.best.size >= 3);
    }

    #[test]
    fn drop_joins_all_workers() {
        let service = ShardedSpadeService::spawn(WeightedDensity, ShardedConfig::with_shards(4));
        feed_ring(&service);
        drop(service); // must not hang or panic
    }

    #[test]
    fn top_ranking_orders_by_density() {
        let service = ShardedSpadeService::spawn(
            WeightedDensity,
            ShardedConfig { shards: 3, top_k: 3, ..Default::default() },
        );
        feed_ring(&service);
        let global = service.shutdown();
        assert!(!global.top.is_empty());
        for pair in global.top.windows(2) {
            assert!(pair[0].detection.density >= pair[1].detection.density, "ranking out of order");
        }
        assert_eq!(global.top[0].shard, global.best_shard);
    }
}
