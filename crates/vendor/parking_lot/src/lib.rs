//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning API
//! (`read()` / `write()` / `lock()` return guards directly). Poisoning is
//! translated into a panic propagation: if a writer panicked, subsequent
//! accessors panic too, which matches how this workspace uses the locks
//! (any poisoned detector state is unrecoverable anyway).

use std::sync::{self, LockResult};

/// Guard aliases matching parking_lot's public names (the std guards
/// stand in for the real crate's non-poisoning guards).
pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Non-poisoning reader–writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: sync::RwLock<T>,
}

fn unpoison<G>(result: LockResult<G>) -> G {
    result.unwrap_or_else(|_| panic!("lock poisoned by a panicked holder"))
}

impl<T> RwLock<T> {
    /// Creates the lock.
    pub fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }

    /// Acquires a shared read guard.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        unpoison(self.inner.read())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        unpoison(self.inner.write())
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        unpoison(self.inner.into_inner())
    }
}

/// Non-poisoning mutex.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates the mutex.
    pub fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Acquires the lock.
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        unpoison(self.inner.lock())
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        unpoison(self.inner.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rwlock_readers_and_writer() {
        let lock = Arc::new(RwLock::new(0u64));
        {
            *lock.write() += 5;
        }
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let lock = Arc::clone(&lock);
                std::thread::spawn(move || *lock.read())
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 5);
        }
    }

    #[test]
    fn mutex_counts_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }
}
