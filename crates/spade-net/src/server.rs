//! The multi-producer TCP front end of the sharded runtime.
//!
//! [`SpadeNetServer`] binds a `std::net` listener, accepts any number of
//! producer connections, and bridges decoded [`WireFrame`]s into a shared
//! [`ShardedSpadeService`] — one OS thread per connection, each feeding
//! the same routing table and per-shard bounded queues the in-process
//! `submit` path uses. Two properties make the bridge safe under load:
//!
//! * **Back-pressure crosses the wire.** Ingest goes through
//!   [`ShardedSpadeService::try_submit`]; a full shard queue turns into a
//!   [`WireFrame::Busy`] reply carrying the count of edges that *were*
//!   enqueued, and the producer retries the rest. The accept loop and
//!   every other connection keep moving — one back-pressured shard never
//!   head-of-line-blocks the listener.
//! * **Acknowledgement is enqueue.** An edge is counted in an Ack/Busy
//!   `accepted` total only after `try_submit` queued it, and every queued
//!   command is drained before shutdown completes — so the sum of
//!   acknowledged edges equals the shards' `updates_applied` total at
//!   shutdown. The back-pressure integration test pins this down.
//!
//! A malformed frame (bad opcode, truncated section, oversized length
//! prefix) earns the producer an [`WireFrame::Error`] reply and its
//! connection is closed; the server itself never panics on wire input.

use crate::wire::{
    write_frame, FrameDecoder, MetricsReply, StatsReply, WireFrame, METRICS_VERSION,
};
use parking_lot::Mutex;
use spade_core::shard::ShardedSpadeService;
use spade_core::TrySubmit;
use spade_graph::VertexId;
use spade_metrics::MetricsSnapshot;
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How long a connection read blocks before re-checking the stop flag.
const READ_POLL: Duration = Duration::from_millis(50);
/// How long the accept loop sleeps when no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(10);
/// Most per-connection counter sets kept for the metrics exposition.
/// The global totals stay exact forever; labeled `conn="N"` series are a
/// sliding window over the most recent connections so a long-lived
/// server's exposition stays bounded.
const MAX_TRACKED_CONNS: usize = 64;

/// Per-connection transport counters, exposed as labeled series in the
/// metrics exposition (`spade_net_connection_frames{conn="N"}` …).
#[derive(Debug, Default)]
struct ConnCounters {
    frames: AtomicU64,
    bytes: AtomicU64,
    busy_replies: AtomicU64,
}

/// Monotonic transport counters (shared by all connection handlers).
#[derive(Debug, Default)]
struct NetTelemetry {
    connections: AtomicU64,
    frames: AtomicU64,
    edges_accepted: AtomicU64,
    busy_replies: AtomicU64,
    malformed_frames: AtomicU64,
    /// Live + recently closed connections, keyed by accept order.
    per_conn: Mutex<BTreeMap<u64, Arc<ConnCounters>>>,
    /// Transport-side event trace (Busy bounces, malformed frames) —
    /// merged into the runtime's trace in the metrics snapshot.
    registry: spade_metrics::MetricsRegistry,
}

/// Renders the transport counters as a [`MetricsSnapshot`] ready to
/// merge with [`ShardedSpadeService::metrics`]: global totals plus one
/// labeled series triple per tracked connection, plus the transport's
/// event trace.
fn net_snapshot(telemetry: &NetTelemetry) -> MetricsSnapshot {
    let mut snap = telemetry.registry.snapshot();
    let mut c = |name: &str, v: u64| {
        snap.counters.insert(name.to_string(), v);
    };
    c("spade_net_connections_total", telemetry.connections.load(Ordering::Relaxed));
    c("spade_net_frames_total", telemetry.frames.load(Ordering::Relaxed));
    c("spade_net_edges_accepted_total", telemetry.edges_accepted.load(Ordering::Relaxed));
    c("spade_net_busy_replies_total", telemetry.busy_replies.load(Ordering::Relaxed));
    c("spade_net_malformed_frames_total", telemetry.malformed_frames.load(Ordering::Relaxed));
    for (id, conn) in telemetry.per_conn.lock().iter() {
        c(
            &format!("spade_net_connection_frames{{conn=\"{id}\"}}"),
            conn.frames.load(Ordering::Relaxed),
        );
        c(
            &format!("spade_net_connection_bytes{{conn=\"{id}\"}}"),
            conn.bytes.load(Ordering::Relaxed),
        );
        c(
            &format!("spade_net_connection_busy{{conn=\"{id}\"}}"),
            conn.busy_replies.load(Ordering::Relaxed),
        );
    }
    snap
}

/// Point-in-time transport statistics of a [`SpadeNetServer`].
#[derive(Clone, Copy, Debug, Default)]
pub struct NetStats {
    /// Connections accepted since the server started.
    pub connections: u64,
    /// Frames decoded across all connections.
    pub frames: u64,
    /// Edges acknowledged — each one was enqueued into a shard queue.
    pub edges_accepted: u64,
    /// Busy replies sent (an edge bounced off a full shard queue).
    pub busy_replies: u64,
    /// Connections dropped over malformed frames.
    pub malformed_frames: u64,
}

/// A running TCP ingest server wrapped around a shared sharded runtime.
///
/// Dropping the handle stops the listener and joins every connection
/// handler (mirroring the worker-join discipline of [`SpadeService`]'s
/// drop); the wrapped service itself is left running — shut it down
/// through its own handle once `Arc::try_unwrap` succeeds.
///
/// [`SpadeService`]: spade_core::service::SpadeService
pub struct SpadeNetServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    telemetry: Arc<NetTelemetry>,
    accept: Option<JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl SpadeNetServer {
    /// Binds `addr` (use port 0 for an OS-assigned port — see
    /// [`local_addr`](Self::local_addr)) and starts accepting producers
    /// into `service`.
    pub fn bind<A: ToSocketAddrs>(
        service: Arc<ShardedSpadeService>,
        addr: A,
    ) -> std::io::Result<SpadeNetServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let telemetry = Arc::new(NetTelemetry::default());
        let handlers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let stop = Arc::clone(&stop);
            let telemetry = Arc::clone(&telemetry);
            let handlers = Arc::clone(&handlers);
            std::thread::Builder::new()
                .name("spade-net-accept".into())
                .spawn(move || {
                    accept_loop(listener, service, stop, telemetry, handlers);
                })
                .expect("failed to spawn the accept thread")
        };
        Ok(SpadeNetServer { local_addr, stop, telemetry, accept: Some(accept), handlers })
    }

    /// The bound address (resolves port 0 to the real port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// `true` once a producer's Shutdown frame (or [`stop`](Self::stop))
    /// has stopped the server. The CLI's `serve --listen` loop polls
    /// this.
    pub fn is_stopped(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }

    /// Asks the accept loop and every connection handler to wind down
    /// without blocking.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Release);
    }

    /// The transport's own counters as a [`MetricsSnapshot`] — global
    /// totals plus per-connection `conn="N"`-labeled series. Merge with
    /// [`ShardedSpadeService::metrics`] for the full picture (the wire
    /// `Metrics` request does exactly that server-side).
    pub fn metrics(&self) -> MetricsSnapshot {
        net_snapshot(&self.telemetry)
    }

    /// A cloneable provider of the transport's metrics snapshot, for
    /// exporters whose render closure must outlive this handle's borrow
    /// (the CLI's HTTP exporter thread).
    pub fn metrics_provider(&self) -> Arc<dyn Fn() -> MetricsSnapshot + Send + Sync> {
        let telemetry = Arc::clone(&self.telemetry);
        Arc::new(move || net_snapshot(&telemetry))
    }

    /// Current transport counters.
    pub fn stats(&self) -> NetStats {
        let t = &self.telemetry;
        NetStats {
            connections: t.connections.load(Ordering::Relaxed),
            frames: t.frames.load(Ordering::Relaxed),
            edges_accepted: t.edges_accepted.load(Ordering::Relaxed),
            busy_replies: t.busy_replies.load(Ordering::Relaxed),
            malformed_frames: t.malformed_frames.load(Ordering::Relaxed),
        }
    }

    /// Stops the server, joins the accept loop and every connection
    /// handler, and returns the final transport counters. Edges already
    /// acknowledged sit in shard queues; drain them by shutting the
    /// underlying service down afterwards.
    pub fn shutdown(mut self) -> NetStats {
        self.join();
        self.stats()
    }

    fn join(&mut self) {
        self.stop();
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        let handlers: Vec<JoinHandle<()>> = std::mem::take(&mut *self.handlers.lock());
        for h in handlers {
            let _ = h.join();
        }
    }
}

impl Drop for SpadeNetServer {
    fn drop(&mut self) {
        self.join();
    }
}

fn accept_loop(
    listener: TcpListener,
    service: Arc<ShardedSpadeService>,
    stop: Arc<AtomicBool>,
    telemetry: Arc<NetTelemetry>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    let mut conn_id = 0u64;
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                telemetry.connections.fetch_add(1, Ordering::Relaxed);
                conn_id += 1;
                let conn = Arc::new(ConnCounters::default());
                {
                    let mut per_conn = telemetry.per_conn.lock();
                    per_conn.insert(conn_id, Arc::clone(&conn));
                    // Oldest connections age out of the labeled series
                    // window (the global totals already counted them).
                    while per_conn.len() > MAX_TRACKED_CONNS {
                        let oldest = *per_conn.keys().next().expect("non-empty map");
                        per_conn.remove(&oldest);
                    }
                }
                let service = Arc::clone(&service);
                let stop = Arc::clone(&stop);
                let telemetry = Arc::clone(&telemetry);
                let handle = std::thread::Builder::new()
                    .name(format!("spade-net-conn-{conn_id}"))
                    .spawn(move || {
                        let _ = handle_connection(stream, &service, &stop, &telemetry, &conn);
                    })
                    .expect("failed to spawn a connection handler");
                // Reap finished handlers so a long-lived server's handle
                // list tracks concurrent connections, not total accepts.
                let mut handlers = handlers.lock();
                handlers.retain(|h| !h.is_finished());
                handlers.push(handle);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

/// One producer connection: reassemble frames, bridge them into the
/// service, reply in request order.
fn handle_connection(
    stream: TcpStream,
    service: &ShardedSpadeService,
    stop: &AtomicBool,
    telemetry: &NetTelemetry,
    conn: &ConnCounters,
) -> std::io::Result<()> {
    stream.set_nodelay(true).ok();
    // A finite read timeout lets the handler notice the stop flag while
    // idle; partial frames survive timeouts because the decoder buffers
    // across reads.
    stream.set_read_timeout(Some(READ_POLL))?;
    let mut reader = stream.try_clone()?;
    let mut writer = std::io::BufWriter::new(stream);
    let mut decoder = FrameDecoder::new();
    let mut chunk = vec![0u8; 64 * 1024];
    'conn: while !stop.load(Ordering::Acquire) {
        let n = match reader.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => break,
        };
        conn.bytes.fetch_add(n as u64, Ordering::Relaxed);
        decoder.extend(&chunk[..n]);
        loop {
            match decoder.next_frame() {
                Ok(Some(frame)) => {
                    telemetry.frames.fetch_add(1, Ordering::Relaxed);
                    conn.frames.fetch_add(1, Ordering::Relaxed);
                    if !handle_frame(frame, service, stop, telemetry, conn, &mut writer)? {
                        writer.flush()?;
                        break 'conn;
                    }
                }
                Ok(None) => break,
                Err(err) => {
                    // Framing is untrustworthy from here on: answer with
                    // the cause and hang up.
                    telemetry.malformed_frames.fetch_add(1, Ordering::Relaxed);
                    telemetry.registry.event(spade_metrics::EventKind::MalformedFrame, 0);
                    let _ =
                        write_frame(&mut writer, &WireFrame::Error { message: err.to_string() });
                    writer.flush()?;
                    break 'conn;
                }
            }
        }
        writer.flush()?;
    }
    Ok(())
}

/// Applies one decoded request, writing the reply (unflushed). Returns
/// `false` when the connection must close.
fn handle_frame<W: Write>(
    frame: WireFrame,
    service: &ShardedSpadeService,
    stop: &AtomicBool,
    telemetry: &NetTelemetry,
    conn: &ConnCounters,
    out: &mut W,
) -> std::io::Result<bool> {
    match frame {
        WireFrame::Edge { src, dst, raw } => {
            let (reply, alive) = submit_run(&[(src, dst, raw)], service, telemetry, conn);
            write_frame(out, &reply)?;
            Ok(alive)
        }
        WireFrame::Batch { edges } => {
            let (reply, alive) = submit_grouped(&edges, None, service, telemetry, conn);
            write_frame(out, &reply)?;
            Ok(alive)
        }
        WireFrame::BatchBudget { budget_us, edges } => {
            let budget = (budget_us > 0).then(|| Duration::from_micros(u64::from(budget_us)));
            let (reply, alive) = submit_grouped(&edges, budget, service, telemetry, conn);
            write_frame(out, &reply)?;
            Ok(alive)
        }
        WireFrame::Flush => {
            if service.flush() {
                write_frame(out, &WireFrame::Ack { accepted: 0 })?;
                Ok(true)
            } else {
                write_frame(out, &WireFrame::Error { message: "runtime has shut down".into() })?;
                Ok(false)
            }
        }
        WireFrame::Detect => {
            // Read-your-acks: every edge the server acknowledged before
            // this request must be reflected in the answer, so wait for
            // the shards to apply what is already queued. Acked edges
            // always drain (workers never drop queued commands), so the
            // deadline only matters if the runtime is torn down under us.
            let acked = telemetry.edges_accepted.load(Ordering::Acquire);
            let deadline = std::time::Instant::now() + Duration::from_secs(10);
            while applied_total(service) < acked && std::time::Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(1));
            }
            let global = service.current_detection();
            write_frame(
                out,
                &WireFrame::Detection(crate::wire::DetectionReply {
                    size: global.best.size as u64,
                    density: global.best.density,
                    updates_applied: global.total_updates,
                    members: global.best.members.to_vec(),
                }),
            )?;
            Ok(true)
        }
        WireFrame::Stats => {
            let shard_stats = service.stats();
            let t = telemetry;
            write_frame(
                out,
                &WireFrame::StatsReply(StatsReply {
                    shards: shard_stats.len() as u64,
                    updates_applied: shard_stats.iter().map(|s| s.service.updates_applied).sum(),
                    queue_depth: shard_stats.iter().map(|s| s.service.queue_depth as u64).sum(),
                    connections: t.connections.load(Ordering::Relaxed),
                    frames: t.frames.load(Ordering::Relaxed),
                    edges_accepted: t.edges_accepted.load(Ordering::Relaxed),
                    busy_replies: t.busy_replies.load(Ordering::Relaxed),
                    malformed_frames: t.malformed_frames.load(Ordering::Relaxed),
                    uptime_secs: service.uptime().as_secs_f64(),
                    shard_queue_depths: shard_stats
                        .iter()
                        .map(|s| s.service.queue_depth as u64)
                        .collect(),
                }),
            )?;
            Ok(true)
        }
        WireFrame::Metrics => {
            // Runtime registries (every shard, merged) + the transport's
            // own counters, rendered once server-side so every exporter
            // ships the identical exposition.
            let merged = service.metrics().merge(&net_snapshot(telemetry));
            write_frame(
                out,
                &WireFrame::MetricsReply(MetricsReply {
                    version: METRICS_VERSION,
                    exposition: merged.render_prometheus(),
                }),
            )?;
            Ok(true)
        }
        WireFrame::Shutdown => {
            // The coordinator's end-of-stream marker: acknowledge, then
            // stop the whole server (acked edges stay queued — the
            // operator drains them by shutting the service down).
            write_frame(out, &WireFrame::Ack { accepted: 0 })?;
            stop.store(true, Ordering::Release);
            Ok(false)
        }
        // Reply frames arriving at the server are a protocol violation.
        WireFrame::Ack { .. }
        | WireFrame::Busy { .. }
        | WireFrame::Detection(_)
        | WireFrame::StatsReply(_)
        | WireFrame::MetricsReply(_)
        | WireFrame::Error { .. } => {
            telemetry.malformed_frames.fetch_add(1, Ordering::Relaxed);
            write_frame(out, &WireFrame::Error { message: "reply frame sent to server".into() })?;
            Ok(false)
        }
    }
}

/// Ingest commands applied across all shards.
fn applied_total(service: &ShardedSpadeService) -> u64 {
    service.stats().iter().map(|s| s.service.updates_applied).sum()
}

/// Enqueues a run of edges until done or a shard queue fills, producing
/// the Ack/Busy/Error reply. Returns `(reply, keep_connection)`.
fn submit_run(
    edges: &[(VertexId, VertexId, f64)],
    service: &ShardedSpadeService,
    telemetry: &NetTelemetry,
    conn: &ConnCounters,
) -> (WireFrame, bool) {
    let mut accepted = 0u64;
    for &(src, dst, raw) in edges {
        match service.try_submit(src, dst, raw) {
            TrySubmit::Queued => accepted += 1,
            TrySubmit::Full => {
                telemetry.edges_accepted.fetch_add(accepted, Ordering::Relaxed);
                telemetry.busy_replies.fetch_add(1, Ordering::Relaxed);
                conn.busy_replies.fetch_add(1, Ordering::Relaxed);
                telemetry.registry.event(spade_metrics::EventKind::Busy, accepted);
                return (WireFrame::Busy { accepted }, true);
            }
            TrySubmit::Closed => {
                telemetry.edges_accepted.fetch_add(accepted, Ordering::Relaxed);
                return (WireFrame::Error { message: "runtime has shut down".into() }, false);
            }
        }
    }
    telemetry.edges_accepted.fetch_add(accepted, Ordering::Relaxed);
    (WireFrame::Ack { accepted }, true)
}

/// The batch fast path: hands the whole frame to
/// [`ShardedSpadeService::submit_batch`], which routes every edge once
/// and enqueues one grouped command per destination shard — instead of a
/// route + `try_send` round trip per edge. Admission is still the strict
/// frame-order prefix, so a `Busy` reply's `accepted` count keeps its
/// retry-the-suffix meaning, and the Ack/Busy/Error telemetry is
/// identical to the per-edge path.
fn submit_grouped(
    edges: &[(VertexId, VertexId, f64)],
    budget: Option<Duration>,
    service: &ShardedSpadeService,
    telemetry: &NetTelemetry,
    conn: &ConnCounters,
) -> (WireFrame, bool) {
    let outcome = service.submit_batch(edges, budget);
    let accepted = outcome.accepted as u64;
    telemetry.edges_accepted.fetch_add(accepted, Ordering::Relaxed);
    if outcome.closed {
        return (WireFrame::Error { message: "runtime has shut down".into() }, false);
    }
    if outcome.accepted < edges.len() {
        telemetry.busy_replies.fetch_add(1, Ordering::Relaxed);
        conn.busy_replies.fetch_add(1, Ordering::Relaxed);
        telemetry.registry.event(spade_metrics::EventKind::Busy, accepted);
        return (WireFrame::Busy { accepted }, true);
    }
    (WireFrame::Ack { accepted }, true)
}
