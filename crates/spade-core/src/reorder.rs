//! Incremental peeling-sequence reordering (paper §4.1 and §4.2).
//!
//! Both the single-edge algorithm `T` and the batch Algorithm 2 are
//! instances of one *window runner*: a pending queue `T` of dislodged
//! vertices is merged against the still-valid suffix of the old peeling
//! sequence, emitting vertices in `(weight, id)` order until `T` drains.
//! Everything before the window and after it is untouched — the window is
//! exactly the affected area `G_T` whose size the paper's complexity
//! analysis is about (`O(|E_T| + |E_T| log |V_T|)`).
//!
//! Loop invariant (Lemmas 4.1/4.2 generalized to the `(weight, id)` total
//! order): let `R = T ∪ S_k` be the not-yet-emitted vertices, where `S_k`
//! is the old suffix from position `k`.
//!
//! * every queue member's priority is its true peeling weight `w_u(R)`;
//! * every *white* suffix vertex's stored weight `Δ_k` equals `w_u(R)`
//!   (white = never adjacent to anything that entered `T`, not in `ΔV`);
//! * gray/black suffix vertices may be stale, so they are *recovered*
//!   (recomputed against `R` straight from the adjacency lists) before any
//!   ordering decision uses them.
//!
//! Under the invariant, comparing the queue head's key with the stored key
//! at position `k` decides the true global minimum of `R` (Lemma 4.2),
//! so the emitted sequence is bit-identical to a from-scratch greedy peel
//! of the updated graph.

use crate::order::{MinQueue, PeelKey};
use crate::state::PeelingState;
use spade_graph::{DynamicGraph, VertexId};

/// Counters describing the affected area of one reordering pass — the
/// quantities behind the paper's "Spade processes only 3.5e-4 of edges"
/// observation (§5.1).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReorderStats {
    /// Number of contiguous reorder windows executed.
    pub windows: usize,
    /// Vertices whose slot was rewritten (total window length, `|V_T|`).
    pub moved: usize,
    /// Vertices that passed through the pending queue `T`.
    pub queued: usize,
    /// Adjacency entries scanned (`|E_T|`, counting both directions).
    pub edges_scanned: usize,
}

impl ReorderStats {
    /// Accumulates another pass's counters.
    pub fn merge(&mut self, other: ReorderStats) {
        self.windows += other.windows;
        self.moved += other.moved;
        self.queued += other.queued;
        self.edges_scanned += other.edges_scanned;
    }
}

/// Reusable allocations for the reordering passes.
#[derive(Clone, Debug, Default)]
pub struct ReorderScratch {
    pub(crate) queue: MinQueue,
    /// Epoch stamps: `gray[v] == epoch` means `v` is colored gray (it has
    /// or had a pending-queue neighbor, so its stored weight is suspect).
    gray: Vec<u64>,
    /// Epoch stamps for the black set `ΔV` (endpoints of updates).
    black: Vec<u64>,
    /// Epoch stamps for vertices seeded *directly out of the suffix*
    /// (deletion's later endpoint): their old slot must be consumed
    /// silently even after they pop from the queue.
    lifted: Vec<u64>,
    epoch: u64,
    /// Emission buffer for the current window, in logical order.
    window: Vec<(VertexId, f64)>,
}

impl ReorderScratch {
    /// Creates empty scratch space.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn begin_epoch(&mut self, num_vertices: usize) {
        self.epoch += 1;
        if self.gray.len() < num_vertices {
            self.gray.resize(num_vertices, 0);
            self.black.resize(num_vertices, 0);
            self.lifted.resize(num_vertices, 0);
        }
        self.queue.reset(num_vertices);
        self.window.clear();
    }

    #[inline(always)]
    fn is_gray(&self, v: VertexId) -> bool {
        self.gray[v.index()] == self.epoch
    }

    #[inline(always)]
    fn is_black(&self, v: VertexId) -> bool {
        self.black[v.index()] == self.epoch
    }

    /// Marks a vertex as seeded straight out of the suffix; its stale slot
    /// is skipped when the cursor passes it.
    pub(crate) fn mark_lifted(&mut self, v: VertexId) {
        self.lifted[v.index()] = self.epoch;
    }

    #[inline(always)]
    fn is_lifted(&self, v: VertexId) -> bool {
        self.lifted[v.index()] == self.epoch
    }
}

/// One reordering pass over `state` after `graph` has already been
/// mutated.
///
/// `blacks` is the affected vertex set `ΔV`: for every inserted edge the
/// endpoint with the *smaller* peeling position (whose recorded weight
/// grew), plus any newly created vertices. The pass sorts and deduplicates
/// it internally.
///
/// `on_window(phys_lo, new_deltas)` fires once per rewritten window with
/// the physical (rank-space) range and its new weights so a density index
/// can ingest the change.
pub fn reorder(
    graph: &DynamicGraph,
    state: &mut PeelingState,
    blacks: &mut Vec<VertexId>,
    scratch: &mut ReorderScratch,
    mut on_window: impl FnMut(usize, &[f64]),
) -> ReorderStats {
    let mut stats = ReorderStats::default();
    if blacks.is_empty() || state.is_empty() {
        return stats;
    }
    scratch.begin_epoch(graph.num_vertices());

    // Stamp-dedupe `ΔV` in O(k) before sorting: a k-edge burst onto one
    // community names the same earlier endpoint k times, and carrying the
    // duplicates into the sort would cost O(k log k) and seed the queue
    // with redundant work. The stamp doubles as the black coloring.
    {
        let epoch = scratch.epoch;
        let black = &mut scratch.black;
        blacks.retain(|&v| {
            if black[v.index()] == epoch {
                false
            } else {
                black[v.index()] = epoch;
                true
            }
        });
    }
    blacks.sort_unstable_by_key(|&v| state.position_of(v));

    // Global suffix cursor; windows never move it backwards.
    let mut cursor = 0usize;
    for &b in blacks.iter() {
        let pos = state.position_of(b);
        if pos < cursor {
            // Absorbed by a previous window (it was black, so the window
            // loop recovered and re-emitted it already).
            continue;
        }
        let start = pos;
        let mut k = pos + 1;
        scratch.window.clear();
        seed(graph, state, scratch, b, k, &mut stats);
        run_window(graph, state, scratch, start, &mut k, 0, &mut stats, &mut on_window);
        cursor = k;
    }
    stats
}

/// Inserts `v` into the pending queue with its *recovered* weight — the
/// true peeling weight against the remaining set `R`, recomputed from the
/// adjacency lists — and grays its neighbors.
pub(crate) fn seed(
    graph: &DynamicGraph,
    state: &PeelingState,
    scratch: &mut ReorderScratch,
    v: VertexId,
    k_current: usize,
    stats: &mut ReorderStats,
) {
    let w = recovered_weight(graph, state, scratch, v, k_current, stats);
    scratch.queue.insert(v, w);
    stats.queued += 1;
    for nb in graph.neighbors(v) {
        scratch.gray[nb.v.index()] = scratch.epoch;
    }
    stats.edges_scanned += graph.degree(v);
}

/// Inserts `v` into the pending queue with a caller-supplied weight
/// (used by the deletion extension, whose backward phase knows the exact
/// stored weights). Grays neighbors like [`seed`].
pub(crate) fn seed_with_weight(
    graph: &DynamicGraph,
    scratch: &mut ReorderScratch,
    v: VertexId,
    weight: f64,
    stats: &mut ReorderStats,
) {
    scratch.queue.insert(v, weight);
    stats.queued += 1;
    for nb in graph.neighbors(v) {
        scratch.gray[nb.v.index()] = scratch.epoch;
    }
    stats.edges_scanned += graph.degree(v);
}

/// `w_v(R)` where `R = T ∪ S_k`: membership is "in the pending queue, or
/// still at an unconsumed suffix position". Consumed vertices carry stale
/// positions strictly below `k_current`, so the position test excludes
/// them (see DESIGN.md §4).
fn recovered_weight(
    graph: &DynamicGraph,
    state: &PeelingState,
    scratch: &ReorderScratch,
    v: VertexId,
    k_current: usize,
    stats: &mut ReorderStats,
) -> f64 {
    let mut w = graph.vertex_weight(v);
    for nb in graph.neighbors(v) {
        let in_remaining = scratch.queue.contains(nb.v) || state.position_of(nb.v) >= k_current;
        if in_remaining {
            w += nb.w;
        }
    }
    stats.edges_scanned += graph.degree(v);
    w
}

/// Runs the merge loop of one window: starts with a non-empty pending
/// queue and the suffix cursor at `*k`, and drains the queue, emitting into
/// `scratch.window`. On return the logical window `[start, *k)` has been
/// written back to `state` and reported through `on_window`.
///
/// `forced_extent` (exclusive position) keeps the window open even after
/// the queue drains — the deletion pass seeds a vertex straight out of the
/// suffix (the deleted edge's later endpoint), so its old slot **must** be
/// consumed and rewritten even if every queued vertex pops early.
#[allow(clippy::too_many_arguments)] // internal runner; the arguments are the algorithm's state
pub(crate) fn run_window(
    graph: &DynamicGraph,
    state: &mut PeelingState,
    scratch: &mut ReorderScratch,
    start: usize,
    k: &mut usize,
    forced_extent: usize,
    stats: &mut ReorderStats,
    on_window: &mut impl FnMut(usize, &[f64]),
) {
    let n = state.len();
    loop {
        let head = scratch.queue.peek();
        if head.is_none() && *k >= forced_extent {
            break;
        }
        if *k < n {
            let key_k = state.key_at(*k);
            let uk = key_k.vertex;
            if scratch.is_lifted(uk) {
                // The vertex at this slot was seeded directly from the
                // suffix (deletion's later endpoint): its slot is consumed
                // here, and the vertex itself emits from the queue (it may
                // already have popped at an earlier window position).
                *k += 1;
                continue;
            }
            if head.is_some_and(|h| h < key_k) {
                pop_and_emit(graph, scratch, stats);
            } else if scratch.is_black(uk) || scratch.is_gray(uk) {
                // Case 2(a): the stored weight may be stale — recover
                // it and let the queue re-rank the vertex.
                *k += 1;
                seed(graph, state, scratch, uk, *k, stats);
            } else {
                // Case 2(b): white vertex — its stored weight is its
                // true weight and it precedes everything queued.
                scratch.window.push((uk, key_k.weight));
                *k += 1;
            }
        } else if head.is_some() {
            // Suffix exhausted: drain the queue.
            pop_and_emit(graph, scratch, stats);
        } else {
            break;
        }
    }
    debug_assert_eq!(scratch.window.len(), *k - start, "window length mismatch");
    stats.windows += 1;
    stats.moved += scratch.window.len();
    let (lo, hi) = state.write_window(start, &scratch.window);
    on_window(lo, &state.delta_phys()[lo..hi]);
    scratch.window.clear();
}

/// Case 1: the queue head is the global minimum of `R` — emit it and
/// lower the priorities of its queued neighbors.
fn pop_and_emit(graph: &DynamicGraph, scratch: &mut ReorderScratch, stats: &mut ReorderStats) {
    let PeelKey { weight, vertex } = scratch.queue.pop().expect("pop on empty queue");
    scratch.window.push((vertex, weight));
    for nb in graph.neighbors(vertex) {
        if scratch.queue.contains(nb.v) {
            scratch.queue.add_weight(nb.v, -nb.w);
        }
    }
    stats.edges_scanned += graph.degree(vertex);
}

/// Convenience wrapper for a single edge insertion (§4.1): `ΔV` is just
/// the endpoint with the smaller peeling position.
pub fn reorder_single_edge(
    graph: &DynamicGraph,
    state: &mut PeelingState,
    src: VertexId,
    dst: VertexId,
    scratch: &mut ReorderScratch,
    blacks_buf: &mut Vec<VertexId>,
    on_window: impl FnMut(usize, &[f64]),
) -> ReorderStats {
    let earlier = if state.position_of(src) < state.position_of(dst) { src } else { dst };
    blacks_buf.clear();
    blacks_buf.push(earlier);
    reorder(graph, state, blacks_buf, scratch, on_window)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::peel::peel;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    /// Builds a graph, peels it, inserts `edges`, reorders incrementally,
    /// and asserts bit-identical agreement with a from-scratch peel.
    fn check_incremental(base: &DynamicGraph, edges: &[(u32, u32, f64)]) {
        let mut graph = base.clone();
        let mut state = PeelingState::from_outcome(&peel(&graph));
        let mut scratch = ReorderScratch::new();
        let mut blacks = Vec::new();
        for &(a, b, w) in edges {
            graph.insert_edge(v(a), v(b), w).unwrap();
            let stats = reorder_single_edge(
                &graph,
                &mut state,
                v(a),
                v(b),
                &mut scratch,
                &mut blacks,
                |_, _| {},
            );
            assert!(stats.windows <= 1);
        }
        let fresh = peel(&graph);
        assert_eq!(state.logical_order(), fresh.order, "sequence diverged");
        let stored = state.logical_weights();
        for (i, (&got, &want)) in stored.iter().zip(fresh.weights.iter()).enumerate() {
            assert!((got - want).abs() < 1e-9, "weight {i}: {got} vs {want}");
        }
        state.validate_greedy(&graph, 1e-9);
    }

    fn paper_example() -> DynamicGraph {
        // Fig. 3/5 style graph: integer weights so equality is exact.
        let mut g = DynamicGraph::new();
        for _ in 0..5 {
            g.add_vertex(0.0).unwrap();
        }
        g.insert_edge(v(0), v(1), 2.0).unwrap();
        g.insert_edge(v(1), v(2), 1.0).unwrap();
        g.insert_edge(v(1), v(4), 4.0).unwrap();
        g.insert_edge(v(3), v(4), 2.0).unwrap();
        g.insert_edge(v(0), v(3), 2.0).unwrap();
        g
    }

    #[test]
    fn single_insertion_matches_from_scratch() {
        // The paper's running example: insert (u1, u5) with weight 4.
        check_incremental(&paper_example(), &[(0, 4, 4.0)]);
    }

    #[test]
    fn insertion_onto_existing_edge_accumulates() {
        check_incremental(&paper_example(), &[(0, 1, 3.0)]);
    }

    #[test]
    fn repeated_insertions_stay_consistent() {
        check_incremental(
            &paper_example(),
            &[(0, 4, 4.0), (2, 3, 1.0), (2, 3, 1.0), (0, 2, 5.0), (4, 0, 2.0)],
        );
    }

    #[test]
    fn insertion_at_sequence_tail() {
        // Connect the two last-peeled (heaviest) vertices.
        let g = paper_example();
        let state = PeelingState::from_outcome(&peel(&g));
        let a = state.vertex_at(3).0;
        let b = state.vertex_at(4).0;
        check_incremental(&g, &[(a, b, 7.0)]);
    }

    #[test]
    fn insertion_at_sequence_head() {
        let g = paper_example();
        let state = PeelingState::from_outcome(&peel(&g));
        let a = state.vertex_at(0).0;
        let b = state.vertex_at(1).0;
        check_incremental(&g, &[(a, b, 1.0)]);
    }

    #[test]
    fn batch_reorder_matches_from_scratch() {
        let mut graph = paper_example();
        let mut state = PeelingState::from_outcome(&peel(&graph));
        let mut scratch = ReorderScratch::new();
        let edges = [(0u32, 4u32, 4.0f64), (2, 3, 2.0), (0, 2, 1.0)];
        let mut blacks = Vec::new();
        for &(a, b, w) in &edges {
            graph.insert_edge(v(a), v(b), w).unwrap();
        }
        for &(a, b, _) in &edges {
            let earlier =
                if state.position_of(v(a)) < state.position_of(v(b)) { v(a) } else { v(b) };
            blacks.push(earlier);
        }
        reorder(&graph, &mut state, &mut blacks, &mut scratch, |_, _| {});
        assert_eq!(state.logical_order(), peel(&graph).order);
        state.validate_greedy(&graph, 1e-9);
    }

    #[test]
    fn reorder_reports_windows_through_callback() {
        let mut graph = paper_example();
        let mut state = PeelingState::from_outcome(&peel(&graph));
        let mut scratch = ReorderScratch::new();
        graph.insert_edge(v(0), v(4), 4.0).unwrap();
        let mut touched: Vec<(usize, usize)> = Vec::new();
        let mut blacks = Vec::new();
        reorder_single_edge(&graph, &mut state, v(0), v(4), &mut scratch, &mut blacks, |lo, ws| {
            touched.push((lo, ws.len()));
        });
        assert_eq!(touched.len(), 1);
        // The reported physical range must mirror the state's new weights.
        let (lo, len) = touched[0];
        assert!(len > 0);
        assert!(lo + len <= state.len());
    }

    #[test]
    fn duplicated_blacks_are_deduplicated_in_linear_time() {
        // A k-edge burst onto one community seeds the same earlier vertex
        // k times; the pass must behave exactly as if it appeared once.
        let mut graph = paper_example();
        let mut state = PeelingState::from_outcome(&peel(&graph));
        let mut scratch = ReorderScratch::new();
        for _ in 0..8 {
            graph.insert_edge(v(0), v(4), 1.0).unwrap();
        }
        let earlier = if state.position_of(v(0)) < state.position_of(v(4)) { v(0) } else { v(4) };
        let mut blacks = vec![earlier; 8];
        let stats = reorder(&graph, &mut state, &mut blacks, &mut scratch, |_, _| {});
        assert_eq!(blacks.len(), 1, "duplicates must be stripped in place");
        assert_eq!(stats.windows, 1);
        assert_eq!(state.logical_order(), peel(&graph).order);
        state.validate_greedy(&graph, 1e-9);
    }

    #[test]
    fn noop_for_empty_blacks() {
        let graph = paper_example();
        let mut state = PeelingState::from_outcome(&peel(&graph));
        let before = state.logical_order();
        let mut scratch = ReorderScratch::new();
        let mut blacks = Vec::new();
        let stats = reorder(&graph, &mut state, &mut blacks, &mut scratch, |_, _| {
            panic!("no window expected")
        });
        assert_eq!(stats, ReorderStats::default());
        assert_eq!(state.logical_order(), before);
    }

    #[test]
    fn randomized_insertions_match_from_scratch() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(42);
        for trial in 0..40 {
            let n = rng.gen_range(3..24usize);
            let mut g = DynamicGraph::new();
            for _ in 0..n {
                g.add_vertex(rng.gen_range(0..3) as f64).unwrap();
            }
            // Random base graph with integer weights.
            for _ in 0..rng.gen_range(0..3 * n) {
                let a = rng.gen_range(0..n as u32);
                let b = rng.gen_range(0..n as u32);
                if a != b {
                    let _ = g.insert_edge(v(a), v(b), rng.gen_range(1..8) as f64);
                }
            }
            // Random insertions, applied one at a time.
            let mut updates = Vec::new();
            for _ in 0..rng.gen_range(1..12) {
                let a = rng.gen_range(0..n as u32);
                let b = rng.gen_range(0..n as u32);
                if a != b {
                    updates.push((a, b, rng.gen_range(1..8) as f64));
                }
            }
            if updates.is_empty() {
                continue;
            }
            let mut graph = g.clone();
            let mut state = PeelingState::from_outcome(&peel(&graph));
            let mut scratch = ReorderScratch::new();
            let mut blacks = Vec::new();
            for &(a, b, w) in &updates {
                graph.insert_edge(v(a), v(b), w).unwrap();
                reorder_single_edge(
                    &graph,
                    &mut state,
                    v(a),
                    v(b),
                    &mut scratch,
                    &mut blacks,
                    |_, _| {},
                );
            }
            let fresh = peel(&graph);
            assert_eq!(
                state.logical_order(),
                fresh.order,
                "trial {trial}: incremental and static peels diverged"
            );
            state.validate_greedy(&graph, 1e-9);
        }
    }

    #[test]
    fn randomized_batches_match_from_scratch() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1234);
        for trial in 0..40 {
            let n = rng.gen_range(4..20usize);
            let mut graph = DynamicGraph::new();
            for _ in 0..n {
                graph.add_vertex(0.0).unwrap();
            }
            for _ in 0..rng.gen_range(1..2 * n) {
                let a = rng.gen_range(0..n as u32);
                let b = rng.gen_range(0..n as u32);
                if a != b {
                    let _ = graph.insert_edge(v(a), v(b), rng.gen_range(1..5) as f64);
                }
            }
            let mut state = PeelingState::from_outcome(&peel(&graph));
            let mut scratch = ReorderScratch::new();
            // One batch of several edges.
            let mut blacks = Vec::new();
            for _ in 0..rng.gen_range(1..10) {
                let a = rng.gen_range(0..n as u32);
                let b = rng.gen_range(0..n as u32);
                if a == b {
                    continue;
                }
                if graph.insert_edge(v(a), v(b), rng.gen_range(1..5) as f64).is_ok() {
                    let earlier =
                        if state.position_of(v(a)) < state.position_of(v(b)) { v(a) } else { v(b) };
                    blacks.push(earlier);
                }
            }
            reorder(&graph, &mut state, &mut blacks, &mut scratch, |_, _| {});
            assert_eq!(
                state.logical_order(),
                peel(&graph).order,
                "trial {trial}: batch reorder diverged"
            );
            state.validate_greedy(&graph, 1e-9);
        }
    }
}
