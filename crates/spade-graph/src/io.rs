//! Plain-text edge-list I/O and vertex-label interning.
//!
//! Formats supported per line (whitespace-separated, `#` comments):
//!
//! * `src dst` — unit weight;
//! * `src dst weight`;
//! * `src dst weight timestamp` — timestamp is returned alongside (used by
//!   the update-stream replayer).
//!
//! Vertex tokens may be arbitrary strings; the [`Interner`] maps them to
//! dense [`VertexId`]s in first-seen order so datasets with sparse numeric
//! or textual ids load into flat-array form.

use crate::error::GraphError;
use crate::graph::DynamicGraph;
use crate::hash::FxHashMap;
use crate::id::VertexId;
use crate::Result;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Maps external string labels to dense vertex ids in first-seen order.
#[derive(Debug, Default, Clone)]
pub struct Interner {
    map: FxHashMap<String, VertexId>,
    labels: Vec<String>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the id for `label`, allocating the next dense id on first
    /// sight.
    pub fn intern(&mut self, label: &str) -> VertexId {
        if let Some(&id) = self.map.get(label) {
            return id;
        }
        let id = VertexId::from_index(self.labels.len());
        self.labels.push(label.to_owned());
        self.map.insert(label.to_owned(), id);
        id
    }

    /// Looks up an already-interned label.
    pub fn get(&self, label: &str) -> Option<VertexId> {
        self.map.get(label).copied()
    }

    /// The label of `id`, if allocated.
    pub fn label(&self, id: VertexId) -> Option<&str> {
        self.labels.get(id.index()).map(String::as_str)
    }

    /// Number of interned labels.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `true` if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }
}

/// One parsed edge record.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EdgeRecord {
    /// Source vertex.
    pub src: VertexId,
    /// Destination vertex.
    pub dst: VertexId,
    /// Edge weight (1.0 when the line omits it).
    pub weight: f64,
    /// Timestamp in stream time units (0 when the line omits it).
    pub timestamp: u64,
}

/// Parses an edge list from any reader. Returns the records and the
/// interner used for label resolution.
pub fn read_edge_list<R: Read>(reader: R) -> Result<(Vec<EdgeRecord>, Interner)> {
    let mut interner = Interner::new();
    let mut records = Vec::new();
    let mut line = String::new();
    let mut reader = BufReader::new(reader);
    let mut lineno = 0usize;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        lineno += 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let src_tok = it.next().ok_or_else(|| GraphError::Parse {
            line: lineno,
            message: "missing source vertex".into(),
        })?;
        let dst_tok = it.next().ok_or_else(|| GraphError::Parse {
            line: lineno,
            message: "missing destination vertex".into(),
        })?;
        let weight = match it.next() {
            None => 1.0,
            Some(tok) => tok.parse::<f64>().map_err(|_| GraphError::Parse {
                line: lineno,
                message: format!("bad weight {tok:?}"),
            })?,
        };
        let timestamp = match it.next() {
            None => 0,
            Some(tok) => tok.parse::<u64>().map_err(|_| GraphError::Parse {
                line: lineno,
                message: format!("bad timestamp {tok:?}"),
            })?,
        };
        records.push(EdgeRecord {
            src: interner.intern(src_tok),
            dst: interner.intern(dst_tok),
            weight,
            timestamp,
        });
    }
    Ok((records, interner))
}

/// Loads an edge list from `path` into a fresh [`DynamicGraph`]
/// (zero vertex weights; self-loops and non-positive weights are skipped
/// with a count of rejects returned).
pub fn load_graph<P: AsRef<Path>>(path: P) -> Result<(DynamicGraph, Interner, usize)> {
    let file = std::fs::File::open(path)?;
    let (records, interner) = read_edge_list(file)?;
    let mut g = DynamicGraph::with_capacity(interner.len());
    for _ in 0..interner.len() {
        g.add_vertex(0.0)?;
    }
    let mut rejected = 0usize;
    for r in &records {
        if g.insert_edge(r.src, r.dst, r.weight).is_err() {
            rejected += 1;
        }
    }
    Ok((g, interner, rejected))
}

/// Writes `g` as a `src dst weight` edge list.
pub fn save_graph<W: Write>(g: &DynamicGraph, writer: W) -> Result<()> {
    let mut w = BufWriter::new(writer);
    for (src, dst, weight) in g.iter_edges() {
        writeln!(w, "{src} {dst} {weight}")?;
    }
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interner_dense_first_seen_order() {
        let mut i = Interner::new();
        assert_eq!(i.intern("alice"), VertexId(0));
        assert_eq!(i.intern("bob"), VertexId(1));
        assert_eq!(i.intern("alice"), VertexId(0));
        assert_eq!(i.label(VertexId(1)), Some("bob"));
        assert_eq!(i.get("carol"), None);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn parses_all_line_shapes() {
        let input = "\
# a comment
u1 m1
u1 m2 2.5
u2 m1 0.5 17

% another comment style
";
        let (records, interner) = read_edge_list(input.as_bytes()).unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].weight, 1.0);
        assert_eq!(records[1].weight, 2.5);
        assert_eq!(records[2].timestamp, 17);
        assert_eq!(interner.len(), 4); // u1, m1, m2, u2
    }

    #[test]
    fn reports_parse_errors_with_line_numbers() {
        let input = "a b\na b bogus\n";
        let err = read_edge_list(input.as_bytes()).unwrap_err();
        match err {
            GraphError::Parse { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("bogus"));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn save_load_roundtrip() {
        let mut g = DynamicGraph::new();
        for _ in 0..3 {
            g.add_vertex(0.0).unwrap();
        }
        g.insert_edge(VertexId(0), VertexId(1), 1.5).unwrap();
        g.insert_edge(VertexId(1), VertexId(2), 2.5).unwrap();

        let mut buf = Vec::new();
        save_graph(&g, &mut buf).unwrap();
        let (records, _) = read_edge_list(buf.as_slice()).unwrap();
        assert_eq!(records.len(), 2);
        let total: f64 = records.iter().map(|r| r.weight).sum();
        assert!((total - 4.0).abs() < 1e-12);
    }

    #[test]
    fn load_graph_skips_invalid_lines_gracefully() {
        let dir = std::env::temp_dir().join("spade_graph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("edges.txt");
        std::fs::write(&path, "a b 1.0\na a 1.0\nb c 2.0\n").unwrap();
        let (g, interner, rejected) = load_graph(&path).unwrap();
        assert_eq!(rejected, 1); // the self-loop
        assert_eq!(g.num_edges(), 2);
        assert_eq!(interner.len(), 3);
    }
}
