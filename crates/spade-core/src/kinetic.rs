//! Kinetic density index: exact argmax-density maintenance in polylog time.
//!
//! After every update, Spade must know the densest suffix of the peeling
//! sequence — `max_r prefix_sum(r) / r` over the rank-space weights (see
//! [`crate::state`]). The paper leaves the maintenance strategy implicit;
//! a full rescan is `O(n)` per update, which would dwarf the microsecond
//! reorder costs it reports. This module exploits the *shape* of the
//! updates:
//!
//! * a reorder rewrites a contiguous window of rank-space weights;
//! * every suffix value `y_r = prefix_sum(r)` **after** the window shifts
//!   by one constant (the change in the window's total weight);
//! * suffix values **before** the window are untouched;
//! * a head insertion appends one slot.
//!
//! So the index is a segment tree over suffix slots storing
//! `y_r = f(S_{n-r})` with (a) ranged **uniform shifts** and (b) ranged
//! **rewrites**. The maximum of `y_r / r` under uniform shifts is
//! maintained kinetically: each internal node remembers its winning slot
//! and how much shift it can absorb before *any* ordering decision in its
//! subtree could flip (`(y_a + t)/a - (y_b + t)/b` is linear in `t`, so
//! each decision has a single crossing). Shifts within the slack are O(1)
//! lazy updates; shifts beyond it rebuild only the affected certificates —
//! the classic kinetic-tournament amortization.
//!
//! Ties prefer the larger community (larger `r`), matching the static peel.

use crate::state::Detection;

const NO_SLOT: u32 = u32::MAX;

/// Segment-tree node payload.
#[derive(Clone, Copy, Debug)]
struct Node {
    /// Best suffix value in the subtree (absolute, including this node's
    /// own pending `lazy` but not the ancestors').
    y: f64,
    /// Winning slot index (0-based; community size `r = slot + 1`), or
    /// `NO_SLOT` for an empty subtree.
    slot: u32,
    /// Pending uniform shift not yet pushed to children.
    lazy: f64,
    /// How much more positive shift every decision below can absorb.
    slack_pos: f64,
    /// How much more negative shift every decision below can absorb.
    slack_neg: f64,
}

impl Node {
    const EMPTY: Node = Node {
        y: 0.0,
        slot: NO_SLOT,
        lazy: 0.0,
        slack_pos: f64::INFINITY,
        slack_neg: f64::INFINITY,
    };

    #[inline(always)]
    fn density(&self) -> f64 {
        self.y / (self.slot + 1) as f64
    }
}

/// The kinetic suffix-density index.
#[derive(Clone, Debug)]
pub struct KineticIndex {
    /// Power-of-two leaf capacity.
    cap: usize,
    /// Number of live slots.
    len: usize,
    /// 1-indexed implicit tree; `nodes[cap + i]` is leaf `i`.
    nodes: Vec<Node>,
}

impl Default for KineticIndex {
    fn default() -> Self {
        Self::new()
    }
}

impl KineticIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        KineticIndex { cap: 1, len: 0, nodes: vec![Node::EMPTY; 2] }
    }

    /// Builds the index from rank-space peeling weights (`deltas[i]` is
    /// the weight of the rank-`i+1` vertex).
    pub fn from_deltas(deltas: &[f64]) -> Self {
        let mut idx = KineticIndex::new();
        idx.reset(deltas);
        idx
    }

    /// Rebuilds in place from a fresh weight array.
    pub fn reset(&mut self, deltas: &[f64]) {
        let cap = deltas.len().next_power_of_two().max(1);
        self.cap = cap;
        self.len = deltas.len();
        self.nodes.clear();
        self.nodes.resize(2 * cap, Node::EMPTY);
        let mut sum = 0.0;
        for (i, &d) in deltas.iter().enumerate() {
            sum += d;
            self.nodes[cap + i] = Node { y: sum, slot: i as u32, ..Node::EMPTY };
        }
        for node in (1..cap).rev() {
            self.pull_up(node);
        }
    }

    /// Number of live slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no slots are tracked.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The current densest suffix; [`Detection::EMPTY`] when every
    /// candidate density is zero or negative (nothing suspicious at all),
    /// matching `PeelingState::scan_detect`.
    pub fn best(&self) -> Detection {
        let root = self.nodes[1];
        if root.slot == NO_SLOT || root.density() <= 0.0 {
            return Detection::EMPTY;
        }
        Detection { size: root.slot as usize + 1, density: root.density() }
    }

    /// Appends one slot whose delta is `delta` (a head-of-sequence vertex
    /// insertion). Amortized `O(log n)`.
    pub fn append(&mut self, delta: f64) {
        if self.len == self.cap {
            self.grow();
        }
        let prev = if self.len == 0 { 0.0 } else { self.leaf_value(self.len - 1) };
        let i = self.len;
        self.len += 1;
        self.set_leaves(i, &[prev + delta]);
    }

    /// Replaces the deltas of slots `[lo, lo + new_deltas.len())` and
    /// shifts every later suffix value by the change in window total.
    /// `O(window + log n)` plus amortized certificate repair.
    pub fn rewrite_deltas(&mut self, lo: usize, new_deltas: &[f64]) {
        let hi = lo + new_deltas.len();
        assert!(hi <= self.len, "rewrite window out of range");
        if new_deltas.is_empty() {
            return;
        }
        let base = if lo == 0 { 0.0 } else { self.leaf_value(lo - 1) };
        let old_end = self.leaf_value(hi - 1);
        let mut ys = Vec::with_capacity(new_deltas.len());
        let mut sum = base;
        for &d in new_deltas {
            sum += d;
            ys.push(sum);
        }
        self.set_leaves(lo, &ys);
        let shift = sum - old_end;
        if hi < self.len && shift != 0.0 {
            self.add_range(hi, self.len, shift);
        }
    }

    /// Uniformly shifts the suffix values of slots `[lo, hi)`.
    pub fn add_range(&mut self, lo: usize, hi: usize, t: f64) {
        assert!(hi <= self.len);
        if lo >= hi || t == 0.0 {
            return;
        }
        self.add_rec(1, 0, self.cap, lo, hi, t);
    }

    /// The absolute suffix value of slot `i` (`f` of the size-`i+1`
    /// community). `O(log n)`.
    pub fn leaf_value(&self, i: usize) -> f64 {
        debug_assert!(i < self.len);
        let mut node = 1usize;
        let (mut lo, mut hi) = (0usize, self.cap);
        let mut acc = 0.0;
        while node < self.cap {
            acc += self.nodes[node].lazy;
            let mid = (lo + hi) / 2;
            if i < mid {
                node *= 2;
                hi = mid;
            } else {
                node = 2 * node + 1;
                lo = mid;
            }
        }
        acc + self.nodes[node].y
    }

    // ---- internal machinery -------------------------------------------

    fn grow(&mut self) {
        let mut values = Vec::with_capacity(self.len);
        self.flatten(1, 0.0, &mut values);
        let cap = (self.cap * 2).max(1);
        let len = self.len;
        self.cap = cap;
        self.nodes.clear();
        self.nodes.resize(2 * cap, Node::EMPTY);
        for (i, &y) in values.iter().enumerate() {
            self.nodes[cap + i] = Node { y, slot: i as u32, ..Node::EMPTY };
        }
        self.len = len;
        for node in (1..cap).rev() {
            self.pull_up(node);
        }
    }

    /// Collects absolute leaf values in slot order.
    fn flatten(&self, node: usize, acc: f64, out: &mut Vec<f64>) {
        if self.nodes[node].slot == NO_SLOT && node < self.cap {
            // Entire subtree empty — but earlier slots always fill first,
            // so emptiness means no live leaves below.
            return;
        }
        if node >= self.cap {
            if node - self.cap < self.len {
                out.push(acc + self.nodes[node].y);
            }
            return;
        }
        let acc = acc + self.nodes[node].lazy;
        self.flatten(2 * node, acc, out);
        self.flatten(2 * node + 1, acc, out);
    }

    /// Applies a uniform shift to an entire subtree, cascading only where
    /// certificates break.
    fn shift_subtree(&mut self, node: usize, t: f64) {
        let n = &mut self.nodes[node];
        if n.slot == NO_SLOT {
            return;
        }
        if node >= self.cap {
            n.y += t;
            return;
        }
        // Strict comparisons: a shift landing exactly ON a crossing makes
        // two candidates' densities tie, and ties must flip to the larger
        // community — so a boundary hit recombines instead of absorbing
        // the shift lazily.
        if t < n.slack_pos && -t < n.slack_neg {
            n.y += t;
            n.lazy += t;
            n.slack_pos -= t;
            n.slack_neg += t;
            return;
        }
        self.push_down(node);
        self.shift_subtree(2 * node, t);
        self.shift_subtree(2 * node + 1, t);
        self.pull_up(node);
    }

    fn add_rec(&mut self, node: usize, nlo: usize, nhi: usize, lo: usize, hi: usize, t: f64) {
        if hi <= nlo || nhi <= lo {
            return;
        }
        if lo <= nlo && nhi <= hi {
            self.shift_subtree(node, t);
            return;
        }
        self.push_down(node);
        let mid = (nlo + nhi) / 2;
        self.add_rec(2 * node, nlo, mid, lo, hi, t);
        self.add_rec(2 * node + 1, mid, nhi, lo, hi, t);
        self.pull_up(node);
    }

    /// Overwrites leaves `[lo, lo + ys.len())` with absolute values.
    fn set_leaves(&mut self, lo: usize, ys: &[f64]) {
        self.set_rec(1, 0, self.cap, lo, lo + ys.len(), ys);
    }

    fn set_rec(&mut self, node: usize, nlo: usize, nhi: usize, lo: usize, hi: usize, ys: &[f64]) {
        if hi <= nlo || nhi <= lo {
            return;
        }
        if node >= self.cap {
            self.nodes[node] = Node { y: ys[nlo - lo], slot: nlo as u32, ..Node::EMPTY };
            return;
        }
        self.push_down(node);
        let mid = (nlo + nhi) / 2;
        self.set_rec(2 * node, nlo, mid, lo, hi, ys);
        self.set_rec(2 * node + 1, mid, nhi, lo, hi, ys);
        self.pull_up(node);
    }

    #[inline]
    fn push_down(&mut self, node: usize) {
        let lazy = self.nodes[node].lazy;
        if lazy != 0.0 {
            self.nodes[node].lazy = 0.0;
            self.shift_subtree(2 * node, lazy);
            self.shift_subtree(2 * node + 1, lazy);
        }
    }

    /// Recomputes a node's winner and slack from its children. Assumes the
    /// node's own lazy is clear (children values are absolute relative to
    /// ancestors).
    fn pull_up(&mut self, node: usize) {
        let l = self.nodes[2 * node];
        let r = self.nodes[2 * node + 1];
        let merged = match (l.slot, r.slot) {
            (NO_SLOT, NO_SLOT) => Node::EMPTY,
            (_, NO_SLOT) => Node { lazy: 0.0, ..l },
            (NO_SLOT, _) => Node { lazy: 0.0, ..r },
            _ => {
                let (ra, rb) = ((l.slot + 1) as f64, (r.slot + 1) as f64);
                let da = l.y / ra;
                let db = r.y / rb;
                // Winner: higher density; ties -> larger community (right
                // child holds larger slots).
                let right_wins = db >= da;
                let winner = if right_wins { r } else { l };
                // Crossing point of (l.y + t)/ra = (r.y + t)/rb:
                //   t* = (ra * r.y - rb * l.y) / (rb - ra),  rb > ra always
                // (right child's slots exceed left child's).
                let t_star = (ra * r.y - rb * l.y) / (rb - ra);
                let (mut cross_pos, mut cross_neg) = (f64::INFINITY, f64::INFINITY);
                if right_wins {
                    // Larger-r winner loses ground as t grows.
                    cross_pos = (t_star).max(0.0);
                } else {
                    // Smaller-r winner loses ground as t shrinks.
                    cross_neg = (-t_star).max(0.0);
                }
                Node {
                    y: winner.y,
                    slot: winner.slot,
                    lazy: 0.0,
                    slack_pos: l.slack_pos.min(r.slack_pos).min(cross_pos),
                    slack_neg: l.slack_neg.min(r.slack_neg).min(cross_neg),
                }
            }
        };
        self.nodes[node] = merged;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Scan oracle over a delta array (positive densities only, like
    /// `scan_detect`).
    fn oracle(deltas: &[f64]) -> Detection {
        let mut best = Detection::EMPTY;
        let mut sum = 0.0;
        for (i, &d) in deltas.iter().enumerate() {
            sum += d;
            let density = sum / (i + 1) as f64;
            if density > 0.0 && density >= best.density {
                best = Detection { size: i + 1, density };
            }
        }
        best
    }

    fn assert_agrees(idx: &KineticIndex, deltas: &[f64]) {
        let want = oracle(deltas);
        let got = idx.best();
        assert!(
            (got.density - want.density).abs() < 1e-9,
            "density: kinetic {} vs oracle {}",
            got.density,
            want.density
        );
        assert_eq!(got.size, want.size, "size mismatch (kinetic {got:?}, oracle {want:?})");
    }

    #[test]
    fn empty_index() {
        let idx = KineticIndex::new();
        assert_eq!(idx.best(), Detection::EMPTY);
        assert!(idx.is_empty());
    }

    #[test]
    fn from_deltas_matches_oracle() {
        let deltas = [1.0, 3.0, 0.0, 2.0, 10.0, 1.0];
        let idx = KineticIndex::from_deltas(&deltas);
        assert_agrees(&idx, &deltas);
        assert_eq!(idx.len(), 6);
    }

    #[test]
    fn leaf_values_are_prefix_sums() {
        let deltas = [1.0, 3.0, 0.5, 2.0];
        let idx = KineticIndex::from_deltas(&deltas);
        let mut sum = 0.0;
        for (i, &d) in deltas.iter().enumerate() {
            sum += d;
            assert!((idx.leaf_value(i) - sum).abs() < 1e-12);
        }
    }

    #[test]
    fn append_grows_past_capacity() {
        let mut idx = KineticIndex::new();
        let mut deltas = Vec::new();
        for i in 0..40 {
            let d = ((i * 7) % 11) as f64;
            idx.append(d);
            deltas.push(d);
            assert_agrees(&idx, &deltas);
        }
    }

    #[test]
    fn rewrite_shifts_the_tail() {
        let mut deltas = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let mut idx = KineticIndex::from_deltas(&deltas);
        // Rewrite slots 2..5 with a larger total: the tail must shift.
        let new = [9.0, 9.0, 9.0];
        idx.rewrite_deltas(2, &new);
        deltas[2..5].copy_from_slice(&new);
        assert_agrees(&idx, &deltas);
        let mut sum = 0.0;
        for (i, &d) in deltas.iter().enumerate() {
            sum += d;
            assert!((idx.leaf_value(i) - sum).abs() < 1e-9, "leaf {i}");
        }
    }

    #[test]
    fn rewrite_with_negative_shift() {
        let mut deltas = vec![5.0, 5.0, 5.0, 5.0, 1.0, 1.0];
        let mut idx = KineticIndex::from_deltas(&deltas);
        let new = [0.5, 0.5];
        idx.rewrite_deltas(0, &new);
        deltas[0..2].copy_from_slice(&new);
        assert_agrees(&idx, &deltas);
    }

    #[test]
    fn ties_prefer_larger_community() {
        // deltas [0,1,0,1]: densities 0, .5, 1/3, .5 — tie between r=2,4.
        let idx = KineticIndex::from_deltas(&[0.0, 1.0, 0.0, 1.0]);
        assert_eq!(idx.best().size, 4);
    }

    #[test]
    fn randomized_ops_match_oracle() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(99);
        for _trial in 0..30 {
            let mut deltas: Vec<f64> = Vec::new();
            let mut idx = KineticIndex::new();
            for _ in 0..rng.gen_range(5..60) {
                match rng.gen_range(0..3) {
                    0 => {
                        let d = rng.gen_range(0..20) as f64;
                        idx.append(d);
                        deltas.push(d);
                    }
                    1 if !deltas.is_empty() => {
                        let lo = rng.gen_range(0..deltas.len());
                        let len = rng.gen_range(1..=(deltas.len() - lo).min(6));
                        let new: Vec<f64> = (0..len).map(|_| rng.gen_range(0..20) as f64).collect();
                        idx.rewrite_deltas(lo, &new);
                        deltas[lo..lo + len].copy_from_slice(&new);
                    }
                    _ => {
                        if deltas.is_empty() {
                            continue;
                        }
                    }
                }
                assert_agrees(&idx, &deltas);
            }
        }
    }

    #[test]
    fn large_scale_stress_against_oracle() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0x57E55);
        let n = 4096usize;
        let mut deltas: Vec<f64> = (0..n).map(|_| rng.gen_range(0..100) as f64).collect();
        let mut idx = KineticIndex::from_deltas(&deltas);
        for round in 0..200 {
            let lo = rng.gen_range(0..n);
            let len = rng.gen_range(1..=(n - lo).min(64));
            let vals: Vec<f64> = (0..len).map(|_| rng.gen_range(0..100) as f64).collect();
            idx.rewrite_deltas(lo, &vals);
            deltas[lo..lo + len].copy_from_slice(&vals);
            if round % 10 == 0 {
                assert_agrees(&idx, &deltas);
            }
        }
        assert_agrees(&idx, &deltas);
    }

    #[test]
    fn heavy_shift_cascade_is_correct() {
        // Repeated small rewrites at the front force many tail shifts
        // through the kinetic certificates.
        let n = 128;
        let mut deltas: Vec<f64> = (0..n).map(|i| (i % 5) as f64).collect();
        let mut idx = KineticIndex::from_deltas(&deltas);
        for round in 0..50 {
            let d = (round % 7) as f64;
            idx.rewrite_deltas(round % 4, &[d]);
            deltas[round % 4] = d;
            assert_agrees(&idx, &deltas);
        }
    }
}
