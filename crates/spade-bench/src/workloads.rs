//! Workload construction shared by the harness binaries.

use spade_gen::datasets::{Dataset, DatasetSpec};

/// Reads the dataset scale from `SPADE_SCALE` (default 0.01); `SPADE_QUICK`
/// overrides to a tiny smoke scale.
pub fn env_scale() -> f64 {
    if std::env::var("SPADE_QUICK").is_ok_and(|v| v != "0") {
        return 0.001;
    }
    std::env::var("SPADE_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|s| *s > 0.0 && *s <= 1.0)
        .unwrap_or(0.01)
}

/// Deterministic per-dataset seed.
fn seed_for(name: &str) -> u64 {
    name.bytes().fold(0x5AD3u64, |acc, b| acc.wrapping_mul(131).wrapping_add(b as u64))
}

/// All seven Table 3 datasets at the environment scale.
pub fn table3_datasets() -> Vec<Dataset> {
    let scale = env_scale();
    DatasetSpec::table3()
        .into_iter()
        .map(|spec| spec.generate(scale, seed_for(spec.name)))
        .collect()
}

/// The four Grab surrogates only (scalability experiments).
pub fn grab_datasets() -> Vec<Dataset> {
    table3_datasets().into_iter().filter(|d| d.name.starts_with("Grab")).collect()
}

/// The three open-dataset surrogates only.
pub fn open_datasets() -> Vec<Dataset> {
    table3_datasets().into_iter().filter(|d| !d.name.starts_with("Grab")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parses_with_default() {
        // Not setting the env var in tests: default must hold.
        let s = env_scale();
        assert!(s > 0.0 && s <= 1.0);
    }

    #[test]
    fn seeds_differ_across_datasets() {
        assert_ne!(seed_for("Grab1"), seed_for("Grab2"));
    }
}
