//! Grab-like transaction stream generator.
//!
//! Models the paper's industrial workloads: a bipartite marketplace where
//! customers pay merchants. Merchant popularity and customer activity are
//! Zipf-distributed (heavy-tailed, Fig. 9b), transaction amounts are
//! log-normal-ish, and timestamps advance with uniform-random
//! inter-arrival times so replay order equals timestamp order (the paper
//! replays edges "in the increasing order of their timestamp").
//!
//! Vertex-id layout: customers take ids `[0, customers)`, merchants
//! `[customers, customers + merchants)`. Fraud injection allocates fresh
//! ids beyond that range.

use crate::powerlaw::ZipfSampler;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use spade_core::stream::StreamEdge;
use spade_graph::VertexId;

/// Configuration of a synthetic transaction stream.
#[derive(Clone, Debug)]
pub struct TransactionStreamConfig {
    /// Number of customer vertices.
    pub customers: usize,
    /// Number of merchant vertices.
    pub merchants: usize,
    /// Number of transactions to generate.
    pub transactions: usize,
    /// Zipf exponent of customer activity.
    pub customer_exponent: f64,
    /// Zipf exponent of merchant popularity.
    pub merchant_exponent: f64,
    /// Mean transaction amount (raw attribute fed to `ESusp`).
    pub mean_amount: f64,
    /// Total simulated duration in stream time units (microseconds).
    pub duration: u64,
    /// RNG seed — every run with the same config is identical.
    pub seed: u64,
}

impl Default for TransactionStreamConfig {
    fn default() -> Self {
        TransactionStreamConfig {
            customers: 6_000,
            merchants: 2_000,
            transactions: 40_000,
            // Rank exponents ~0.75/0.85 correspond to degree-distribution
            // exponents alpha ~2.2-2.3 — the regime of real marketplaces.
            // Exponents above 1 would hand the single top account an
            // implausible double-digit share of all transactions.
            customer_exponent: 0.75,
            merchant_exponent: 0.85,
            mean_amount: 20.0,
            duration: 40_000_000,
            seed: 0xC0FFEE,
        }
    }
}

/// A generated stream plus its id-space bookkeeping.
#[derive(Clone, Debug)]
pub struct TransactionStream {
    /// The transactions, sorted by timestamp.
    pub edges: Vec<StreamEdge>,
    /// Customers occupy `[0, customers)`.
    pub customers: usize,
    /// Merchants occupy `[customers, customers + merchants)`.
    pub merchants: usize,
    /// First id free for fraud-account allocation.
    pub next_free_id: u32,
}

impl TransactionStream {
    /// Generates a stream from `config`.
    pub fn generate(config: &TransactionStreamConfig) -> Self {
        assert!(config.customers > 0 && config.merchants > 0);
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let customer_z = ZipfSampler::new(config.customers, config.customer_exponent);
        let merchant_z = ZipfSampler::new(config.merchants, config.merchant_exponent);
        let mut edges = Vec::with_capacity(config.transactions);
        let step = (config.duration / config.transactions.max(1) as u64).max(1);
        let mut now = 0u64;
        for _ in 0..config.transactions {
            now += rng.gen_range(1..=2 * step);
            let c = customer_z.sample(&mut rng) as u32;
            let m = (config.customers + merchant_z.sample(&mut rng)) as u32;
            // Log-normal-ish amounts: exp of a centered uniform mixture is
            // a cheap heavy-tail that avoids pathological outliers.
            let amount = config.mean_amount * (rng.gen::<f64>() + rng.gen::<f64>() + 0.1);
            edges.push(StreamEdge::organic(VertexId(c), VertexId(m), amount, now));
        }
        TransactionStream {
            edges,
            customers: config.customers,
            merchants: config.merchants,
            next_free_id: (config.customers + config.merchants) as u32,
        }
    }

    /// Splits the stream into the paper's protocol: the first
    /// `initial_fraction` of transactions build the initial graph, the
    /// rest replay as increments.
    pub fn split(&self, initial_fraction: f64) -> (&[StreamEdge], &[StreamEdge]) {
        let cut = ((self.edges.len() as f64) * initial_fraction).round() as usize;
        let cut = cut.min(self.edges.len());
        (&self.edges[..cut], &self.edges[cut..])
    }

    /// Total number of distinct vertex ids referenced (upper bound used
    /// for preallocation).
    pub fn id_space(&self) -> usize {
        self.next_free_id as usize
    }
}

/// Chunks increments into fixed-size batches, preserving timestamp order —
/// the `|ΔE| = x` replay mode of Table 4.
pub fn batches(
    increments: &[StreamEdge],
    batch_size: usize,
) -> impl Iterator<Item = &[StreamEdge]> {
    assert!(batch_size > 0, "batch size must be positive");
    increments.chunks(batch_size)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spade_graph::stats::DegreeDistribution;
    use spade_graph::DynamicGraph;

    fn small_config() -> TransactionStreamConfig {
        TransactionStreamConfig {
            customers: 400,
            merchants: 100,
            transactions: 4_000,
            seed: 7,
            ..Default::default()
        }
    }

    #[test]
    fn generates_requested_count_sorted_by_time() {
        let s = TransactionStream::generate(&small_config());
        assert_eq!(s.edges.len(), 4_000);
        assert!(s.edges.windows(2).all(|w| w[0].timestamp <= w[1].timestamp));
    }

    #[test]
    fn endpoints_respect_bipartite_layout() {
        let s = TransactionStream::generate(&small_config());
        for e in &s.edges {
            assert!((e.src.0 as usize) < s.customers, "src must be a customer");
            let m = e.dst.0 as usize;
            assert!(m >= s.customers && m < s.customers + s.merchants, "dst must be a merchant");
            assert!(e.raw > 0.0);
            assert!(e.label.is_none());
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = TransactionStream::generate(&small_config());
        let b = TransactionStream::generate(&small_config());
        assert_eq!(a.edges, b.edges);
        let mut other = small_config();
        other.seed = 8;
        let c = TransactionStream::generate(&other);
        assert_ne!(a.edges, c.edges);
    }

    #[test]
    fn split_respects_fraction() {
        let s = TransactionStream::generate(&small_config());
        let (init, inc) = s.split(0.9);
        assert_eq!(init.len(), 3600);
        assert_eq!(inc.len(), 400);
    }

    #[test]
    fn batches_cover_all_increments() {
        let s = TransactionStream::generate(&small_config());
        let (_, inc) = s.split(0.9);
        let total: usize = batches(inc, 64).map(<[StreamEdge]>::len).sum();
        assert_eq!(total, inc.len());
    }

    #[test]
    fn degree_distribution_is_heavy_tailed() {
        let s = TransactionStream::generate(&TransactionStreamConfig {
            customers: 2_000,
            merchants: 600,
            transactions: 30_000,
            seed: 11,
            ..Default::default()
        });
        let mut g = DynamicGraph::new();
        g.ensure_vertex(VertexId((s.id_space() - 1) as u32));
        for e in &s.edges {
            let _ = g.insert_edge(e.src, e.dst, 1.0);
        }
        let dist = DegreeDistribution::of(&g);
        let alpha = dist.power_law_exponent().expect("fit must exist");
        assert!(alpha > 0.4, "expected heavy tail, alpha = {alpha}");
        // The busiest merchant must dwarf the median merchant.
        let max_d = dist.max_degree();
        assert!(max_d > 30, "max degree {max_d} too small for a heavy tail");
    }
}
