//! Lockdep-style lock-order auditing.
//!
//! Every `Mutex`/`RwLock` belongs to a **class** keyed by its creation
//! site (`#[track_caller]` on `new`), so per-request locks constructed at
//! one line collapse into a single graph node — the same collapsing the
//! Linux lockdep validator performs. Each thread keeps a stack of held
//! classes; acquiring class `B` while holding `A` inserts the order edge
//! `A → B` into a process-global graph. An edge whose insertion closes a
//! directed cycle is a *potential deadlock* — two code paths take the
//! same classes in opposite orders — and is captured as a
//! [`DeadlockReport`] with the creation-site labels along the cycle and
//! the acquisition site that closed it.
//!
//! The audit deliberately reports *potential* inversions: it does not
//! require the two paths to run concurrently, so a single-threaded test
//! that exercises both orders still flags the hazard.
//!
//! Self-edges (`A → A`) are not recorded: distinct instances of one
//! class may nest legitimately (e.g. two shard locks created at the same
//! line, taken in shard-index order), and lockdep-style class collapsing
//! cannot tell that apart from true recursion. Instance-level recursion
//! on a `std::sync` mutex deadlocks outright and needs no graph.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::panic::Location;
use std::sync::{Mutex, OnceLock};

/// Identifier of a lock class — one per distinct creation site.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Hash)]
pub struct ClassId(usize);

/// A lock-order inversion: following `chain`'s held-before edges leads
/// back to its first element, so two paths disagree on acquisition
/// order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeadlockReport {
    /// Creation-site labels along the cycle; the first label is repeated
    /// at the end to close the loop.
    pub chain: Vec<String>,
    /// Source location of the acquisition that closed the cycle.
    pub acquired_at: String,
}

impl fmt::Display for DeadlockReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "lock-order cycle: {} (closed by acquisition at {})",
            self.chain.join(" -> "),
            self.acquired_at
        )
    }
}

#[derive(Default)]
struct State {
    /// Creation site → class index. Column included so two locks built
    /// on one line stay distinct classes.
    class_by_site: BTreeMap<(&'static str, u32, u32), usize>,
    /// Class index → `file:line` label.
    labels: Vec<String>,
    /// Held-before edges between class indices.
    edges: BTreeSet<(usize, usize)>,
    /// First acquisition site observed for each edge.
    edge_sites: BTreeMap<(usize, usize), String>,
    reports: Vec<DeadlockReport>,
}

fn state() -> &'static Mutex<State> {
    static STATE: OnceLock<Mutex<State>> = OnceLock::new();
    STATE.get_or_init(|| Mutex::new(State::default()))
}

thread_local! {
    /// Classes this thread currently holds, in acquisition order.
    static HELD: RefCell<Vec<usize>> = const { RefCell::new(Vec::new()) };
}

/// Interns the creation site as a lock class.
pub fn register_class(site: &'static Location<'static>) -> ClassId {
    let key = (site.file(), site.line(), site.column());
    let mut st = state().lock().expect("audit state poisoned");
    if let Some(&id) = st.class_by_site.get(&key) {
        return ClassId(id);
    }
    let id = st.labels.len();
    st.labels.push(format!("{}:{}", site.file(), site.line()));
    st.class_by_site.insert(key, id);
    ClassId(id)
}

/// Records held-before edges from every class this thread holds to
/// `class`, reporting any edge whose insertion closes a cycle. Call
/// immediately *before* blocking on the lock, so the hazard is captured
/// even if the acquisition then deadlocks for real.
pub fn before_acquire(class: ClassId, site: &'static Location<'static>) {
    HELD.with(|held| {
        let held = held.borrow();
        if held.is_empty() {
            return;
        }
        let mut st = state().lock().expect("audit state poisoned");
        for &h in held.iter() {
            if h == class.0 || !st.edges.insert((h, class.0)) {
                continue;
            }
            let at = format!("{}:{}", site.file(), site.line());
            st.edge_sites.insert((h, class.0), at.clone());
            // The new edge h → class closes a cycle iff the graph already
            // carried a path class → … → h.
            if let Some(path) = find_path(&st.edges, class.0, h) {
                let mut chain: Vec<String> = path.iter().map(|&n| st.labels[n].clone()).collect();
                chain.push(st.labels[class.0].clone());
                st.reports.push(DeadlockReport { chain, acquired_at: at });
            }
        }
    });
}

/// Pushes `class` onto this thread's held stack once the lock is owned.
pub fn after_acquire(class: ClassId) {
    HELD.with(|held| held.borrow_mut().push(class.0));
}

/// Pops the most recent hold of `class` from this thread's stack
/// (guards may be dropped out of acquisition order).
pub fn on_release(class: ClassId) {
    HELD.with(|held| {
        let mut held = held.borrow_mut();
        if let Some(pos) = held.iter().rposition(|&h| h == class.0) {
            held.remove(pos);
        }
    });
}

/// Depth-first search for a directed path `from → … → to`, returned as
/// the node list including both endpoints. Pure so cycle detection is
/// unit-testable without the global registry.
fn find_path(edges: &BTreeSet<(usize, usize)>, from: usize, to: usize) -> Option<Vec<usize>> {
    let mut stack = vec![from];
    let mut visited = BTreeSet::new();
    let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
    visited.insert(from);
    while let Some(node) = stack.pop() {
        if node == to {
            let mut path = vec![to];
            let mut cur = to;
            while cur != from {
                cur = parent[&cur];
                path.push(cur);
            }
            path.reverse();
            return Some(path);
        }
        for &(a, b) in edges.range((node, 0)..=(node, usize::MAX)) {
            debug_assert_eq!(a, node);
            if visited.insert(b) {
                parent.insert(b, node);
                stack.push(b);
            }
        }
    }
    None
}

/// Finds any directed cycle in `edges`, returned with its first node
/// repeated at the end. Pure; used by [`check_acyclic_excluding`] and
/// the unit tests.
pub fn find_cycle(edges: &BTreeSet<(usize, usize)>) -> Option<Vec<usize>> {
    let nodes: BTreeSet<usize> = edges.iter().flat_map(|&(a, b)| [a, b]).collect();
    for &start in &nodes {
        for &(a, b) in edges.range((start, 0)..=(start, usize::MAX)) {
            debug_assert_eq!(a, start);
            if b == start {
                return Some(vec![start, start]);
            }
            if let Some(mut path) = find_path(edges, b, start) {
                path.insert(0, start);
                return Some(path);
            }
        }
    }
    None
}

/// Snapshot of the order graph as `(held-class, then-class,
/// first-acquisition-site)` label triples.
pub fn order_edges() -> Vec<(String, String, String)> {
    let st = state().lock().expect("audit state poisoned");
    st.edges
        .iter()
        .map(|&(a, b)| {
            (
                st.labels[a].clone(),
                st.labels[b].clone(),
                st.edge_sites.get(&(a, b)).cloned().unwrap_or_default(),
            )
        })
        .collect()
}

/// Every inversion reported so far, in detection order.
pub fn reports() -> Vec<DeadlockReport> {
    state().lock().expect("audit state poisoned").reports.clone()
}

/// Verifies the order graph restricted to classes whose label does NOT
/// contain `exclude` is acyclic, returning the number of edges checked.
/// The exclusion lets a test suite seed a deliberate inversion (labelled
/// by its own file) without failing the global acyclicity assertion.
pub fn check_acyclic_excluding(exclude: &str) -> Result<usize, DeadlockReport> {
    let st = state().lock().expect("audit state poisoned");
    let keep: Vec<bool> = st.labels.iter().map(|l| !l.contains(exclude)).collect();
    let filtered: BTreeSet<(usize, usize)> =
        st.edges.iter().filter(|&&(a, b)| keep[a] && keep[b]).copied().collect();
    match find_cycle(&filtered) {
        None => Ok(filtered.len()),
        Some(path) => Err(DeadlockReport {
            chain: path.iter().map(|&n| st.labels[n].clone()).collect(),
            acquired_at: path
                .windows(2)
                .find_map(|w| st.edge_sites.get(&(w[0], w[1])).cloned())
                .unwrap_or_default(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edges(list: &[(usize, usize)]) -> BTreeSet<(usize, usize)> {
        list.iter().copied().collect()
    }

    #[test]
    fn path_search_follows_chains() {
        let g = edges(&[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(find_path(&g, 0, 3), Some(vec![0, 1, 2, 3]));
        assert_eq!(find_path(&g, 3, 0), None);
        assert_eq!(find_path(&g, 1, 1), Some(vec![1]));
    }

    #[test]
    fn acyclic_graph_has_no_cycle() {
        let g = edges(&[(0, 1), (0, 2), (1, 3), (2, 3)]);
        assert_eq!(find_cycle(&g), None);
    }

    #[test]
    fn two_node_inversion_is_a_cycle() {
        let g = edges(&[(0, 1), (1, 0)]);
        let cycle = find_cycle(&g).expect("inversion must be detected");
        assert_eq!(cycle.first(), cycle.last());
        assert_eq!(cycle.len(), 3);
    }

    #[test]
    fn longer_cycle_is_found_through_noise() {
        // 5 → 6 → 7 → 5 buried among acyclic edges.
        let g = edges(&[(0, 1), (1, 2), (5, 6), (6, 7), (7, 5), (2, 6)]);
        let cycle = find_cycle(&g).expect("3-cycle must be detected");
        assert_eq!(cycle.first(), cycle.last());
        let body: BTreeSet<usize> = cycle.iter().copied().collect();
        assert_eq!(body, [5, 6, 7].into_iter().collect());
    }

    #[test]
    fn self_edges_are_reported_by_find_cycle() {
        // before_acquire never inserts them, but the pure search must
        // still be sound if handed one.
        let g = edges(&[(4, 4)]);
        assert_eq!(find_cycle(&g), Some(vec![4, 4]));
    }

    #[test]
    fn live_inversion_is_reported_and_filterable() {
        // Seed a real inversion through the public hooks on this thread:
        // a → b on one "path", b → a on another.
        let here = Location::caller();
        let a = register_class(here);
        // Distinct call site ⇒ distinct class.
        let b = register_class(Location::caller());
        assert_ne!(a, b);

        after_acquire(a);
        before_acquire(b, Location::caller());
        after_acquire(b);
        on_release(b);
        on_release(a);

        after_acquire(b);
        before_acquire(a, Location::caller());
        after_acquire(a);
        on_release(a);
        on_release(b);

        let reports = reports();
        assert!(
            reports.iter().any(|r| r.chain.len() == 3
                && r.chain.first() == r.chain.last()
                && r.chain.iter().all(|l| l.contains("audit.rs"))),
            "inversion through audit.rs classes must be reported, got {reports:?}"
        );
        // The global check excluding this file's classes stays clean.
        check_acyclic_excluding("audit.rs").expect("non-test graph must stay acyclic");
    }
}
