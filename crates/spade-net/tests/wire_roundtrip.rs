//! Property tests of the wire codec: every frame kind roundtrips
//! bit-exactly through encode → (arbitrarily fragmented) decode, and the
//! decoder rejects truncated, oversized, and garbage input with an error
//! — never a panic — mirroring the overflow-safe section checks the
//! `SubgraphSnapshot` codec gets in `spade-core`.

use proptest::prelude::*;
use spade_core::SubgraphSnapshot;
use spade_graph::VertexId;
use spade_net::{
    AbsorbReply, BootstrapChunk, DetectionReply, FrameDecoder, MetricsReply, RegionReply,
    StatsReply, WireError, WireFrame, WireSlice,
};

fn v(i: u32) -> VertexId {
    VertexId(i)
}

/// An arbitrary migration slice body (shared by `Absorb` and
/// `SliceReply`), its `encoded` field carrying opaque snapshot bytes.
fn arb_slice() -> impl Strategy<Value = WireSlice> {
    (
        (0u64..1 << 30, 0u64..1 << 30, 0.0f64..1e9, 0u64..u64::MAX),
        collection::vec(0u8..=255u8, 0..400),
    )
        .prop_map(|((vertices, edges, edge_weight, updates_applied), encoded)| WireSlice {
            vertices,
            edges,
            edge_weight,
            updates_applied,
            encoded,
        })
}

/// One arbitrary frame of any kind, request or reply.
fn arb_frame() -> impl Strategy<Value = WireFrame> {
    let edge = (0u32..u32::MAX, 0u32..u32::MAX, 0.0f64..1e9)
        .prop_map(|(s, d, raw)| WireFrame::Edge { src: v(s), dst: v(d), raw });
    let batch =
        collection::vec((0u32..100_000, 0u32..100_000, 0.0f64..1e6), 0..64).prop_map(|edges| {
            WireFrame::Batch { edges: edges.into_iter().map(|(s, d, w)| (v(s), v(d), w)).collect() }
        });
    let batch_budget =
        (0u32..u32::MAX, collection::vec((0u32..100_000, 0u32..100_000, 0.0f64..1e6), 0..64))
            .prop_map(|(budget_us, edges)| WireFrame::BatchBudget {
                budget_us,
                edges: edges.into_iter().map(|(s, d, w)| (v(s), v(d), w)).collect(),
            });
    let detection = (0u64..1_000_000, 0.0f64..1e9, 0u64..u64::MAX)
        .prop_map(|(size, density, updates)| (size, density, updates));
    let detection = (detection, collection::vec(0u32..u32::MAX, 0..128)).prop_map(
        |((size, density, updates_applied), members)| {
            WireFrame::Detection(DetectionReply {
                size,
                density,
                updates_applied,
                members: members.into_iter().map(v).collect(),
            })
        },
    );
    let stats = (
        (0u64..100, 0u64..1 << 40, 0u64..1 << 20, 0u64..1 << 20),
        (0u64..1 << 40, 0u64..1 << 40, 0u64..1 << 30, 0u64..1 << 30),
        (0.0f64..1e7, collection::vec(0u64..1 << 20, 0..32)),
    )
        .prop_map(
            |(
                (shards, updates_applied, queue_depth, connections),
                (frames, edges_accepted, busy_replies, malformed_frames),
                (uptime_secs, shard_queue_depths),
            )| {
                WireFrame::StatsReply(StatsReply {
                    shards,
                    updates_applied,
                    queue_depth,
                    connections,
                    frames,
                    edges_accepted,
                    busy_replies,
                    malformed_frames,
                    uptime_secs,
                    shard_queue_depths,
                })
            },
        );
    let metrics_reply =
        (0u32..16, collection::vec(32u8..127, 0..400)).prop_map(|(version, raw)| {
            WireFrame::MetricsReply(MetricsReply {
                version,
                exposition: String::from_utf8(raw).expect("printable ASCII"),
            })
        });
    // Protocol-v3 shard-server operations and their replies.
    let migrate_out = collection::vec(0u32..u32::MAX, 0..256).prop_map(|members| {
        WireFrame::MigrateOut { members: members.into_iter().map(v).collect() }
    });
    let replicate = (
        0u32..64,
        0u64..u64::MAX,
        collection::vec((0u32..100_000, 0u32..100_000, 0.0f64..1e6), 0..64),
    )
        .prop_map(|(owner, seq, edges)| WireFrame::Replicate {
            owner,
            seq,
            edges: edges.into_iter().map(|(s, d, w)| (v(s), v(d), w)).collect(),
        });
    let region_reply = (
        (0u64..1 << 30, 0.0f64..1e9, 0u64..u64::MAX, 0u64..u64::MAX),
        collection::vec(0u32..u32::MAX, 0..128),
        collection::vec(0u8..=255u8, 0..400),
    )
        .prop_map(|((size, density, updates_applied, epoch), members, encoded)| {
            WireFrame::RegionReply(RegionReply {
                size,
                density,
                updates_applied,
                epoch,
                members: members.into_iter().map(v).collect(),
                encoded,
            })
        });
    let absorb_reply = (0u64..1 << 30, 0u64..1 << 30, 0u64..1 << 30).prop_map(
        |(vertices_touched, edges_applied, rejected)| {
            WireFrame::AbsorbReply(AbsorbReply { vertices_touched, edges_applied, rejected })
        },
    );
    let bootstrap_chunk = (
        0u32..64,
        0u64..u64::MAX,
        (0u8..2).prop_map(|b| b == 1),
        collection::vec((0u32..100_000, 0u32..100_000, 0.0f64..1e6), 0..64),
    )
        .prop_map(|(owner, through, done, edges)| {
            WireFrame::BootstrapChunk(BootstrapChunk {
                owner,
                through,
                done,
                edges: edges.into_iter().map(|(s, d, w)| (v(s), v(d), w)).collect(),
            })
        });
    prop_oneof![
        4 => edge,
        4 => batch,
        3 => batch_budget,
        1 => (0u32..16).prop_map(|hops| WireFrame::Region { hops }),
        1 => migrate_out,
        1 => arb_slice().prop_map(|slice| WireFrame::Absorb { slice }),
        1 => arb_slice().prop_map(WireFrame::SliceReply),
        1 => replicate,
        1 => (0u32..64, 0u64..u64::MAX)
            .prop_map(|(owner, after)| WireFrame::Bootstrap { owner, after }),
        1 => region_reply,
        1 => absorb_reply,
        1 => bootstrap_chunk,
        1 => Just(WireFrame::Flush),
        1 => Just(WireFrame::Detect),
        1 => Just(WireFrame::Stats),
        1 => Just(WireFrame::Shutdown),
        1 => Just(WireFrame::Metrics),
        2 => (0u64..u64::MAX).prop_map(|accepted| WireFrame::Ack { accepted }),
        2 => (0u64..u64::MAX).prop_map(|accepted| WireFrame::Busy { accepted }),
        2 => detection,
        1 => stats,
        1 => metrics_reply,
        1 => collection::vec(32u8..127, 0..100).prop_map(|raw| WireFrame::Error {
            message: String::from_utf8(raw).expect("printable ASCII"),
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Encode → decode is the identity for every frame kind, regardless
    /// of how the byte stream fragments.
    #[test]
    fn arbitrary_frames_roundtrip_under_arbitrary_fragmentation(
        frames in collection::vec(arb_frame(), 1..8),
        chunk in 1usize..97,
    ) {
        let mut bytes = Vec::new();
        for f in &frames {
            bytes.extend_from_slice(&f.encode());
        }
        let mut decoder = FrameDecoder::new();
        let mut got = Vec::new();
        for piece in bytes.chunks(chunk) {
            decoder.extend(piece);
            while let Some(frame) = decoder.next_frame().expect("valid stream") {
                got.push(frame);
            }
        }
        prop_assert_eq!(got, frames);
        prop_assert_eq!(decoder.buffered(), 0);
    }

    /// The reactor's per-connection buffer handoff: bytes arrive in
    /// arbitrary read-sized chunks across readiness events, and each
    /// simulated wakeup drains at most a fixed frame budget before
    /// yielding (leftovers stay buffered in the decoder until the next
    /// wakeup, exactly like a budget-exhausted event-loop cycle). The
    /// decoded stream must be identical to one contiguous read — no
    /// frame lost, reordered, or fabricated at any chunk/budget split.
    #[test]
    fn interleaved_wakeup_drains_decode_identically_to_a_contiguous_read(
        frames in collection::vec(arb_frame(), 1..10),
        chunks in collection::vec(1usize..129, 1..48),
        budget in 1usize..5,
    ) {
        let mut bytes = Vec::new();
        for f in &frames {
            bytes.extend_from_slice(&f.encode());
        }

        // Reference: one contiguous delivery, fully drained.
        let mut contiguous = FrameDecoder::new();
        contiguous.extend(&bytes);
        let mut want = Vec::new();
        while let Some(frame) = contiguous.next_frame().expect("valid stream") {
            want.push(frame);
        }

        // Simulated reactor: chunk sizes cycle through `chunks`; each
        // wakeup extends with one chunk, then drains at most `budget`
        // frames before the next readiness event.
        let mut decoder = FrameDecoder::new();
        let mut got = Vec::new();
        let mut offset = 0usize;
        let mut wakeup = 0usize;
        while offset < bytes.len() {
            let take = chunks[wakeup % chunks.len()].min(bytes.len() - offset);
            decoder.extend(&bytes[offset..offset + take]);
            offset += take;
            wakeup += 1;
            for _ in 0..budget {
                match decoder.next_frame().expect("valid stream") {
                    Some(frame) => got.push(frame),
                    None => break,
                }
            }
        }
        // Post-EOF wakeups with no new bytes, still budget-capped —
        // the half-closed-connection drain path.
        loop {
            let before = got.len();
            for _ in 0..budget {
                match decoder.next_frame().expect("valid stream") {
                    Some(frame) => got.push(frame),
                    None => break,
                }
            }
            if got.len() == before {
                break;
            }
        }

        prop_assert_eq!(got, want);
        prop_assert_eq!(decoder.buffered(), 0);
    }

    /// Any truncation of a valid frame either waits for more bytes or
    /// fails cleanly on a later feed — it never yields a wrong frame and
    /// never panics.
    #[test]
    fn truncated_frames_never_decode_to_a_frame(
        frame in arb_frame(),
        cut_back in 1usize..64,
    ) {
        let bytes = frame.encode();
        let cut = bytes.len().saturating_sub(cut_back).max(1);
        let mut decoder = FrameDecoder::new();
        decoder.extend(&bytes[..cut]);
        // With part of the frame missing the decoder must hold, not
        // fabricate.
        prop_assert!(matches!(decoder.next_frame(), Ok(None)));
        // Feeding the remainder completes the original frame exactly.
        decoder.extend(&bytes[cut..]);
        prop_assert_eq!(decoder.next_frame().expect("completed"), Some(frame));
    }

    /// Arbitrary garbage bytes never panic the decoder: every outcome is
    /// a decoded frame, a clean "need more bytes", or an error.
    #[test]
    fn garbage_bytes_never_panic_the_decoder(
        garbage in collection::vec(0u8..=255u8, 0..400),
    ) {
        let mut decoder = FrameDecoder::new();
        decoder.extend(&garbage);
        loop {
            match decoder.next_frame() {
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(
                    WireError::Oversized(_)
                    | WireError::BadOpcode(_)
                    | WireError::Corrupt(_)
                    | WireError::Io(_),
                ) => break,
            }
        }
    }

    /// A length prefix beyond the frame bound is rejected before the
    /// body arrives (no multi-megabyte allocation on hostile input).
    #[test]
    fn oversized_prefixes_are_rejected_immediately(
        len in (spade_net::MAX_FRAME_BYTES as u32 + 1)..u32::MAX,
    ) {
        let mut decoder = FrameDecoder::new();
        decoder.extend(&len.to_le_bytes());
        prop_assert!(matches!(decoder.next_frame(), Err(WireError::Oversized(_))));
    }

    /// The migration handoff end to end: an arbitrary
    /// [`SubgraphSnapshot`] encodes, crosses the wire inside an `Absorb`
    /// frame under arbitrary fragmentation, and the received bytes are
    /// **bit-identical** — the decoded snapshot equals the original,
    /// re-encodes to the same bytes, and replays into a graph carrying
    /// exactly the snapshot's vertices and edges. This is the invariant
    /// that makes over-the-wire migration exact: no weight is perturbed,
    /// no edge dropped, no vertex reordered by transport.
    #[test]
    fn snapshot_handoff_roundtrips_bit_identically(
        snapshot in arb_snapshot(),
        chunk in 1usize..97,
    ) {
        let encoded = snapshot.encode();
        let frame = WireFrame::Absorb {
            slice: WireSlice {
                vertices: snapshot.vertices.len() as u64,
                edges: snapshot.edges.len() as u64,
                edge_weight: snapshot.edge_weight_total(),
                updates_applied: 42,
                encoded: encoded.clone(),
            },
        };
        let bytes = frame.encode();
        let mut decoder = FrameDecoder::new();
        let mut got = Vec::new();
        for piece in bytes.chunks(chunk) {
            decoder.extend(piece);
            while let Some(f) = decoder.next_frame().expect("valid stream") {
                got.push(f);
            }
        }
        prop_assert_eq!(got.len(), 1);
        let slice = match got.pop().expect("one frame") {
            WireFrame::Absorb { slice } => slice,
            other => panic!("decoded to a different frame kind: {other:?}"),
        };
        prop_assert_eq!(&slice.encoded, &encoded, "snapshot bytes perturbed in transit");
        let decoded = SubgraphSnapshot::decode(&slice.encoded).expect("valid snapshot");
        prop_assert_eq!(&decoded, &snapshot);
        prop_assert_eq!(decoded.encode(), encoded, "re-encode must be bit-identical");
        let mut remap = Vec::new();
        let graph = decoded.replay(&mut remap).expect("replay");
        prop_assert_eq!(remap.len(), snapshot.vertices.len());
        prop_assert_eq!(graph.num_edges() as u64, distinct_pairs(&snapshot.edges));
    }

    /// Corrupting any single byte of the snapshot payload (or truncating
    /// it) never panics downstream: the wire layer either rejects the
    /// frame or delivers bytes whose snapshot decode fails cleanly — a
    /// flipped byte can reach the application only as a *valid* snapshot
    /// whose floats differ, never as UB or a panic.
    #[test]
    fn corrupted_snapshot_payloads_fail_cleanly(
        snapshot in arb_snapshot(),
        flip in 0usize..10_000,
        value in 0u8..=255u8,
    ) {
        let mut encoded = snapshot.encode();
        let idx = flip % encoded.len();
        encoded[idx] = value;
        // The wire layer ships opaque bytes; the snapshot codec is the
        // layer that must reject structural corruption without panicking.
        let _ = SubgraphSnapshot::decode(&encoded);
        let truncated = &encoded[..encoded.len() - 1];
        prop_assert!(SubgraphSnapshot::decode(truncated).is_err());
    }
}

/// An arbitrary structurally-valid snapshot: strictly increasing vertex
/// ids (the codec's canonical order) and edges whose endpoints are all
/// members.
fn arb_snapshot() -> impl Strategy<Value = SubgraphSnapshot> {
    (
        collection::vec((0u32..1_000_000, 0.0f64..1e6), 1..40),
        collection::vec((0usize..1 << 16, 0usize..1 << 16, 0.0f64..1e6), 0..120),
    )
        .prop_map(|(verts, raw)| {
            let mut vertices: Vec<(VertexId, f64)> =
                verts.into_iter().map(|(id, w)| (VertexId(id), w)).collect();
            vertices.sort_unstable_by_key(|&(id, _)| id);
            vertices.dedup_by_key(|&mut (id, _)| id);
            let n = vertices.len();
            let edges = raw
                .into_iter()
                .map(|(a, b, w)| (a % n, b % n, w))
                .filter(|&(a, b, _)| a != b)
                .map(|(a, b, w)| (vertices[a].0, vertices[b].0, w))
                .collect();
            SubgraphSnapshot { vertices, edges }
        })
}

/// Distinct `(src, dst)` pairs — what a replayed graph stores when the
/// generator emitted duplicate edges (duplicates accumulate weight).
fn distinct_pairs(edges: &[(VertexId, VertexId, f64)]) -> u64 {
    let mut pairs: Vec<(u32, u32)> = edges.iter().map(|&(s, d, _)| (s.0, d.0)).collect();
    pairs.sort_unstable();
    pairs.dedup();
    pairs.len() as u64
}
