//! Threaded streaming service — the runtime shape of the paper's Fig. 1
//! pipeline.
//!
//! Production fraud detection separates the *ingest* path (transactions
//! arrive on a queue, the engine reorders incrementally) from the *query*
//! path (moderators read the current fraudulent community, ban accounts,
//! pull statistics). [`SpadeService`] runs the engine on a dedicated
//! worker thread fed by a bounded crossbeam channel and publishes each
//! new detection as an epoch-versioned snapshot that any number of
//! moderator threads read without blocking ingestion.
//!
//! Two hot-path optimizations keep the ingest rate at hardware speed:
//!
//! * **Drain coalescing** (the paper's Algorithm 2 applied to the
//!   runtime): after blocking on the first command, the worker
//!   opportunistically drains whatever else is already queued (up to
//!   [`IngestConfig::coalesce`] commands) and feeds the whole run through
//!   the batch insertion path, so a burst of N edges costs **one**
//!   reorder pass and **one** publish instead of N of each. Exactness is
//!   preserved: §4.2 guarantees the batch reorder yields a peeling
//!   sequence bit-identical to per-edge insertion (property-tested in
//!   `tests/properties.rs`), and `updates_applied` still counts every
//!   submitted command. With edge grouping on, every drained insert is
//!   classified per edge and an **urgent** flush publishes immediately
//!   mid-run — coalescing never delays the §4.3 real-time path, it only
//!   amortizes the benign one.
//! * **Zero-copy publishing**: the published snapshot holds its member
//!   list behind an `Arc<[VertexId]>` and is swapped only when the
//!   detection actually changed. Readers clone a pointer, never a vec;
//!   unchanged publishes are counted as `skipped_unchanged` instead of
//!   re-cloning the community.
//!
//! The service wraps the edge-grouping layer, so benign traffic batches
//! exactly as in §4.3 while urgent transactions update the published
//! detection immediately.
//!
//! The sharded runtime (`crate::shard`) scales this out by wrapping one
//! [`SpadeService`] per shard — same ingest protocol, same
//! publish-into-snapshot discipline, same drain-on-shutdown guarantee.

use crate::engine::SpadeEngine;
use crate::grouping::{EdgeGrouper, GroupingConfig};
use crate::metric::DensityMetric;
use crate::state::Detection;
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use parking_lot::RwLock;
use spade_graph::VertexId;
use spade_metrics::runtime::{
    Counter, EventKind, Gauge, Histogram, MetricsRegistry, MetricsSnapshot,
};
use std::any::Any;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Registry names of the per-stage metrics one worker records. Public
/// so front ends (sharded runtime, benches, the CLI) can look up the
/// same series without stringly re-deriving them.
pub mod metric_names {
    /// Histogram: submit → drain wait per ingest command, nanoseconds.
    /// Its count equals `updates_applied` at quiesce — every insert is
    /// timed exactly once.
    pub const STAGE_QUEUE_WAIT_NS: &str = "spade_stage_queue_wait_ns";
    /// Histogram: reorder/peel time per applied batch (or per urgent
    /// grouped flush), nanoseconds.
    pub const STAGE_REORDER_NS: &str = "spade_stage_reorder_ns";
    /// Histogram: publish-attempt latency (detect + snapshot swap),
    /// nanoseconds.
    pub const STAGE_PUBLISH_NS: &str = "spade_stage_publish_ns";
    /// Histogram: inserts applied per coalesced batch.
    pub const COALESCE_BATCH_SIZE: &str = "spade_coalesce_batch_size";
    /// Counter: edge-grouping flushes performed.
    pub const FLUSHES_TOTAL: &str = "spade_flushes_total";
    /// Counter: snapshot publications that swapped the snapshot.
    pub const PUBLISHES_TOTAL: &str = "spade_publishes_total";
    /// Counter: publish attempts skipped (detection unchanged).
    pub const PUBLISHES_SKIPPED_TOTAL: &str = "spade_publishes_skipped_total";
    /// Counter: malformed transactions dropped by the worker.
    pub const REJECTED_TOTAL: &str = "spade_rejected_total";
    /// Counter: ingest commands processed (mirrors `updates_applied`).
    pub const UPDATES_TOTAL: &str = "spade_updates_total";
    /// Gauge: commands waiting in the ingest queue (refreshed on
    /// snapshot).
    pub const QUEUE_DEPTH: &str = "spade_queue_depth";
    /// Gauge: directed edges resident in the worker's graph.
    pub const EDGES_RESIDENT: &str = "spade_edges_resident";
    /// Counter: budgeted transactions applied after their latency
    /// budget had already elapsed.
    pub const DEADLINE_MISS_TOTAL: &str = "spade_deadline_miss_total";
    /// Histogram: remaining latency budget when a budgeted transaction
    /// reached the engine, nanoseconds (misses record zero slack).
    pub const DEADLINE_SLACK_NS: &str = "spade_deadline_slack_ns";
}

/// Ingest tuning knobs of a [`SpadeService`] worker.
#[derive(Clone, Copy, Debug)]
pub struct IngestConfig {
    /// Bound of the ingest channel (back-pressure for bursty producers).
    pub queue_capacity: usize,
    /// Maximum number of queued commands the worker drains per wake-up
    /// and applies as one batch (one reorder pass, one publish). `1`
    /// reproduces strict per-edge processing; larger values amortize a
    /// burst without delaying anything — the worker never *waits* for a
    /// batch to fill, it only drains what is already queued.
    pub coalesce: usize,
    /// Default per-transaction detection-latency budget (the SLO
    /// deadline), applied to every submit that does not carry an
    /// explicit budget. When budgeted transactions are staged and the
    /// queue runs dry, the worker *spring-pushes* the batch boundary:
    /// instead of applying immediately it waits for more work until the
    /// earliest staged budget would be at risk (arrival + budget − a
    /// peel-cost margin from the live reorder histogram), so loose
    /// budgets buy bigger batches and tight budgets degrade gracefully
    /// to per-edge latency. `None` (the default) reproduces today's
    /// drain-coalesce behavior bit-exactly: the worker never waits.
    pub deadline: Option<Duration>,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig { queue_capacity: 1024, coalesce: 256, deadline: None }
    }
}

impl IngestConfig {
    /// Config with the given queue bound and the default coalesce cap.
    pub fn with_queue_capacity(queue_capacity: usize) -> Self {
        IngestConfig { queue_capacity, ..Default::default() }
    }
}

/// A published detection: descriptor plus the community members behind a
/// shared pointer (cloning a `PublishedDetection` never copies the
/// member list).
#[derive(Clone, Debug, Default)]
pub struct PublishedDetection {
    /// Community size and density.
    pub size: usize,
    /// `g(S_P)`.
    pub density: f64,
    /// Members of the detected community. Shared, immutable snapshot:
    /// the worker allocates it once per *changed* detection and readers
    /// clone the pointer.
    pub members: Arc<[VertexId]>,
    /// Ingest commands processed when this detection was read. Counts
    /// every submitted transaction, including ones the engine rejected
    /// (self-loops, bad weights) or treated as redundant — it answers
    /// "how much of the stream has this worker consumed", which is what
    /// drain/exactness accounting needs, not "how many edges landed in
    /// the graph".
    pub updates_applied: u64,
    /// Monotone snapshot version, bumped every time the worker publishes
    /// a *changed* detection. Two reads with equal epochs hold the same
    /// member list (pointer-equal), so pollers can skip downstream work.
    pub epoch: u64,
}

/// One shard's candidate-region export: its current detection plus the
/// k-hop frontier subgraph around it, serialized with the
/// [`crate::persist`] subgraph codec. This is the unit the cross-shard
/// repair pass (`crate::shard::repair`) unions and re-peels, and — being
/// plain bytes — the wire format a distributed backend would ship between
/// processes.
#[derive(Clone, Debug)]
pub struct CandidateRegion {
    /// Community size at export time.
    pub size: usize,
    /// Community density `g(S_P)` on this shard's local graph.
    pub density: f64,
    /// Community members (global vertex ids). Shared snapshot — cloning a
    /// region never copies the member list.
    pub members: Arc<[VertexId]>,
    /// Encoded induced subgraph over the community plus its `hops`-hop
    /// frontier ([`crate::persist::SubgraphSnapshot`] bytes).
    pub encoded: Vec<u8>,
    /// Ingest commands this worker had consumed when the region was
    /// exported.
    pub updates_applied: u64,
    /// The worker's published detection epoch at export time. The export
    /// publishes before replying, so `(epoch, updates_applied)` is the
    /// exact freshness marker of the state this region reflects — a
    /// repair pass that records it as "seen" will not mistake its own
    /// drain for new traffic.
    pub epoch: u64,
}

/// A component slice leaving its source shard: the induced subgraph over
/// the migrated members (vertex suspiciousness + every member-to-member
/// edge this shard held), serialized with the [`crate::persist`] subgraph
/// codec, already **evicted** from the source engine when this value is
/// produced. Replaying it into another shard's engine completes the move
/// — see `crate::shard::migrate`.
#[derive(Clone, Debug)]
pub struct MigrationSlice {
    /// Encoded [`crate::persist::SubgraphSnapshot`] bytes (isolated
    /// zero-weight members pruned).
    pub encoded: Vec<u8>,
    /// Vertices carried by the slice after pruning.
    pub vertices: usize,
    /// Member-to-member edges carried (and evicted at the source).
    pub edges: usize,
    /// Total edge suspiciousness carried.
    pub edge_weight: f64,
    /// Ingest commands the source worker had consumed at export.
    pub updates_applied: u64,
}

impl MigrationSlice {
    /// `true` when the source shard held nothing of the component — no
    /// edges, no positive vertex weight — so there is nothing to absorb.
    pub fn is_empty(&self) -> bool {
        self.vertices == 0 && self.edges == 0
    }
}

/// What a target shard did with an absorbed [`MigrationSlice`].
#[derive(Clone, Copy, Debug, Default)]
pub struct AbsorbReceipt {
    /// Slice vertices materialized or re-weighted on the target.
    pub vertices_touched: usize,
    /// Slice edges applied (accumulated onto any weight the target
    /// already held for the same ordered pair).
    pub edges_applied: usize,
    /// Slice entries dropped (undecodable bytes or invalid weights).
    pub rejected: u64,
}

/// The ingest protocol between a service handle and its worker thread.
enum Command {
    /// One transaction, stamped with its ingest time at `submit` /
    /// frame-decode so the worker can attribute queueing latency
    /// (Eq. 4's dominant term per §5.2) to the wait itself, plus its
    /// optional detection-latency budget (drives the spring-push batch
    /// boundary and deadline-miss accounting).
    Insert { src: VertexId, dst: VertexId, raw: f64, queued: Instant, budget: Option<Duration> },
    /// A whole run of transactions sharing one arrival stamp and budget
    /// — the shard-grouped fast path: a decoded network frame becomes
    /// one channel operation per destination shard instead of one per
    /// edge. The worker feeds each edge through the same per-edge
    /// accounting as `Insert`.
    InsertBatch { edges: Vec<(VertexId, VertexId, f64)>, queued: Instant, budget: Option<Duration> },
    /// Apply any buffered benign edges now.
    Flush,
    /// Drain marker: reply once every command queued before it has been
    /// applied and the resulting detection published.
    Barrier { reply: Sender<()> },
    /// Export the current detection plus a `hops`-hop frontier subgraph.
    Region { hops: usize, reply: Sender<CandidateRegion> },
    /// Extract the induced slice over `members`, evict it from this
    /// engine, and hand the encoded slice back (the source half of a
    /// component migration).
    MigrateOut { members: Arc<[VertexId]>, reply: Sender<MigrationSlice> },
    /// Replay a migrated slice into this engine (the target half).
    Absorb { slice: MigrationSlice, reply: Sender<AbsorbReceipt> },
    /// Drain and exit.
    Shutdown,
}

/// Pre-resolved registry handles the worker records into. Resolved once
/// at spawn (registration takes a lock), so the per-edge path is pure
/// relaxed atomic bumps — the registry itself is never touched while
/// streaming. Replaces the old ad-hoc `WorkerTelemetry` counter struct:
/// the same monotone counters now live in the registry, and
/// [`ServiceStats`] reads them back as a snapshot.
#[derive(Debug)]
struct WorkerMetrics {
    registry: Arc<MetricsRegistry>,
    /// Edge-grouping flushes applied (urgent, capacity, manual and the
    /// final drain). Mirrored from the grouper's own counter.
    flushes: Arc<Counter>,
    /// Snapshot publications that actually swapped the snapshot.
    publishes: Arc<Counter>,
    /// Publish attempts skipped because the detection had not changed
    /// since the last swap (the coalescing win, made observable).
    skipped_unchanged: Arc<Counter>,
    /// Malformed transactions dropped by the worker (self-loops,
    /// non-finite or negative suspiciousness).
    rejected: Arc<Counter>,
    /// Ingest commands processed (mirrors `updates_applied`).
    updates: Arc<Counter>,
    /// Submit → drain wait per ingest command (ns).
    queue_wait_ns: Arc<Histogram>,
    /// Reorder/peel time per applied batch or urgent flush (ns).
    reorder_ns: Arc<Histogram>,
    /// Publish-attempt latency (ns).
    publish_ns: Arc<Histogram>,
    /// Inserts applied per coalesced batch.
    batch_size: Arc<Histogram>,
    /// Live ingest-queue depth (refreshed when a snapshot is taken).
    queue_depth: Arc<Gauge>,
    /// Directed edges resident in the worker's graph.
    edges_resident: Arc<Gauge>,
    /// Budgeted transactions applied after their budget elapsed.
    deadline_miss: Arc<Counter>,
    /// Remaining budget at apply time (ns); misses record zero.
    deadline_slack_ns: Arc<Histogram>,
}

impl WorkerMetrics {
    fn new(registry: Arc<MetricsRegistry>) -> WorkerMetrics {
        use metric_names as n;
        WorkerMetrics {
            flushes: registry.counter(n::FLUSHES_TOTAL),
            publishes: registry.counter(n::PUBLISHES_TOTAL),
            skipped_unchanged: registry.counter(n::PUBLISHES_SKIPPED_TOTAL),
            rejected: registry.counter(n::REJECTED_TOTAL),
            updates: registry.counter(n::UPDATES_TOTAL),
            queue_wait_ns: registry.histogram(n::STAGE_QUEUE_WAIT_NS),
            reorder_ns: registry.histogram(n::STAGE_REORDER_NS),
            publish_ns: registry.histogram(n::STAGE_PUBLISH_NS),
            batch_size: registry.histogram(n::COALESCE_BATCH_SIZE),
            queue_depth: registry.gauge(n::QUEUE_DEPTH),
            edges_resident: registry.gauge(n::EDGES_RESIDENT),
            deadline_miss: registry.counter(n::DEADLINE_MISS_TOTAL),
            deadline_slack_ns: registry.histogram(n::DEADLINE_SLACK_NS),
            registry,
        }
    }
}

/// The snapshot cell shared between the worker and all reader handles.
#[derive(Debug, Default)]
struct SharedDetection {
    /// The latest *changed* detection; swapped whole, read by pointer.
    detection: RwLock<PublishedDetection>,
    /// Commands consumed so far — advanced on **every** publish attempt
    /// (even skipped ones) so drain accounting never stalls behind an
    /// unchanged detection.
    updates_applied: AtomicU64,
    /// Directed edges resident in the worker's graph at the last publish
    /// attempt — the migration scheduler's size signal for choosing a
    /// move target.
    edges_resident: AtomicU64,
    /// Edges queued beyond their command count: each `InsertBatch` holds
    /// one channel slot but carries many edges, and back-pressure must
    /// stay edge-denominated — `queue_free` subtracts this surplus so a
    /// stream of batched frames cannot buffer unboundedly more edges
    /// than `queue_capacity`. Incremented by `submit_batch` before the
    /// send, decremented by the worker on receipt.
    batched_backlog: AtomicU64,
}

/// Point-in-time statistics of a running [`SpadeService`].
///
/// Carries the published detection's descriptor (size/density) so status
/// polling never clones the member list — use
/// [`SpadeService::current_detection`] when the members are needed.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServiceStats {
    /// Commands waiting in the ingest queue.
    pub queue_depth: usize,
    /// Ingest commands processed at the last publish attempt (see
    /// [`PublishedDetection::updates_applied`] for exact semantics).
    pub updates_applied: u64,
    /// Edge-grouping flushes performed.
    pub flushes: u64,
    /// Detection snapshots published (snapshot actually swapped).
    pub publishes: u64,
    /// Publish attempts skipped because nothing changed.
    pub skipped_unchanged: u64,
    /// Malformed transactions dropped by the worker.
    pub rejected: u64,
    /// Budgeted transactions applied after their latency budget had
    /// already elapsed.
    pub deadline_miss: u64,
    /// Directed edges resident in the worker's graph at the last publish
    /// attempt (accumulated pairs count once). The sharded migration
    /// scheduler breaks windowed-load ties toward the shard holding the
    /// least resident state.
    pub edges_resident: u64,
    /// Size of the last published detection.
    pub detection_size: usize,
    /// Density of the last published detection.
    pub detection_density: f64,
    /// Seconds since the service was spawned — lets a watch table turn
    /// monotone counters into rates without keeping its own clock.
    pub uptime_secs: f64,
}

/// Outcome of a non-blocking submit attempt. Public because transport
/// front ends (`spade-net`) translate `Full` into a wire-level Busy reply
/// instead of blocking their accept/handler threads on a back-pressured
/// shard.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TrySubmit {
    /// The transaction was enqueued.
    Queued,
    /// The ingest queue is at capacity; the service is alive.
    Full,
    /// The service has shut down.
    Closed,
}

/// Handle to a running detection service.
pub struct SpadeService {
    sender: Sender<Command>,
    shared: Arc<SharedDetection>,
    metrics: Arc<WorkerMetrics>,
    /// Budget stamped onto submits that carry none ([`IngestConfig::deadline`]).
    default_budget: Option<Duration>,
    /// Bound of the ingest channel — kept here so batch submitters can
    /// compute free slots (the channel itself only exposes `len`).
    queue_capacity: usize,
    /// The worker hands its engine back through here on exit, so callers
    /// can recover it (snapshotting, equivalence tests) after a drain.
    engine_back: Receiver<Box<dyn Any + Send>>,
    worker: Option<JoinHandle<()>>,
}

impl SpadeService {
    /// Spawns the worker thread around `engine`. `queue_capacity` bounds
    /// the ingest channel (back-pressure for bursty producers);
    /// `grouping` enables the §4.3 buffer. Uses the default coalesce cap
    /// — see [`SpadeService::spawn_with`] to tune it.
    pub fn spawn<M: DensityMetric + Send + 'static>(
        engine: SpadeEngine<M>,
        grouping: Option<GroupingConfig>,
        queue_capacity: usize,
    ) -> Self {
        Self::spawn_named(engine, grouping, queue_capacity, "spade-detector".into())
    }

    /// [`spawn`](Self::spawn) with an explicit worker-thread name — the
    /// sharded runtime names each of its workers `spade-shard-<i>`.
    pub fn spawn_named<M: DensityMetric + Send + 'static>(
        engine: SpadeEngine<M>,
        grouping: Option<GroupingConfig>,
        queue_capacity: usize,
        thread_name: String,
    ) -> Self {
        Self::spawn_with(
            engine,
            grouping,
            IngestConfig::with_queue_capacity(queue_capacity),
            thread_name,
        )
    }

    /// Spawns the worker with full ingest tuning (queue bound and drain
    /// coalesce cap).
    pub fn spawn_with<M: DensityMetric + Send + 'static>(
        engine: SpadeEngine<M>,
        grouping: Option<GroupingConfig>,
        ingest: IngestConfig,
        thread_name: String,
    ) -> Self {
        let (sender, receiver) = bounded(ingest.queue_capacity.max(1));
        let (engine_tx, engine_back) = bounded(1);
        let shared = Arc::new(SharedDetection::default());
        let metrics = Arc::new(WorkerMetrics::new(Arc::new(MetricsRegistry::new())));
        let worker_shared = Arc::clone(&shared);
        let worker_metrics = Arc::clone(&metrics);
        let worker = std::thread::Builder::new()
            .name(thread_name)
            .spawn(move || {
                worker_loop(
                    engine,
                    grouping,
                    ingest,
                    receiver,
                    worker_shared,
                    worker_metrics,
                    engine_tx,
                )
            })
            .expect("failed to spawn detector thread");
        SpadeService {
            sender,
            shared,
            metrics,
            default_budget: ingest.deadline,
            queue_capacity: ingest.queue_capacity.max(1),
            engine_back,
            worker: Some(worker),
        }
    }

    /// Enqueues one transaction; blocks when the ingest queue is full
    /// (back-pressure). Returns `false` if the service has shut down.
    /// The command is stamped with its ingest time here, so the worker
    /// can report submit → apply queueing latency, and carries the
    /// service's default latency budget (if any).
    pub fn submit(&self, src: VertexId, dst: VertexId, raw: f64) -> bool {
        self.submit_with_budget(src, dst, raw, None)
    }

    /// [`submit`](Self::submit) with an explicit detection-latency
    /// budget. `None` falls back to [`IngestConfig::deadline`]; a budget
    /// (either way) lets the worker spring-push the batch boundary and
    /// drives deadline-miss accounting.
    pub fn submit_with_budget(
        &self,
        src: VertexId,
        dst: VertexId,
        raw: f64,
        budget: Option<Duration>,
    ) -> bool {
        let budget = budget.or(self.default_budget);
        self.sender.send(Command::Insert { src, dst, raw, queued: Instant::now(), budget }).is_ok()
    }

    /// Non-blocking [`submit`](Self::submit): enqueues only if the queue
    /// has space right now. The sharded runtime uses this so its routing
    /// lock is never held across a back-pressure wait; network front ends
    /// use it to answer Busy instead of stalling a connection handler.
    pub fn try_submit(&self, src: VertexId, dst: VertexId, raw: f64) -> TrySubmit {
        self.try_submit_with_budget(src, dst, raw, None)
    }

    /// Non-blocking [`submit_with_budget`](Self::submit_with_budget).
    pub fn try_submit_with_budget(
        &self,
        src: VertexId,
        dst: VertexId,
        raw: f64,
        budget: Option<Duration>,
    ) -> TrySubmit {
        let budget = budget.or(self.default_budget);
        match self.sender.try_send(Command::Insert {
            src,
            dst,
            raw,
            queued: Instant::now(),
            budget,
        }) {
            Ok(()) => TrySubmit::Queued,
            Err(TrySendError::Full(_)) => TrySubmit::Full,
            Err(TrySendError::Disconnected(_)) => TrySubmit::Closed,
        }
    }

    /// Enqueues a whole run of transactions as **one** channel operation
    /// (one queue slot), sharing a single arrival stamp and budget. This
    /// is the shard-grouped fast path: a decoded 512-edge frame costs one
    /// send per destination shard instead of 512. Blocks when the queue
    /// is full; returns `false` if the service has shut down. An empty
    /// run is a no-op. `budget: None` falls back to the service default.
    pub fn submit_batch(
        &self,
        edges: Vec<(VertexId, VertexId, f64)>,
        budget: Option<Duration>,
    ) -> bool {
        if edges.is_empty() {
            return true;
        }
        let budget = budget.or(self.default_budget);
        // The surplus is published BEFORE the send so a concurrent
        // `queue_free` never under-counts; the worker's decrement
        // happens-after the send, so the counter cannot go negative.
        // audit: advisory backlog counter, races only widen queue_free slack
        let surplus = (edges.len() - 1) as u64;
        self.shared.batched_backlog.fetch_add(surplus, Ordering::Relaxed);
        let sent = self
            .sender
            .send(Command::InsertBatch { edges, queued: Instant::now(), budget })
            .is_ok();
        if !sent {
            self.shared.batched_backlog.fetch_sub(surplus, Ordering::Relaxed);
        }
        sent
    }

    /// Bound of the ingest channel.
    pub fn queue_capacity(&self) -> usize {
        self.queue_capacity
    }

    /// Edge-denominated queue slots free right now: capacity minus
    /// queued commands minus the surplus edges carried by queued batch
    /// commands. Advisory: other producers may race; batch submitters
    /// combine it with a routing lock (the sharded runtime) or accept
    /// the bounded slack.
    pub fn queue_free(&self) -> usize {
        // audit: advisory backlog counter, races only widen queue_free slack
        let backlog = self.shared.batched_backlog.load(Ordering::Relaxed) as usize;
        self.queue_capacity.saturating_sub(self.sender.len().saturating_add(backlog))
    }

    /// Asks the worker to flush any buffered benign edges.
    pub fn flush(&self) -> bool {
        self.sender.send(Command::Flush).is_ok()
    }

    /// Read-your-acks barrier: blocks until the worker has applied every
    /// transaction submitted before this call and published the
    /// resulting detection. Grouped benign edges stay buffered — the
    /// published detection excludes them, and the barrier agrees with
    /// it. Returns `false` if the service has shut down.
    pub fn barrier(&self) -> bool {
        let (reply, receiver) = bounded(1);
        if self.sender.send(Command::Barrier { reply }).is_err() {
            return false;
        }
        receiver.recv().is_ok()
    }

    /// Exports this worker's candidate region: its current detection plus
    /// a `hops`-hop frontier of boundary edges, serialized with the
    /// persist subgraph codec. Blocks until the worker reaches the
    /// request in its FIFO queue, so the region reflects every
    /// transaction submitted before this call (grouped benign edges still
    /// buffered are excluded, exactly as they are from the published
    /// detection). Returns `None` if the service has shut down.
    pub fn candidate_region(&self, hops: usize) -> Option<CandidateRegion> {
        self.request_candidate_region(hops)?.recv().ok()
    }

    /// Fire-and-collect variant of
    /// [`candidate_region`](Self::candidate_region): enqueues the export
    /// request and hands back the reply channel without waiting, so the
    /// sharded runtime can let all shards drain and extract in parallel.
    pub(crate) fn request_candidate_region(
        &self,
        hops: usize,
    ) -> Option<Receiver<CandidateRegion>> {
        let (reply, receiver) = bounded(1);
        self.sender.send(Command::Region { hops, reply }).ok()?;
        Some(receiver)
    }

    /// Extracts and **evicts** the induced slice over `members` from this
    /// worker's engine, returning the encoded slice (the source half of a
    /// component migration — see `crate::shard::migrate`). Blocks until
    /// the worker reaches the request in its FIFO queue, so the slice
    /// covers every transaction submitted before this call, including
    /// grouped benign edges (the worker flushes its buffer first).
    /// Returns `None` if the service has shut down.
    pub fn migrate_out(&self, members: Arc<[VertexId]>) -> Option<MigrationSlice> {
        self.request_migrate_out(members)?.recv().ok()
    }

    /// Fire-and-collect variant of [`migrate_out`](Self::migrate_out):
    /// enqueues the request and hands back the reply channel. The sharded
    /// runtime enqueues this **under its routing lock** so the marker is
    /// ordered after every edge routed to this shard before a rehome.
    pub(crate) fn request_migrate_out(
        &self,
        members: Arc<[VertexId]>,
    ) -> Option<Receiver<MigrationSlice>> {
        let (reply, receiver) = bounded(1);
        self.sender.send(Command::MigrateOut { members, reply }).ok()?;
        Some(receiver)
    }

    /// Replays a migrated slice into this worker's engine (the target
    /// half of a component migration). Returns `None` if the service has
    /// shut down.
    pub fn absorb(&self, slice: MigrationSlice) -> Option<AbsorbReceipt> {
        let (reply, receiver) = bounded(1);
        self.sender.send(Command::Absorb { slice, reply }).ok()?;
        receiver.recv().ok()
    }

    /// The most recently published detection. O(1): a brief read lock
    /// and an `Arc` pointer clone — never proportional to community
    /// size.
    pub fn current_detection(&self) -> PublishedDetection {
        let mut det = self.shared.detection.read().clone();
        det.updates_applied = self.shared.updates_applied.load(Ordering::Acquire);
        det
    }

    /// Current ingest/processing counters (no member-list clone). A
    /// view over the same registry handles the worker records into —
    /// `ServiceStats` is the registry snapshot in struct form.
    pub fn stats(&self) -> ServiceStats {
        let det = self.shared.detection.read();
        ServiceStats {
            queue_depth: self.sender.len(),
            updates_applied: self.shared.updates_applied.load(Ordering::Acquire),
            flushes: self.metrics.flushes.get(),
            publishes: self.metrics.publishes.get(),
            skipped_unchanged: self.metrics.skipped_unchanged.get(),
            rejected: self.metrics.rejected.get(),
            deadline_miss: self.metrics.deadline_miss.get(),
            edges_resident: self.shared.edges_resident.load(Ordering::Acquire),
            detection_size: det.size,
            detection_density: det.density,
            uptime_secs: self.metrics.registry.uptime().as_secs_f64(),
        }
    }

    /// A point-in-time copy of this worker's full metrics registry:
    /// per-stage latency histograms (queue wait, reorder/peel, publish),
    /// the monotone counters behind [`stats`](Self::stats), and the
    /// recent event trace. The live queue-depth and resident-edge gauges
    /// are refreshed as part of taking the snapshot. Snapshots merge —
    /// see [`spade_metrics::MetricsSnapshot::merge`] — which is how the
    /// sharded runtime builds its global view.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.queue_depth.set(self.sender.len() as u64);
        self.metrics.edges_resident.set(self.shared.edges_resident.load(Ordering::Acquire));
        self.metrics.registry.snapshot()
    }

    /// Signals shutdown, waits for the worker to drain the queue, and
    /// returns the final published detection.
    pub fn shutdown(mut self) -> PublishedDetection {
        self.join_worker();
        self.current_detection()
    }

    /// Like [`shutdown`](Self::shutdown), additionally handing back the
    /// worker's engine so callers can snapshot it or inspect the full
    /// peeling state after the drain. Returns `None` for the engine if
    /// `M` does not match the type the service was spawned with.
    pub fn shutdown_into_engine<M: DensityMetric + Send + 'static>(
        mut self,
    ) -> (PublishedDetection, Option<SpadeEngine<M>>) {
        self.join_worker();
        let engine = self
            .engine_back
            .try_recv()
            .ok()
            .and_then(|boxed| boxed.downcast::<SpadeEngine<M>>().ok())
            .map(|boxed| *boxed);
        (self.current_detection(), engine)
    }

    fn join_worker(&mut self) {
        let _ = self.sender.send(Command::Shutdown);
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

impl Drop for SpadeService {
    fn drop(&mut self) {
        self.join_worker();
    }
}

/// The detector worker: consumes [`Command`]s until shutdown, publishing
/// every new detection into `shared`. Every [`SpadeService`] runs one of
/// these — including the N services the sharded runtime wraps.
///
/// The loop blocks on the first command of a run, then drains whatever
/// else is already queued (up to the coalesce cap) and applies the whole
/// run through the batch path: one reorder pass, one publish attempt.
///
/// With latency budgets in play the drain becomes an event-driven wait:
/// when the queue runs dry while budgeted transactions are staged, the
/// worker spring-pushes the batch boundary — it sleeps on the channel
/// until either new work arrives or the earliest staged deadline (minus
/// a peel-cost margin estimated from the live reorder histogram) would
/// be at risk, whichever comes first. Budget-free runs never wait, so
/// the no-budget path is bit-identical to plain drain-coalescing.
fn worker_loop<M: DensityMetric + Send + 'static>(
    mut engine: SpadeEngine<M>,
    grouping: Option<GroupingConfig>,
    ingest: IngestConfig,
    receiver: Receiver<Command>,
    shared: Arc<SharedDetection>,
    metrics: Arc<WorkerMetrics>,
    engine_tx: Sender<Box<dyn Any + Send>>,
) {
    let mut grouper = grouping.map(EdgeGrouper::new);
    let coalesce = ingest.coalesce.max(1);
    let mut batch: Vec<(VertexId, VertexId, f64)> = Vec::with_capacity(coalesce.min(4096));
    // Arrival stamp + budget of every staged (ungrouped) insert, kept in
    // lockstep with `batch` so apply time can record the true submit →
    // apply wait and deadline slack per transaction.
    let mut pending: Vec<(Instant, Option<Duration>)> = Vec::with_capacity(coalesce.min(4096));
    let mut publisher = Publisher::default();
    let mut updates: u64 = 0;
    publisher.publish(&mut engine, &shared, updates, &metrics);
    let mut shutdown = false;
    while !shutdown {
        let Ok(first) = receiver.recv() else { break };
        // Drain-coalesce: pull whatever is already queued behind the
        // first command, stopping at the cap or a shutdown marker.
        //
        // Without a grouper, inserts accumulate into `batch` and apply
        // as one §4.2 pass at the end of the run. With a grouper, each
        // insert goes through per-edge urgency classification right here
        // (benign edges only touch the grouping buffer — no reorder, no
        // publish), and an urgent flush publishes *immediately*, so the
        // §4.3 real-time guarantee survives coalescing.
        let mut cmd = first;
        let mut run_len = 0usize;
        // Peel-cost margin for the spring push, resolved from the live
        // reorder histogram at most once per run (a snapshot allocates)
        // and only when a budgeted insert actually needs it.
        let mut margin: Option<Duration> = None;
        loop {
            match cmd {
                Command::Insert { src, dst, raw, queued, budget } => {
                    run_len += 1;
                    match grouper.as_mut() {
                        Some(g) => {
                            // Grouped inserts apply (or buffer) right
                            // here, so drain time IS apply time: one
                            // clock read covers the queue-wait sample
                            // and the start of processing time.
                            let drained = Instant::now();
                            record_wait(
                                &metrics,
                                drained.saturating_duration_since(queued),
                                budget,
                            );
                            updates += 1;
                            match g.submit(&mut engine, src, dst, raw) {
                                Ok(out) if out.flushed.is_some() => {
                                    // An urgent/capacity flush ran a real
                                    // reorder pass: attribute its cost to
                                    // the reorder/peel stage.
                                    metrics.reorder_ns.record_duration(drained.elapsed());
                                    metrics.registry.event(EventKind::Flush, updates);
                                    sync_flush_count(&grouper, &metrics);
                                    publisher.publish(&mut engine, &shared, updates, &metrics);
                                }
                                Ok(_) => {}
                                Err(_) => {
                                    metrics.rejected.inc();
                                }
                            }
                        }
                        None => {
                            // Staged inserts defer their queue-wait
                            // sample to apply time (the wait they pay
                            // includes any spring-push delay). No clock
                            // read per edge — apply stamps the batch
                            // once.
                            batch.push((src, dst, raw));
                            pending.push((queued, budget));
                        }
                    }
                    if run_len >= coalesce {
                        break;
                    }
                }
                Command::InsertBatch { edges, queued, budget } => {
                    // The command left the channel: its surplus edges no
                    // longer occupy queue slots (same as a drained
                    // per-edge run).
                    // audit: advisory backlog counter, races only widen queue_free slack
                    shared
                        .batched_backlog
                        .fetch_sub((edges.len().saturating_sub(1)) as u64, Ordering::Relaxed);
                    match grouper.as_mut() {
                        Some(g) => {
                            let drained = Instant::now();
                            let wait = drained.saturating_duration_since(queued);
                            for (src, dst, raw) in edges {
                                run_len += 1;
                                record_wait(&metrics, wait, budget);
                                updates += 1;
                                match g.submit(&mut engine, src, dst, raw) {
                                    Ok(out) if out.flushed.is_some() => {
                                        metrics.reorder_ns.record_duration(drained.elapsed());
                                        metrics.registry.event(EventKind::Flush, updates);
                                        // `g` stays borrowed across the
                                        // edge loop, so sync from it
                                        // directly.
                                        metrics.flushes.store(g.stats().flushes as u64);
                                        publisher.publish(&mut engine, &shared, updates, &metrics);
                                    }
                                    Ok(_) => {}
                                    Err(_) => {
                                        metrics.rejected.inc();
                                    }
                                }
                            }
                        }
                        None => {
                            for (src, dst, raw) in edges {
                                run_len += 1;
                                batch.push((src, dst, raw));
                                pending.push((queued, budget));
                                if batch.len() >= coalesce {
                                    // A frame can overshoot the coalesce
                                    // cap mid-command: flush the full
                                    // batch early and keep going — same
                                    // mid-run publish the urgent grouped
                                    // flush already does.
                                    apply_batch(
                                        &mut engine,
                                        &mut batch,
                                        &mut pending,
                                        &mut updates,
                                        &metrics,
                                    );
                                    publisher.publish(&mut engine, &shared, updates, &metrics);
                                }
                            }
                        }
                    }
                    if run_len >= coalesce {
                        break;
                    }
                }
                Command::Flush => {
                    apply_batch(&mut engine, &mut batch, &mut pending, &mut updates, &metrics);
                    if let Some(g) = grouper.as_mut() {
                        let before = g.stats().flushes;
                        let flush_started = Instant::now();
                        let _ = g.flush(&mut engine);
                        if g.stats().flushes > before {
                            metrics.reorder_ns.record_duration(flush_started.elapsed());
                            metrics.registry.event(EventKind::Flush, updates);
                        }
                    }
                }
                Command::Barrier { reply } => {
                    // Same drain-and-publish as a Region export, minus
                    // the snapshot: after the reply, `updates_applied`
                    // and the published detection cover every earlier
                    // command in the FIFO.
                    apply_batch(&mut engine, &mut batch, &mut pending, &mut updates, &metrics);
                    publisher.publish(&mut engine, &shared, updates, &metrics);
                    let _ = reply.send(());
                }
                Command::Region { hops, reply } => {
                    // Regions reflect everything submitted before the
                    // request, so drain the staged batch first. Buffered
                    // benign edges stay buffered — the region must agree
                    // with the published detection, which excludes them
                    // too. Publishing *here* (not at run end) keeps that
                    // agreement exact and lets the reply carry the final
                    // `(epoch, updates_applied)` marker for this state,
                    // so the repair scheduler can record the export as
                    // seen instead of re-running over its own drain.
                    apply_batch(&mut engine, &mut batch, &mut pending, &mut updates, &metrics);
                    publisher.publish(&mut engine, &shared, updates, &metrics);
                    let det = engine.detect();
                    let members: Arc<[VertexId]> = Arc::from(engine.community(det));
                    let snapshot =
                        crate::persist::SubgraphSnapshot::extract(engine.graph(), &members, hops);
                    let _ = reply.send(CandidateRegion {
                        size: det.size,
                        density: det.density,
                        members,
                        encoded: snapshot.encode(),
                        updates_applied: updates,
                        epoch: publisher.epoch,
                    });
                }
                Command::MigrateOut { members, reply } => {
                    // Everything submitted before this marker must be in
                    // the slice: drain the staged batch AND the grouping
                    // buffer (a benign edge of a migrated member left in
                    // the buffer would resurrect on this shard after the
                    // eviction and be stranded for good).
                    apply_batch(&mut engine, &mut batch, &mut pending, &mut updates, &metrics);
                    if let Some(g) = grouper.as_mut() {
                        let _ = g.flush(&mut engine);
                    }
                    sync_flush_count(&grouper, &metrics);
                    let mut snapshot =
                        crate::persist::SubgraphSnapshot::extract(engine.graph(), &members, 0);
                    snapshot.prune_isolated();
                    // Eviction cannot fail on a live single-threaded
                    // graph (every collected edge exists, every weight
                    // clears to zero) — and shipping an extracted slice
                    // after a PARTIAL eviction would double-count the
                    // remainder fleet-wide, so a failure here must be
                    // loud, not limped past.
                    engine
                        .remove_member_slice(&members)
                        .expect("slice eviction cannot fail on a live graph");
                    publisher.publish(&mut engine, &shared, updates, &metrics);
                    let _ = reply.send(MigrationSlice {
                        vertices: snapshot.vertices.len(),
                        edges: snapshot.edges.len(),
                        edge_weight: snapshot.edge_weight_total(),
                        encoded: snapshot.encode(),
                        updates_applied: updates,
                    });
                }
                Command::Absorb { slice, reply } => {
                    apply_batch(&mut engine, &mut batch, &mut pending, &mut updates, &metrics);
                    let receipt = absorb_slice(&mut engine, &slice);
                    if receipt.rejected > 0 {
                        metrics.rejected.add(receipt.rejected);
                    }
                    publisher.publish(&mut engine, &shared, updates, &metrics);
                    let _ = reply.send(receipt);
                }
                Command::Shutdown => {
                    shutdown = true;
                    break;
                }
            }
            cmd = match receiver.try_recv() {
                Ok(next) => next,
                Err(_) => {
                    // Queue ran dry mid-run. Spring push: if every staged
                    // insert still has budget slack past the peel margin,
                    // hold the batch open and sleep on the channel until
                    // new work arrives or the earliest boundary hits —
                    // whichever comes first. Budget-free batches (and
                    // boundaries already past) apply immediately, exactly
                    // like the pre-deadline drain-coalesce.
                    match spring_wait(&pending, &mut margin, &metrics) {
                        Some(timeout) => match receiver.recv_timeout(timeout) {
                            Ok(next) => next,
                            Err(_) => break,
                        },
                        None => break,
                    }
                }
            };
        }
        apply_batch(&mut engine, &mut batch, &mut pending, &mut updates, &metrics);
        if shutdown {
            // Final drain so the last published state reflects every
            // submission that preceded the shutdown marker.
            if let Some(g) = grouper.as_mut() {
                let _ = g.flush(&mut engine);
            }
        }
        sync_flush_count(&grouper, &metrics);
        publisher.publish(&mut engine, &shared, updates, &metrics);
    }
    // All senders gone without an explicit shutdown marker: drain what
    // the grouper still buffers and publish the final state.
    if !shutdown {
        if let Some(g) = grouper.as_mut() {
            let _ = g.flush(&mut engine);
        }
        sync_flush_count(&grouper, &metrics);
        publisher.publish(&mut engine, &shared, updates, &metrics);
    }
    let _ = engine_tx.send(Box::new(engine));
}

/// Replays a migrated slice into `engine`: vertex suspiciousness is
/// installed max-wise (both shards evaluated the same metric prior, so
/// the maximum is exact for the built-ins and conservative otherwise),
/// edge weights **accumulate** — a pair whose transactions were split
/// across the two shards by an earlier home change sums back to exactly
/// the solo-engine weight.
fn absorb_slice<M: DensityMetric>(
    engine: &mut SpadeEngine<M>,
    slice: &MigrationSlice,
) -> AbsorbReceipt {
    let mut receipt = AbsorbReceipt::default();
    let snapshot = match crate::persist::SubgraphSnapshot::decode(&slice.encoded) {
        Ok(snapshot) => snapshot,
        Err(_) => {
            receipt.rejected = (slice.vertices + slice.edges) as u64;
            return receipt;
        }
    };
    for &(u, w) in &snapshot.vertices {
        if engine.ensure_vertex(u).is_err() {
            receipt.rejected += 1;
            continue;
        }
        if w > engine.graph().vertex_weight(u) && engine.set_vertex_suspiciousness(u, w).is_err() {
            receipt.rejected += 1;
            continue;
        }
        receipt.vertices_touched += 1;
    }
    let (_, rejected) = engine.insert_batch_weighted_tolerant(&snapshot.edges);
    receipt.rejected += rejected;
    receipt.edges_applied = snapshot.edges.len() - rejected as usize;
    receipt
}

/// Scheduling slack added on top of the measured peel cost when the
/// spring push computes how long a budgeted batch may stay open: absorbs
/// OS timer oversleep and the wake-to-apply gap, so a feasible operating
/// point records zero deadline misses rather than flapping on noise.
/// Sized for the noisiest supported host — a container time-slicing one
/// hardware thread, where a runnable thread is routinely frozen for
/// several milliseconds — because a missed deadline costs more than the
/// coalescing the reserve gives up; budgets at or under the reserve
/// degrade to immediate per-edge applies, which is the correct limit.
/// Public so harnesses judging the zero-miss contract (the frontier
/// bench's stall probe) can tell a scheduler miss from a platform
/// stall bigger than this reserve.
pub const SCHED_SLACK: Duration = Duration::from_millis(5);

/// Records one transaction's submit → apply wait plus, when it carried a
/// latency budget, the deadline outcome: remaining slack on time,
/// miss counter + zero slack (and a trace event with the overshoot in
/// microseconds) when the budget had already elapsed.
fn record_wait(metrics: &WorkerMetrics, wait: Duration, budget: Option<Duration>) {
    metrics.queue_wait_ns.record_duration(wait);
    let Some(budget) = budget else { return };
    if wait > budget {
        metrics.deadline_miss.inc();
        metrics.deadline_slack_ns.record(0);
        let overshoot_us = (wait - budget).as_micros().min(u64::MAX as u128) as u64;
        metrics.registry.event(EventKind::DeadlineMiss, overshoot_us);
    } else {
        metrics.deadline_slack_ns.record_duration(budget - wait);
    }
}

/// How long the staged batch may stay open before the earliest budget is
/// at risk: `min(arrival + budget) − peel margin − now`, where the peel
/// margin is the live reorder-latency p99 plus [`SCHED_SLACK`]. `None`
/// means apply now — the batch is empty, holds no budgeted insert (the
/// exact legacy drain-coalesce case), or its boundary has already
/// passed. The margin is resolved lazily and cached in `margin` so a
/// run snapshots the histogram at most once.
fn spring_wait(
    pending: &[(Instant, Option<Duration>)],
    margin: &mut Option<Duration>,
    metrics: &WorkerMetrics,
) -> Option<Duration> {
    let mut boundary: Option<Instant> = None;
    for &(queued, budget) in pending {
        let Some(budget) = budget else { continue };
        let m = *margin.get_or_insert_with(|| {
            Duration::from_nanos(metrics.reorder_ns.snapshot().p99()) + SCHED_SLACK
        });
        let latest = queued + budget.saturating_sub(m);
        boundary = Some(boundary.map_or(latest, |cur| cur.min(latest)));
    }
    boundary?.checked_duration_since(Instant::now()).filter(|d| !d.is_zero())
}

/// Applies the accumulated insert batch of an ungrouped worker as one
/// §4.2 batch insertion (one reorder pass). Malformed transactions are
/// counted, never fatal. Records the batch size, each transaction's
/// queue wait and deadline outcome (stamped here, where the wait truly
/// ends), and the reorder/peel wall time — the processing half of
/// Eq. 4's latency split. A single-command drain skips the batch-path
/// setup entirely and inserts per-edge — §4.2 makes a batch of one
/// identical, and drip traffic should not pay batching overhead for it.
fn apply_batch<M: DensityMetric>(
    engine: &mut SpadeEngine<M>,
    batch: &mut Vec<(VertexId, VertexId, f64)>,
    pending: &mut Vec<(Instant, Option<Duration>)>,
    updates: &mut u64,
    metrics: &WorkerMetrics,
) {
    debug_assert_eq!(batch.len(), pending.len(), "batch and pending metadata diverged");
    if batch.is_empty() {
        pending.clear();
        return;
    }
    let applied_at = Instant::now();
    for &(queued, budget) in pending.iter() {
        record_wait(metrics, applied_at.saturating_duration_since(queued), budget);
    }
    pending.clear();
    *updates += batch.len() as u64;
    metrics.batch_size.record(batch.len() as u64);
    if let [(src, dst, raw)] = batch[..] {
        let reorder_started = Instant::now();
        if engine.insert_edge(src, dst, raw).is_err() {
            metrics.rejected.inc();
        }
        metrics.reorder_ns.record_duration(reorder_started.elapsed());
        batch.clear();
        return;
    }
    let reorder_started = Instant::now();
    let (_, rejected) = engine.insert_batch_tolerant(batch);
    metrics.reorder_ns.record_duration(reorder_started.elapsed());
    if rejected > 0 {
        metrics.rejected.add(rejected);
    }
    batch.clear();
}

/// Mirrors the grouper's own flush counter into the exported telemetry —
/// the grouper is the single source of truth for what counts as a flush.
fn sync_flush_count(grouper: &Option<EdgeGrouper>, metrics: &WorkerMetrics) {
    if let Some(g) = grouper.as_ref() {
        metrics.flushes.store(g.stats().flushes as u64);
    }
}

/// Worker-local publish state: detects whether the detection changed
/// since the last swap so unchanged publishes cost two comparisons, not
/// an allocation plus a member-list clone.
#[derive(Debug)]
struct Publisher {
    epoch: u64,
    last: Detection,
    /// Cumulative reorder-window count at the last swap; a rewritten
    /// window is the only way the community membership can change while
    /// the (size, density) descriptor stays equal.
    last_windows: Option<usize>,
}

impl Default for Publisher {
    fn default() -> Self {
        Publisher { epoch: 0, last: Detection::EMPTY, last_windows: None }
    }
}

impl Publisher {
    fn publish<M: DensityMetric>(
        &mut self,
        engine: &mut SpadeEngine<M>,
        shared: &SharedDetection,
        updates: u64,
        metrics: &WorkerMetrics,
    ) {
        let publish_started = Instant::now();
        // Exactness accounting advances on every attempt, even when the
        // snapshot itself is not swapped. The resident-size store comes
        // first: a reader that observes the new update count is then
        // guaranteed (release/acquire on `updates_applied`) to see a
        // graph size at least as fresh.
        shared.edges_resident.store(engine.graph().num_edges() as u64, Ordering::Release);
        shared.updates_applied.store(updates, Ordering::Release);
        metrics.updates.store(updates);
        let det: Detection = engine.detect();
        let windows = engine.total_reorder_stats().windows;
        if self.last_windows == Some(windows) && det == self.last {
            metrics.skipped_unchanged.inc();
            metrics.publish_ns.record_duration(publish_started.elapsed());
            return;
        }
        self.last_windows = Some(windows);
        self.last = det;
        self.epoch += 1;
        let members: Arc<[VertexId]> = Arc::from(engine.community(det));
        *shared.detection.write() = PublishedDetection {
            size: det.size,
            density: det.density,
            members,
            updates_applied: updates,
            epoch: self.epoch,
        };
        metrics.publishes.inc();
        metrics.publish_ns.record_duration(publish_started.elapsed());
        metrics.registry.event(EventKind::Publish, self.epoch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::{UnweightedDensity, WeightedDensity};

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    #[test]
    fn service_detects_fraud_ring_from_stream() {
        let engine = SpadeEngine::new(WeightedDensity);
        let service = SpadeService::spawn(engine, None, 64);
        // Background noise.
        for i in 0..10u32 {
            assert!(service.submit(v(i), v(i + 1), 1.0));
        }
        // Fraud ring.
        for a in 50..54u32 {
            for b in 50..54u32 {
                if a != b {
                    assert!(service.submit(v(a), v(b), 25.0));
                }
            }
        }
        let final_det = service.shutdown();
        assert!(final_det.density > 10.0);
        assert!(final_det.members.iter().all(|m| (50..54).contains(&m.0)));
        assert_eq!(final_det.updates_applied, 10 + 12);
    }

    #[test]
    fn grouped_service_publishes_after_flush() {
        let mut engine = SpadeEngine::new(WeightedDensity);
        // Establish a community so benign edges buffer.
        for a in 0..3u32 {
            for b in 0..3u32 {
                if a != b {
                    engine.insert_edge(v(a), v(b), 20.0).unwrap();
                }
            }
        }
        let service = SpadeService::spawn(engine, Some(GroupingConfig::default()), 16);
        service.submit(v(10), v(11), 0.01); // benign: buffered
        service.flush();
        // Allow the worker to process.
        for _ in 0..2_000 {
            if service.current_detection().updates_applied >= 1 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        let det = service.shutdown();
        assert!(det.size >= 3);
        assert_eq!(det.updates_applied, 1);
    }

    #[test]
    fn readers_see_published_snapshots_concurrently() {
        let engine = SpadeEngine::new(WeightedDensity);
        let service = Arc::new(SpadeService::spawn(engine, None, 128));
        let reader = {
            let service = Arc::clone(&service);
            std::thread::spawn(move || {
                let mut max_seen = 0u64;
                for _ in 0..50 {
                    max_seen = max_seen.max(service.current_detection().updates_applied);
                    std::thread::yield_now();
                }
                max_seen
            })
        };
        for i in 0..100u32 {
            service.submit(v(i % 20), v((i + 1) % 20), 1.0 + i as f64);
        }
        let _ = reader.join().unwrap();
        let service = Arc::try_unwrap(service).unwrap_or_else(|_| panic!("readers done"));
        let det = service.shutdown();
        assert_eq!(det.updates_applied, 100);
        assert!(det.size > 0);
    }

    #[test]
    fn drop_shuts_down_cleanly() {
        let engine = SpadeEngine::new(WeightedDensity);
        let service = SpadeService::spawn(engine, None, 8);
        service.submit(v(0), v(1), 1.0);
        drop(service); // must not hang or panic
    }

    #[test]
    fn stats_count_flushes_and_publishes() {
        let mut engine = SpadeEngine::new(WeightedDensity);
        for a in 0..3u32 {
            for b in 0..3u32 {
                if a != b {
                    engine.insert_edge(v(a), v(b), 20.0).unwrap();
                }
            }
        }
        let service = SpadeService::spawn(engine, Some(GroupingConfig::default()), 16);
        service.submit(v(10), v(11), 0.01); // benign: buffered
        service.flush();
        for _ in 0..2_000 {
            if service.stats().flushes >= 1 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        let stats = service.stats();
        assert!(stats.flushes >= 1);
        assert!(stats.publishes >= 1);
        drop(service);
    }

    #[test]
    fn coalesced_run_matches_per_edge_processing() {
        // The same stream through a coalescing service and a solo
        // per-edge engine must produce bit-identical peeling state —
        // §4.2 equivalence exercised end to end through the worker loop.
        let mut edges: Vec<(VertexId, VertexId, f64)> = Vec::new();
        for i in 0..60u32 {
            edges.push((v(i % 17), v((i * 7 + 1) % 17), 1.0 + (i % 5) as f64));
        }
        for a in 40..44u32 {
            for b in 40..44u32 {
                if a != b {
                    edges.push((v(a), v(b), 30.0));
                }
            }
        }
        let service = SpadeService::spawn_with(
            SpadeEngine::new(WeightedDensity),
            None,
            IngestConfig { queue_capacity: 256, coalesce: 16, deadline: None },
            "coalesce-test".into(),
        );
        for &(a, b, w) in &edges {
            assert!(service.submit(a, b, w));
        }
        let (det, engine) = service.shutdown_into_engine::<WeightedDensity>();
        let mut coalesced = engine.expect("engine handed back");
        assert_eq!(det.updates_applied, edges.len() as u64);

        let mut solo = SpadeEngine::new(WeightedDensity);
        for &(a, b, w) in &edges {
            // Drop malformed edges (self-loops from the generator),
            // exactly like the worker does.
            let _ = solo.insert_edge(a, b, w);
        }
        assert_eq!(coalesced.state().logical_order(), solo.state().logical_order());
        assert_eq!(coalesced.detect(), solo.detect());
        assert_eq!(det.size, solo.detect().size);
    }

    #[test]
    fn malformed_inserts_are_counted_not_dropped_silently() {
        let service = SpadeService::spawn(SpadeEngine::new(WeightedDensity), None, 32);
        assert!(service.submit(v(0), v(1), 2.0));
        assert!(service.submit(v(5), v(5), 1.0)); // self-loop: rejected
        assert!(service.submit(v(1), v(2), -3.0)); // negative susp: rejected
        assert!(service.submit(v(1), v(2), 1.0));
        let before_shutdown = {
            // Drain deterministically: poll until all four commands are
            // accounted for.
            for _ in 0..2_000 {
                if service.stats().updates_applied >= 4 {
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            service.stats()
        };
        assert_eq!(before_shutdown.updates_applied, 4);
        assert_eq!(before_shutdown.rejected, 2);
        let det = service.shutdown();
        assert_eq!(det.updates_applied, 4);
    }

    #[test]
    fn unchanged_detection_skips_the_snapshot_swap() {
        // DG set semantics: duplicate pairs are redundant, so repeated
        // submissions change nothing and must not re-publish.
        let mut engine = SpadeEngine::new(UnweightedDensity);
        engine.insert_edge(v(0), v(1), 1.0).unwrap();
        let service = SpadeService::spawn(engine, None, 32);
        // Wait for the worker's initial publish so `first` is the real
        // epoch-1 snapshot, not the pre-spawn default.
        for _ in 0..2_000 {
            if service.stats().publishes >= 1 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let first = service.current_detection();
        assert_eq!(first.epoch, 1, "worker must have published its initial snapshot");
        for _ in 0..20 {
            assert!(service.submit(v(0), v(1), 1.0));
        }
        for _ in 0..2_000 {
            if service.stats().updates_applied >= 20 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let stats = service.stats();
        assert!(stats.skipped_unchanged >= 1, "redundant runs must skip the swap");
        let second = service.current_detection();
        assert_eq!(first.epoch, second.epoch);
        // Zero-copy: the member list is the same allocation, not a copy.
        assert!(Arc::ptr_eq(&first.members, &second.members));
        drop(service);
    }

    #[test]
    fn epoch_advances_when_the_detection_changes() {
        let service = SpadeService::spawn(SpadeEngine::new(WeightedDensity), None, 32);
        let before = service.current_detection();
        for a in 10..13u32 {
            for b in 10..13u32 {
                if a != b {
                    assert!(service.submit(v(a), v(b), 9.0));
                }
            }
        }
        let det = service.shutdown();
        assert!(det.epoch > before.epoch);
        assert!(det.size > 0);
    }

    #[test]
    fn migrate_out_then_absorb_moves_a_slice_between_workers() {
        let source = SpadeService::spawn(SpadeEngine::new(WeightedDensity), None, 64);
        let target = SpadeService::spawn(SpadeEngine::new(WeightedDensity), None, 64);
        // Source: a dominant ring over 10..13 plus background noise.
        for i in 0..5u32 {
            assert!(source.submit(v(i), v(i + 1), 1.0));
        }
        for a in 10..13u32 {
            for b in 10..13u32 {
                if a != b {
                    assert!(source.submit(v(a), v(b), 20.0));
                }
            }
        }
        // Target already holds part of the same accumulated pair: the
        // absorbed weight must ADD, reassembling the solo total.
        assert!(target.submit(v(10), v(11), 5.0));

        let members: Arc<[VertexId]> = (10..13).map(v).collect::<Vec<_>>().into();
        let slice = source.migrate_out(Arc::clone(&members)).expect("source alive");
        assert_eq!(slice.vertices, 3);
        assert_eq!(slice.edges, 6);
        assert!((slice.edge_weight - 120.0).abs() < 1e-9);
        assert!(!slice.is_empty());

        let receipt = target.absorb(slice).expect("target alive");
        assert_eq!(receipt.edges_applied, 6);
        assert_eq!(receipt.rejected, 0);

        // Source fell back to the noise path; target now detects the
        // ring with the accumulated pair weight.
        let source_det = source.shutdown();
        assert!(source_det.members.iter().all(|m| m.0 <= 5));
        let (target_det, engine) = target.shutdown_into_engine::<WeightedDensity>();
        let engine = engine.expect("engine handed back");
        assert!(target_det.members.iter().all(|m| (10..13).contains(&m.0)));
        assert_eq!(engine.graph().edge_weight(v(10), v(11)), Some(25.0));
        assert!((target_det.density - (120.0 + 5.0) / 3.0).abs() < 1e-9);
    }

    #[test]
    fn migrating_an_absent_component_yields_an_empty_slice() {
        let source = SpadeService::spawn(SpadeEngine::new(WeightedDensity), None, 16);
        assert!(source.submit(v(0), v(1), 2.0));
        // Members far outside anything this worker holds.
        let members: Arc<[VertexId]> = vec![v(500), v(501)].into();
        let slice = source.migrate_out(members).expect("alive");
        assert!(slice.is_empty());
        assert_eq!(slice.edge_weight, 0.0);
        // Absorbing an empty slice is a harmless no-op.
        let target = SpadeService::spawn(SpadeEngine::new(WeightedDensity), None, 16);
        let receipt = target.absorb(slice).expect("alive");
        assert_eq!(receipt.edges_applied, 0);
        assert_eq!(receipt.rejected, 0);
        let det = source.shutdown();
        assert_eq!(det.updates_applied, 1);
        drop(target);
    }

    #[test]
    fn grouped_source_flushes_its_buffer_before_migrating_out() {
        let mut engine = SpadeEngine::new(WeightedDensity);
        // Established community so later benign member edges buffer.
        for a in 10..13u32 {
            for b in 10..13u32 {
                if a != b {
                    engine.insert_edge(v(a), v(b), 20.0).unwrap();
                }
            }
        }
        let source = SpadeService::spawn(engine, Some(GroupingConfig::default()), 16);
        // A benign edge touching a migrated member: buffered, not yet in
        // the graph — the migrate-out flush must capture it.
        assert!(source.submit(v(10), v(12), 0.01));
        let members: Arc<[VertexId]> = (10..13).map(v).collect::<Vec<_>>().into();
        let slice = source.migrate_out(members).expect("alive");
        assert!(
            (slice.edge_weight - 120.01).abs() < 1e-9,
            "buffered edge lost: {}",
            slice.edge_weight
        );
        let det = source.shutdown();
        assert_eq!(det.size, 0, "everything was evicted");
    }

    #[test]
    fn stage_histograms_reconcile_with_updates_applied() {
        let service = SpadeService::spawn(SpadeEngine::new(WeightedDensity), None, 256);
        for i in 0..200u32 {
            assert!(service.submit(v(i % 20), v((i + 1) % 20), 1.0 + (i % 7) as f64));
        }
        for _ in 0..2_000 {
            if service.stats().updates_applied >= 200 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let stats = service.stats();
        assert_eq!(stats.updates_applied, 200);
        assert!(stats.uptime_secs > 0.0);

        let snap = service.metrics();
        // Every submitted insert is timed through the queue exactly once,
        // so the queue-wait histogram count IS the update count …
        let queue_wait = &snap.histograms[metric_names::STAGE_QUEUE_WAIT_NS];
        assert_eq!(queue_wait.count, 200);
        // … and the coalesced batches partition the same inserts.
        let batch = &snap.histograms[metric_names::COALESCE_BATCH_SIZE];
        assert_eq!(batch.sum, 200);
        assert!(batch.count >= 1 && batch.count <= 200);
        assert_eq!(snap.counters[metric_names::UPDATES_TOTAL], 200);

        // Processing stages ran and their latencies are sane.
        let reorder = &snap.histograms[metric_names::STAGE_REORDER_NS];
        assert_eq!(reorder.count, batch.count, "one reorder pass per applied batch");
        let publish = &snap.histograms[metric_names::STAGE_PUBLISH_NS];
        assert!(publish.count >= 1);
        assert!(publish.p99() <= publish.max);
        assert!(snap.counters[metric_names::PUBLISHES_TOTAL] >= 1);

        // The event ring saw the publishes.
        assert!(snap.events.iter().any(|e| e.kind == EventKind::Publish));
        drop(service);
    }

    #[test]
    fn generous_budget_records_slack_and_no_misses() {
        let service = SpadeService::spawn_with(
            SpadeEngine::new(WeightedDensity),
            None,
            IngestConfig {
                queue_capacity: 64,
                coalesce: 16,
                deadline: Some(Duration::from_secs(30)),
            },
            "budget-loose".into(),
        );
        for i in 0..40u32 {
            assert!(service.submit(v(i % 9), v((i + 1) % 9), 1.0 + (i % 3) as f64));
        }
        // The 30s budget would hold the last partial batch open for a
        // long time; a Flush command wakes the spring wait and forces
        // the apply — the "new command" half of the event-driven wait.
        assert!(service.flush());
        for _ in 0..2_000 {
            if service.stats().updates_applied >= 40 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let stats = service.stats();
        assert_eq!(stats.updates_applied, 40);
        assert_eq!(stats.deadline_miss, 0, "a 30s budget cannot be missed in-process");
        let snap = service.metrics();
        let slack = &snap.histograms[metric_names::DEADLINE_SLACK_NS];
        assert_eq!(slack.count, 40, "every budgeted insert records a slack sample");
        assert!(slack.p50() > 0);
        assert_eq!(snap.counters[metric_names::DEADLINE_MISS_TOTAL], 0);
        drop(service);
    }

    #[test]
    fn spring_push_holds_the_batch_until_the_budget_boundary() {
        let budget = Duration::from_millis(300);
        let service = SpadeService::spawn_with(
            SpadeEngine::new(WeightedDensity),
            None,
            IngestConfig { queue_capacity: 64, coalesce: 64, deadline: Some(budget) },
            "budget-hold".into(),
        );
        let submitted = Instant::now();
        assert!(service.submit(v(1), v(2), 3.0));
        // Well before the boundary the batch must still be open …
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(
            service.stats().updates_applied,
            0,
            "budgeted insert applied early: the spring push did not hold"
        );
        // … and by the boundary (+ scheduling headroom) it must land.
        for _ in 0..2_000 {
            if service.stats().updates_applied >= 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        let waited = submitted.elapsed();
        let stats = service.stats();
        assert_eq!(stats.updates_applied, 1);
        assert!(
            waited >= Duration::from_millis(150),
            "applied after only {waited:?} — boundary ignored"
        );
        assert_eq!(stats.deadline_miss, 0, "the boundary leaves a peel margin of slack");
        drop(service);
    }

    #[test]
    fn zero_budget_counts_every_insert_as_missed() {
        let service = SpadeService::spawn_with(
            SpadeEngine::new(WeightedDensity),
            None,
            IngestConfig { queue_capacity: 64, coalesce: 16, deadline: Some(Duration::ZERO) },
            "budget-zero".into(),
        );
        for i in 0..25u32 {
            assert!(service.submit(v(i % 7), v((i + 1) % 7), 2.0));
        }
        for _ in 0..2_000 {
            if service.stats().updates_applied >= 25 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let stats = service.stats();
        assert_eq!(stats.updates_applied, 25);
        // A zero budget has already elapsed by apply time, so every
        // insert is a miss — and the scheduler degrades to immediate
        // application instead of waiting (the boundary is always past).
        assert_eq!(stats.deadline_miss, 25);
        let snap = service.metrics();
        let slack = &snap.histograms[metric_names::DEADLINE_SLACK_NS];
        assert_eq!(slack.count, 25);
        assert_eq!(slack.max, 0, "misses record zero slack");
        assert!(snap.events.iter().any(|e| e.kind == EventKind::DeadlineMiss));
        drop(service);
    }

    #[test]
    fn submit_batch_feeds_every_edge_through_one_queue_slot() {
        let service = SpadeService::spawn_with(
            SpadeEngine::new(WeightedDensity),
            None,
            IngestConfig { queue_capacity: 4, coalesce: 8, deadline: None },
            "batch-submit".into(),
        );
        assert_eq!(service.queue_capacity(), 4);
        let edges: Vec<(VertexId, VertexId, f64)> =
            (0..30u32).map(|i| (v(i % 11), v((i * 3 + 1) % 11), 1.0 + (i % 4) as f64)).collect();
        // 30 edges, queue bound 4: only possible because the whole run
        // occupies a single slot.
        assert!(service.submit_batch(edges.clone(), None));
        assert!(service.submit_batch(Vec::new(), None), "empty batch is a no-op");
        let (det, engine) = service.shutdown_into_engine::<WeightedDensity>();
        let mut batched = engine.expect("engine handed back");
        assert_eq!(det.updates_applied, 30);

        let mut solo = SpadeEngine::new(WeightedDensity);
        for &(a, b, w) in &edges {
            let _ = solo.insert_edge(a, b, w);
        }
        assert_eq!(batched.state().logical_order(), solo.state().logical_order());
        assert_eq!(batched.detect(), solo.detect());
    }

    #[test]
    fn coalesce_cap_one_reproduces_per_edge_publishing() {
        let service = SpadeService::spawn_with(
            SpadeEngine::new(WeightedDensity),
            None,
            IngestConfig { queue_capacity: 4, coalesce: 1, deadline: None },
            "per-edge".into(),
        );
        for i in 0..10u32 {
            assert!(service.submit(v(i), v(i + 1), 2.0));
        }
        let det = service.shutdown();
        assert_eq!(det.updates_applied, 10);
        assert!(det.size > 0);
    }
}
