//! Engine-state snapshots (the "Storage system (DFS)" box of the paper's
//! Fig. 4 architecture).
//!
//! In production the transaction graph and its peeling state outlive any
//! single process: Grab's pipeline loads the graph from a distributed file
//! system, and a restarted detector must resume **without** re-peeling
//! millions of vertices. A snapshot stores the graph (vertices, weights,
//! edges) *and* the peeling sequence with its weights, so
//! [`load_engine`] restores in O(|V| + |E|) straight into serving — no
//! static peel.
//!
//! Format: a small length-prefixed binary layout built on [`bytes`]
//! (magic + version header, little-endian fixed-width integers, `f64`
//! bits). Written via any `io::Write`, read via any `io::Read`.

use crate::engine::{SpadeConfig, SpadeEngine};
use crate::metric::DensityMetric;
use crate::peel::PeelingOutcome;
use crate::state::PeelingState;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use spade_graph::hash::{FxHashMap, FxHashSet};
use spade_graph::{DynamicGraph, GraphError, VertexId};
use std::io::{Read, Write};

/// Overflow-safe section length check: `count` records of `width` bytes
/// must fit in the remaining buffer (a crafted 64-bit count must fail
/// decoding, not wrap the multiplication and crash later).
fn check_section(
    buf: &Bytes,
    count: usize,
    width: usize,
    what: &'static str,
) -> Result<(), SnapshotError> {
    match count.checked_mul(width) {
        Some(need) if buf.remaining() >= need => Ok(()),
        _ => Err(SnapshotError::Corrupt(what)),
    }
}

/// Snapshot magic: "SPDE".
const MAGIC: u32 = 0x5350_4445;
/// Current snapshot format version.
const VERSION: u32 = 1;
/// Subgraph snapshot magic: "SPSG".
const SUBGRAPH_MAGIC: u32 = 0x5350_5347;
/// Current subgraph format version.
const SUBGRAPH_VERSION: u32 = 1;

/// Errors raised while decoding a snapshot.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Wrong magic number (not a Spade snapshot).
    BadMagic(u32),
    /// Unsupported format version.
    BadVersion(u32),
    /// Structurally invalid payload.
    Corrupt(&'static str),
    /// The decoded graph violated model invariants.
    Graph(GraphError),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            SnapshotError::BadMagic(m) => write!(f, "bad magic 0x{m:08x}: not a Spade snapshot"),
            SnapshotError::BadVersion(v) => write!(f, "unsupported snapshot version {v}"),
            SnapshotError::Corrupt(what) => write!(f, "corrupt snapshot: {what}"),
            SnapshotError::Graph(e) => write!(f, "snapshot violates graph invariants: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

impl From<GraphError> for SnapshotError {
    fn from(e: GraphError) -> Self {
        SnapshotError::Graph(e)
    }
}

/// Serializes the engine's graph and peeling state into `writer`.
pub fn save_engine<M: DensityMetric, W: Write>(
    engine: &SpadeEngine<M>,
    mut writer: W,
) -> Result<(), SnapshotError> {
    let bytes = encode(engine.graph(), engine.state());
    writer.write_all(&bytes)?;
    writer.flush()?;
    Ok(())
}

/// Restores an engine from a snapshot, resuming incremental service
/// without a static peel. The metric is supplied by the caller (snapshots
/// carry data, not code).
pub fn load_engine<M: DensityMetric, R: Read>(
    metric: M,
    config: SpadeConfig,
    mut reader: R,
) -> Result<SpadeEngine<M>, SnapshotError> {
    let mut raw = Vec::new();
    reader.read_to_end(&mut raw)?;
    let (graph, state) = decode(Bytes::from(raw))?;
    Ok(SpadeEngine::from_parts(graph, state, metric, config))
}

fn encode(graph: &DynamicGraph, state: &PeelingState) -> Bytes {
    let n = graph.num_vertices();
    let m = graph.num_edges();
    let mut buf = BytesMut::with_capacity(24 + n * 8 + m * 20 + state.len() * 12);
    buf.put_u32_le(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u64_le(n as u64);
    buf.put_u64_le(m as u64);
    for u in graph.vertices() {
        buf.put_f64_le(graph.vertex_weight(u));
    }
    for (src, dst, w) in graph.iter_edges() {
        buf.put_u32_le(src.0);
        buf.put_u32_le(dst.0);
        buf.put_f64_le(w);
    }
    // Peeling state, in physical (rank) order.
    buf.put_u64_le(state.len() as u64);
    for (&u, &d) in state.seq_phys().iter().zip(state.delta_phys()) {
        buf.put_u32_le(u.0);
        buf.put_f64_le(d);
    }
    buf.freeze()
}

fn decode(mut buf: Bytes) -> Result<(DynamicGraph, PeelingState), SnapshotError> {
    if buf.remaining() < 24 {
        return Err(SnapshotError::Corrupt("truncated header"));
    }
    let magic = buf.get_u32_le();
    if magic != MAGIC {
        return Err(SnapshotError::BadMagic(magic));
    }
    let version = buf.get_u32_le();
    if version != VERSION {
        return Err(SnapshotError::BadVersion(version));
    }
    let n = buf.get_u64_le() as usize;
    let m = buf.get_u64_le() as usize;
    check_section(&buf, n, 8, "truncated vertex table")?;
    let mut graph = DynamicGraph::with_capacity(n);
    for _ in 0..n {
        graph.add_vertex(buf.get_f64_le())?;
    }
    // 4 (src) + 4 (dst) + 8 (weight) bytes per edge.
    check_section(&buf, m, 16, "truncated edge table")?;
    for _ in 0..m {
        let src = VertexId(buf.get_u32_le());
        let dst = VertexId(buf.get_u32_le());
        let w = buf.get_f64_le();
        graph.insert_edge(src, dst, w)?;
    }
    if buf.remaining() < 8 {
        return Err(SnapshotError::Corrupt("missing peeling state header"));
    }
    let len = buf.get_u64_le() as usize;
    if len != n {
        return Err(SnapshotError::Corrupt("peeling state does not cover the vertex set"));
    }
    check_section(&buf, len, 12, "truncated peeling state")?;
    // Rebuild via logical order (PeelingOutcome is logical-first).
    let mut order = Vec::with_capacity(len);
    let mut weights = Vec::with_capacity(len);
    for _ in 0..len {
        order.push(VertexId(buf.get_u32_le()));
        weights.push(buf.get_f64_le());
    }
    order.reverse();
    weights.reverse();
    for u in &order {
        if !graph.contains_vertex(*u) {
            return Err(SnapshotError::Corrupt("peeling state references unknown vertex"));
        }
    }
    let outcome = PeelingOutcome {
        order,
        weights,
        best_prefix: 0,
        best_density: 0.0,
        total_weight: graph.total_weight(),
    };
    let state = PeelingState::from_outcome(&outcome);
    if state.len() != graph.num_vertices() {
        return Err(SnapshotError::Corrupt("duplicate vertices in peeling state"));
    }
    Ok((graph, state))
}

/// A self-contained slice of a transaction graph: explicit (sparse,
/// global) vertex ids with their suspiciousness weights, plus every edge
/// of the induced subgraph.
///
/// Unlike the full-engine snapshot above — dense ids, peeling state
/// included — a subgraph carries no peeling state: the consumer re-peels
/// whatever union of subgraphs it assembles. This is the candidate-region
/// wire format of the cross-shard repair pass (`crate::shard::repair`),
/// and the natural state-handoff unit for a distributed backend: a shard
/// exports its detected community plus a k-hop frontier, the aggregator
/// replays the bytes into a scratch engine.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SubgraphSnapshot {
    /// Vertices as `(global id, vertex suspiciousness a_u)`, sorted by id.
    pub vertices: Vec<(VertexId, f64)>,
    /// Directed edges `(src, dst, accumulated suspiciousness)`; both
    /// endpoints are members of `vertices`.
    pub edges: Vec<(VertexId, VertexId, f64)>,
}

impl SubgraphSnapshot {
    /// Extracts the induced subgraph over `seeds` expanded by `hops`
    /// breadth-first steps (both edge directions): the vertex set is
    /// `seeds ∪ N^hops(seeds)`, the edge set is every edge of `graph`
    /// with both endpoints inside. `hops = 0` exports exactly the seeds'
    /// induced subgraph; each extra hop pulls in one ring of boundary
    /// structure so a repair union can stitch communities that only touch
    /// through frontier vertices.
    pub fn extract(graph: &DynamicGraph, seeds: &[VertexId], hops: usize) -> SubgraphSnapshot {
        let mut member: FxHashSet<u32> = FxHashSet::default();
        let mut frontier: Vec<VertexId> = Vec::new();
        for &s in seeds {
            if graph.contains_vertex(s) && member.insert(s.0) {
                frontier.push(s);
            }
        }
        let mut next: Vec<VertexId> = Vec::new();
        for _ in 0..hops {
            for &u in &frontier {
                for nb in graph.neighbors(u) {
                    if member.insert(nb.v.0) {
                        next.push(nb.v);
                    }
                }
            }
            if next.is_empty() {
                break;
            }
            std::mem::swap(&mut frontier, &mut next);
            next.clear();
        }
        // Canonical order: sorted by id, so equal regions encode equal
        // bytes regardless of discovery order.
        let mut ids: Vec<u32> = member.iter().copied().collect();
        ids.sort_unstable();
        let mut vertices = Vec::with_capacity(ids.len());
        let mut edges = Vec::new();
        for &id in &ids {
            let u = VertexId(id);
            vertices.push((u, graph.vertex_weight(u)));
            for nb in graph.out_neighbors(u) {
                if member.contains(&nb.v.0) {
                    edges.push((u, nb.v, nb.w));
                }
            }
        }
        SubgraphSnapshot { vertices, edges }
    }

    /// `true` when the snapshot carries no structure worth shipping: no
    /// edges and no vertex with positive suspiciousness.
    pub fn is_trivial(&self) -> bool {
        self.edges.is_empty() && self.vertices.iter().all(|&(_, w)| w == 0.0)
    }

    /// Sum of all edge suspiciousness in the snapshot.
    pub fn edge_weight_total(&self) -> f64 {
        self.edges.iter().map(|&(_, _, w)| w).sum()
    }

    /// Drops zero-weight vertices that no edge touches. A dense-id
    /// engine materializes every vertex id below the largest one it has
    /// seen, so an extraction over a component's global member list
    /// includes members this shard never actually received an edge for —
    /// pruning them keeps migration slices (and the vertex tables the
    /// target engine grows) proportional to what the source shard really
    /// holds. Sorted order is preserved.
    pub fn prune_isolated(&mut self) {
        let mut touched: FxHashSet<u32> = FxHashSet::default();
        for &(src, dst, _) in &self.edges {
            touched.insert(src.0);
            touched.insert(dst.0);
        }
        self.vertices.retain(|&(u, w)| w > 0.0 || touched.contains(&u.0));
    }

    /// Serializes the subgraph with the same length-prefixed
    /// little-endian layout as the engine snapshot.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf =
            BytesMut::with_capacity(24 + self.vertices.len() * 12 + self.edges.len() * 16);
        buf.put_u32_le(SUBGRAPH_MAGIC);
        buf.put_u32_le(SUBGRAPH_VERSION);
        buf.put_u64_le(self.vertices.len() as u64);
        buf.put_u64_le(self.edges.len() as u64);
        for &(u, w) in &self.vertices {
            buf.put_u32_le(u.0);
            buf.put_f64_le(w);
        }
        for &(src, dst, w) in &self.edges {
            buf.put_u32_le(src.0);
            buf.put_u32_le(dst.0);
            buf.put_f64_le(w);
        }
        buf.freeze().to_vec()
    }

    /// Decodes a subgraph produced by [`encode`](Self::encode), verifying
    /// structure: magic/version, section lengths, id order, and that every
    /// edge endpoint is a member vertex.
    pub fn decode(raw: &[u8]) -> Result<SubgraphSnapshot, SnapshotError> {
        let mut buf = Bytes::from(raw);
        if buf.remaining() < 24 {
            return Err(SnapshotError::Corrupt("truncated subgraph header"));
        }
        let magic = buf.get_u32_le();
        if magic != SUBGRAPH_MAGIC {
            return Err(SnapshotError::BadMagic(magic));
        }
        let version = buf.get_u32_le();
        if version != SUBGRAPH_VERSION {
            return Err(SnapshotError::BadVersion(version));
        }
        let n = buf.get_u64_le() as usize;
        let m = buf.get_u64_le() as usize;
        check_section(&buf, n, 12, "truncated subgraph vertex table")?;
        let mut vertices = Vec::with_capacity(n);
        let mut member: FxHashSet<u32> = FxHashSet::default();
        let mut last: Option<u32> = None;
        for _ in 0..n {
            let id = buf.get_u32_le();
            let w = buf.get_f64_le();
            if last.is_some_and(|prev| prev >= id) {
                return Err(SnapshotError::Corrupt("subgraph vertices out of order"));
            }
            last = Some(id);
            member.insert(id);
            vertices.push((VertexId(id), w));
        }
        check_section(&buf, m, 16, "truncated subgraph edge table")?;
        let mut edges = Vec::with_capacity(m);
        for _ in 0..m {
            let src = buf.get_u32_le();
            let dst = buf.get_u32_le();
            let w = buf.get_f64_le();
            if !member.contains(&src) || !member.contains(&dst) {
                return Err(SnapshotError::Corrupt("subgraph edge references unknown vertex"));
            }
            edges.push((VertexId(src), VertexId(dst), w));
        }
        Ok(SubgraphSnapshot { vertices, edges })
    }

    /// Replays the subgraph into a fresh [`DynamicGraph`] with **dense**
    /// local ids (position in `remap` = local id, value = global id),
    /// ready for a scratch re-peel. Weights are installed verbatim — they
    /// are already final suspiciousness values, so no metric runs.
    pub fn replay(&self, remap: &mut Vec<VertexId>) -> Result<DynamicGraph, SnapshotError> {
        remap.clear();
        let mut local: FxHashMap<u32, u32> = FxHashMap::default();
        let mut graph = DynamicGraph::with_capacity(self.vertices.len());
        for &(u, w) in &self.vertices {
            local.insert(u.0, remap.len() as u32);
            remap.push(u);
            graph.add_vertex(w)?;
        }
        for &(src, dst, w) in &self.edges {
            let (Some(&s), Some(&d)) = (local.get(&src.0), local.get(&dst.0)) else {
                return Err(SnapshotError::Corrupt("subgraph edge references unknown vertex"));
            };
            graph.insert_edge(VertexId(s), VertexId(d), w)?;
        }
        Ok(graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::WeightedDensity;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    fn build_engine() -> SpadeEngine<WeightedDensity> {
        // Deliberately edge-heavy relative to the vertex count so the
        // decoder's per-section length checks are exercised with no slack
        // from later sections.
        let mut e = SpadeEngine::new(WeightedDensity);
        for a in 0..24u32 {
            for b in 0..24u32 {
                if a != b {
                    e.insert_edge(v(a), v(b), (a + b + 1) as f64).unwrap();
                }
            }
        }
        e.insert_edge(v(30), v(2), 3.5).unwrap();
        e
    }

    #[test]
    fn snapshot_roundtrip_preserves_everything() {
        let mut original = build_engine();
        let det_before = original.detect();
        let mut bytes = Vec::new();
        save_engine(&original, &mut bytes).unwrap();

        let mut restored =
            load_engine(WeightedDensity, SpadeConfig::default(), bytes.as_slice()).unwrap();
        assert_eq!(restored.graph().num_vertices(), original.graph().num_vertices());
        assert_eq!(restored.graph().num_edges(), original.graph().num_edges());
        assert_eq!(restored.state().logical_order(), original.state().logical_order());
        let det_after = restored.detect();
        assert_eq!(det_before.size, det_after.size);
        assert!((det_before.density - det_after.density).abs() < 1e-12);
        restored.state().validate_greedy(restored.graph(), 1e-9);
    }

    #[test]
    fn restored_engine_keeps_streaming_incrementally() {
        let original = build_engine();
        let mut bytes = Vec::new();
        save_engine(&original, &mut bytes).unwrap();
        let mut restored =
            load_engine(WeightedDensity, SpadeConfig::default(), bytes.as_slice()).unwrap();
        restored.insert_edge(v(8), v(9), 42.0).unwrap();
        restored.delete_edge(v(7), v(2)).unwrap();
        assert_eq!(restored.state().logical_order(), crate::peel::peel(restored.graph()).order);
    }

    #[test]
    fn rejects_garbage() {
        let garbage = vec![0u8; 64];
        let err = load_engine(WeightedDensity, SpadeConfig::default(), garbage.as_slice());
        assert!(matches!(err, Err(SnapshotError::BadMagic(_))));

        let mut short = Vec::new();
        save_engine(&build_engine(), &mut short).unwrap();
        short.truncate(short.len() - 10);
        let err = load_engine(WeightedDensity, SpadeConfig::default(), short.as_slice());
        assert!(matches!(err, Err(SnapshotError::Corrupt(_))));
    }

    #[test]
    fn rejects_wrong_version() {
        let mut bytes = Vec::new();
        save_engine(&build_engine(), &mut bytes).unwrap();
        bytes[4] = 99; // clobber version
        let err = load_engine(WeightedDensity, SpadeConfig::default(), bytes.as_slice());
        assert!(matches!(err, Err(SnapshotError::BadVersion(99))));
    }

    #[test]
    fn empty_engine_roundtrip() {
        let original: SpadeEngine<WeightedDensity> = SpadeEngine::new(WeightedDensity);
        let mut bytes = Vec::new();
        save_engine(&original, &mut bytes).unwrap();
        let mut restored =
            load_engine(WeightedDensity, SpadeConfig::default(), bytes.as_slice()).unwrap();
        assert_eq!(restored.detect(), crate::state::Detection::EMPTY);
    }

    /// A path 0-1-2-3 plus a detached heavy pair (8, 9).
    fn region_graph() -> DynamicGraph {
        let mut g = DynamicGraph::new();
        g.ensure_vertex(v(9));
        for i in 0..4u32 {
            g.set_vertex_weight(v(i), 0.5 * i as f64).unwrap();
        }
        g.insert_edge(v(0), v(1), 1.0).unwrap();
        g.insert_edge(v(1), v(2), 2.0).unwrap();
        g.insert_edge(v(2), v(3), 3.0).unwrap();
        g.insert_edge(v(8), v(9), 50.0).unwrap();
        g
    }

    #[test]
    fn subgraph_extract_respects_hop_budget() {
        let g = region_graph();
        let zero = SubgraphSnapshot::extract(&g, &[v(1)], 0);
        assert_eq!(zero.vertices.len(), 1);
        assert!(zero.edges.is_empty());

        let one = SubgraphSnapshot::extract(&g, &[v(1)], 1);
        let ids: Vec<u32> = one.vertices.iter().map(|&(u, _)| u.0).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        assert_eq!(one.edges.len(), 2, "induced edges of {{0,1,2}}");

        let two = SubgraphSnapshot::extract(&g, &[v(1)], 2);
        let ids: Vec<u32> = two.vertices.iter().map(|&(u, _)| u.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
        assert_eq!(two.edges.len(), 3);
        // The detached pair never enters any hop expansion of vertex 1.
        assert!(two.vertices.iter().all(|&(u, _)| u.0 < 8));
    }

    #[test]
    fn subgraph_snapshot_roundtrip_is_exact() {
        let g = region_graph();
        let snap = SubgraphSnapshot::extract(&g, &[v(1), v(8)], 1);
        let decoded = SubgraphSnapshot::decode(&snap.encode()).unwrap();
        assert_eq!(decoded, snap);
        // Vertex weights and edge weights survive bit-exactly.
        assert!(decoded.vertices.iter().any(|&(u, w)| u == v(1) && w == 0.5));
        assert!(decoded.edges.iter().any(|&(s, d, w)| s == v(8) && d == v(9) && w == 50.0));
    }

    #[test]
    fn subgraph_replay_builds_a_dense_scratch_graph() {
        let g = region_graph();
        let snap = SubgraphSnapshot::extract(&g, &[v(8)], 1);
        let mut remap = Vec::new();
        let scratch = snap.replay(&mut remap).unwrap();
        // Global ids 8 and 9 become local 0 and 1 — no 10-vertex blowup.
        assert_eq!(scratch.num_vertices(), 2);
        assert_eq!(remap, vec![v(8), v(9)]);
        assert_eq!(scratch.num_edges(), 1);
        assert_eq!(scratch.edge_weight(VertexId(0), VertexId(1)), Some(50.0));
        // A re-peel of the replayed slice sees the right density.
        let out = crate::peel::peel(&scratch);
        assert!((out.best_density - 25.0).abs() < 1e-12);
    }

    #[test]
    fn prune_isolated_keeps_weighted_and_connected_vertices() {
        let g = region_graph();
        // Seeds include 5..8: vertex 5 is isolated *and* zero-weight in
        // the region graph (materialized by ensure_vertex), so it must be
        // pruned; 8 keeps its edge, 0..3 keep weights or edges.
        let mut snap =
            SubgraphSnapshot::extract(&g, &[v(0), v(1), v(2), v(3), v(5), v(8), v(9)], 0);
        assert!(snap.vertices.iter().any(|&(u, _)| u == v(5)));
        snap.prune_isolated();
        let ids: Vec<u32> = snap.vertices.iter().map(|&(u, _)| u.0).collect();
        // 0 has weight 0.0 but carries an edge; 1..3 have weights; 5 is
        // dropped; 8 and 9 carry the heavy edge.
        assert_eq!(ids, vec![0, 1, 2, 3, 8, 9]);
        // Roundtrip still validates after pruning.
        let decoded = SubgraphSnapshot::decode(&snap.encode()).unwrap();
        assert_eq!(decoded, snap);
        assert!(!snap.is_trivial());
        assert!((snap.edge_weight_total() - 56.0).abs() < 1e-12);

        let mut empty = SubgraphSnapshot::extract(&g, &[v(5)], 0);
        empty.prune_isolated();
        assert!(empty.vertices.is_empty());
        assert!(empty.is_trivial());
    }

    #[test]
    fn subgraph_decode_rejects_malformed_bytes() {
        let g = region_graph();
        let snap = SubgraphSnapshot::extract(&g, &[v(1)], 1);
        let bytes = snap.encode();

        let err = SubgraphSnapshot::decode(&bytes[..bytes.len() - 4]);
        assert!(matches!(err, Err(SnapshotError::Corrupt(_))));

        let mut wrong_magic = bytes.clone();
        wrong_magic[0] ^= 0xFF;
        assert!(matches!(SubgraphSnapshot::decode(&wrong_magic), Err(SnapshotError::BadMagic(_))));

        let mut wrong_version = bytes.clone();
        wrong_version[4] = 99;
        assert!(matches!(
            SubgraphSnapshot::decode(&wrong_version),
            Err(SnapshotError::BadVersion(99))
        ));

        // An edge referencing a vertex outside the member table: corrupt
        // the src id of the first edge (offset: header 24 + 3 vertices
        // of 12 bytes).
        let mut dangling = bytes.clone();
        let edge_off = 24 + 3 * 12;
        dangling[edge_off..edge_off + 4].copy_from_slice(&77u32.to_le_bytes());
        assert!(matches!(SubgraphSnapshot::decode(&dangling), Err(SnapshotError::Corrupt(_))));

        // A crafted vertex count whose byte-size multiplication wraps
        // must fail the section check, not crash on allocation.
        let mut huge_count = bytes.clone();
        huge_count[8..16].copy_from_slice(&0x4000_0000_0000_0001u64.to_le_bytes());
        assert!(matches!(SubgraphSnapshot::decode(&huge_count), Err(SnapshotError::Corrupt(_))));
    }
}
