//! The length-prefixed binary wire protocol.
//!
//! A frame is `u32 payload_len` followed by `payload_len` payload bytes;
//! the payload is a one-byte opcode plus a fixed layout per frame kind,
//! encoded through the same [`bytes`] primitives as the
//! `spade_core::persist` snapshot codec. Decoding is defensive
//! throughout: every section length is overflow-checked against the
//! remaining buffer before a single record is read, unknown opcodes and
//! trailing bytes are errors, and an oversized length prefix is rejected
//! before any allocation — a malicious or corrupt producer can terminate
//! its own connection, never the server.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use spade_graph::VertexId;
use std::io::{Read, Write};

/// Upper bound on one frame's payload (1 MiB). A length prefix above
/// this is rejected before allocating.
pub const MAX_FRAME_BYTES: usize = 1 << 20;

/// Version of the request/reply framing itself. Version 2 added the
/// `BatchBudget` frame (a `Batch` carrying a per-transaction detection
/// budget for the SLO scheduler); a v1 server answers its opcode with
/// `BadOpcode`, so a client that sets a budget needs a v2 server.
/// Version 3 added the shard-server operations of the multi-process
/// runtime — `Region`, `MigrateOut`, `Absorb`, `Replicate`, `Bootstrap`
/// and their replies — so a router needs v3 shard servers.
pub const PROTOCOL_VERSION: u32 = 3;

/// Most edges one `Batch` frame can carry within [`MAX_FRAME_BYTES`]
/// (opcode byte + u32 count + 16 bytes per edge). A `BatchBudget` frame
/// adds a 4-byte budget header, but the bound is kept shared — the lost
/// fraction of a frame is a quarter of one edge.
pub const MAX_BATCH_EDGES: usize = (MAX_FRAME_BYTES - 9) / 16;

/// Most members a `Detection` reply ships within [`MAX_FRAME_BYTES`]
/// (header 29 bytes + 4 per member); a larger community truncates its
/// member list at encode time while `size` keeps the true count.
pub const MAX_DETECTION_MEMBERS: usize = (MAX_FRAME_BYTES - 29) / 4;

/// Longest `Error` message shipped over the wire; longer ones truncate
/// at encode time.
const MAX_ERROR_BYTES: usize = 512;

/// Version tag of the metrics exposition carried by
/// [`WireFrame::MetricsReply`]. Bump when the exposition's structure
/// (not its metric set — new series are always fair game) changes
/// incompatibly, so a scraper can refuse formats it doesn't understand.
pub const METRICS_VERSION: u32 = 1;

/// Longest metrics exposition one `MetricsReply` ships (opcode + u32
/// version leave the rest of the frame for UTF-8 text). A larger
/// rendering truncates at a char boundary at encode time.
pub const MAX_EXPOSITION_BYTES: usize = MAX_FRAME_BYTES - 5;

/// Most per-shard queue depths one `StatsReply` carries (fixed header
/// of 77 bytes + 8 per shard) — far above any real shard count, it only
/// bounds hostile input.
pub const MAX_STATS_SHARDS: usize = (MAX_FRAME_BYTES - 77) / 8;

/// Largest `SubgraphSnapshot` byte blob one region/slice frame carries:
/// the fixed headers of every snapshot-bearing frame fit well inside 64
/// bytes, so producers that keep their encoded snapshot under this bound
/// are guaranteed an encodable frame. Larger extracts must fail the
/// operation gracefully (the shard server answers `Error`), never break
/// framing.
pub const MAX_SNAPSHOT_BYTES: usize = MAX_FRAME_BYTES - 64;

/// Most member ids a `MigrateOut` request (or a `RegionReply` member
/// list) ships within [`MAX_FRAME_BYTES`]. Component migration beyond
/// this bound is refused at encode time — a >260k-vertex "component" is
/// the benign giant component, not a movable fraud ring.
pub const MAX_MIGRATE_MEMBERS: usize = (MAX_FRAME_BYTES - 64) / 4;

const OP_EDGE: u8 = 0x01;
const OP_BATCH: u8 = 0x02;
const OP_FLUSH: u8 = 0x03;
const OP_DETECT: u8 = 0x04;
const OP_STATS: u8 = 0x05;
const OP_SHUTDOWN: u8 = 0x06;
const OP_METRICS: u8 = 0x07;
const OP_BATCH_BUDGET: u8 = 0x08;
const OP_REGION: u8 = 0x09;
const OP_MIGRATE_OUT: u8 = 0x0A;
const OP_ABSORB: u8 = 0x0B;
const OP_REPLICATE: u8 = 0x0C;
const OP_BOOTSTRAP: u8 = 0x0D;
const OP_ACK: u8 = 0x81;
const OP_BUSY: u8 = 0x82;
const OP_DETECTION: u8 = 0x83;
const OP_STATS_REPLY: u8 = 0x84;
const OP_ERROR: u8 = 0x85;
const OP_METRICS_REPLY: u8 = 0x86;
const OP_REGION_REPLY: u8 = 0x87;
const OP_SLICE_REPLY: u8 = 0x88;
const OP_ABSORB_REPLY: u8 = 0x89;
const OP_BOOTSTRAP_CHUNK: u8 = 0x8A;

/// Errors raised while decoding or transporting frames.
#[derive(Debug)]
pub enum WireError {
    /// Underlying socket/stream failure.
    Io(std::io::Error),
    /// A length prefix exceeded [`MAX_FRAME_BYTES`].
    Oversized(usize),
    /// The payload carried an opcode this protocol version doesn't know.
    BadOpcode(u8),
    /// Structurally invalid payload (truncated section, trailing bytes,
    /// inconsistent counts).
    Corrupt(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire I/O error: {e}"),
            WireError::Oversized(len) => {
                write!(f, "frame length {len} exceeds the {MAX_FRAME_BYTES}-byte bound")
            }
            WireError::BadOpcode(op) => write!(f, "unknown frame opcode 0x{op:02x}"),
            WireError::Corrupt(what) => write!(f, "corrupt frame: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

impl From<WireError> for std::io::Error {
    fn from(e: WireError) -> Self {
        match e {
            WireError::Io(io) => io,
            other => std::io::Error::new(std::io::ErrorKind::InvalidData, other.to_string()),
        }
    }
}

/// The server's answer to a `Detect` request: the merged global
/// detection (densest community across shards).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DetectionReply {
    /// Community size.
    pub size: u64,
    /// Community density `g(S_P)`.
    pub density: f64,
    /// Ingest commands applied across all shards at snapshot time.
    pub updates_applied: u64,
    /// Community members (global vertex ids). Truncated to
    /// [`MAX_DETECTION_MEMBERS`] on the wire so the frame stays within
    /// [`MAX_FRAME_BYTES`]; compare against `size` to detect truncation
    /// (a >262k-member "community" is the benign giant component, not a
    /// reviewable fraud ring).
    pub members: Vec<VertexId>,
}

/// The server's answer to a `Stats` request: runtime totals plus the
/// transport's own counters.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StatsReply {
    /// Worker shards behind the server.
    pub shards: u64,
    /// Ingest commands applied across all shards.
    pub updates_applied: u64,
    /// Commands currently waiting in shard queues.
    pub queue_depth: u64,
    /// Connections accepted since the server started.
    pub connections: u64,
    /// Frames decoded across all connections.
    pub frames: u64,
    /// Edges acknowledged (enqueued into a shard) across all connections.
    pub edges_accepted: u64,
    /// Busy replies sent (an edge bounced off a full shard queue).
    pub busy_replies: u64,
    /// Connections dropped over malformed frames.
    pub malformed_frames: u64,
    /// Seconds the runtime behind the server has been up.
    pub uptime_secs: f64,
    /// Commands waiting in each shard's queue, indexed by shard — the
    /// live back-pressure signal (`queue_depth` above is their sum). A
    /// deployment beyond [`MAX_STATS_SHARDS`] shards truncates the list
    /// on the wire.
    pub shard_queue_depths: Vec<u64>,
}

/// The server's answer to a `Metrics` request: the merged runtime +
/// transport registry snapshot rendered as Prometheus text exposition.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsReply {
    /// Exposition format version ([`METRICS_VERSION`] when produced by
    /// this build).
    pub version: u32,
    /// Prometheus-style text exposition. Truncated at a char boundary
    /// to [`MAX_EXPOSITION_BYTES`] on the wire.
    pub exposition: String,
}

/// A shard server's answer to a `Region` request: its local candidate
/// region — detection summary plus the encoded `SubgraphSnapshot` of the
/// community and its frontier — the router feeds into the cross-process
/// repair pass (the wire form of `spade_core::service::CandidateRegion`).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RegionReply {
    /// Local community size at export time.
    pub size: u64,
    /// Local community density on the shard's own graph.
    pub density: f64,
    /// Ingest commands the shard worker had consumed at export.
    pub updates_applied: u64,
    /// The worker's published detection epoch at export — together with
    /// `updates_applied` this is the region's exact freshness marker.
    pub epoch: u64,
    /// Community members (global vertex ids, **not** truncated — the
    /// repair pass needs the exact set; encode refuses lists beyond
    /// [`MAX_MIGRATE_MEMBERS`]).
    pub members: Vec<VertexId>,
    /// Encoded `SubgraphSnapshot` over the community plus its frontier.
    pub encoded: Vec<u8>,
}

/// A migration slice in flight: the extract → evict → replay pipeline's
/// payload as it crosses processes (the wire form of
/// `spade_core::service::MigrationSlice`). Carried by both the
/// `SliceReply` answer to `MigrateOut` and the `Absorb` request that
/// replays it at the target shard.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct WireSlice {
    /// Vertices carried by the slice after pruning.
    pub vertices: u64,
    /// Member-to-member edges carried (and already evicted at the
    /// source).
    pub edges: u64,
    /// Total edge suspiciousness carried.
    pub edge_weight: f64,
    /// Ingest commands the source worker had consumed at export.
    pub updates_applied: u64,
    /// Encoded `SubgraphSnapshot` bytes.
    pub encoded: Vec<u8>,
}

impl WireSlice {
    /// `true` when the source shard held nothing of the component.
    pub fn is_empty(&self) -> bool {
        self.vertices == 0 && self.edges == 0
    }
}

/// A shard server's answer to an `Absorb` request (the wire form of
/// `spade_core::service::AbsorbReceipt`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AbsorbReply {
    /// Slice vertices materialized or re-weighted on the target.
    pub vertices_touched: u64,
    /// Slice edges applied (accumulated onto existing weights).
    pub edges_applied: u64,
    /// Slice entries dropped (undecodable bytes or invalid weights).
    pub rejected: u64,
}

/// One chunk of a peer's standby journal, streamed back by `Bootstrap`:
/// the raw acked edges a (re)started shard replays to reseed. `through`
/// is the journal sequence number covered so far; the router resumes the
/// next request after it, and resends only pending frames beyond the
/// final `through` — so no acked edge is lost and none is applied twice.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BootstrapChunk {
    /// The crashed shard whose journal this chunk replays.
    pub owner: u32,
    /// Highest journal sequence number included so far.
    pub through: u64,
    /// `true` once the journal is exhausted.
    pub done: bool,
    /// The journaled edges, in original routing order.
    pub edges: Vec<(VertexId, VertexId, f64)>,
}

/// One protocol frame, request or reply.
#[derive(Clone, Debug, PartialEq)]
pub enum WireFrame {
    /// One transaction.
    Edge {
        /// Source account.
        src: VertexId,
        /// Destination account.
        dst: VertexId,
        /// Raw transaction weight (metric input).
        raw: f64,
    },
    /// A run of transactions applied in order — the unit the client
    /// pipelines and the shard workers drain-coalesce.
    Batch {
        /// The transactions, in submission order.
        edges: Vec<(VertexId, VertexId, f64)>,
    },
    /// A `Batch` whose transactions carry a detection-latency budget for
    /// the SLO scheduler: each edge should be applied within `budget_us`
    /// of arriving at its shard. Protocol v2
    /// ([`PROTOCOL_VERSION`]); a v1 server rejects the opcode.
    BatchBudget {
        /// Per-transaction budget in microseconds (0 means "no budget" —
        /// equivalent to a plain `Batch`).
        budget_us: u32,
        /// The transactions, in submission order.
        edges: Vec<(VertexId, VertexId, f64)>,
    },
    /// Ask every shard to flush buffered benign edges.
    Flush,
    /// Ask for the merged global detection.
    Detect,
    /// Ask for runtime + transport statistics.
    Stats,
    /// Stop the server once this frame is processed (the replay
    /// coordinator's end-of-stream marker).
    Shutdown,
    /// Ask for the merged metrics-registry snapshot as Prometheus text
    /// exposition (per-stage latency histograms included).
    Metrics,
    /// Ask a shard server for its candidate region — local detection
    /// plus a `hops`-hop frontier — for the router's cross-process
    /// repair pass. Protocol v3.
    Region {
        /// Frontier radius around the local community.
        hops: u32,
    },
    /// Ask a shard server to extract **and evict** the induced slice
    /// over `members` (the source half of a cross-process migration).
    /// Protocol v3.
    MigrateOut {
        /// Global vertex ids of the component to move.
        members: Vec<VertexId>,
    },
    /// Replay a migrated slice into a shard server's engine (the target
    /// half of a cross-process migration). Protocol v3.
    Absorb {
        /// The slice in flight.
        slice: WireSlice,
    },
    /// Append acked edges to this shard's standby journal for `owner`
    /// (a *peer* shard): the router copies every batch it routes to
    /// `owner` onto a replica, and only acks upstream once both
    /// confirmed — the crash-recovery groundwork. Protocol v3.
    Replicate {
        /// The peer shard these edges were routed to.
        owner: u32,
        /// Router-assigned journal sequence number (strictly
        /// increasing per owner; a repeat is acknowledged idempotently).
        seq: u64,
        /// The batch, in routing order.
        edges: Vec<(VertexId, VertexId, f64)>,
    },
    /// Stream the standby journal held for `owner` back to the router,
    /// starting after journal sequence `after` — the snapshot-bootstrap
    /// handshake a restarted shard reseeds through. Protocol v3.
    Bootstrap {
        /// The crashed shard whose journal to replay.
        owner: u32,
        /// Resume after this sequence number (0 = from the start).
        after: u64,
    },
    /// Request processed; `accepted` edges were enqueued (0 for
    /// non-ingest requests).
    Ack {
        /// Edges enqueued from the acknowledged frame.
        accepted: u64,
    },
    /// A shard queue was full: only the first `accepted` edges of the
    /// frame were enqueued — retry the rest after a pause.
    Busy {
        /// Edges enqueued before the queue filled.
        accepted: u64,
    },
    /// The merged global detection.
    Detection(DetectionReply),
    /// Runtime + transport statistics.
    StatsReply(StatsReply),
    /// The merged metrics snapshot, rendered for scraping.
    MetricsReply(MetricsReply),
    /// A shard server's candidate region.
    RegionReply(RegionReply),
    /// An extracted (and evicted) migration slice.
    SliceReply(WireSlice),
    /// The receipt of a replayed migration slice.
    AbsorbReply(AbsorbReply),
    /// One chunk of a standby journal replay.
    BootstrapChunk(BootstrapChunk),
    /// The request failed; the connection closes after this frame.
    Error {
        /// Human-readable cause.
        message: String,
    },
}

/// Overflow-safe section check: `count` records of `width` bytes must
/// fit in the remaining payload (a crafted 32-bit count must fail
/// decoding, not wrap the multiplication).
fn check_section(
    buf: &Bytes,
    count: usize,
    width: usize,
    what: &'static str,
) -> Result<(), WireError> {
    match count.checked_mul(width) {
        Some(need) if buf.remaining() >= need => Ok(()),
        _ => Err(WireError::Corrupt(what)),
    }
}

fn need(buf: &Bytes, n: usize, what: &'static str) -> Result<(), WireError> {
    if buf.remaining() < n {
        return Err(WireError::Corrupt(what));
    }
    Ok(())
}

/// Encodes a [`WireSlice`] body (shared by `Absorb` and `SliceReply`,
/// which carry the same payload after the opcode). Panics if the
/// snapshot bytes exceed [`MAX_SNAPSHOT_BYTES`] — producers split
/// migrations below the bound.
fn put_slice_body(payload: &mut BytesMut, slice: &WireSlice) {
    assert!(slice.encoded.len() <= MAX_SNAPSHOT_BYTES, "slice snapshot too large");
    payload.put_u64_le(slice.vertices);
    payload.put_u64_le(slice.edges);
    payload.put_f64_le(slice.edge_weight);
    payload.put_u64_le(slice.updates_applied);
    payload.put_u32_le(slice.encoded.len() as u32);
    payload.put_slice(&slice.encoded);
}

/// Decodes a [`WireSlice`] body, the inverse of [`put_slice_body`].
fn take_slice_body(buf: &mut Bytes) -> Result<WireSlice, WireError> {
    need(buf, 36, "truncated slice header")?;
    let vertices = buf.get_u64_le();
    let edges = buf.get_u64_le();
    let edge_weight = buf.get_f64_le();
    let updates_applied = buf.get_u64_le();
    let blen = buf.get_u32_le() as usize;
    if blen > MAX_SNAPSHOT_BYTES {
        return Err(WireError::Corrupt("slice snapshot exceeds the bound"));
    }
    need(buf, blen, "truncated slice snapshot")?;
    let encoded = buf.take_bytes(blen).to_vec();
    Ok(WireSlice { vertices, edges, edge_weight, updates_applied, encoded })
}

impl WireFrame {
    /// Serializes the frame, **including** its length prefix, ready to
    /// write to a socket. Panics if a `Batch` exceeds
    /// [`MAX_BATCH_EDGES`] — producers chunk below the bound (the client
    /// does this automatically).
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = BytesMut::with_capacity(self.encoded_hint());
        match self {
            WireFrame::Edge { src, dst, raw } => {
                payload.put_slice(&[OP_EDGE]);
                payload.put_u32_le(src.0);
                payload.put_u32_le(dst.0);
                payload.put_f64_le(*raw);
            }
            WireFrame::Batch { edges } => {
                assert!(edges.len() <= MAX_BATCH_EDGES, "batch exceeds the frame bound");
                payload.put_slice(&[OP_BATCH]);
                payload.put_u32_le(edges.len() as u32);
                for &(src, dst, raw) in edges {
                    payload.put_u32_le(src.0);
                    payload.put_u32_le(dst.0);
                    payload.put_f64_le(raw);
                }
            }
            WireFrame::BatchBudget { budget_us, edges } => {
                assert!(edges.len() <= MAX_BATCH_EDGES, "batch exceeds the frame bound");
                payload.put_slice(&[OP_BATCH_BUDGET]);
                payload.put_u32_le(*budget_us);
                payload.put_u32_le(edges.len() as u32);
                for &(src, dst, raw) in edges {
                    payload.put_u32_le(src.0);
                    payload.put_u32_le(dst.0);
                    payload.put_f64_le(raw);
                }
            }
            WireFrame::Flush => payload.put_slice(&[OP_FLUSH]),
            WireFrame::Detect => payload.put_slice(&[OP_DETECT]),
            WireFrame::Stats => payload.put_slice(&[OP_STATS]),
            WireFrame::Shutdown => payload.put_slice(&[OP_SHUTDOWN]),
            WireFrame::Metrics => payload.put_slice(&[OP_METRICS]),
            WireFrame::Region { hops } => {
                payload.put_slice(&[OP_REGION]);
                payload.put_u32_le(*hops);
            }
            WireFrame::MigrateOut { members } => {
                assert!(members.len() <= MAX_MIGRATE_MEMBERS, "member list exceeds the bound");
                payload.put_slice(&[OP_MIGRATE_OUT]);
                payload.put_u32_le(members.len() as u32);
                for m in members {
                    payload.put_u32_le(m.0);
                }
            }
            WireFrame::Absorb { slice } => {
                payload.put_slice(&[OP_ABSORB]);
                put_slice_body(&mut payload, slice);
            }
            WireFrame::Replicate { owner, seq, edges } => {
                assert!(edges.len() <= MAX_BATCH_EDGES, "batch exceeds the frame bound");
                payload.put_slice(&[OP_REPLICATE]);
                payload.put_u32_le(*owner);
                payload.put_u64_le(*seq);
                payload.put_u32_le(edges.len() as u32);
                for &(src, dst, raw) in edges {
                    payload.put_u32_le(src.0);
                    payload.put_u32_le(dst.0);
                    payload.put_f64_le(raw);
                }
            }
            WireFrame::Bootstrap { owner, after } => {
                payload.put_slice(&[OP_BOOTSTRAP]);
                payload.put_u32_le(*owner);
                payload.put_u64_le(*after);
            }
            WireFrame::Ack { accepted } => {
                payload.put_slice(&[OP_ACK]);
                payload.put_u64_le(*accepted);
            }
            WireFrame::Busy { accepted } => {
                payload.put_slice(&[OP_BUSY]);
                payload.put_u64_le(*accepted);
            }
            WireFrame::Detection(det) => {
                payload.put_slice(&[OP_DETECTION]);
                payload.put_u64_le(det.size);
                payload.put_f64_le(det.density);
                payload.put_u64_le(det.updates_applied);
                // Keep the frame within MAX_FRAME_BYTES no matter how
                // large the community is: ship a truncated member list
                // (size above carries the true count).
                let members = &det.members[..det.members.len().min(MAX_DETECTION_MEMBERS)];
                payload.put_u32_le(members.len() as u32);
                for m in members {
                    payload.put_u32_le(m.0);
                }
            }
            WireFrame::StatsReply(s) => {
                payload.put_slice(&[OP_STATS_REPLY]);
                for v in [
                    s.shards,
                    s.updates_applied,
                    s.queue_depth,
                    s.connections,
                    s.frames,
                    s.edges_accepted,
                    s.busy_replies,
                    s.malformed_frames,
                ] {
                    payload.put_u64_le(v);
                }
                payload.put_f64_le(s.uptime_secs);
                let depths =
                    &s.shard_queue_depths[..s.shard_queue_depths.len().min(MAX_STATS_SHARDS)];
                payload.put_u32_le(depths.len() as u32);
                for &d in depths {
                    payload.put_u64_le(d);
                }
            }
            WireFrame::MetricsReply(m) => {
                payload.put_slice(&[OP_METRICS_REPLY]);
                payload.put_u32_le(m.version);
                let bytes = m.exposition.as_bytes();
                let cut = bytes.len().min(MAX_EXPOSITION_BYTES);
                // Never split a UTF-8 sequence at the truncation point.
                let cut = (0..=cut).rev().find(|&i| m.exposition.is_char_boundary(i)).unwrap_or(0);
                payload.put_slice(&bytes[..cut]);
            }
            WireFrame::RegionReply(region) => {
                assert!(
                    region.members.len() <= MAX_MIGRATE_MEMBERS,
                    "region member list exceeds the bound"
                );
                assert!(region.encoded.len() <= MAX_SNAPSHOT_BYTES, "region snapshot too large");
                payload.put_slice(&[OP_REGION_REPLY]);
                payload.put_u64_le(region.size);
                payload.put_f64_le(region.density);
                payload.put_u64_le(region.updates_applied);
                payload.put_u64_le(region.epoch);
                payload.put_u32_le(region.members.len() as u32);
                for m in &region.members {
                    payload.put_u32_le(m.0);
                }
                payload.put_u32_le(region.encoded.len() as u32);
                payload.put_slice(&region.encoded);
            }
            WireFrame::SliceReply(slice) => {
                payload.put_slice(&[OP_SLICE_REPLY]);
                put_slice_body(&mut payload, slice);
            }
            WireFrame::AbsorbReply(receipt) => {
                payload.put_slice(&[OP_ABSORB_REPLY]);
                payload.put_u64_le(receipt.vertices_touched);
                payload.put_u64_le(receipt.edges_applied);
                payload.put_u64_le(receipt.rejected);
            }
            WireFrame::BootstrapChunk(chunk) => {
                assert!(chunk.edges.len() <= MAX_BATCH_EDGES, "chunk exceeds the frame bound");
                payload.put_slice(&[OP_BOOTSTRAP_CHUNK]);
                payload.put_u32_le(chunk.owner);
                payload.put_u64_le(chunk.through);
                payload.put_slice(&[u8::from(chunk.done)]);
                payload.put_u32_le(chunk.edges.len() as u32);
                for &(src, dst, raw) in &chunk.edges {
                    payload.put_u32_le(src.0);
                    payload.put_u32_le(dst.0);
                    payload.put_f64_le(raw);
                }
            }
            WireFrame::Error { message } => {
                payload.put_slice(&[OP_ERROR]);
                let bytes = message.as_bytes();
                let cut = bytes.len().min(MAX_ERROR_BYTES);
                // Never split a UTF-8 sequence at the truncation point.
                let cut = (0..=cut).rev().find(|&i| message.is_char_boundary(i)).unwrap_or(0);
                payload.put_slice(&bytes[..cut]);
            }
        }
        debug_assert!(payload.len() <= MAX_FRAME_BYTES, "encoded frame exceeds the bound");
        let payload = payload.freeze();
        let mut frame = Vec::with_capacity(4 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&payload);
        frame
    }

    /// Rough payload size, to pre-reserve the encode buffer.
    fn encoded_hint(&self) -> usize {
        match self {
            WireFrame::Batch { edges } => 5 + edges.len() * 16,
            WireFrame::BatchBudget { edges, .. } => 9 + edges.len() * 16,
            WireFrame::Detection(det) => 29 + det.members.len().min(MAX_DETECTION_MEMBERS) * 4,
            WireFrame::Error { message } => 1 + message.len().min(MAX_ERROR_BYTES),
            WireFrame::StatsReply(s) => 77 + s.shard_queue_depths.len().min(MAX_STATS_SHARDS) * 8,
            WireFrame::MetricsReply(m) => 5 + m.exposition.len().min(MAX_EXPOSITION_BYTES),
            WireFrame::MigrateOut { members } => 5 + members.len().min(MAX_MIGRATE_MEMBERS) * 4,
            WireFrame::Absorb { slice } => 38 + slice.encoded.len().min(MAX_SNAPSHOT_BYTES),
            WireFrame::SliceReply(slice) => 38 + slice.encoded.len().min(MAX_SNAPSHOT_BYTES),
            WireFrame::Replicate { edges, .. } => 17 + edges.len().min(MAX_BATCH_EDGES) * 16,
            WireFrame::BootstrapChunk(c) => 18 + c.edges.len().min(MAX_BATCH_EDGES) * 16,
            WireFrame::RegionReply(r) => {
                41 + r.members.len().min(MAX_MIGRATE_MEMBERS) * 4
                    + r.encoded.len().min(MAX_SNAPSHOT_BYTES)
            }
            _ => 33,
        }
    }

    /// Decodes one payload (the bytes **after** the length prefix).
    /// Every failure is an error, never a panic: truncated sections,
    /// count/length mismatches, unknown opcodes, trailing garbage.
    pub fn decode_payload(payload: &[u8]) -> Result<WireFrame, WireError> {
        let mut buf = Bytes::from(payload);
        need(&buf, 1, "empty payload")?;
        let opcode = buf.take_bytes(1)[0];
        let frame = match opcode {
            OP_EDGE => {
                need(&buf, 16, "truncated edge")?;
                WireFrame::Edge {
                    src: VertexId(buf.get_u32_le()),
                    dst: VertexId(buf.get_u32_le()),
                    raw: buf.get_f64_le(),
                }
            }
            OP_BATCH => {
                need(&buf, 4, "truncated batch header")?;
                let count = buf.get_u32_le() as usize;
                check_section(&buf, count, 16, "truncated batch")?;
                let mut edges = Vec::with_capacity(count);
                for _ in 0..count {
                    edges.push((
                        VertexId(buf.get_u32_le()),
                        VertexId(buf.get_u32_le()),
                        buf.get_f64_le(),
                    ));
                }
                WireFrame::Batch { edges }
            }
            OP_BATCH_BUDGET => {
                need(&buf, 8, "truncated budgeted-batch header")?;
                let budget_us = buf.get_u32_le();
                let count = buf.get_u32_le() as usize;
                check_section(&buf, count, 16, "truncated budgeted batch")?;
                let mut edges = Vec::with_capacity(count);
                for _ in 0..count {
                    edges.push((
                        VertexId(buf.get_u32_le()),
                        VertexId(buf.get_u32_le()),
                        buf.get_f64_le(),
                    ));
                }
                WireFrame::BatchBudget { budget_us, edges }
            }
            OP_FLUSH => WireFrame::Flush,
            OP_DETECT => WireFrame::Detect,
            OP_STATS => WireFrame::Stats,
            OP_SHUTDOWN => WireFrame::Shutdown,
            OP_METRICS => WireFrame::Metrics,
            OP_ACK => {
                need(&buf, 8, "truncated ack")?;
                WireFrame::Ack { accepted: buf.get_u64_le() }
            }
            OP_BUSY => {
                need(&buf, 8, "truncated busy")?;
                WireFrame::Busy { accepted: buf.get_u64_le() }
            }
            OP_DETECTION => {
                need(&buf, 28, "truncated detection header")?;
                let size = buf.get_u64_le();
                let density = buf.get_f64_le();
                let updates_applied = buf.get_u64_le();
                let count = buf.get_u32_le() as usize;
                check_section(&buf, count, 4, "truncated member list")?;
                let members = (0..count).map(|_| VertexId(buf.get_u32_le())).collect();
                WireFrame::Detection(DetectionReply { size, density, updates_applied, members })
            }
            OP_STATS_REPLY => {
                need(&buf, 76, "truncated stats reply")?;
                let mut reply = StatsReply {
                    shards: buf.get_u64_le(),
                    updates_applied: buf.get_u64_le(),
                    queue_depth: buf.get_u64_le(),
                    connections: buf.get_u64_le(),
                    frames: buf.get_u64_le(),
                    edges_accepted: buf.get_u64_le(),
                    busy_replies: buf.get_u64_le(),
                    malformed_frames: buf.get_u64_le(),
                    uptime_secs: buf.get_f64_le(),
                    shard_queue_depths: Vec::new(),
                };
                let count = buf.get_u32_le() as usize;
                check_section(&buf, count, 8, "truncated queue-depth list")?;
                reply.shard_queue_depths = (0..count).map(|_| buf.get_u64_le()).collect();
                WireFrame::StatsReply(reply)
            }
            OP_REGION => {
                need(&buf, 4, "truncated region request")?;
                WireFrame::Region { hops: buf.get_u32_le() }
            }
            OP_MIGRATE_OUT => {
                need(&buf, 4, "truncated migrate-out header")?;
                let count = buf.get_u32_le() as usize;
                if count > MAX_MIGRATE_MEMBERS {
                    return Err(WireError::Corrupt("migrate-out member list exceeds the bound"));
                }
                check_section(&buf, count, 4, "truncated migrate-out member list")?;
                let members = (0..count).map(|_| VertexId(buf.get_u32_le())).collect();
                WireFrame::MigrateOut { members }
            }
            OP_ABSORB => WireFrame::Absorb { slice: take_slice_body(&mut buf)? },
            OP_REPLICATE => {
                need(&buf, 16, "truncated replicate header")?;
                let owner = buf.get_u32_le();
                let seq = buf.get_u64_le();
                let count = buf.get_u32_le() as usize;
                check_section(&buf, count, 16, "truncated replicate batch")?;
                let mut edges = Vec::with_capacity(count);
                for _ in 0..count {
                    edges.push((
                        VertexId(buf.get_u32_le()),
                        VertexId(buf.get_u32_le()),
                        buf.get_f64_le(),
                    ));
                }
                WireFrame::Replicate { owner, seq, edges }
            }
            OP_BOOTSTRAP => {
                need(&buf, 12, "truncated bootstrap request")?;
                WireFrame::Bootstrap { owner: buf.get_u32_le(), after: buf.get_u64_le() }
            }
            OP_REGION_REPLY => {
                need(&buf, 36, "truncated region reply header")?;
                let size = buf.get_u64_le();
                let density = buf.get_f64_le();
                let updates_applied = buf.get_u64_le();
                let epoch = buf.get_u64_le();
                let count = buf.get_u32_le() as usize;
                if count > MAX_MIGRATE_MEMBERS {
                    return Err(WireError::Corrupt("region member list exceeds the bound"));
                }
                check_section(&buf, count, 4, "truncated region member list")?;
                let members = (0..count).map(|_| VertexId(buf.get_u32_le())).collect();
                need(&buf, 4, "truncated region snapshot header")?;
                let blen = buf.get_u32_le() as usize;
                if blen > MAX_SNAPSHOT_BYTES {
                    return Err(WireError::Corrupt("region snapshot exceeds the bound"));
                }
                need(&buf, blen, "truncated region snapshot")?;
                let encoded = buf.take_bytes(blen).to_vec();
                WireFrame::RegionReply(RegionReply {
                    size,
                    density,
                    updates_applied,
                    epoch,
                    members,
                    encoded,
                })
            }
            OP_SLICE_REPLY => WireFrame::SliceReply(take_slice_body(&mut buf)?),
            OP_ABSORB_REPLY => {
                need(&buf, 24, "truncated absorb reply")?;
                WireFrame::AbsorbReply(AbsorbReply {
                    vertices_touched: buf.get_u64_le(),
                    edges_applied: buf.get_u64_le(),
                    rejected: buf.get_u64_le(),
                })
            }
            OP_BOOTSTRAP_CHUNK => {
                need(&buf, 17, "truncated bootstrap chunk header")?;
                let owner = buf.get_u32_le();
                let through = buf.get_u64_le();
                let done = match buf.take_bytes(1)[0] {
                    0 => false,
                    1 => true,
                    _ => return Err(WireError::Corrupt("bootstrap done flag is not 0/1")),
                };
                let count = buf.get_u32_le() as usize;
                check_section(&buf, count, 16, "truncated bootstrap chunk")?;
                let mut edges = Vec::with_capacity(count);
                for _ in 0..count {
                    edges.push((
                        VertexId(buf.get_u32_le()),
                        VertexId(buf.get_u32_le()),
                        buf.get_f64_le(),
                    ));
                }
                WireFrame::BootstrapChunk(BootstrapChunk { owner, through, done, edges })
            }
            OP_METRICS_REPLY => {
                need(&buf, 4, "truncated metrics reply")?;
                let version = buf.get_u32_le();
                let raw = buf.take_bytes(buf.remaining()).to_vec();
                let exposition = String::from_utf8(raw)
                    .map_err(|_| WireError::Corrupt("metrics exposition is not UTF-8"))?;
                return Ok(WireFrame::MetricsReply(MetricsReply { version, exposition }));
            }
            OP_ERROR => {
                let raw = buf.take_bytes(buf.remaining()).to_vec();
                let message = String::from_utf8(raw)
                    .map_err(|_| WireError::Corrupt("error message is not UTF-8"))?;
                return Ok(WireFrame::Error { message });
            }
            other => return Err(WireError::BadOpcode(other)),
        };
        if buf.remaining() != 0 {
            return Err(WireError::Corrupt("trailing bytes after frame body"));
        }
        Ok(frame)
    }
}

/// Incremental frame reassembly over a byte stream: feed whatever the
/// socket produced with [`extend`](Self::extend), pop complete frames
/// with [`next`](Self::next). Bytes are buffered across calls, so frames
/// may arrive split at ANY byte boundary (including inside the length
/// prefix) — the property tests feed one byte at a time.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    start: usize,
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> Self {
        FrameDecoder::default()
    }

    /// Appends raw stream bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        // Reclaim consumed prefix space before growing, so a long-lived
        // connection never accumulates dead bytes.
        if self.start > 0 && (self.start == self.buf.len() || self.start >= (1 << 16)) {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed as frames.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Pops the next complete frame, `Ok(None)` while the buffer holds
    /// only part of one. An oversized length prefix or a corrupt payload
    /// is an error; the offending frame's bytes are consumed, but a
    /// server should treat any error as fatal for the connection (framing
    /// can no longer be trusted).
    pub fn next_frame(&mut self) -> Result<Option<WireFrame>, WireError> {
        if self.buffered() < 4 {
            return Ok(None);
        }
        let mut head = [0u8; 4];
        head.copy_from_slice(&self.buf[self.start..self.start + 4]);
        let len = u32::from_le_bytes(head) as usize;
        if len > MAX_FRAME_BYTES {
            // Consume the prefix so a caller that (wrongly) continues
            // does not loop forever on the same bytes.
            self.start += 4;
            return Err(WireError::Oversized(len));
        }
        if self.buffered().saturating_sub(4) < len {
            return Ok(None);
        }
        let payload_at = self.start + 4;
        let frame = WireFrame::decode_payload(&self.buf[payload_at..payload_at + len]);
        self.start += 4 + len;
        frame.map(Some)
    }
}

/// Writes one frame (length prefix included) to `w`. The caller flushes
/// — the client deliberately leaves batches buffered to pipeline them.
pub fn write_frame<W: Write>(w: &mut W, frame: &WireFrame) -> std::io::Result<()> {
    w.write_all(&frame.encode())
}

/// Reads exactly one frame from `r` (blocking). Returns `Ok(None)` on a
/// clean EOF **at a frame boundary**; EOF mid-frame is an error.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<WireFrame>, WireError> {
    let mut head = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        let n = r.read(&mut head[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(None);
            }
            return Err(WireError::Corrupt("EOF inside a length prefix"));
        }
        filled += n;
    }
    let len = u32::from_le_bytes(head) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(WireError::Oversized(len));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload).map_err(|_| WireError::Corrupt("EOF inside a payload"))?;
    WireFrame::decode_payload(&payload).map(Some)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    fn roundtrip(frame: WireFrame) {
        let bytes = frame.encode();
        let mut dec = FrameDecoder::new();
        dec.extend(&bytes);
        assert_eq!(dec.next_frame().unwrap(), Some(frame));
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn every_frame_kind_roundtrips() {
        roundtrip(WireFrame::Edge { src: v(1), dst: v(2), raw: 3.5 });
        roundtrip(WireFrame::Batch { edges: vec![(v(0), v(1), 1.0), (v(9), v(7), 0.25)] });
        roundtrip(WireFrame::Batch { edges: Vec::new() });
        roundtrip(WireFrame::BatchBudget {
            budget_us: 5_000,
            edges: vec![(v(0), v(1), 1.0), (v(9), v(7), 0.25)],
        });
        roundtrip(WireFrame::BatchBudget { budget_us: 0, edges: Vec::new() });
        roundtrip(WireFrame::Flush);
        roundtrip(WireFrame::Detect);
        roundtrip(WireFrame::Stats);
        roundtrip(WireFrame::Shutdown);
        roundtrip(WireFrame::Metrics);
        roundtrip(WireFrame::Ack { accepted: u64::MAX });
        roundtrip(WireFrame::Busy { accepted: 7 });
        roundtrip(WireFrame::Detection(DetectionReply {
            size: 3,
            density: 41.25,
            updates_applied: 900,
            members: vec![v(5), v(6), v(7)],
        }));
        roundtrip(WireFrame::StatsReply(StatsReply {
            shards: 4,
            updates_applied: 10,
            queue_depth: 2,
            connections: 3,
            frames: 9,
            edges_accepted: 8,
            busy_replies: 1,
            malformed_frames: 0,
            uptime_secs: 12.75,
            shard_queue_depths: vec![2, 0, 0, 0],
        }));
        roundtrip(WireFrame::StatsReply(StatsReply::default()));
        roundtrip(WireFrame::MetricsReply(MetricsReply {
            version: METRICS_VERSION,
            exposition: "# TYPE spade_updates_total counter\nspade_updates_total 9\n".into(),
        }));
        roundtrip(WireFrame::Error { message: "queue déjà full".into() });
        // Protocol v3: shard-server operations.
        roundtrip(WireFrame::Region { hops: 2 });
        roundtrip(WireFrame::MigrateOut { members: vec![v(3), v(1), v(4)] });
        roundtrip(WireFrame::MigrateOut { members: Vec::new() });
        roundtrip(WireFrame::Absorb {
            slice: WireSlice {
                vertices: 3,
                edges: 2,
                edge_weight: 7.5,
                updates_applied: 41,
                encoded: vec![9, 8, 7, 6],
            },
        });
        roundtrip(WireFrame::Absorb { slice: WireSlice::default() });
        roundtrip(WireFrame::Replicate {
            owner: 1,
            seq: 42,
            edges: vec![(v(0), v(1), 1.0), (v(2), v(3), 0.5)],
        });
        roundtrip(WireFrame::Replicate { owner: 0, seq: 0, edges: Vec::new() });
        roundtrip(WireFrame::Bootstrap { owner: 2, after: 17 });
        roundtrip(WireFrame::RegionReply(RegionReply {
            size: 3,
            density: 12.5,
            updates_applied: 99,
            epoch: 4,
            members: vec![v(10), v(11), v(12)],
            encoded: vec![1, 2, 3],
        }));
        roundtrip(WireFrame::RegionReply(RegionReply::default()));
        roundtrip(WireFrame::SliceReply(WireSlice {
            vertices: 1,
            edges: 1,
            edge_weight: 2.0,
            updates_applied: 5,
            encoded: vec![0xAB],
        }));
        roundtrip(WireFrame::AbsorbReply(AbsorbReply {
            vertices_touched: 4,
            edges_applied: 6,
            rejected: 1,
        }));
        roundtrip(WireFrame::BootstrapChunk(BootstrapChunk {
            owner: 1,
            through: 9,
            done: true,
            edges: vec![(v(5), v(6), 2.25)],
        }));
        roundtrip(WireFrame::BootstrapChunk(BootstrapChunk {
            owner: 0,
            through: 0,
            done: false,
            edges: Vec::new(),
        }));
    }

    #[test]
    fn v3_truncated_and_garbage_payloads_error_not_panic() {
        // Migrate-out claiming more members than the payload holds.
        let mut payload = vec![OP_MIGRATE_OUT];
        payload.extend_from_slice(&1000u32.to_le_bytes());
        payload.extend_from_slice(&[0u8; 4]);
        assert!(matches!(WireFrame::decode_payload(&payload), Err(WireError::Corrupt(_))));
        // A member count above the frame-level bound.
        let mut over = vec![OP_MIGRATE_OUT];
        over.extend_from_slice(&(MAX_MIGRATE_MEMBERS as u32 + 1).to_le_bytes());
        assert!(matches!(WireFrame::decode_payload(&over), Err(WireError::Corrupt(_))));

        // A slice whose snapshot length exceeds both the payload and the bound.
        let mut slice = vec![OP_ABSORB];
        slice.extend_from_slice(&[0u8; 32]); // vertices/edges/weight/updates
        slice.extend_from_slice(&(MAX_SNAPSHOT_BYTES as u32 + 1).to_le_bytes());
        assert!(matches!(WireFrame::decode_payload(&slice), Err(WireError::Corrupt(_))));
        let mut short = vec![OP_SLICE_REPLY];
        short.extend_from_slice(&[0u8; 32]);
        short.extend_from_slice(&64u32.to_le_bytes()); // claims 64 bytes, has none
        assert!(matches!(WireFrame::decode_payload(&short), Err(WireError::Corrupt(_))));

        // Replicate batch crafted to overflow count * 16.
        let mut wrap = vec![OP_REPLICATE];
        wrap.extend_from_slice(&0u32.to_le_bytes()); // owner
        wrap.extend_from_slice(&0u64.to_le_bytes()); // seq
        wrap.extend_from_slice(&u32::MAX.to_le_bytes()); // count
        assert!(matches!(WireFrame::decode_payload(&wrap), Err(WireError::Corrupt(_))));

        // A bootstrap chunk with a done flag outside {0, 1}.
        let mut flag = vec![OP_BOOTSTRAP_CHUNK];
        flag.extend_from_slice(&0u32.to_le_bytes()); // owner
        flag.extend_from_slice(&0u64.to_le_bytes()); // through
        flag.push(7); // bogus done flag
        flag.extend_from_slice(&0u32.to_le_bytes()); // count
        assert!(matches!(WireFrame::decode_payload(&flag), Err(WireError::Corrupt(_))));

        // Region reply with a member section that stops short.
        let mut region = vec![OP_REGION_REPLY];
        region.extend_from_slice(&[0u8; 32]); // size/density/updates/epoch
        region.extend_from_slice(&5u32.to_le_bytes()); // five members claimed
        region.extend_from_slice(&[0u8; 8]); // room for two
        assert!(matches!(WireFrame::decode_payload(&region), Err(WireError::Corrupt(_))));

        // Trailing garbage after well-formed v3 bodies.
        for frame in [
            WireFrame::Region { hops: 1 },
            WireFrame::Bootstrap { owner: 0, after: 3 },
            WireFrame::AbsorbReply(AbsorbReply::default()),
            WireFrame::SliceReply(WireSlice::default()),
        ] {
            let mut trailing = frame.encode()[4..].to_vec();
            trailing.push(0);
            assert!(matches!(WireFrame::decode_payload(&trailing), Err(WireError::Corrupt(_))));
        }
    }

    #[test]
    fn split_delivery_reassembles() {
        let frames =
            [WireFrame::Edge { src: v(1), dst: v(2), raw: 9.0 }, WireFrame::Ack { accepted: 1 }];
        let mut bytes = Vec::new();
        for f in &frames {
            bytes.extend_from_slice(&f.encode());
        }
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for b in bytes {
            dec.extend(&[b]);
            while let Some(f) = dec.next_frame().unwrap() {
                got.push(f);
            }
        }
        assert_eq!(got.as_slice(), frames.as_slice());
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        let mut dec = FrameDecoder::new();
        dec.extend(&(u32::MAX).to_le_bytes());
        assert!(matches!(dec.next_frame(), Err(WireError::Oversized(_))));
    }

    #[test]
    fn truncated_and_garbage_payloads_error_not_panic() {
        // A batch claiming more edges than the payload holds.
        let mut payload = vec![OP_BATCH];
        payload.extend_from_slice(&1000u32.to_le_bytes());
        payload.extend_from_slice(&[0u8; 16]); // room for exactly one
        assert!(matches!(WireFrame::decode_payload(&payload), Err(WireError::Corrupt(_))));

        // A batch count crafted to overflow count * 16.
        let mut wrap = vec![OP_BATCH];
        wrap.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(WireFrame::decode_payload(&wrap), Err(WireError::Corrupt(_))));

        // The same two attacks through the budgeted-batch opcode.
        let mut payload = vec![OP_BATCH_BUDGET];
        payload.extend_from_slice(&200u32.to_le_bytes()); // budget_us
        payload.extend_from_slice(&1000u32.to_le_bytes()); // count
        payload.extend_from_slice(&[0u8; 16]); // room for exactly one
        assert!(matches!(WireFrame::decode_payload(&payload), Err(WireError::Corrupt(_))));
        let mut wrap = vec![OP_BATCH_BUDGET];
        wrap.extend_from_slice(&200u32.to_le_bytes());
        wrap.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(WireFrame::decode_payload(&wrap), Err(WireError::Corrupt(_))));
        // A budgeted batch with trailing garbage after the edge section.
        let mut trailing_batch =
            WireFrame::BatchBudget { budget_us: 7, edges: vec![(v(1), v(2), 3.0)] }.encode()[4..]
                .to_vec();
        trailing_batch.push(0);
        assert!(matches!(WireFrame::decode_payload(&trailing_batch), Err(WireError::Corrupt(_))));

        assert!(matches!(WireFrame::decode_payload(&[]), Err(WireError::Corrupt(_))));
        assert!(matches!(WireFrame::decode_payload(&[0x7f]), Err(WireError::BadOpcode(0x7f))));
        // Trailing bytes after a fixed-size body.
        let mut trailing = WireFrame::Flush.encode()[4..].to_vec();
        trailing.push(0);
        assert!(matches!(WireFrame::decode_payload(&trailing), Err(WireError::Corrupt(_))));
    }

    #[test]
    fn read_frame_distinguishes_clean_eof_from_truncation() {
        let bytes = WireFrame::Detect.encode();
        let mut cursor = &bytes[..];
        assert_eq!(read_frame(&mut cursor).unwrap(), Some(WireFrame::Detect));
        assert_eq!(read_frame(&mut cursor).unwrap(), None, "clean EOF at a boundary");
        let mut cut = &bytes[..3];
        assert!(matches!(read_frame(&mut cut), Err(WireError::Corrupt(_))));
    }

    #[test]
    fn oversized_detection_replies_truncate_instead_of_breaking_framing() {
        // A "community" larger than the frame bound (the benign giant
        // component, in practice): the member list truncates on the wire
        // while size keeps the true count, and the frame stays decodable.
        let huge = WireFrame::Detection(DetectionReply {
            size: (MAX_DETECTION_MEMBERS + 1000) as u64,
            density: 1.5,
            updates_applied: 9,
            members: (0..(MAX_DETECTION_MEMBERS + 1000) as u32).map(v).collect(),
        });
        let bytes = huge.encode();
        assert!(bytes.len() <= 4 + MAX_FRAME_BYTES);
        let mut dec = FrameDecoder::new();
        dec.extend(&bytes);
        let Some(WireFrame::Detection(det)) = dec.next_frame().unwrap() else {
            panic!("expected a detection frame");
        };
        assert_eq!(det.members.len(), MAX_DETECTION_MEMBERS);
        assert_eq!(det.size, (MAX_DETECTION_MEMBERS + 1000) as u64, "true size survives");
    }

    #[test]
    fn oversized_expositions_truncate_on_char_boundaries() {
        // A rendering beyond the frame budget (multi-byte chars placed to
        // straddle the cut) truncates on the wire without breaking
        // framing or UTF-8.
        let huge = "λ".repeat(MAX_EXPOSITION_BYTES); // 2 bytes per char
        let bytes =
            WireFrame::MetricsReply(MetricsReply { version: METRICS_VERSION, exposition: huge })
                .encode();
        assert!(bytes.len() <= 4 + MAX_FRAME_BYTES);
        let mut dec = FrameDecoder::new();
        dec.extend(&bytes);
        let Some(WireFrame::MetricsReply(m)) = dec.next_frame().unwrap() else {
            panic!("expected a metrics reply");
        };
        assert_eq!(m.version, METRICS_VERSION);
        assert!(m.exposition.len() <= MAX_EXPOSITION_BYTES);
        assert!(m.exposition.chars().all(|c| c == 'λ'));
    }

    #[test]
    fn stats_reply_queue_depth_lists_are_overflow_checked() {
        // A depth count claiming more entries than the payload holds.
        let mut payload = WireFrame::StatsReply(StatsReply::default()).encode()[4..].to_vec();
        let at = payload.len() - 4;
        payload[at..].copy_from_slice(&1000u32.to_le_bytes());
        assert!(matches!(WireFrame::decode_payload(&payload), Err(WireError::Corrupt(_))));
        // A count crafted to overflow count * 8.
        payload[at..].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(WireFrame::decode_payload(&payload), Err(WireError::Corrupt(_))));
    }

    #[test]
    fn error_messages_truncate_on_char_boundaries() {
        let long = "é".repeat(MAX_ERROR_BYTES); // 2 bytes per char
        let bytes = WireFrame::Error { message: long }.encode();
        let mut dec = FrameDecoder::new();
        dec.extend(&bytes);
        let Some(WireFrame::Error { message }) = dec.next_frame().unwrap() else {
            panic!("expected an error frame");
        };
        assert!(message.len() <= MAX_ERROR_BYTES);
        assert!(message.chars().all(|c| c == 'é'));
    }
}
