//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning API
//! (`read()` / `write()` / `lock()` return guards directly). Poisoning is
//! translated into a panic propagation: if a writer panicked, subsequent
//! accessors panic too, which matches how this workspace uses the locks
//! (any poisoned detector state is unrecoverable anyway).
//!
//! With the `audit` feature, every lock additionally belongs to a lock
//! *class* keyed by its creation site (lockdep-style, so the thousands of
//! per-request locks created at one line collapse into one node), and
//! every acquisition records held-before edges into a global class-order
//! graph with on-line cycle detection. See [`audit`].

use std::sync::{self, LockResult};

#[cfg(feature = "audit")]
pub mod audit;

/// Guard aliases matching parking_lot's public names (the std guards
/// stand in for the real crate's non-poisoning guards).
#[cfg(not(feature = "audit"))]
pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

#[cfg(feature = "audit")]
pub use audit_guards::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

fn unpoison<G>(result: LockResult<G>) -> G {
    result.unwrap_or_else(|_| panic!("lock poisoned by a panicked holder"))
}

/// Non-poisoning reader–writer lock.
#[derive(Debug)]
pub struct RwLock<T> {
    inner: sync::RwLock<T>,
    #[cfg(feature = "audit")]
    class: audit::ClassId,
}

impl<T> RwLock<T> {
    /// Creates the lock. The caller's location names the lock class in
    /// audit builds.
    #[track_caller]
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
            #[cfg(feature = "audit")]
            class: audit::register_class(std::panic::Location::caller()),
        }
    }

    /// Acquires a shared read guard.
    #[cfg(not(feature = "audit"))]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        unpoison(self.inner.read())
    }

    /// Acquires a shared read guard, recording the acquisition in the
    /// lock-order graph.
    #[cfg(feature = "audit")]
    #[track_caller]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        audit::before_acquire(self.class, std::panic::Location::caller());
        let inner = unpoison(self.inner.read());
        audit::after_acquire(self.class);
        RwLockReadGuard { inner, class: self.class }
    }

    /// Acquires an exclusive write guard.
    #[cfg(not(feature = "audit"))]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        unpoison(self.inner.write())
    }

    /// Acquires an exclusive write guard, recording the acquisition in
    /// the lock-order graph.
    #[cfg(feature = "audit")]
    #[track_caller]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        audit::before_acquire(self.class, std::panic::Location::caller());
        let inner = unpoison(self.inner.write());
        audit::after_acquire(self.class);
        RwLockWriteGuard { inner, class: self.class }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        unpoison(self.inner.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    #[track_caller]
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

/// Non-poisoning mutex.
#[derive(Debug)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
    #[cfg(feature = "audit")]
    class: audit::ClassId,
}

impl<T> Mutex<T> {
    /// Creates the mutex. The caller's location names the lock class in
    /// audit builds.
    #[track_caller]
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
            #[cfg(feature = "audit")]
            class: audit::register_class(std::panic::Location::caller()),
        }
    }

    /// Acquires the lock.
    #[cfg(not(feature = "audit"))]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        unpoison(self.inner.lock())
    }

    /// Acquires the lock, recording the acquisition in the lock-order
    /// graph.
    #[cfg(feature = "audit")]
    #[track_caller]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        audit::before_acquire(self.class, std::panic::Location::caller());
        let inner = unpoison(self.inner.lock());
        audit::after_acquire(self.class);
        MutexGuard { inner, class: self.class }
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        unpoison(self.inner.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    #[track_caller]
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

/// Guard wrappers for audit builds: same public names as the std
/// re-exports, plus a `Drop` that pops the class from the holder's
/// held-lock stack.
#[cfg(feature = "audit")]
mod audit_guards {
    use super::audit;
    use std::ops::{Deref, DerefMut};
    use std::sync;

    /// Mutex guard that reports its release to the audit layer.
    #[derive(Debug)]
    pub struct MutexGuard<'a, T: ?Sized> {
        pub(super) inner: sync::MutexGuard<'a, T>,
        pub(super) class: audit::ClassId,
    }

    impl<T: ?Sized> Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.inner
        }
    }

    impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.inner
        }
    }

    impl<T: ?Sized> Drop for MutexGuard<'_, T> {
        fn drop(&mut self) {
            audit::on_release(self.class);
        }
    }

    /// Shared rwlock guard that reports its release to the audit layer.
    #[derive(Debug)]
    pub struct RwLockReadGuard<'a, T: ?Sized> {
        pub(super) inner: sync::RwLockReadGuard<'a, T>,
        pub(super) class: audit::ClassId,
    }

    impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.inner
        }
    }

    impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
        fn drop(&mut self) {
            audit::on_release(self.class);
        }
    }

    /// Exclusive rwlock guard that reports its release to the audit layer.
    #[derive(Debug)]
    pub struct RwLockWriteGuard<'a, T: ?Sized> {
        pub(super) inner: sync::RwLockWriteGuard<'a, T>,
        pub(super) class: audit::ClassId,
    }

    impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.inner
        }
    }

    impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.inner
        }
    }

    impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
        fn drop(&mut self) {
            audit::on_release(self.class);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rwlock_readers_and_writer() {
        let lock = Arc::new(RwLock::new(0u64));
        {
            *lock.write() += 5;
        }
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let lock = Arc::clone(&lock);
                std::thread::spawn(move || *lock.read())
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 5);
        }
    }

    #[test]
    fn mutex_counts_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }
}
