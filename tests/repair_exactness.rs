//! The `cross-shard-exactness` CI gate: hash-routed sharding dilutes a
//! seeded injected fraud ring across N shards, and the cross-shard
//! repair pass must recover the **exact** solo-engine answer — same
//! members, same density — for N ∈ {2, 4, 8}.
//!
//! Kept as its own integration test (and its own named CI job) so a
//! regression here reads as "repair lost exactness", not as a generic
//! test failure.

use spade::core::stream::StreamEdge;
use spade::core::{SpadeEngine, WeightedDensity};
use spade::gen::fraud::{FraudInjector, FraudInjectorConfig};
use spade::gen::transactions::{TransactionStream, TransactionStreamConfig};
use spade::shard::{PartitionStrategy, ShardedConfig, ShardedSpadeService};

/// The seeded dataset: a Zipf marketplace stream with one injected
/// high-amount collusion burst per pattern. Seeds are fixed — every run
/// of this gate replays the identical stream.
fn seeded_injected_stream() -> Vec<StreamEdge> {
    let base = TransactionStream::generate(&TransactionStreamConfig {
        customers: 600,
        merchants: 200,
        transactions: 6_000,
        seed: 0xC1_5EED,
        ..Default::default()
    });
    let injected = FraudInjector::inject(
        &base,
        &FraudInjectorConfig {
            instances_per_pattern: 1,
            transactions_per_instance: 240,
            amount: 600.0,
            seed: 0xC1_5EED,
            ..Default::default()
        },
    );
    injected.edges
}

/// Solo-engine ground truth over the same stream (malformed edges
/// dropped exactly as the shard workers drop them).
fn solo_detection(edges: &[StreamEdge]) -> (usize, f64, Vec<u32>) {
    let mut solo = SpadeEngine::new(WeightedDensity);
    for e in edges {
        let _ = solo.insert_edge(e.src, e.dst, e.raw);
    }
    let det = solo.detect();
    let mut members: Vec<u32> = solo.community(det).iter().map(|m| m.0).collect();
    members.sort_unstable();
    (det.size, det.density, members)
}

fn assert_exact_after_repair(shards: usize) {
    let edges = seeded_injected_stream();
    let (want_size, want_density, want_members) = solo_detection(&edges);
    assert!(want_size > 0, "the seeded dataset must contain a detectable community");

    let service = ShardedSpadeService::spawn(
        WeightedDensity,
        ShardedConfig {
            shards,
            queue_capacity: 4096,
            strategy: PartitionStrategy::HashBySource,
            ..Default::default()
        },
    );
    for e in &edges {
        assert!(service.submit(e.src, e.dst, e.raw));
    }
    let repaired = service.repair();
    let global = service.shutdown();
    assert_eq!(global.total_updates, edges.len() as u64);

    // The premise of the gate: hash routing actually dilutes — the best
    // per-shard view is strictly below the solo answer.
    assert!(
        repaired.baseline_density < want_density * (1.0 - 1e-9),
        "N={shards}: expected dilution, got baseline {} vs solo {}",
        repaired.baseline_density,
        want_density
    );

    // The gate itself: repaired == solo, members and density.
    let got: Vec<u32> = repaired.detection.members.iter().map(|m| m.0).collect();
    assert_eq!(got, want_members, "N={shards}: repaired members diverge from the solo engine");
    assert_eq!(repaired.detection.size, want_size, "N={shards}: size mismatch");
    assert!(
        (repaired.detection.density - want_density).abs() < 1e-9,
        "N={shards}: repaired density {} vs solo {}",
        repaired.detection.density,
        want_density
    );
    assert!(
        repaired.repaired,
        "N={shards}: a split community must be recovered by a union re-peel, \
         not by a lucky single shard"
    );
    println!(
        "N={shards}: diluted best-shard density {:.3} repaired to {:.3} \
         (solo {:.3}, {} members)",
        repaired.baseline_density, repaired.detection.density, want_density, want_size
    );
}

#[test]
fn hash_split_fraud_ring_is_repaired_exactly_across_2_shards() {
    assert_exact_after_repair(2);
}

#[test]
fn hash_split_fraud_ring_is_repaired_exactly_across_4_shards() {
    assert_exact_after_repair(4);
}

#[test]
fn hash_split_fraud_ring_is_repaired_exactly_across_8_shards() {
    assert_exact_after_repair(8);
}
