//! The seven Table 3 workloads, as scalable surrogates.
//!
//! The paper's datasets (|V|, |E|, type):
//!
//! | name      | vertices | edges | type            |
//! |-----------|----------|-------|-----------------|
//! | Grab1     | 3.991M   | 10M   | transaction     |
//! | Grab2     | 4.805M   | 15M   | transaction     |
//! | Grab3     | 5.433M   | 20M   | transaction     |
//! | Grab4     | 6.023M   | 25M   | transaction     |
//! | Amazon    | 28K      | 28K   | review          |
//! | Wiki-vote | 16K      | 103K  | vote            |
//! | Epinion   | 264K     | 841K  | who-trusts-whom |
//!
//! `DatasetSpec::generate` reproduces the paper's protocol: 90% of the
//! edges build the initial graph, the last 10% replay as timestamped
//! increments ("Increments" column of Table 3). A `scale` factor shrinks
//! |V| and |E| proportionally so the full suite runs on a laptop; shapes
//! (degree distribution, bipartiteness) are preserved.

use crate::transactions::{TransactionStream, TransactionStreamConfig};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use spade_core::stream::StreamEdge;
use spade_graph::VertexId;

/// Topology family of a dataset.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DatasetKind {
    /// Bipartite customer→merchant transactions (Grab1–4, Amazon).
    Bipartite,
    /// General directed graph (Wiki-vote, Epinion).
    Directed,
}

/// A Table 3 row.
#[derive(Clone, Copy, Debug)]
pub struct DatasetSpec {
    /// Dataset name as printed in the paper.
    pub name: &'static str,
    /// |V| at paper scale.
    pub vertices: usize,
    /// |E| at paper scale.
    pub edges: usize,
    /// Topology family.
    pub kind: DatasetKind,
    /// Zipf exponent controlling the tail heaviness.
    pub exponent: f64,
}

impl DatasetSpec {
    /// All seven Table 3 rows at paper scale.
    pub fn table3() -> Vec<DatasetSpec> {
        vec![
            DatasetSpec {
                name: "Grab1",
                vertices: 3_991_000,
                edges: 10_000_000,
                kind: DatasetKind::Bipartite,
                exponent: 0.85,
            },
            DatasetSpec {
                name: "Grab2",
                vertices: 4_805_000,
                edges: 15_000_000,
                kind: DatasetKind::Bipartite,
                exponent: 0.85,
            },
            DatasetSpec {
                name: "Grab3",
                vertices: 5_433_000,
                edges: 20_000_000,
                kind: DatasetKind::Bipartite,
                exponent: 0.85,
            },
            DatasetSpec {
                name: "Grab4",
                vertices: 6_023_000,
                edges: 25_000_000,
                kind: DatasetKind::Bipartite,
                exponent: 0.85,
            },
            DatasetSpec {
                name: "Amazon",
                vertices: 28_000,
                edges: 28_000,
                kind: DatasetKind::Bipartite,
                exponent: 0.8,
            },
            DatasetSpec {
                name: "Wiki-Vote",
                vertices: 16_000,
                edges: 103_000,
                kind: DatasetKind::Directed,
                exponent: 0.95,
            },
            DatasetSpec {
                name: "Epinion",
                vertices: 264_000,
                edges: 841_000,
                kind: DatasetKind::Directed,
                exponent: 0.9,
            },
        ]
    }

    /// Average degree |E| / |V| (the Table 3 column).
    pub fn avg_degree(&self) -> f64 {
        self.edges as f64 / self.vertices as f64
    }

    /// Generates the dataset at `scale` (1.0 = paper size; 0.01 = 1%),
    /// deterministic in `seed`.
    pub fn generate(&self, scale: f64, seed: u64) -> Dataset {
        assert!(scale > 0.0 && scale <= 1.0);
        let vertices = ((self.vertices as f64 * scale) as usize).max(16);
        let edges = ((self.edges as f64 * scale) as usize).max(64);
        let stream = match self.kind {
            DatasetKind::Bipartite => {
                let customers = (vertices * 7 / 10).max(2);
                let merchants = (vertices - customers).max(1);
                TransactionStream::generate(&TransactionStreamConfig {
                    customers,
                    merchants,
                    transactions: edges,
                    customer_exponent: self.exponent,
                    merchant_exponent: self.exponent,
                    mean_amount: 20.0,
                    duration: (edges as u64) * 1_000,
                    seed,
                })
            }
            DatasetKind::Directed => directed_stream(vertices, edges, self.exponent, seed),
        };
        let (initial, increments) = stream.split(0.9);
        Dataset {
            name: self.name,
            initial: initial.to_vec(),
            increments: increments.to_vec(),
            id_space: stream.id_space(),
            stream,
        }
    }
}

/// A generated workload: initial graph edges plus timestamped increments.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Dataset name.
    pub name: &'static str,
    /// First 90% of transactions (initial graph).
    pub initial: Vec<StreamEdge>,
    /// Last 10% of transactions (replayed increments).
    pub increments: Vec<StreamEdge>,
    /// Upper bound on vertex ids.
    pub id_space: usize,
    /// The full underlying stream (initial ++ increments).
    pub stream: TransactionStream,
}

/// General directed heavy-tailed stream (Wiki-vote / Epinion surrogates):
/// both endpoints Zipf-ranked over one universe, self-loops rejected.
fn directed_stream(vertices: usize, edges: usize, exponent: f64, seed: u64) -> TransactionStream {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let zipf = crate::powerlaw::ZipfSampler::new(vertices, exponent);
    let mut out = Vec::with_capacity(edges);
    let step = 1_000u64;
    let mut now = 0u64;
    while out.len() < edges {
        now += rng.gen_range(1..=step);
        let a = zipf.sample(&mut rng) as u32;
        // Scramble the destination ranking so hubs differ between the two
        // roles (votes go *to* popular users from everywhere).
        let b = (vertices - 1 - zipf.sample(&mut rng)) as u32;
        if a == b {
            continue;
        }
        out.push(StreamEdge::organic(VertexId(a), VertexId(b), 1.0, now));
    }
    TransactionStream {
        edges: out,
        customers: vertices,
        merchants: 0,
        next_free_id: vertices as u32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_has_seven_rows_matching_paper_sizes() {
        let specs = DatasetSpec::table3();
        assert_eq!(specs.len(), 7);
        assert_eq!(specs[0].name, "Grab1");
        assert_eq!(specs[3].edges, 25_000_000);
        assert!((specs[0].avg_degree() - 2.5056).abs() < 0.01);
    }

    #[test]
    fn generate_scales_and_splits() {
        let spec = DatasetSpec::table3()[4]; // Amazon: 28K/28K
        let d = spec.generate(0.1, 42);
        let total = d.initial.len() + d.increments.len();
        assert!((total as f64 - 2_800.0).abs() < 10.0);
        assert_eq!(d.increments.len(), total / 10);
        assert!(d.id_space > 0);
    }

    #[test]
    fn directed_datasets_have_no_self_loops_and_stay_in_range() {
        let spec = DatasetSpec::table3()[5]; // Wiki-Vote
        let d = spec.generate(0.05, 1);
        for e in d.initial.iter().chain(&d.increments) {
            assert_ne!(e.src, e.dst);
            assert!((e.src.0 as usize) < d.id_space);
            assert!((e.dst.0 as usize) < d.id_space);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let spec = DatasetSpec::table3()[5];
        let a = spec.generate(0.02, 9);
        let b = spec.generate(0.02, 9);
        assert_eq!(a.initial, b.initial);
        assert_eq!(a.increments, b.increments);
    }

    #[test]
    fn grab_surrogates_preserve_relative_scale() {
        let specs = DatasetSpec::table3();
        let g1 = specs[0].generate(0.002, 5);
        let g4 = specs[3].generate(0.002, 5);
        let e1 = g1.initial.len() + g1.increments.len();
        let e4 = g4.initial.len() + g4.increments.len();
        assert!(e4 > 2 * e1, "Grab4 must stay ~2.5x Grab1 ({e1} vs {e4})");
    }
}
