// Self-test fixture: a file that exercises every rule's *passing* shape
// — annotated relaxed atomics, SAFETY-commented unsafe, checked wire
// arithmetic, clock reads outside loops — and must produce only
// allowable, annotated findings. Never compiled.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

pub fn bump(counter: &AtomicU64) {
    // audit: monotone telemetry counter; per-location coherence suffices
    counter.fetch_add(1, Ordering::Relaxed);
}

pub fn read_raw(ptr: *const u64) -> u64 {
    // SAFETY: caller guarantees ptr is valid and aligned for u64
    unsafe { *ptr }
}

pub fn frame_size(payload: &[u8]) -> Option<usize> {
    payload.len().checked_add(4)
}

pub fn batch(edges: &[(u32, u32)]) {
    let stamped = Instant::now();
    for (src, dst) in edges {
        touch(*src, *dst, stamped);
    }
}
