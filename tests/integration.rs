//! Cross-crate integration tests: generated workloads (spade-gen) flowing
//! through the engine (spade-core) over the graph substrate (spade-graph),
//! measured by spade-metrics — the full pipeline the benchmark harness
//! uses, verified end to end.

use spade::core::{
    enumerate_static, peel, DetectionBackend, EdgeGrouper, EnumerationConfig, GroupingConfig,
    SpadeConfig, SpadeEngine, TimeWindowDetector, UnweightedDensity, WeightedDensity, WindowRecord,
};
use spade::gen::datasets::DatasetSpec;
use spade::gen::fraud::{FraudInjector, FraudInjectorConfig};
use spade::gen::transactions::{batches, TransactionStream, TransactionStreamConfig};
use spade::metrics::{LatencyRecorder, PreventionTracker, Summary};

fn small_stream(seed: u64) -> TransactionStream {
    TransactionStream::generate(&TransactionStreamConfig {
        customers: 500,
        merchants: 150,
        transactions: 5_000,
        seed,
        ..Default::default()
    })
}

#[test]
fn dataset_replay_keeps_incremental_equal_to_static() {
    // The Fig. 10 protocol at miniature scale: bootstrap on 90%, replay
    // 10% one edge at a time, and verify the engine state is the exact
    // greedy peel of the final graph.
    let spec = DatasetSpec::table3()[5]; // Wiki-Vote surrogate
    let data = spec.generate(0.02, 99);
    let mut engine = SpadeEngine::bootstrap(
        UnweightedDensity,
        SpadeConfig::default(),
        data.initial.iter().map(|e| (e.src, e.dst, e.raw)),
    )
    .expect("bootstrap");
    for e in &data.increments {
        engine.insert_edge(e.src, e.dst, e.raw).expect("insert");
    }
    let fresh = peel(engine.graph());
    assert_eq!(engine.state().logical_order(), fresh.order);
    let det = engine.detect();
    assert!((det.density - fresh.best_density).abs() < 1e-9);
}

#[test]
fn batch_sizes_converge_to_identical_state() {
    // Table 4's invariant: any batch size yields the same final peeling
    // state (only the work differs).
    let stream = small_stream(17);
    let (initial, increments) = stream.split(0.9);
    let mut reference: Option<Vec<spade::graph::VertexId>> = None;
    for batch_size in [1usize, 7, 64, 1000] {
        let mut engine = SpadeEngine::bootstrap(
            WeightedDensity,
            SpadeConfig::default(),
            initial.iter().map(|e| (e.src, e.dst, e.raw)),
        )
        .expect("bootstrap");
        for chunk in batches(increments, batch_size) {
            let edges: Vec<_> = chunk.iter().map(|e| (e.src, e.dst, e.raw)).collect();
            engine.insert_batch(&edges).expect("batch insert");
        }
        let order = engine.state().logical_order();
        match &reference {
            None => reference = Some(order),
            Some(want) => assert_eq!(&order, want, "batch size {batch_size} diverged"),
        }
    }
}

#[test]
fn grouping_pipeline_prevents_fraud() {
    // The Fig. 9a pipeline: labeled stream -> grouping -> detection ->
    // prevention accounting.
    let base = small_stream(5);
    let injected = FraudInjector::inject(
        &base,
        &FraudInjectorConfig {
            instances_per_pattern: 1,
            transactions_per_instance: 200,
            amount: 500.0,
            inject_after_fraction: 0.5,
            ..Default::default()
        },
    );
    let mut engine = SpadeEngine::new(WeightedDensity);
    let mut grouper = EdgeGrouper::new(GroupingConfig::default());
    let mut prevention = PreventionTracker::new();
    let mut latency = LatencyRecorder::new();

    let mut account_instance = std::collections::HashMap::new();
    for info in &injected.instances {
        for m in &info.members {
            account_instance.insert(m.0, info.instance);
        }
    }
    let mut queued: Vec<u64> = Vec::new();
    for e in &injected.edges {
        if let Some(l) = e.label {
            prevention.note_transaction(l.instance, e.timestamp);
        }
        queued.push(e.timestamp);
        let outcome = grouper.submit(&mut engine, e.src, e.dst, e.raw).expect("submit");
        if outcome.flushed.is_some() {
            for generated in queued.drain(..) {
                latency.record(generated, e.timestamp, e.timestamp);
            }
            let det = engine.cached_detection();
            for m in engine.community(det) {
                if let Some(&inst) = account_instance.get(&m.0) {
                    prevention.note_detection(inst, e.timestamp);
                }
            }
        }
    }
    grouper.flush(&mut engine).expect("flush");
    assert!(prevention.num_detected() >= 1, "fraud must be caught");
    assert!(prevention.overall_ratio() > 0.0, "some transactions must be prevented");
    assert!(latency.count() > 0);
    let summary = Summary::of_u64(latency.latencies());
    assert!(summary.p50 <= summary.p99);
}

#[test]
fn enumeration_recovers_injected_instances() {
    let base = small_stream(23);
    let injected = FraudInjector::inject(
        &base,
        &FraudInjectorConfig {
            instances_per_pattern: 1,
            transactions_per_instance: 250,
            amount: 600.0,
            ..Default::default()
        },
    );
    let mut engine = SpadeEngine::new(WeightedDensity);
    for e in &injected.edges {
        engine.insert_edge(e.src, e.dst, e.raw).expect("insert");
    }
    let det = engine.detect();
    let found = enumerate_static(
        engine.graph(),
        EnumerationConfig {
            max_instances: 6,
            min_density: det.density / 30.0,
            ..Default::default()
        },
    );
    assert!(!found.is_empty());
    // At least one enumerated community must recover most of an injected
    // instance's member set.
    let best_recall = injected
        .instances
        .iter()
        .map(|gt| {
            found
                .iter()
                .map(|inst| {
                    let members: std::collections::HashSet<u32> =
                        inst.members.iter().map(|u| u.0).collect();
                    gt.members.iter().filter(|m| members.contains(&m.0)).count() as f64
                        / gt.members.len() as f64
                })
                .fold(0.0f64, f64::max)
        })
        .fold(0.0f64, f64::max);
    assert!(best_recall >= 0.8, "best recall {best_recall} too low");
}

#[test]
fn time_window_detector_over_generated_stream() {
    let stream = small_stream(31);
    let records: Vec<WindowRecord> = stream
        .edges
        .iter()
        .map(|e| WindowRecord { src: e.src, dst: e.dst, c: e.raw, ts: e.timestamp })
        .collect();
    let horizon = records.last().unwrap().ts;
    let mut detector = TimeWindowDetector::new(records.clone());
    // Slide a window across the stream; every answer must match a fresh
    // bootstrap of exactly that window.
    for (ts, te) in
        [(0, horizon / 3), (horizon / 4, horizon / 2), (horizon / 3, horizon), (0, horizon + 1)]
    {
        let (det, _) = detector.detect_window(ts, te).expect("window move");
        let fresh = SpadeEngine::bootstrap(
            WeightedDensity,
            SpadeConfig::default(),
            records.iter().filter(|r| r.ts >= ts && r.ts < te).map(|r| (r.src, r.dst, r.c)),
        )
        .expect("bootstrap");
        let want = peel(fresh.graph());
        assert!(
            (det.density - want.best_density).abs() < 1e-6,
            "window [{ts},{te}): {} vs {}",
            det.density,
            want.best_density
        );
    }
}

#[test]
fn detection_backends_agree_on_real_workload() {
    let stream = small_stream(47);
    let (initial, increments) = stream.split(0.9);
    let mut kinetic = SpadeEngine::bootstrap(
        WeightedDensity,
        SpadeConfig { detection: DetectionBackend::Kinetic },
        initial.iter().map(|e| (e.src, e.dst, e.raw)),
    )
    .expect("bootstrap");
    let mut scan = SpadeEngine::bootstrap(
        WeightedDensity,
        SpadeConfig { detection: DetectionBackend::EagerScan },
        initial.iter().map(|e| (e.src, e.dst, e.raw)),
    )
    .expect("bootstrap");
    for e in increments {
        let a = kinetic.insert_edge(e.src, e.dst, e.raw).expect("insert");
        let b = scan.insert_edge(e.src, e.dst, e.raw).expect("insert");
        assert_eq!(a.size, b.size, "backend community sizes diverged");
        assert!((a.density - b.density).abs() < 1e-6);
    }
}

#[test]
fn facade_full_lifecycle() {
    use spade::core::SpadeBuilder;
    let stream = small_stream(61);
    let (initial, increments) = stream.split(0.9);
    let mut spade = SpadeBuilder::new()
        .name("DW")
        .esusp(|_, _, raw, _| raw)
        .turn_on_edge_grouping()
        .load_records(initial.iter().map(|e| (e.src, e.dst, e.raw)))
        .expect("load");
    for e in increments {
        spade.insert_edge(e.src, e.dst, e.raw).expect("insert");
    }
    let community = spade.detect().expect("detect");
    assert!(!community.is_empty());
    // After detect(), the buffer must be empty and the engine state a
    // valid greedy peel. DW amounts are continuous floats here, so the
    // incremental and from-scratch summation orders differ in the last
    // ulps and near-ties in the peeling order may resolve differently —
    // verify the greedy invariant within tolerance (the FD convention)
    // plus density agreement instead of bit equality.
    assert_eq!(spade.grouper().unwrap().buffered(), 0);
    spade.engine().state().validate_greedy(spade.engine().graph(), 1e-6);
    let fresh = peel(spade.engine().graph());
    let det = spade.engine().cached_detection();
    assert!((det.density - fresh.best_density).abs() < 1e-6);
}
