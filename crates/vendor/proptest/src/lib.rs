//! Offline stand-in for `proptest`.
//!
//! Implements the subset the workspace's property tests use: the
//! [`Strategy`] trait (`prop_map`, tuples, integer ranges), weighted
//! unions via [`prop_oneof!`], vector strategies via [`collection::vec`],
//! and the [`proptest!`] test macro with `ProptestConfig::with_cases`.
//! Inputs are generated from a per-case deterministic seed. Unlike the
//! real proptest there is **no shrinking**: a failing case panics with the
//! case number so it can be replayed by rerunning the test (the seed is a
//! pure function of the case number).

use rand::SeedableRng;
pub use rand_chacha::ChaCha8Rng as TestRng;

pub mod strategy {
    //! Value-generation strategies.

    use super::TestRng;
    use rand::Rng;
    use std::rc::Rc;

    /// Generates values of `Self::Value` from a seeded RNG.
    pub trait Strategy: Clone {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U + Clone,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (used by [`prop_oneof!`]).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            let this = self;
            BoxedStrategy(Rc::new(move |rng| this.generate(rng)))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(pub(crate) Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U + Clone,
    {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Weighted union of same-valued strategies (see [`prop_oneof!`]).
    pub struct Union<T> {
        options: Vec<(u32, BoxedStrategy<T>)>,
        total: u32,
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union { options: self.options.clone(), total: self.total }
        }
    }

    impl<T> Union<T> {
        /// Builds a union from `(weight, strategy)` pairs.
        pub fn new(options: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total = options.iter().map(|(w, _)| *w).sum();
            assert!(total > 0, "prop_oneof! needs positive total weight");
            Union { options, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.gen_range(0..self.total);
            for (w, s) in &self.options {
                if pick < *w {
                    return s.generate(rng);
                }
                pick -= w;
            }
            unreachable!("weights cover the sampled range")
        }
    }

    macro_rules! range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for core::ops::Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for core::ops::Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng;

    /// Vectors of `elem` values with lengths drawn from `lens`.
    pub fn vec<S: Strategy>(elem: S, lens: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(!lens.is_empty(), "empty length range");
        VecStrategy { elem, lens }
    }

    /// See [`vec`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        lens: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.lens.clone());
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Runner configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Drives `body` over `config.cases` deterministic cases. Called by the
/// [`proptest!`] expansion; not part of the public API of the real crate.
pub fn run_cases<F>(config: ProptestConfig, test_name: &str, mut body: F)
where
    F: FnMut(&mut TestRng) -> Result<(), String>,
{
    // Per-test, per-case deterministic seeds: replaying a failure only
    // needs the case number printed in the panic message.
    let name_seed = test_name
        .bytes()
        .fold(0x9E37_79B9u64, |acc, b| acc.wrapping_mul(131).wrapping_add(b as u64));
    for case in 0..config.cases {
        let mut rng = TestRng::seed_from_u64(name_seed ^ (0xC0DE_0000 + case as u64));
        if let Err(msg) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)))
            .unwrap_or_else(|payload| {
                let msg = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_else(|| "non-string panic".to_string());
                Err(msg)
            })
        {
            panic!("property {test_name} failed at case {case}/{}: {msg}", config.cases);
        }
    }
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $( $(#[$meta:meta])* fn $name:ident( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases($cfg, stringify!($name), |__rng| {
                    $( let $arg = $crate::strategy::Strategy::generate(&($strat), __rng); )+
                    // Immediately-invoked closure so `return Ok(())` works
                    // inside property bodies, as in the real proptest.
                    #[allow(clippy::redundant_closure_call)]
                    let __result: ::std::result::Result<(), ::std::string::String> = (move || {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    __result
                });
            }
        )*
    };
    (
        $( $(#[$meta:meta])* fn $name:ident( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $( $(#[$meta])* fn $name( $($arg in $strat),+ ) $body )*
        }
    };
}

/// `assert!` under a property-test name.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` under a property-test name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `assert_ne!` under a property-test name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Weighted choice between same-valued strategies:
/// `prop_oneof![3 => strat_a, 1 => strat_b]`.
#[macro_export]
macro_rules! prop_oneof {
    ( $( $w:expr => $s:expr ),+ $(,)? ) => {
        $crate::strategy::Union::new(vec![
            $( (($w) as u32, $crate::strategy::Strategy::boxed($s)) ),+
        ])
    };
    ( $( $s:expr ),+ $(,)? ) => {
        $crate::prop_oneof![ $( 1 => $s ),+ ]
    };
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::collection;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Choice {
        Small(u8),
        Pair(u32, u32),
    }

    fn choice() -> impl Strategy<Value = Choice> {
        prop_oneof![
            3 => (1u8..10).prop_map(Choice::Small),
            1 => (0u32..5, 5u32..9).prop_map(|(a, b)| Choice::Pair(a, b)),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn generated_values_respect_strategies(
            v in collection::vec(choice(), 1..20),
            x in 3usize..7
        ) {
            prop_assert!((3..7).contains(&x));
            prop_assert!(!v.is_empty() && v.len() < 20);
            for c in v {
                match c {
                    Choice::Small(s) => prop_assert!((1..10).contains(&s)),
                    Choice::Pair(a, b) => {
                        prop_assert!(a < 5);
                        prop_assert!((5..9).contains(&b));
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_report_case_number() {
        crate::run_cases(ProptestConfig::with_cases(4), "always_fails", |_rng| {
            Err("boom".to_string())
        });
    }
}
