//! The sharded parallel detection runtime.
//!
//! [`ShardedSpadeService`] fans the single-engine worker loop of
//! [`crate::service`] out across N shards: a [`Partitioner`] routes each
//! arriving transaction to one shard, every shard runs a full
//! [`SpadeEngine`] (plus optional §4.3 edge grouping) behind its own
//! bounded ingest queue on its own thread, and a [`DetectionAggregator`]
//! merges the per-shard snapshots into a global densest-community view on
//! every read.
//!
//! With the connectivity partitioner (the default), a community whose
//! component is born and stays on one home shard has all of its edges
//! co-resident, so that shard detects exactly what a single engine over
//! the whole stream would — while benign traffic spreads across all
//! cores. Exactness is *per component home*: edges routed before two
//! already-homed components merge stay on their original shards (no
//! migration — see `shard::partition`), and components that outgrow the
//! spill bound hash-spread. Shutdown fans out: every queue is drained,
//! every grouper flushed, every worker joined, and the final aggregate
//! reflects every submitted transaction.

use crate::engine::SpadeEngine;
use crate::grouping::GroupingConfig;
use crate::metric::DensityMetric;
use crate::service::{
    CandidateRegion, IngestConfig, PublishedDetection, ServiceStats, SpadeService,
};
use crate::shard::aggregate::{DetectionAggregator, GlobalDetection};
use crate::shard::partition::{HashPartitioner, PartitionStrategy, Partitioner};
use crate::shard::repair::{
    repair_regions, RepairConfig, RepairOutcome, RepairScratch, RepairStats, RepairedDetection,
};
use parking_lot::{Mutex, RwLock};
use spade_graph::hash::FxHashSet;
use spade_graph::VertexId;
use std::sync::Arc;

/// Configuration of the sharded runtime.
#[derive(Clone, Copy, Debug)]
pub struct ShardedConfig {
    /// Number of worker shards (engines/threads). Minimum 1.
    pub shards: usize,
    /// Per-shard ingest queue bound (back-pressure per shard).
    pub queue_capacity: usize,
    /// Per-shard drain-coalescing cap: how many queued commands a shard
    /// worker applies per wake-up as one batch (one reorder pass, one
    /// publish). `1` means strict per-edge processing; see
    /// [`IngestConfig::coalesce`].
    pub coalesce: usize,
    /// Edge-grouping configuration applied inside every shard.
    pub grouping: Option<GroupingConfig>,
    /// Edge-to-shard routing policy.
    pub strategy: PartitionStrategy,
    /// Ranked shard entries kept in each [`GlobalDetection`].
    pub top_k: usize,
    /// Cross-shard repair tuning (frontier radius, staleness budget).
    pub repair: RepairConfig,
}

impl Default for ShardedConfig {
    fn default() -> Self {
        let ingest = IngestConfig::default();
        ShardedConfig {
            shards: std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4).min(8),
            queue_capacity: ingest.queue_capacity,
            coalesce: ingest.coalesce,
            grouping: None,
            strategy: PartitionStrategy::default(),
            top_k: 4,
            repair: RepairConfig::default(),
        }
    }
}

impl ShardedConfig {
    /// A config with `shards` workers and defaults elsewhere.
    pub fn with_shards(shards: usize) -> Self {
        ShardedConfig { shards: shards.max(1), ..Default::default() }
    }
}

/// Point-in-time statistics of one shard: the shard index plus its
/// worker's [`ServiceStats`] (queue depth, counters, detection
/// descriptor).
#[derive(Clone, Copy, Debug, Default)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// The shard worker's service statistics.
    pub service: ServiceStats,
}

/// Handle to a running sharded detection runtime. Each shard is a full
/// [`SpadeService`] (engine + bounded queue + worker thread); this type
/// adds routing and aggregation on top.
pub struct ShardedSpadeService {
    shards: Vec<SpadeService>,
    router: Router,
    aggregator: DetectionAggregator,
    repair_config: RepairConfig,
    /// Repair scheduler state (scratch engine, counters, freshness
    /// markers). One pass runs at a time; pollers that find the state
    /// fresh are answered from `repaired` without taking this lock long.
    repair: Mutex<RepairState>,
    /// The published repaired snapshot: swapped whole on change (members
    /// behind an `Arc`, cloned by pointer), read lock-briefly by any
    /// number of moderators.
    repaired: RwLock<RepairedDetection>,
}

/// Mutable state of the repair scheduler.
struct RepairState {
    scratch: RepairScratch,
    stats: RepairStats,
    /// Per-shard `(epoch, updates_applied)` observed at the last
    /// scheduler decision — unchanged shards mean a cached answer.
    seen: Vec<(u64, u64)>,
    /// Total updates consumed when the last full pass ran (staleness
    /// budget accounting).
    last_pass_updates: u64,
    /// Monotone epoch of the published repaired snapshot.
    epoch: u64,
}

impl RepairState {
    fn new() -> Self {
        RepairState {
            scratch: RepairScratch::new(),
            stats: RepairStats::default(),
            seen: Vec::new(),
            last_pass_updates: 0,
            epoch: 0,
        }
    }
}

/// `true` when any vertex appears in two different shards' published
/// member lists — the signature of a community split by hash routing.
fn members_overlap(snapshots: &[PublishedDetection]) -> bool {
    let mut seen: FxHashSet<u32> = FxHashSet::default();
    for det in snapshots {
        for m in det.members.iter() {
            if !seen.insert(m.0) {
                return true;
            }
        }
    }
    false
}

/// The routing fast path: stateless policies route lock-free; stateful
/// ones (union-find) serialize behind a mutex.
enum Router {
    /// Lock-free hash-by-source.
    Hash(HashPartitioner),
    /// Any stateful [`Partitioner`].
    Locked(Mutex<Box<dyn Partitioner>>),
}

impl Router {
    fn new(strategy: PartitionStrategy) -> Self {
        match strategy {
            PartitionStrategy::HashBySource => Router::Hash(HashPartitioner),
            other => Router::Locked(Mutex::new(other.build())),
        }
    }

    #[inline]
    fn route(&self, src: VertexId, dst: VertexId, num_shards: usize) -> usize {
        match self {
            // `HashPartitioner::route` takes `&mut self` to satisfy the
            // trait but touches no state; a copy keeps this lock-free.
            Router::Hash(p) => {
                let mut p = *p;
                p.route(src, dst, num_shards)
            }
            Router::Locked(p) => p.lock().route(src, dst, num_shards),
        }
    }
}

impl ShardedSpadeService {
    /// Spawns `config.shards` worker engines built by `factory` (called
    /// once per shard index — use it to pre-bootstrap shards from
    /// snapshots or to vary per-shard configuration).
    pub fn spawn_with<M, F>(config: ShardedConfig, mut factory: F) -> Self
    where
        M: DensityMetric + Send + 'static,
        F: FnMut(usize) -> SpadeEngine<M>,
    {
        let num_shards = config.shards.max(1);
        let mut shards = Vec::with_capacity(num_shards);
        let ingest =
            IngestConfig { queue_capacity: config.queue_capacity, coalesce: config.coalesce };
        for shard in 0..num_shards {
            shards.push(SpadeService::spawn_with(
                factory(shard),
                config.grouping,
                ingest,
                format!("spade-shard-{shard}"),
            ));
        }
        ShardedSpadeService {
            shards,
            router: Router::new(config.strategy),
            aggregator: DetectionAggregator::new(config.top_k.max(1)),
            repair_config: config.repair,
            repair: Mutex::new(RepairState::new()),
            repaired: RwLock::new(RepairedDetection::default()),
        }
    }

    /// Spawns the runtime with one empty engine per shard sharing the
    /// given metric.
    pub fn spawn<M>(metric: M, config: ShardedConfig) -> Self
    where
        M: DensityMetric + Clone + Send + 'static,
    {
        Self::spawn_with(config, |_| SpadeEngine::new(metric.clone()))
    }

    /// Number of worker shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Routes one transaction to its shard and enqueues it; blocks when
    /// that shard's queue is full (per-shard back-pressure). Returns
    /// `false` if the runtime has shut down.
    pub fn submit(&self, src: VertexId, dst: VertexId, raw: f64) -> bool {
        let shard = self.router.route(src, dst, self.shards.len());
        self.shards[shard].submit(src, dst, raw)
    }

    /// Asks every shard to flush buffered benign edges. Returns `false`
    /// if any shard has shut down.
    pub fn flush(&self) -> bool {
        self.shards.iter().all(|s| s.flush())
    }

    /// The merged global detection across all shards (densest community
    /// wins), computed from each shard's latest snapshot.
    pub fn current_detection(&self) -> GlobalDetection {
        self.aggregator.merge(self.shards.iter().map(|s| s.current_detection()).collect())
    }

    /// One shard's latest published detection.
    pub fn shard_detection(&self, shard: usize) -> PublishedDetection {
        self.shards[shard].current_detection()
    }

    /// Per-shard statistics: queue depth, updates applied, flush and
    /// publish counts, current detection descriptor.
    pub fn stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .enumerate()
            .map(|(shard, s)| ShardStats { shard, service: s.stats() })
            .collect()
    }

    /// Forces a cross-shard repair pass now: every shard exports its
    /// candidate region (community + `RepairConfig::hops` frontier,
    /// serialized through the persist subgraph codec), regions sharing
    /// members are unioned and re-peeled through the scratch engine, and
    /// the repaired snapshot — density provably ≥ the best per-shard
    /// detection — is published and returned. Blocks until every shard
    /// has drained the submissions that preceded this call (region
    /// requests ride the same FIFO queues as transactions).
    pub fn repair(&self) -> RepairedDetection {
        let mut state = self.repair.lock();
        self.run_repair(&mut state)
    }

    /// The scheduled entry point: answers from the cached repaired
    /// snapshot while no shard has published anything new; publishes the
    /// best per-shard view (no export) when detections changed but
    /// nothing overlaps; and runs a full repair pass when per-shard
    /// member sets overlap — the split-community signature — or the
    /// staleness budget (`RepairConfig::staleness_budget` ingest
    /// commands) has been exhausted since the last pass.
    pub fn repaired_detection(&self) -> RepairedDetection {
        let mut state = self.repair.lock();
        let snapshots: Vec<PublishedDetection> =
            self.shards.iter().map(|s| s.current_detection()).collect();
        let changed = state.seen.len() != snapshots.len()
            || snapshots
                .iter()
                .zip(&state.seen)
                .any(|(d, &(epoch, updates))| d.epoch != epoch || d.updates_applied != updates);
        if !changed {
            state.stats.served_cached += 1;
            return self.repaired.read().clone();
        }
        let total: u64 = snapshots.iter().map(|d| d.updates_applied).sum();
        let stale =
            total.saturating_sub(state.last_pass_updates) >= self.repair_config.staleness_budget;
        if !stale && !members_overlap(&snapshots) {
            // Disjoint detections: the best per-shard view needs no
            // merging; publish it without exporting a single region.
            state.seen = snapshots.iter().map(|d| (d.epoch, d.updates_applied)).collect();
            let (best_shard, best) = snapshots
                .iter()
                .enumerate()
                .max_by(|(i, a), (j, b)| a.density.total_cmp(&b.density).then(j.cmp(i)))
                .map(|(i, d)| (i, d.clone()))
                .unwrap_or_default();
            let baseline = best.density;
            return self.publish_repaired(
                &mut state,
                RepairOutcome {
                    members: best.members.to_vec(),
                    size: best.size,
                    density: best.density,
                    baseline_density: baseline,
                    baseline_shard: best_shard,
                    ..RepairOutcome::default()
                },
                total,
            );
        }
        self.run_repair(&mut state)
    }

    /// Counters of the repair subsystem.
    pub fn repair_stats(&self) -> RepairStats {
        self.repair.lock().stats
    }

    /// The repair pass proper: export → group/union/re-peel → publish.
    fn run_repair(&self, state: &mut RepairState) -> RepairedDetection {
        let hops = self.repair_config.hops;
        // Freshness markers are captured BEFORE the export: an edge that
        // lands while the pass runs makes the next scheduler call re-run
        // (one conservative extra pass) instead of being mistaken for
        // covered and served stale forever.
        state.seen = self
            .shards
            .iter()
            .map(|s| {
                let d = s.current_detection();
                (d.epoch, d.updates_applied)
            })
            .collect();
        // Fan the export out: request every region first, then collect
        // the replies, so all shards drain their queues and extract
        // frontiers concurrently instead of one after another.
        let pending: Vec<_> = self
            .shards
            .iter()
            .enumerate()
            .filter_map(|(shard, s)| s.request_candidate_region(hops).map(|rx| (shard, rx)))
            .collect();
        let mut regions: Vec<(usize, CandidateRegion)> = Vec::with_capacity(pending.len());
        for (shard, receiver) in pending {
            if let Ok(region) = receiver.recv() {
                regions.push((shard, region));
            }
        }
        let updates: u64 = regions.iter().map(|(_, r)| r.updates_applied).sum();
        state.stats.repairs += 1;
        state.stats.regions_exported += regions.len() as u64;
        let outcome = repair_regions(&regions, &mut state.scratch);
        state.stats.groups_merged += outcome.groups_merged as u64;
        state.stats.corrupt_regions += outcome.corrupt_regions as u64;
        state.stats.last_gain = (outcome.density - outcome.baseline_density).max(0.0);
        state.last_pass_updates = updates;
        self.publish_repaired(state, outcome, updates)
    }

    /// Swaps the published repaired snapshot only when the answer
    /// actually changed (epoch bump, fresh `Arc`); otherwise the previous
    /// member allocation is kept and only provenance metadata refreshes.
    fn publish_repaired(
        &self,
        state: &mut RepairState,
        outcome: RepairOutcome,
        updates: u64,
    ) -> RepairedDetection {
        let mut guard = self.repaired.write();
        let unchanged = guard.detection.size == outcome.size
            && guard.detection.density.to_bits() == outcome.density.to_bits()
            && *guard.detection.members == *outcome.members;
        let members: Arc<[VertexId]> = if unchanged {
            Arc::clone(&guard.detection.members)
        } else {
            state.epoch += 1;
            state.stats.published += 1;
            Arc::from(outcome.members)
        };
        *guard = RepairedDetection {
            detection: PublishedDetection {
                size: outcome.size,
                density: outcome.density,
                members,
                updates_applied: updates,
                epoch: state.epoch,
            },
            baseline_density: outcome.baseline_density,
            baseline_shard: outcome.baseline_shard,
            merged_shards: outcome.merged_shards,
            repaired: outcome.repaired,
            regions: outcome.regions,
        };
        guard.clone()
    }

    /// Shuts every shard down in turn, waiting for each queue to drain
    /// and each worker to exit, and returns the final merged detection —
    /// it reflects every transaction ever submitted. (Workers keep
    /// draining their own queues concurrently while earlier shards are
    /// joined, so the total wait is governed by the slowest shard.)
    pub fn shutdown(mut self) -> GlobalDetection {
        let snapshots: Vec<PublishedDetection> =
            self.shards.drain(..).map(SpadeService::shutdown).collect();
        self.aggregator.merge(snapshots)
    }

    /// [`shutdown`](Self::shutdown) preceded by a final flush + repair
    /// pass, so the returned repaired snapshot reflects every submitted
    /// transaction (including grouped benign edges, which the flush
    /// forces out of the per-shard buffers before regions are exported).
    pub fn shutdown_repaired(self) -> (GlobalDetection, RepairedDetection) {
        self.flush();
        let repaired = self.repair();
        (self.shutdown(), repaired)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::WeightedDensity;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    /// Noise path + a dense ring, mirroring the single-service test.
    fn feed_ring(service: &ShardedSpadeService) -> u64 {
        let mut submitted = 0;
        for i in 0..10u32 {
            assert!(service.submit(v(i), v(i + 1), 1.0));
            submitted += 1;
        }
        for a in 50..54u32 {
            for b in 50..54u32 {
                if a != b {
                    assert!(service.submit(v(a), v(b), 25.0));
                    submitted += 1;
                }
            }
        }
        submitted
    }

    #[test]
    fn sharded_runtime_detects_the_ring() {
        let service = ShardedSpadeService::spawn(WeightedDensity, ShardedConfig::with_shards(4));
        assert_eq!(service.num_shards(), 4);
        let submitted = feed_ring(&service);
        let global = service.shutdown();
        assert!(global.best.density > 10.0);
        assert!(global.best.members.iter().all(|m| (50..54).contains(&m.0)));
        assert_eq!(global.total_updates, submitted);
    }

    #[test]
    fn one_shard_equals_the_single_service() {
        let sharded = ShardedSpadeService::spawn(WeightedDensity, ShardedConfig::with_shards(1));
        feed_ring(&sharded);
        let global = sharded.shutdown();

        let single =
            crate::service::SpadeService::spawn(SpadeEngine::new(WeightedDensity), None, 64);
        for i in 0..10u32 {
            single.submit(v(i), v(i + 1), 1.0);
        }
        for a in 50..54u32 {
            for b in 50..54u32 {
                if a != b {
                    single.submit(v(a), v(b), 25.0);
                }
            }
        }
        let want = single.shutdown();
        assert_eq!(global.best.size, want.size);
        assert!((global.best.density - want.density).abs() < 1e-12);
        assert_eq!(global.best.members, want.members);
    }

    #[test]
    fn per_shard_stats_cover_all_submissions() {
        let service = ShardedSpadeService::spawn(WeightedDensity, ShardedConfig::with_shards(3));
        let submitted = feed_ring(&service);
        // Drain deterministically before reading stats.
        let global = service.current_detection();
        let _ = global;
        let final_global = {
            let stats_before = service.stats();
            assert_eq!(stats_before.len(), 3);
            service.shutdown()
        };
        assert_eq!(final_global.total_updates, submitted);
    }

    #[test]
    fn grouped_shards_flush_on_shutdown() {
        let config = ShardedConfig {
            shards: 2,
            grouping: Some(GroupingConfig::default()),
            ..Default::default()
        };
        let service = ShardedSpadeService::spawn_with(config, |_| {
            // Pre-established community so benign traffic buffers.
            let mut engine = SpadeEngine::new(WeightedDensity);
            for a in 100..103u32 {
                for b in 100..103u32 {
                    if a != b {
                        engine.insert_edge(v(a), v(b), 20.0).unwrap();
                    }
                }
            }
            engine
        });
        // Benign edges: buffered inside their shard until shutdown drains.
        for i in 0..6u32 {
            assert!(service.submit(v(i), v(i + 1), 0.01));
        }
        let global = service.shutdown();
        assert_eq!(global.total_updates, 6);
        assert!(global.best.size >= 3);
    }

    #[test]
    fn drop_joins_all_workers() {
        let service = ShardedSpadeService::spawn(WeightedDensity, ShardedConfig::with_shards(4));
        feed_ring(&service);
        drop(service); // must not hang or panic
    }

    /// All ordered pairs of a heavy ring over `ids`, plus a noise path.
    fn ring_with_noise(ids: std::ops::Range<u32>) -> Vec<(VertexId, VertexId, f64)> {
        let mut edges = Vec::new();
        for i in 0..10u32 {
            edges.push((v(i), v(i + 1), 1.0));
        }
        for a in ids.clone() {
            for b in ids.clone() {
                if a != b {
                    edges.push((v(a), v(b), 25.0));
                }
            }
        }
        edges
    }

    #[test]
    fn repair_recovers_hash_split_ring_exactly() {
        let edges = ring_with_noise(50..54);
        let mut solo = SpadeEngine::new(WeightedDensity);
        for &(a, b, w) in &edges {
            solo.insert_edge(a, b, w).unwrap();
        }
        let want = solo.detect();
        let mut want_members: Vec<u32> = solo.community(want).iter().map(|m| m.0).collect();
        want_members.sort_unstable();

        let config = ShardedConfig {
            shards: 4,
            strategy: PartitionStrategy::HashBySource,
            ..Default::default()
        };
        let service = ShardedSpadeService::spawn(WeightedDensity, config);
        for &(a, b, w) in &edges {
            assert!(service.submit(a, b, w));
        }
        let repaired = service.repair();
        let global = service.shutdown();

        // The diluted per-shard baseline never beats the solo answer...
        assert!(repaired.baseline_density <= want.density + 1e-9);
        assert!(global.best.density <= want.density + 1e-9);
        // ...and the repaired snapshot recovers it exactly.
        assert!((repaired.detection.density - want.density).abs() < 1e-9);
        let got: Vec<u32> = repaired.detection.members.iter().map(|m| m.0).collect();
        assert_eq!(got, want_members);
        assert_eq!(repaired.detection.size, want.size);
        assert!(repaired.detection.density >= repaired.baseline_density);
    }

    #[test]
    fn unchanged_repair_keeps_the_published_arc() {
        let service = ShardedSpadeService::spawn(
            WeightedDensity,
            ShardedConfig {
                shards: 2,
                strategy: PartitionStrategy::HashBySource,
                ..Default::default()
            },
        );
        for (a, b, w) in ring_with_noise(80..84) {
            assert!(service.submit(a, b, w));
        }
        let first = service.repair();
        let second = service.repair();
        assert_eq!(first.detection.epoch, second.detection.epoch);
        assert!(std::sync::Arc::ptr_eq(&first.detection.members, &second.detection.members));
        let stats = service.repair_stats();
        assert_eq!(stats.repairs, 2);
        assert_eq!(stats.published, 1, "identical answers must not swap the snapshot");
        drop(service);
    }

    #[test]
    fn repaired_detection_serves_from_cache_until_shards_change() {
        let service = ShardedSpadeService::spawn(
            WeightedDensity,
            ShardedConfig {
                shards: 2,
                strategy: PartitionStrategy::HashBySource,
                ..Default::default()
            },
        );
        for (a, b, w) in ring_with_noise(80..84) {
            assert!(service.submit(a, b, w));
        }
        // Force one pass (drains everything). Freshness markers are
        // captured conservatively *before* each export, so the first
        // poll may re-run once over the now-settled shards; from then on
        // the scheduler answers from cache.
        let forced = service.repair();
        let polled = service.repaired_detection();
        assert_eq!(polled.detection.epoch, forced.detection.epoch);
        let cached = service.repaired_detection();
        assert_eq!(cached.detection.epoch, forced.detection.epoch);
        assert!(service.repair_stats().served_cached >= 1);
        // New traffic invalidates the cache; the scheduler notices.
        for i in 100..120u32 {
            assert!(service.submit(v(i), v(i + 1), 1.0));
        }
        let _ = service.repair(); // deterministic drain via the pass
        assert!(service.repair_stats().repairs >= 2);
        drop(service);
    }

    #[test]
    fn shutdown_repaired_covers_every_submission() {
        let config = ShardedConfig {
            shards: 3,
            strategy: PartitionStrategy::HashBySource,
            grouping: Some(GroupingConfig::default()),
            ..Default::default()
        };
        let service = ShardedSpadeService::spawn(WeightedDensity, config);
        let edges = ring_with_noise(60..64);
        for &(a, b, w) in &edges {
            assert!(service.submit(a, b, w));
        }
        let (global, repaired) = service.shutdown_repaired();
        assert_eq!(global.total_updates, edges.len() as u64);
        assert_eq!(repaired.detection.updates_applied, edges.len() as u64);
        assert!(repaired.detection.density >= global.best.density - 1e-9);
    }

    #[test]
    fn top_ranking_orders_by_density() {
        let service = ShardedSpadeService::spawn(
            WeightedDensity,
            ShardedConfig { shards: 3, top_k: 3, ..Default::default() },
        );
        feed_ring(&service);
        let global = service.shutdown();
        assert!(!global.top.is_empty());
        for pair in global.top.windows(2) {
            assert!(pair[0].detection.density >= pair[1].detection.density, "ranking out of order");
        }
        assert_eq!(global.top[0].shard, global.best_shard);
    }
}
