//! Fraud-pattern injection with ground-truth labels (paper Fig. 12/13).
//!
//! Each injected *instance* is a burst of transactions forming a dense
//! subgraph over a small set of accounts within a short timespan —
//! "all three cases form a dense subgraph in a short period of time"
//! (§5.2). The three shapes differ in who connects to whom:
//!
//! * **Customer–merchant collusion** — a handful of fake customers and a
//!   couple of fresh merchants trade in a near-complete bipartite block
//!   with large amounts (promotion farming).
//! * **Deal-hunter** — a wider group of fresh accounts hammers a few
//!   *existing* merchants with mid-sized amounts (promo/bug exploitation).
//! * **Click-farming** — many recruited accounts push cheap repeated
//!   transactions into one or two fresh merchants (fake prosperity).
//!
//! Labels carry the instance id and pattern so the latency / prevention
//! metrics (Fig. 8, 9a, Table 5) and the enumeration timeline (Fig. 15)
//! can be computed against ground truth.

use crate::transactions::TransactionStream;
use rand::{seq::SliceRandom, Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use spade_core::stream::{FraudLabel, FraudPattern, StreamEdge};
use spade_graph::VertexId;

/// Configuration of the injector.
#[derive(Clone, Debug)]
pub struct FraudInjectorConfig {
    /// Instances injected *per pattern*.
    pub instances_per_pattern: usize,
    /// Fraudulent transactions per instance.
    pub transactions_per_instance: usize,
    /// Base number of fraud accounts per instance (patterns scale it).
    pub accounts_per_instance: usize,
    /// Transaction amount scale for collusion (others derive from it).
    pub amount: f64,
    /// Length of each instance's burst, in stream time units.
    pub burst_duration: u64,
    /// Inject instances only after this fraction of the stream duration —
    /// set to the initial-graph fraction (0.9) so fraud falls inside the
    /// replayed increments.
    pub inject_after_fraction: f64,
    /// Camouflage transactions per fraud account: organic-looking payments
    /// to random existing merchants, interleaved with the burst. This is
    /// the adversary Fraudar (FD) is designed to resist — camouflage
    /// lands on busy merchants whose logarithmic edge weight is tiny, so
    /// it barely dilutes the block under FD while it distorts unweighted
    /// degrees.
    pub camouflage_per_account: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FraudInjectorConfig {
    fn default() -> Self {
        FraudInjectorConfig {
            instances_per_pattern: 2,
            transactions_per_instance: 120,
            accounts_per_instance: 6,
            amount: 80.0,
            burst_duration: 400_000,
            inject_after_fraction: 0.9,
            camouflage_per_account: 0,
            seed: 0xF4A7D,
        }
    }
}

/// Ground truth describing one injected instance.
#[derive(Clone, Debug)]
pub struct FraudInstanceInfo {
    /// Label id carried by this instance's transactions.
    pub instance: u32,
    /// The pattern shape.
    pub pattern: FraudPattern,
    /// Accounts participating (both sides).
    pub members: Vec<VertexId>,
    /// Timestamp of the instance's first transaction.
    pub start_ts: u64,
    /// Number of injected transactions.
    pub transactions: usize,
}

/// A base stream merged with labeled fraud bursts.
#[derive(Clone, Debug)]
pub struct InjectedStream {
    /// All transactions, sorted by timestamp.
    pub edges: Vec<StreamEdge>,
    /// Ground truth per instance.
    pub instances: Vec<FraudInstanceInfo>,
    /// One past the largest allocated vertex id.
    pub next_free_id: u32,
}

/// The fraud injector.
pub struct FraudInjector;

impl FraudInjector {
    /// Injects `config`-many instances of all three patterns into `base`.
    pub fn inject(base: &TransactionStream, config: &FraudInjectorConfig) -> InjectedStream {
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let mut edges = base.edges.clone();
        let mut next_id = base.next_free_id;
        let mut instances = Vec::new();
        let horizon = base.edges.last().map(|e| e.timestamp).unwrap_or(config.burst_duration);
        let earliest = (horizon as f64 * config.inject_after_fraction) as u64;

        let mut instance_id = 0u32;
        for pattern in FraudPattern::ALL {
            for _ in 0..config.instances_per_pattern {
                let start = rng.gen_range(
                    earliest..horizon.saturating_sub(config.burst_duration).max(earliest + 1),
                );
                let info = match pattern {
                    FraudPattern::CustomerMerchantCollusion => Self::collusion(
                        &mut rng,
                        config,
                        &mut edges,
                        &mut next_id,
                        instance_id,
                        start,
                    ),
                    FraudPattern::DealHunter => Self::deal_hunter(
                        &mut rng,
                        config,
                        base,
                        &mut edges,
                        &mut next_id,
                        instance_id,
                        start,
                    ),
                    FraudPattern::ClickFarming => Self::click_farming(
                        &mut rng,
                        config,
                        &mut edges,
                        &mut next_id,
                        instance_id,
                        start,
                    ),
                };
                if config.camouflage_per_account > 0 {
                    Self::camouflage(&mut rng, config, base, &mut edges, &info);
                }
                instances.push(info);
                instance_id += 1;
            }
        }
        edges.sort_by_key(|e| e.timestamp);
        InjectedStream { edges, instances, next_free_id: next_id }
    }

    /// Emits unlabeled organic-looking transactions from each fraud
    /// account to random existing merchants, spread across the burst.
    fn camouflage<R: Rng>(
        rng: &mut R,
        config: &FraudInjectorConfig,
        base: &TransactionStream,
        edges: &mut Vec<StreamEdge>,
        info: &FraudInstanceInfo,
    ) {
        if base.merchants == 0 {
            return;
        }
        for &account in &info.members {
            for _ in 0..config.camouflage_per_account {
                let m = VertexId((base.customers + rng.gen_range(0..base.merchants)) as u32);
                if m == account {
                    // A deal-hunter victim is itself a merchant; skip the
                    // degenerate self-payment.
                    continue;
                }
                let t = info.start_ts + rng.gen_range(0..config.burst_duration.max(1));
                let amount = 5.0 + rng.gen::<f64>() * 20.0;
                // Unlabeled: camouflage mimics organic behaviour.
                edges.push(StreamEdge::organic(account, m, amount, t));
            }
        }
    }

    fn alloc(next_id: &mut u32, n: usize) -> Vec<VertexId> {
        let ids = (*next_id..*next_id + n as u32).map(VertexId).collect();
        *next_id += n as u32;
        ids
    }

    fn burst_times<R: Rng>(rng: &mut R, config: &FraudInjectorConfig, start: u64) -> Vec<u64> {
        let mut ts: Vec<u64> = (0..config.transactions_per_instance)
            .map(|_| start + rng.gen_range(0..config.burst_duration.max(1)))
            .collect();
        ts.sort_unstable();
        ts
    }

    /// Builds a shuffled grid of `(payer, payee)` cells covering the
    /// transaction count with as many **distinct pairs** as possible —
    /// under the set-semantics metrics (DG/FD) the distinct-pair density
    /// is what makes the block detectable.
    fn pair_grid<R: Rng>(
        rng: &mut R,
        payers: &[VertexId],
        payees: &[VertexId],
        count: usize,
    ) -> Vec<(VertexId, VertexId)> {
        let mut cells: Vec<(VertexId, VertexId)> =
            payers.iter().flat_map(|&p| payees.iter().map(move |&m| (p, m))).collect();
        cells.shuffle(rng);
        let mut out = Vec::with_capacity(count);
        while out.len() < count {
            let take = (count - out.len()).min(cells.len());
            out.extend_from_slice(&cells[..take]);
        }
        out
    }

    fn collusion<R: Rng>(
        rng: &mut R,
        config: &FraudInjectorConfig,
        edges: &mut Vec<StreamEdge>,
        next_id: &mut u32,
        instance: u32,
        start: u64,
    ) -> FraudInstanceInfo {
        // A balanced grid maximizes the distinct-pair density of the
        // block for a given transaction budget.
        let side = (config.transactions_per_instance as f64).sqrt().ceil() as usize;
        let c_count = side.max(config.accounts_per_instance).max(2);
        let m_count = config.transactions_per_instance.div_ceil(c_count).max(2);
        let customers = Self::alloc(next_id, c_count);
        let merchants = Self::alloc(next_id, m_count);
        let label = FraudLabel { instance, pattern: FraudPattern::CustomerMerchantCollusion };
        let times = Self::burst_times(rng, config, start);
        let pairs = Self::pair_grid(rng, &customers, &merchants, times.len());
        for (&t, &(c, m)) in times.iter().zip(&pairs) {
            let amount = config.amount * (0.8 + rng.gen::<f64>() * 0.4);
            edges.push(StreamEdge::fraudulent(c, m, amount, t, label));
        }
        let mut members = customers;
        members.extend(merchants);
        FraudInstanceInfo {
            instance,
            pattern: label.pattern,
            members,
            start_ts: times[0],
            transactions: times.len(),
        }
    }

    fn deal_hunter<R: Rng>(
        rng: &mut R,
        config: &FraudInjectorConfig,
        base: &TransactionStream,
        edges: &mut Vec<StreamEdge>,
        next_id: &mut u32,
        instance: u32,
        start: u64,
    ) -> FraudInstanceInfo {
        let side = (config.transactions_per_instance as f64 * 1.5).sqrt().ceil() as usize;
        let hunters = Self::alloc(next_id, side.max(2 * config.accounts_per_instance).max(2));
        // Victim merchants are existing, moderately popular ones.
        let n_victims = config.transactions_per_instance.div_ceil(hunters.len()).max(3);
        let mut victims: Vec<VertexId> = (0..n_victims)
            .map(|_| VertexId((base.customers + rng.gen_range(0..base.merchants.max(1))) as u32))
            .collect();
        victims.sort_unstable();
        victims.dedup();
        let label = FraudLabel { instance, pattern: FraudPattern::DealHunter };
        let times = Self::burst_times(rng, config, start);
        let pairs = Self::pair_grid(rng, &hunters, &victims, times.len());
        for (&t, &(h, m)) in times.iter().zip(&pairs) {
            let amount = config.amount * 0.5 * (0.8 + rng.gen::<f64>() * 0.4);
            edges.push(StreamEdge::fraudulent(h, m, amount, t, label));
        }
        let mut members = hunters;
        members.extend(victims.iter().copied());
        members.sort_unstable();
        members.dedup();
        FraudInstanceInfo {
            instance,
            pattern: label.pattern,
            members,
            start_ts: times[0],
            transactions: times.len(),
        }
    }

    fn click_farming<R: Rng>(
        rng: &mut R,
        config: &FraudInjectorConfig,
        edges: &mut Vec<StreamEdge>,
        next_id: &mut u32,
        instance: u32,
        start: u64,
    ) -> FraudInstanceInfo {
        let side = (config.transactions_per_instance as f64 * 3.0).sqrt().ceil() as usize;
        let clickers = Self::alloc(next_id, side.max(3 * config.accounts_per_instance).max(3));
        let m_count = config.transactions_per_instance.div_ceil(clickers.len()).max(1);
        let merchants = Self::alloc(next_id, m_count);
        let label = FraudLabel { instance, pattern: FraudPattern::ClickFarming };
        let times = Self::burst_times(rng, config, start);
        let pairs = Self::pair_grid(rng, &clickers, &merchants, times.len());
        for (&t, &(c, m)) in times.iter().zip(&pairs) {
            let amount = config.amount * 0.2 * (0.8 + rng.gen::<f64>() * 0.4);
            edges.push(StreamEdge::fraudulent(c, m, amount, t, label));
        }
        let mut members = clickers;
        members.extend(merchants);
        FraudInstanceInfo {
            instance,
            pattern: label.pattern,
            members,
            start_ts: times[0],
            transactions: times.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transactions::TransactionStreamConfig;
    use spade_core::{SpadeEngine, WeightedDensity};

    fn base() -> TransactionStream {
        TransactionStream::generate(&TransactionStreamConfig {
            customers: 300,
            merchants: 100,
            transactions: 3_000,
            seed: 3,
            ..Default::default()
        })
    }

    #[test]
    fn injects_expected_instances_and_labels() {
        let injected = FraudInjector::inject(&base(), &FraudInjectorConfig::default());
        assert_eq!(injected.instances.len(), 6); // 2 per pattern
        let labeled = injected.edges.iter().filter(|e| e.is_fraud()).count();
        assert_eq!(labeled, 6 * 120);
        // Edges stay timestamp-sorted after the merge.
        assert!(injected.edges.windows(2).all(|w| w[0].timestamp <= w[1].timestamp));
        // Instance ids are distinct and match labels.
        for info in &injected.instances {
            let count = injected
                .edges
                .iter()
                .filter(|e| e.label.is_some_and(|l| l.instance == info.instance))
                .count();
            assert_eq!(count, info.transactions);
        }
    }

    #[test]
    fn fraud_lands_in_the_increment_portion() {
        let b = base();
        let horizon = b.edges.last().unwrap().timestamp;
        let injected = FraudInjector::inject(&b, &FraudInjectorConfig::default());
        for e in injected.edges.iter().filter(|e| e.is_fraud()) {
            assert!(e.timestamp >= (horizon as f64 * 0.9) as u64 - 1);
        }
    }

    #[test]
    fn fresh_accounts_do_not_collide_with_base_ids() {
        let b = base();
        let injected = FraudInjector::inject(&b, &FraudInjectorConfig::default());
        assert!(injected.next_free_id > b.next_free_id);
        for info in &injected.instances {
            for &m in &info.members {
                assert!(m.0 < injected.next_free_id);
            }
        }
    }

    #[test]
    fn collusion_block_dominates_detection() {
        let b = base();
        // At this tiny scale (300 customers) the organic Zipf head is very
        // concentrated, so give the fraud burst realistic prominence: a
        // collusion ring's per-account flow far exceeds organic traffic.
        let injected = FraudInjector::inject(
            &b,
            &FraudInjectorConfig {
                instances_per_pattern: 1,
                amount: 500.0,
                transactions_per_instance: 150,
                ..Default::default()
            },
        );
        let mut engine = SpadeEngine::new(WeightedDensity);
        for e in &injected.edges {
            engine.insert_edge(e.src, e.dst, e.raw).unwrap();
        }
        let det = engine.detect();
        let community: std::collections::HashSet<u32> =
            engine.community(det).iter().map(|u| u.0).collect();
        // The detected community overlaps heavily with some injected
        // instance (the collusion block has by far the highest density).
        let best_overlap = injected
            .instances
            .iter()
            .map(|i| i.members.iter().filter(|m| community.contains(&m.0)).count())
            .max()
            .unwrap();
        assert!(
            best_overlap >= 4,
            "no injected instance overlaps the detection (overlap {best_overlap})"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let b = base();
        let a = FraudInjector::inject(&b, &FraudInjectorConfig::default());
        let c = FraudInjector::inject(&b, &FraudInjectorConfig::default());
        assert_eq!(a.edges.len(), c.edges.len());
        assert_eq!(a.edges, c.edges);
    }

    #[test]
    fn camouflage_adds_unlabeled_traffic() {
        let b = base();
        let plain = FraudInjector::inject(&b, &FraudInjectorConfig::default());
        let config =
            FraudInjectorConfig { camouflage_per_account: 3, ..FraudInjectorConfig::default() };
        let camo = FraudInjector::inject(&b, &config);
        assert!(camo.edges.len() > plain.edges.len());
        let plain_fraud = plain.edges.iter().filter(|e| e.is_fraud()).count();
        let camo_fraud = camo.edges.iter().filter(|e| e.is_fraud()).count();
        assert_eq!(plain_fraud, camo_fraud, "camouflage must be unlabeled");
    }

    #[test]
    fn fraudar_resists_camouflage() {
        use spade_core::{Fraudar, SpadeEngine};
        // A camouflaged collusion ring: FD's logarithmic weighting keeps
        // the block detectable because camouflage lands on busy merchants
        // whose edges carry little suspiciousness.
        let b = base();
        let config = FraudInjectorConfig {
            instances_per_pattern: 1,
            transactions_per_instance: 600,
            camouflage_per_account: 8,
            ..FraudInjectorConfig::default()
        };
        let injected = FraudInjector::inject(&b, &config);
        let mut fd = SpadeEngine::new(Fraudar::new());
        for e in &injected.edges {
            fd.insert_edge(e.src, e.dst, e.raw).unwrap();
        }
        let det = fd.detect();
        let community: std::collections::HashSet<u32> =
            fd.community(det).iter().map(|u| u.0).collect();
        let collusion = injected
            .instances
            .iter()
            .find(|i| i.pattern == spade_core::stream::FraudPattern::CustomerMerchantCollusion)
            .unwrap();
        let recall = collusion.members.iter().filter(|m| community.contains(&m.0)).count() as f64
            / collusion.members.len() as f64;
        assert!(recall >= 0.8, "FD recall under camouflage {recall}");
    }
}
