//! Merging per-shard detections into one global view.
//!
//! Each shard publishes its local [`PublishedDetection`] independently;
//! the aggregator folds those snapshots into a global answer — densest
//! community wins, exactly the rule a single engine applies across its
//! own candidate prefixes — plus a per-shard ranking for moderators who
//! drill down ("which shard is hot right now?").

use crate::service::PublishedDetection;

/// One shard's entry in the ranked view.
#[derive(Clone, Debug)]
pub struct ShardDetection {
    /// Shard index.
    pub shard: usize,
    /// That shard's current detection.
    pub detection: PublishedDetection,
}

/// The merged, cluster-wide detection state.
#[derive(Clone, Debug, Default)]
pub struct GlobalDetection {
    /// Index of the shard holding the densest community.
    pub best_shard: usize,
    /// The densest community across shards. Deliberately duplicates
    /// `top[0].detection` so the common "what's the answer" read needs
    /// no index gymnastics — since member lists live behind `Arc`
    /// snapshots, the duplicate costs a pointer clone, not a vec copy.
    /// High-frequency pollers that only need counters should use
    /// `ShardedSpadeService::stats`, which takes no snapshot at all.
    pub best: PublishedDetection,
    /// Top-k shards ranked by detection density (descending; ties break
    /// toward the lower shard index).
    pub top: Vec<ShardDetection>,
    /// Total updates applied across all shards at snapshot time.
    pub total_updates: u64,
}

/// Folds per-shard snapshots into a [`GlobalDetection`].
#[derive(Clone, Copy, Debug)]
pub struct DetectionAggregator {
    /// Number of ranked entries kept in [`GlobalDetection::top`].
    pub top_k: usize,
}

impl Default for DetectionAggregator {
    fn default() -> Self {
        DetectionAggregator { top_k: 4 }
    }
}

impl DetectionAggregator {
    /// Creates an aggregator keeping `top_k` ranked shard entries.
    pub fn new(top_k: usize) -> Self {
        DetectionAggregator { top_k }
    }

    /// Merges one snapshot per shard (indexed by position).
    pub fn merge(&self, snapshots: Vec<PublishedDetection>) -> GlobalDetection {
        let total_updates = snapshots.iter().map(|d| d.updates_applied).sum();
        let mut ranked: Vec<ShardDetection> = snapshots
            .into_iter()
            .enumerate()
            .map(|(shard, detection)| ShardDetection { shard, detection })
            .collect();
        // Densest first; ties toward the lower shard id for determinism.
        ranked.sort_by(|a, b| {
            b.detection.density.total_cmp(&a.detection.density).then_with(|| a.shard.cmp(&b.shard))
        });
        let (best_shard, best) = ranked
            .first()
            .map(|s| (s.shard, s.detection.clone()))
            .unwrap_or((0, PublishedDetection::default()));
        ranked.truncate(self.top_k);
        GlobalDetection { best_shard, best, top: ranked, total_updates }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det(size: usize, density: f64, updates: u64) -> PublishedDetection {
        PublishedDetection { size, density, updates_applied: updates, ..Default::default() }
    }

    #[test]
    fn densest_shard_wins() {
        let agg = DetectionAggregator::new(2);
        let global = agg.merge(vec![det(3, 5.0, 10), det(4, 9.0, 20), det(2, 1.0, 5)]);
        assert_eq!(global.best_shard, 1);
        assert_eq!(global.best.size, 4);
        assert_eq!(global.total_updates, 35);
        assert_eq!(global.top.len(), 2);
        assert_eq!(global.top[0].shard, 1);
        assert_eq!(global.top[1].shard, 0);
    }

    #[test]
    fn density_ties_break_to_lower_shard() {
        let agg = DetectionAggregator::default();
        let global = agg.merge(vec![det(3, 7.0, 1), det(3, 7.0, 1)]);
        assert_eq!(global.best_shard, 0);
    }

    #[test]
    fn empty_cluster_merges_to_default() {
        let agg = DetectionAggregator::default();
        let global = agg.merge(Vec::new());
        assert_eq!(global.best.size, 0);
        assert_eq!(global.total_updates, 0);
        assert!(global.top.is_empty());
    }
}
