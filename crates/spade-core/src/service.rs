//! Threaded streaming service — the runtime shape of the paper's Fig. 1
//! pipeline.
//!
//! Production fraud detection separates the *ingest* path (transactions
//! arrive on a queue, the engine reorders incrementally) from the *query*
//! path (moderators read the current fraudulent community, ban accounts,
//! pull statistics). [`SpadeService`] runs the engine on a dedicated
//! worker thread fed by a bounded crossbeam channel and publishes each
//! new detection into a `parking_lot::RwLock` snapshot that any number of
//! moderator threads read without blocking ingestion.
//!
//! The service wraps the edge-grouping layer, so benign traffic batches
//! exactly as in §4.3 while urgent transactions update the published
//! detection immediately.
//!
//! The sharded runtime (`crate::shard`) scales this out by wrapping one
//! [`SpadeService`] per shard — same ingest protocol, same
//! publish-into-snapshot discipline, same drain-on-shutdown guarantee.

use crate::engine::SpadeEngine;
use crate::grouping::{EdgeGrouper, GroupingConfig};
use crate::metric::DensityMetric;
use crate::state::Detection;
use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::RwLock;
use spade_graph::VertexId;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A published detection: descriptor plus the community members.
#[derive(Clone, Debug, Default)]
pub struct PublishedDetection {
    /// Community size and density.
    pub size: usize,
    /// `g(S_P)`.
    pub density: f64,
    /// Members of the detected community.
    pub members: Vec<VertexId>,
    /// Ingest commands processed when this detection was published.
    /// Counts every submitted transaction, including ones the engine
    /// rejected (self-loops, bad weights) or treated as redundant — it
    /// answers "how much of the stream has this worker consumed", which
    /// is what drain/exactness accounting needs, not "how many edges
    /// landed in the graph".
    pub updates_applied: u64,
}

/// The ingest protocol between a service handle and its worker thread.
enum Command {
    /// One transaction.
    Insert { src: VertexId, dst: VertexId, raw: f64 },
    /// Apply any buffered benign edges now.
    Flush,
    /// Drain and exit.
    Shutdown,
}

/// Counters a worker thread exports while running (all monotonic).
#[derive(Debug, Default)]
struct WorkerTelemetry {
    /// Edge-grouping flushes applied (urgent, capacity, manual and the
    /// final drain).
    pub flushes: AtomicU64,
    /// Snapshot publications.
    pub publishes: AtomicU64,
}

/// Point-in-time statistics of a running [`SpadeService`].
///
/// Carries the published detection's descriptor (size/density) so status
/// polling never clones the member list — use
/// [`SpadeService::current_detection`] when the members are needed.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServiceStats {
    /// Commands waiting in the ingest queue.
    pub queue_depth: usize,
    /// Ingest commands processed at the last publish (see
    /// [`PublishedDetection::updates_applied`] for exact semantics).
    pub updates_applied: u64,
    /// Edge-grouping flushes performed.
    pub flushes: u64,
    /// Detection snapshots published.
    pub publishes: u64,
    /// Size of the last published detection.
    pub detection_size: usize,
    /// Density of the last published detection.
    pub detection_density: f64,
}

/// Handle to a running detection service.
pub struct SpadeService {
    sender: Sender<Command>,
    shared: Arc<RwLock<PublishedDetection>>,
    telemetry: Arc<WorkerTelemetry>,
    worker: Option<JoinHandle<()>>,
}

impl SpadeService {
    /// Spawns the worker thread around `engine`. `queue_capacity` bounds
    /// the ingest channel (back-pressure for bursty producers);
    /// `grouping` enables the §4.3 buffer.
    pub fn spawn<M: DensityMetric + Send + 'static>(
        engine: SpadeEngine<M>,
        grouping: Option<GroupingConfig>,
        queue_capacity: usize,
    ) -> Self {
        Self::spawn_named(engine, grouping, queue_capacity, "spade-detector".into())
    }

    /// [`spawn`](Self::spawn) with an explicit worker-thread name — the
    /// sharded runtime names each of its workers `spade-shard-<i>`.
    pub fn spawn_named<M: DensityMetric + Send + 'static>(
        engine: SpadeEngine<M>,
        grouping: Option<GroupingConfig>,
        queue_capacity: usize,
        thread_name: String,
    ) -> Self {
        let (sender, receiver) = bounded(queue_capacity.max(1));
        let shared = Arc::new(RwLock::new(PublishedDetection::default()));
        let telemetry = Arc::new(WorkerTelemetry::default());
        let worker_shared = Arc::clone(&shared);
        let worker_telemetry = Arc::clone(&telemetry);
        let worker = std::thread::Builder::new()
            .name(thread_name)
            .spawn(move || worker_loop(engine, grouping, receiver, worker_shared, worker_telemetry))
            .expect("failed to spawn detector thread");
        SpadeService { sender, shared, telemetry, worker: Some(worker) }
    }

    /// Enqueues one transaction; blocks when the ingest queue is full
    /// (back-pressure). Returns `false` if the service has shut down.
    pub fn submit(&self, src: VertexId, dst: VertexId, raw: f64) -> bool {
        self.sender.send(Command::Insert { src, dst, raw }).is_ok()
    }

    /// Asks the worker to flush any buffered benign edges.
    pub fn flush(&self) -> bool {
        self.sender.send(Command::Flush).is_ok()
    }

    /// The most recently published detection (lock-free for practical
    /// purposes: a brief read lock on a small struct).
    pub fn current_detection(&self) -> PublishedDetection {
        self.shared.read().clone()
    }

    /// Current ingest/processing counters (no member-list clone).
    pub fn stats(&self) -> ServiceStats {
        let det = self.shared.read();
        ServiceStats {
            queue_depth: self.sender.len(),
            updates_applied: det.updates_applied,
            flushes: self.telemetry.flushes.load(Ordering::Relaxed),
            publishes: self.telemetry.publishes.load(Ordering::Relaxed),
            detection_size: det.size,
            detection_density: det.density,
        }
    }

    /// Signals shutdown, waits for the worker to drain the queue, and
    /// returns the final published detection.
    pub fn shutdown(mut self) -> PublishedDetection {
        let _ = self.sender.send(Command::Shutdown);
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
        self.shared.read().clone()
    }
}

impl Drop for SpadeService {
    fn drop(&mut self) {
        let _ = self.sender.send(Command::Shutdown);
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

/// The detector worker: consumes [`Command`]s until shutdown, publishing
/// every new detection into `shared`. Every [`SpadeService`] runs one of
/// these — including the N services the sharded runtime wraps.
fn worker_loop<M: DensityMetric>(
    mut engine: SpadeEngine<M>,
    grouping: Option<GroupingConfig>,
    receiver: Receiver<Command>,
    shared: Arc<RwLock<PublishedDetection>>,
    telemetry: Arc<WorkerTelemetry>,
) {
    let mut grouper = grouping.map(EdgeGrouper::new);
    let mut updates: u64 = 0;
    publish(&mut engine, &shared, updates, &telemetry);
    while let Ok(cmd) = receiver.recv() {
        match cmd {
            Command::Insert { src, dst, raw } => {
                updates += 1;
                let outcome = match grouper.as_mut() {
                    Some(g) => match g.submit(&mut engine, src, dst, raw) {
                        Ok(o) => o.flushed.map(|(_, d)| d),
                        Err(_) => None, // malformed input: drop, keep serving
                    },
                    None => engine.insert_edge(src, dst, raw).ok(),
                };
                if outcome.is_some() {
                    publish(&mut engine, &shared, updates, &telemetry);
                }
            }
            Command::Flush => {
                if let Some(g) = grouper.as_mut() {
                    let _ = g.flush(&mut engine);
                }
                publish(&mut engine, &shared, updates, &telemetry);
            }
            Command::Shutdown => break,
        }
        sync_flush_count(&grouper, &telemetry);
    }
    // Final drain so the last published state reflects every submission.
    if let Some(g) = grouper.as_mut() {
        let _ = g.flush(&mut engine);
    }
    sync_flush_count(&grouper, &telemetry);
    publish(&mut engine, &shared, updates, &telemetry);
}

/// Mirrors the grouper's own flush counter into the exported telemetry —
/// the grouper is the single source of truth for what counts as a flush.
fn sync_flush_count(grouper: &Option<EdgeGrouper>, telemetry: &WorkerTelemetry) {
    if let Some(g) = grouper.as_ref() {
        telemetry.flushes.store(g.stats().flushes as u64, Ordering::Relaxed);
    }
}

fn publish<M: DensityMetric>(
    engine: &mut SpadeEngine<M>,
    shared: &RwLock<PublishedDetection>,
    updates: u64,
    telemetry: &WorkerTelemetry,
) {
    let det: Detection = engine.detect();
    let members = engine.community(det).to_vec();
    *shared.write() = PublishedDetection {
        size: det.size,
        density: det.density,
        members,
        updates_applied: updates,
    };
    telemetry.publishes.fetch_add(1, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::WeightedDensity;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    #[test]
    fn service_detects_fraud_ring_from_stream() {
        let engine = SpadeEngine::new(WeightedDensity);
        let service = SpadeService::spawn(engine, None, 64);
        // Background noise.
        for i in 0..10u32 {
            assert!(service.submit(v(i), v(i + 1), 1.0));
        }
        // Fraud ring.
        for a in 50..54u32 {
            for b in 50..54u32 {
                if a != b {
                    assert!(service.submit(v(a), v(b), 25.0));
                }
            }
        }
        let final_det = service.shutdown();
        assert!(final_det.density > 10.0);
        assert!(final_det.members.iter().all(|m| (50..54).contains(&m.0)));
        assert_eq!(final_det.updates_applied, 10 + 12);
    }

    #[test]
    fn grouped_service_publishes_after_flush() {
        let mut engine = SpadeEngine::new(WeightedDensity);
        // Establish a community so benign edges buffer.
        for a in 0..3u32 {
            for b in 0..3u32 {
                if a != b {
                    engine.insert_edge(v(a), v(b), 20.0).unwrap();
                }
            }
        }
        let service = SpadeService::spawn(engine, Some(GroupingConfig::default()), 16);
        service.submit(v(10), v(11), 0.01); // benign: buffered
        service.flush();
        // Allow the worker to process.
        for _ in 0..100 {
            if service.current_detection().updates_applied >= 1 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        let det = service.shutdown();
        assert!(det.size >= 3);
        assert_eq!(det.updates_applied, 1);
    }

    #[test]
    fn readers_see_published_snapshots_concurrently() {
        let engine = SpadeEngine::new(WeightedDensity);
        let service = Arc::new(SpadeService::spawn(engine, None, 128));
        let reader = {
            let service = Arc::clone(&service);
            std::thread::spawn(move || {
                let mut max_seen = 0u64;
                for _ in 0..50 {
                    max_seen = max_seen.max(service.current_detection().updates_applied);
                    std::thread::yield_now();
                }
                max_seen
            })
        };
        for i in 0..100u32 {
            service.submit(v(i % 20), v((i + 1) % 20), 1.0 + i as f64);
        }
        let _ = reader.join().unwrap();
        let service = Arc::try_unwrap(service).unwrap_or_else(|_| panic!("readers done"));
        let det = service.shutdown();
        assert_eq!(det.updates_applied, 100);
        assert!(det.size > 0);
    }

    #[test]
    fn drop_shuts_down_cleanly() {
        let engine = SpadeEngine::new(WeightedDensity);
        let service = SpadeService::spawn(engine, None, 8);
        service.submit(v(0), v(1), 1.0);
        drop(service); // must not hang or panic
    }

    #[test]
    fn stats_count_flushes_and_publishes() {
        let mut engine = SpadeEngine::new(WeightedDensity);
        for a in 0..3u32 {
            for b in 0..3u32 {
                if a != b {
                    engine.insert_edge(v(a), v(b), 20.0).unwrap();
                }
            }
        }
        let service = SpadeService::spawn(engine, Some(GroupingConfig::default()), 16);
        service.submit(v(10), v(11), 0.01); // benign: buffered
        service.flush();
        for _ in 0..100 {
            if service.stats().flushes >= 1 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        let stats = service.stats();
        assert!(stats.flushes >= 1);
        assert!(stats.publishes >= 1);
        drop(service);
    }
}
