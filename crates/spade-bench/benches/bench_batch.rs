//! Criterion: batched incremental maintenance (Table 4's batch-size
//! sweep) — per-batch insertion cost at |ΔE| in {10, 100, 1000}.

#![allow(missing_docs)] // criterion macros generate undocumented items

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use spade_bench::replay::{bootstrap_engine, MetricKind};
use spade_bench::table3_datasets;
use spade_graph::VertexId;

fn bench_insert_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("insert_batch");
    group.sample_size(20);
    let data = table3_datasets().into_iter().find(|d| d.name == "Grab1").unwrap();
    for kind in [MetricKind::Dg, MetricKind::Fd] {
        for batch in [10usize, 100, 1000] {
            group.throughput(Throughput::Elements(batch as u64));
            group.bench_function(BenchmarkId::new(kind.inc_name(), format!("batch{batch}")), |b| {
                let mut engine = bootstrap_engine(kind, &data.initial);
                let mut cursor = 0usize;
                let mut buf: Vec<(VertexId, VertexId, f64)> = Vec::with_capacity(batch);
                b.iter(|| {
                    if cursor + batch > data.increments.len() {
                        engine = bootstrap_engine(kind, &data.initial);
                        cursor = 0;
                    }
                    buf.clear();
                    buf.extend(
                        data.increments[cursor..cursor + batch]
                            .iter()
                            .map(|e| (e.src, e.dst, e.raw)),
                    );
                    cursor += batch;
                    std::hint::black_box(engine.insert_batch(&buf).unwrap());
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_insert_batch);
criterion_main!(benches);
