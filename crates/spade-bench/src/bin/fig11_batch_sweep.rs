//! Figure 11 — elapsed time `E` and latency `L` as functions of the batch
//! size, per semantics, on the four Grab surrogates (six panels).
//!
//! Prints one series per dataset: batch size -> (E us/edge, L normalized
//! to the static competitor). The paper's shape: E decreases with batch
//! size; L grows roughly linearly with batch size (queueing dominates —
//! 99.99% of it is waiting for the batch to fill).
//!
//! `cargo run -p spade-bench --release --bin fig11_batch_sweep`

use spade_bench::replay::static_latency;
use spade_bench::{grab_datasets, measure_incremental_replay, measure_static_baseline, MetricKind};
use spade_metrics::Table;

const BATCHES: [usize; 6] = [1, 50, 200, 400, 700, 1_000];

fn main() {
    println!("Figure 11: E (us/edge) and L (normalized) vs batch size\n");
    let datasets = grab_datasets();
    for kind in MetricKind::ALL {
        println!("--- {} ---", kind.inc_name());
        let mut table = Table::new({
            let mut h = vec!["batch".to_string()];
            for d in &datasets {
                h.push(format!("{} E", d.name));
                h.push(format!("{} L", d.name));
            }
            h
        });
        // Pre-measure static rounds per dataset for the latency model.
        let static_lat: Vec<_> = datasets
            .iter()
            .map(|d| {
                let us = measure_static_baseline(kind, &d.initial, &d.increments, 2);
                static_latency(&d.increments, us)
            })
            .collect();
        for b in BATCHES {
            let mut row = vec![b.to_string()];
            for (d, sl) in datasets.iter().zip(&static_lat) {
                let cap = if b == 1 { 2_000.min(d.increments.len()) } else { d.increments.len() };
                let report = measure_incremental_replay(kind, &d.initial, &d.increments[..cap], b);
                row.push(format!("{:.1}", report.per_edge_us()));
                row.push(format!("{:.3}", report.latency.normalized_to(sl)));
            }
            table.row(row);
        }
        table.print();
        println!(
            "queueing fraction at batch 1000 (paper: 99.99%): {:.4}%\n",
            100.0
                * measure_incremental_replay(
                    kind,
                    &datasets[0].initial,
                    &datasets[0].increments,
                    1_000
                )
                .latency
                .queueing_fraction()
        );
    }
    println!("(paper: E falls with batch size; L rises with batch size, dominated by queueing)");
}
