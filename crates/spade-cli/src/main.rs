//! `spade` — command-line fraud detection on transaction edge lists.
//!
//! ```text
//! spade detect <edges.txt> [--metric dg|dw|fd] [--top N] [--shards N]
//! spade stream <edges.txt> [--metric ...] [--initial 0.9] [--batch N | --grouping]
//! spade serve  <edges.txt> [--shards N] [--metric ...] [--grouping]
//!              [--queue N] [--coalesce N] [--partitioner hash|connectivity]
//! spade serve  --listen <addr> [--shards N] [--metric ...] [--metrics <addr>]
//! spade ingest <addr> <edges.txt> [--batch N] [--pipeline N]
//!              [--detect] [--stats] [--shutdown]
//! spade watch  <addr> [--interval ms] [--count N]
//! spade shard-serve [--listen <addr>] [--metric ...] [--queue N]
//! spade route  <edges.txt> <addr>... [--batch N] [--partition ...]
//!              [--consolidate] [--shutdown]
//! spade gen    [--dataset Grab1] [--scale 0.01] [--seed N] [--out FILE]
//! spade snapshot <edges.txt> --out <file.spade> [--metric ...]
//! spade resume  <file.spade> [--metric ...] [--top N]
//! spade help
//! ```
//!
//! Edge-list lines are `src dst [raw] [timestamp]` (whitespace separated,
//! `#`/`%` comments), as read by `spade_graph::io`.

mod args;
mod commands;

use args::Args;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            commands::print_help();
            return ExitCode::FAILURE;
        }
    };
    let result = match args.command.as_str() {
        "detect" => commands::detect(&args),
        "stream" => commands::stream(&args),
        "serve" => commands::serve(&args),
        "ingest" => commands::ingest(&args),
        "watch" => commands::watch(&args),
        "shard-serve" => commands::shard_serve(&args),
        "route" => commands::route(&args),
        "gen" => commands::generate(&args),
        "snapshot" => commands::snapshot(&args),
        "resume" => commands::resume(&args),
        "help" | "--help" | "-h" => {
            commands::print_help();
            Ok(())
        }
        other => {
            eprintln!("error: unknown subcommand {other:?}");
            commands::print_help();
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
