//! # spade
//!
//! Real-time fraud detection on evolving graphs via incremental
//! dense-subgraph peeling — a from-scratch Rust reproduction of
//! *Spade: A Real-Time Fraud Detection Framework on Evolving Graphs*
//! (Jiang et al., PVLDB 16(3)).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`graph`] — dynamic directed weighted graph substrate;
//! * [`core`] — the Spade engine (peeling, incremental reordering, batch
//!   updates, edge grouping, extensions);
//! * [`gen`] — workload generators and dataset surrogates;
//! * [`metrics`] — latency / prevention-ratio measurement;
//! * [`net`] — the framed TCP ingest front end (wire protocol, server,
//!   client) feeding the sharded runtime over sockets.
//!
//! ## Example
//!
//! ```
//! use spade::core::{SpadeEngine, WeightedDensity};
//! use spade::graph::VertexId;
//!
//! let mut engine = SpadeEngine::new(WeightedDensity);
//!
//! // Organic traffic.
//! for i in 0..8u32 {
//!     engine.insert_edge(VertexId(i), VertexId(i + 1), 1.0).unwrap();
//! }
//!
//! // A wash-trading ring appears; each insertion reorders incrementally.
//! for a in 100..104u32 {
//!     for b in 100..104u32 {
//!         if a != b {
//!             engine.insert_edge(VertexId(a), VertexId(b), 20.0).unwrap();
//!         }
//!     }
//! }
//!
//! let detection = engine.detect();
//! assert_eq!(detection.size, 4);
//! assert!(engine
//!     .community(detection)
//!     .iter()
//!     .all(|m| (100..104).contains(&m.0)));
//! ```
//!
//! Or through the paper's Listing 1/2 plug-in API:
//!
//! ```
//! use spade::core::SpadeBuilder;
//! use spade::graph::VertexId;
//!
//! let mut spade = SpadeBuilder::new()
//!     .name("FD")
//!     .esusp(|_s, d, _raw, g| {
//!         if g.contains_edge(_s, d) {
//!             0.0 // duplicate pair: redundant under set semantics
//!         } else {
//!             1.0 / (g.degree(d) as f64 + 5.0).ln()
//!         }
//!     })
//!     .build();
//! spade.insert_edge(VertexId(0), VertexId(1), 9.99).unwrap();
//! assert_eq!(spade.detect().unwrap().len(), 2);
//! ```

pub use spade_core as core;
pub use spade_gen as gen;
pub use spade_graph as graph;
pub use spade_metrics as metrics;
pub use spade_net as net;

/// The sharded parallel detection runtime, re-exported at the top level:
/// [`shard::ShardedSpadeService`] partitions the transaction stream
/// across N worker engines (see `examples/sharded_service.rs`).
pub use spade_core::shard;
