//! Simulated stream clock.
//!
//! The paper's latency metrics (Fig. 8) mix two time axes: transactions
//! carry *stream* timestamps, while processing consumes *wall-clock* time
//! measured on the machine. The simulated clock merges them 1:1 (both in
//! microseconds): a processing step that starts at stream time `t` and
//! measures `d` wall-microseconds completes at stream time `t + d`, and a
//! processor busy until `b` starts its next step at `max(t, b)`.

/// Single-server queueing clock over stream time.
#[derive(Clone, Copy, Debug, Default)]
pub struct SimulatedClock {
    /// Stream time at which the processor becomes free.
    busy_until: u64,
}

impl SimulatedClock {
    /// A clock with an idle processor at stream time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules a processing step triggered at stream time `trigger`
    /// taking `duration_us` measured microseconds; returns
    /// `(start, completion)` in stream time.
    pub fn process(&mut self, trigger: u64, duration_us: u64) -> (u64, u64) {
        let start = trigger.max(self.busy_until);
        let done = start + duration_us;
        self.busy_until = done;
        (start, done)
    }

    /// Stream time at which the processor is next free.
    pub fn busy_until(&self) -> u64 {
        self.busy_until
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_processor_starts_immediately() {
        let mut c = SimulatedClock::new();
        let (start, done) = c.process(100, 50);
        assert_eq!((start, done), (100, 150));
    }

    #[test]
    fn busy_processor_queues() {
        let mut c = SimulatedClock::new();
        c.process(0, 1000);
        let (start, done) = c.process(10, 50);
        assert_eq!(start, 1000);
        assert_eq!(done, 1050);
        assert_eq!(c.busy_until(), 1050);
    }

    #[test]
    fn processor_can_go_idle_between_steps() {
        let mut c = SimulatedClock::new();
        c.process(0, 10);
        let (start, _) = c.process(500, 10);
        assert_eq!(start, 500);
    }
}
