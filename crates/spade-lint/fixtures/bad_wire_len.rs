// Self-test fixture: unchecked length arithmetic in the wire codec
// (scanned under the wire.rs identity). A raw `+`/`*` on a length can
// overflow on a hostile frame; the codec must use checked ops. Never
// compiled.

pub fn frame_size(payload: &[u8]) -> usize {
    4 + payload.len()
}

pub fn section_bytes(count: usize, width: usize, buf: &[u8]) -> bool {
    buf.len() >= count * width
}
