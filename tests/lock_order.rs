//! The `lock-order-audit` CI gate.
//!
//! Built only with `--features lock-audit`, which switches the vendored
//! `parking_lot`/`crossbeam` shims into their lockdep-style audit mode:
//! every lock belongs to a class keyed by its creation site, every
//! acquisition records held-before edges into a global class-order
//! graph, and any edge closing a directed cycle is reported as a
//! potential deadlock.
//!
//! The suite drives the real runtime paths — solo service ingest,
//! sharded submit/batch/repair/migration, and the reactor-backed TCP
//! front end — and asserts the resulting order graph is **acyclic**
//! (excluding classes this file creates on purpose). It then seeds a
//! deliberate two-lock inversion and asserts the audit provably flags
//! it, and checks the crossbeam channel mutex participates in the same
//! graph as the parking_lot locks.
//!
//! Run single-threaded (`--test-threads=1`) in CI: the graph is
//! process-global, and serial execution keeps report attribution
//! deterministic.

#![cfg(feature = "lock-audit")]

use parking_lot::audit;
use spade::core::service::SpadeService;
use spade::core::{SpadeEngine, WeightedDensity};
use spade::graph::VertexId;
use spade::net::{SpadeNetClient, SpadeNetServer};
use spade::shard::{PartitionStrategy, ShardedConfig, ShardedSpadeService};
use std::sync::Arc;

/// Classes created by this file (the seeded inversion and the channel
/// fixture) are excluded from the global acyclicity assertion.
const SELF: &str = "lock_order";

#[test]
fn real_runtime_paths_produce_an_acyclic_order_graph() {
    // Solo service: submit, batch, flush, region export, shutdown.
    let service = SpadeService::spawn(SpadeEngine::new(WeightedDensity), None, 256);
    for i in 0..50u32 {
        assert!(service.submit(VertexId(i), VertexId(i + 1), 1.0));
    }
    let batch: Vec<_> = (50..80u32).map(|i| (VertexId(i), VertexId(i + 1), 1.0)).collect();
    assert!(service.submit_batch(batch, None));
    assert!(service.flush());
    assert!(service.candidate_region(2).is_some());
    let _ = service.current_detection();
    let _ = service.stats();
    let _ = service.metrics();
    let _ = service.shutdown();

    // Sharded runtime: connectivity routing (router table lock), batch
    // submit, cross-shard repair, and a migration pass.
    let sharded = ShardedSpadeService::spawn(
        WeightedDensity,
        ShardedConfig {
            shards: 4,
            queue_capacity: 1024,
            strategy: PartitionStrategy::ConnectivityWithSpill { max_component: 256 },
            ..Default::default()
        },
    );
    for i in 0..200u32 {
        assert!(sharded.submit(VertexId(i % 37), VertexId(i % 53 + 40), 1.0));
    }
    let batch: Vec<_> = (0..100u32).map(|i| (VertexId(i), VertexId(i + 7), 2.0)).collect();
    let accepted = sharded.submit_batch(&batch, None);
    assert!(!accepted.closed);
    assert!(sharded.flush());
    let _ = sharded.repair();
    let _ = sharded.rebalance();
    let _ = sharded.stats();
    let _ = sharded.metrics();
    let _ = sharded.current_detection();
    let _ = sharded.shutdown();

    // Reactor front end: framed TCP ingest, detect, stats, shutdown.
    let service = Arc::new(ShardedSpadeService::spawn(
        WeightedDensity,
        ShardedConfig {
            shards: 2,
            queue_capacity: 1024,
            strategy: PartitionStrategy::HashBySource,
            ..Default::default()
        },
    ));
    let server = SpadeNetServer::bind(Arc::clone(&service), "127.0.0.1:0").expect("bind");
    let addr = server.local_addr();
    let mut client = SpadeNetClient::connect(addr).expect("connect");
    for i in 0..100u32 {
        client.submit(VertexId(i), VertexId(i + 1), 1.0).expect("submit");
    }
    client.flush().expect("flush");
    let _ = client.detect().expect("detect");
    let _ = client.server_stats().expect("stats");
    let _ = client.finish().expect("finish");
    let _ = server.shutdown();
    if let Ok(service) = Arc::try_unwrap(service) {
        let _ = service.shutdown();
    }

    // The graph must have observed real nesting (a lone-lock run would
    // vacuously pass) and must contain no inversion outside this file.
    match audit::check_acyclic_excluding(SELF) {
        Ok(edges) => assert!(
            edges > 0,
            "audit recorded no order edges — instrumentation is not wired through"
        ),
        Err(report) => panic!("lock-order inversion in runtime paths: {report}"),
    }
    // Any report raised so far must involve this file's seeded classes.
    for report in audit::reports() {
        assert!(
            report.chain.iter().any(|label| label.contains(SELF)),
            "unexpected inversion report from runtime paths: {report}"
        );
    }
}

#[test]
fn seeded_inversion_is_detected() {
    let a = Arc::new(parking_lot::Mutex::new(0u64));
    let b = Arc::new(parking_lot::Mutex::new(0u64));

    // Path 1 (its own thread): a, then b.
    {
        let (a, b) = (Arc::clone(&a), Arc::clone(&b));
        std::thread::spawn(move || {
            let ga = a.lock();
            let gb = b.lock();
            drop(gb);
            drop(ga);
        })
        .join()
        .expect("path 1");
    }
    // Path 2 (another thread, after path 1 finished): b, then a. No
    // real deadlock can occur — the audit must flag the *potential*.
    {
        let (a, b) = (Arc::clone(&a), Arc::clone(&b));
        std::thread::spawn(move || {
            let gb = b.lock();
            let ga = a.lock();
            drop(ga);
            drop(gb);
        })
        .join()
        .expect("path 2");
    }

    let reports = audit::reports();
    let flagged = reports.iter().any(|r| {
        r.chain.first() == r.chain.last()
            && r.chain.len() == 3
            && r.chain.iter().all(|label| label.contains(SELF))
            && r.acquired_at.contains(SELF)
    });
    assert!(flagged, "seeded a→b / b→a inversion was not reported; reports: {reports:?}");
}

#[test]
fn channel_mutex_participates_in_the_order_graph() {
    let mutex_line = line!() + 1;
    let m = parking_lot::Mutex::new(0u64);
    let channel_line = line!() + 1;
    let (tx, rx) = crossbeam::channel::bounded::<u32>(4);

    // Holding the parking_lot mutex across a channel operation must
    // record a mutex-class → channel-class edge.
    let guard = m.lock();
    tx.try_send(7).expect("try_send");
    drop(guard);
    assert_eq!(rx.try_recv(), Ok(7));

    // The edge's class labels carry the user-facing creation sites
    // (this file); the acquisition site is inside crossbeam, where the
    // channel's internal mutex is actually taken.
    let from = format!(":{mutex_line}");
    let to = format!(":{channel_line}");
    let edges = audit::order_edges();
    assert!(
        edges.iter().any(|(a, b, site)| {
            a.contains(SELF) && a.ends_with(&from) && b.ends_with(&to) && site.contains("crossbeam")
        }),
        "mutex→channel edge not recorded; edges touching this file: {:?}",
        edges.iter().filter(|(a, b, _)| a.contains(SELF) || b.contains(SELF)).collect::<Vec<_>>()
    );
}
