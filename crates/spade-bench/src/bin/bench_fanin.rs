//! Connection fan-in sweep over the reactor front end.
//!
//! For each producer count in {4, 16, 64, 128}, boots a fresh sharded
//! runtime behind [`SpadeNetServer`] on loopback and replays a fixed
//! per-producer edge quota from that many concurrent pipelined clients.
//! Every producer flushes once per round and times the round trip, so
//! the sweep reports, per count:
//!
//! * aggregate acked-edge throughput (edges/sec over the producer phase),
//! * ack p99 across all producers' flush round trips,
//! * busy rate (Busy replies per request frame — how often back-pressure
//!   crossed the wire),
//! * lost acked edges (acked minus applied after the drain; the hard
//!   invariant — always 0 on a healthy build),
//! * wall clock for the whole count, producers through drain.
//!
//! The interesting regimes are the two ends: at 4 producers the event
//! loops are mostly idle between wakeups; at 128 producers every
//! readiness cycle carries work for dozens of connections and the
//! per-connection frame budget is what keeps ack tails bounded.
//!
//! Vertex ids stay compact (the graph is dense over raw ids — a sparse
//! multi-million id would turn the first apply into an O(max id) vertex
//! bootstrap and poison every sample).
//!
//! Writes a `BENCH_fanin.json` trajectory (see `--out`) and prints a
//! table. `--smoke` (or `SPADE_QUICK=1`) shrinks the workload for CI.
//!
//! `cargo run -p spade-bench --release --bin bench_fanin [-- --smoke]`

use spade_core::metric::WeightedDensity;
use spade_core::shard::{PartitionStrategy, ShardedConfig, ShardedSpadeService};
use spade_graph::VertexId;
use spade_metrics::Table;
use spade_net::{ClientConfig, SpadeNetClient, SpadeNetServer};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Producer counts swept, smallest first.
const PRODUCER_COUNTS: [usize; 4] = [4, 16, 64, 128];
/// Edges each producer submits between flush round trips.
const ROUND_EDGES: usize = 64;

/// One producer's contribution: per-round flush latencies plus the
/// client's own accounting.
struct ProducerRun {
    flush_rtts: Vec<Duration>,
    acked: u64,
    busy: u64,
    frames: u64,
}

/// One measured producer count.
struct Sample {
    producers: usize,
    edges_acked: u64,
    producer_elapsed: Duration,
    ack_p99: Duration,
    busy_rate: f64,
    lost_acked_edges: u64,
    wall_clock: Duration,
}

impl Sample {
    fn throughput_eps(&self) -> f64 {
        self.edges_acked as f64 / self.producer_elapsed.as_secs_f64().max(1e-9)
    }
}

/// Replays one producer's quota: `edges` total, flushed (and timed)
/// every [`ROUND_EDGES`]. Each producer owns a disjoint compact id
/// range so shard routing spreads the fan-in.
fn producer(addr: std::net::SocketAddr, index: usize, edges: usize) -> ProducerRun {
    let mut client = SpadeNetClient::connect_with(
        addr,
        ClientConfig { batch: 16, pipeline: 4, ..Default::default() },
    )
    .expect("producer connect");
    let base = (index as u32) * 256;
    let mut flush_rtts = Vec::with_capacity(edges / ROUND_EDGES + 1);
    let mut sent = 0usize;
    while sent < edges {
        let round = ROUND_EDGES.min(edges - sent);
        let started = Instant::now();
        for i in 0..round {
            let k = ((sent + i) % 256) as u32;
            client.submit(VertexId(base + k), VertexId(40_000 + base + k), 1.0).expect("submit");
        }
        client.flush().expect("flush");
        flush_rtts.push(started.elapsed());
        sent += round;
    }
    let stats = client.finish().expect("finish");
    ProducerRun {
        flush_rtts,
        acked: stats.edges_acked,
        busy: stats.busy_replies,
        frames: stats.frames_sent,
    }
}

/// Runs one producer count against a fresh server and drains to the
/// acked == applied invariant.
fn run_count(producers: usize, edges_per_producer: usize) -> Sample {
    let service = Arc::new(ShardedSpadeService::spawn(
        WeightedDensity,
        ShardedConfig {
            shards: 2,
            queue_capacity: 8192,
            strategy: PartitionStrategy::HashBySource,
            ..Default::default()
        },
    ));
    let server = SpadeNetServer::bind(Arc::clone(&service), "127.0.0.1:0").expect("bind server");
    let addr = server.local_addr();

    let wall_started = Instant::now();
    let handles: Vec<_> = (0..producers)
        .map(|p| std::thread::spawn(move || producer(addr, p, edges_per_producer)))
        .collect();
    let runs: Vec<ProducerRun> =
        handles.into_iter().map(|h| h.join().expect("producer thread")).collect();
    let producer_elapsed = wall_started.elapsed();

    let edges_acked: u64 = runs.iter().map(|r| r.acked).sum();
    let busy: u64 = runs.iter().map(|r| r.busy).sum();
    let frames: u64 = runs.iter().map(|r| r.frames).sum();
    let mut rtts: Vec<Duration> = runs.into_iter().flat_map(|r| r.flush_rtts).collect();
    rtts.sort_unstable();
    let ack_p99 = rtts[(rtts.len() * 99 / 100).min(rtts.len() - 1)];

    // Drain: every acked edge must land in a shard engine. A deadline
    // turns a stalled worker into a loud lost-edge report instead of a
    // hung benchmark.
    let deadline = Instant::now() + Duration::from_secs(120);
    let mut applied = 0u64;
    while applied < edges_acked && Instant::now() < deadline {
        applied = service.stats().iter().map(|s| s.service.updates_applied).sum();
        std::thread::yield_now();
    }
    let lost_acked_edges = edges_acked.saturating_sub(applied);
    let net = server.shutdown();
    assert_eq!(net.edges_accepted, edges_acked, "server/client acked-edge accounting diverged");
    let service =
        Arc::try_unwrap(service).unwrap_or_else(|_| panic!("service still shared at drain"));
    service.shutdown();

    Sample {
        producers,
        edges_acked,
        producer_elapsed,
        ack_p99,
        busy_rate: busy as f64 / frames.max(1) as f64,
        lost_acked_edges,
        wall_clock: wall_started.elapsed(),
    }
}

fn write_json(path: &str, edges_per_producer: usize, samples: &[Sample]) -> std::io::Result<()> {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"bench\": \"fanin\",");
    let _ = writeln!(out, "  \"edges_per_producer\": {edges_per_producer},");
    let _ = writeln!(out, "  \"samples\": [");
    for (i, s) in samples.iter().enumerate() {
        let comma = if i + 1 < samples.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"producers\": {}, \"edges_acked\": {}, \"elapsed_us\": {:.1}, \
             \"throughput_eps\": {:.1}, \"ack_p99_us\": {:.1}, \"busy_rate\": {:.4}, \
             \"lost_acked_edges\": {}, \"wall_clock_ms\": {:.1}}}{comma}",
            s.producers,
            s.edges_acked,
            s.producer_elapsed.as_secs_f64() * 1e6,
            s.throughput_eps(),
            s.ack_p99.as_secs_f64() * 1e6,
            s.busy_rate,
            s.lost_acked_edges,
            s.wall_clock.as_secs_f64() * 1e3,
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    std::fs::write(path, out)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke") || std::env::var_os("SPADE_QUICK").is_some();
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_fanin.json".to_string());
    let edges_per_producer = if smoke { 320 } else { 2_000 };

    println!(
        "fan-in sweep: {} producers x {} edges each ({}), loopback reactor, \
         1-hardware-thread note: producers, event loops and shard workers share cores\n",
        PRODUCER_COUNTS.last().unwrap(),
        edges_per_producer,
        if smoke { "smoke" } else { "full" },
    );

    let samples: Vec<Sample> =
        PRODUCER_COUNTS.iter().map(|&n| run_count(n, edges_per_producer)).collect();

    let mut table =
        Table::new(["producers", "acked", "tx/s", "ack p99", "busy rate", "lost", "wall clock"]);
    for s in &samples {
        table.row([
            s.producers.to_string(),
            s.edges_acked.to_string(),
            format!("{:.0}", s.throughput_eps()),
            format!("{:.1} ms", s.ack_p99.as_secs_f64() * 1e3),
            format!("{:.2}%", s.busy_rate * 100.0),
            s.lost_acked_edges.to_string(),
            format!("{:.0} ms", s.wall_clock.as_secs_f64() * 1e3),
        ]);
    }
    table.print();

    if let Some(bad) = samples.iter().find(|s| s.lost_acked_edges > 0) {
        eprintln!(
            "error: {} producers lost {} acknowledged edges",
            bad.producers, bad.lost_acked_edges
        );
        std::process::exit(1);
    }

    match write_json(&out_path, edges_per_producer, &samples) {
        Ok(()) => println!("\ntrajectory written to {out_path}"),
        Err(e) => {
            eprintln!("error: cannot write {out_path}: {e}");
            std::process::exit(1);
        }
    }
}
