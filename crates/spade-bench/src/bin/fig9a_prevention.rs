//! Figure 9a — prevention ratio vs latency.
//!
//! Replays a labeled fraud stream under each configuration (edge grouping
//! IncDGG/IncDWG/IncFDG, and fixed 1K batches IncDG-1K/...) and reports
//! one point per configuration: mean response latency of fraudulent
//! transactions (x, ms of stream time) and the prevention ratio `R` (y).
//! The paper's shape: prevention decreases as latency grows; the grouped
//! variants prevent 86–92% of fraudulent activities.
//!
//! `cargo run -p spade-bench --release --bin fig9a_prevention`

use spade_bench::clock::SimulatedClock;
use spade_bench::replay::{bootstrap_engine, AnyMetric, MetricKind};
use spade_core::stream::StreamEdge;
use spade_core::{EdgeGrouper, GroupingConfig, SpadeEngine};
use spade_gen::fraud::{FraudInjector, FraudInjectorConfig, InjectedStream};
use spade_gen::transactions::{TransactionStream, TransactionStreamConfig};
use spade_metrics::{LatencyRecorder, PreventionTracker, Table};
use std::collections::HashMap;
use std::time::Instant;

fn labeled_stream() -> InjectedStream {
    let base = TransactionStream::generate(&TransactionStreamConfig {
        customers: 8_000,
        merchants: 2_500,
        transactions: 60_000,
        seed: 0x916A,
        ..Default::default()
    });
    FraudInjector::inject(
        &base,
        &FraudInjectorConfig {
            instances_per_pattern: 3,
            // The paper's case studies show fraud bursts of ~700-1900
            // transactions (Fig. 12/13); bursts of that magnitude are what
            // make the blocks denser than the organic core under DG.
            // Long-lived bursts: detection fires once the block outgrows
            // the organic core, and everything after that is prevented —
            // the paper's 86-92% regime corresponds to instances that keep
            // transacting long past first detectability.
            transactions_per_instance: 4_000,
            amount: 600.0,
            inject_after_fraction: 0.9,
            burst_duration: 6_000_000,
            ..Default::default()
        },
    )
}

struct RunResult {
    label: String,
    mean_fraud_latency_ms: f64,
    prevention: f64,
    prevention_detected_only: f64,
    detected: usize,
    instances: usize,
}

/// Replay with per-round detection attribution shared by both modes.
struct Attribution<'a> {
    account_instance: HashMap<u32, u32>,
    prevention: PreventionTracker,
    fraud_latency: LatencyRecorder,
    injected: &'a InjectedStream,
}

impl<'a> Attribution<'a> {
    fn new(injected: &'a InjectedStream) -> Self {
        let mut account_instance = HashMap::new();
        for info in &injected.instances {
            for m in &info.members {
                account_instance.insert(m.0, info.instance);
            }
        }
        Attribution {
            account_instance,
            prevention: PreventionTracker::new(),
            fraud_latency: LatencyRecorder::new(),
            injected,
        }
    }

    fn on_transaction(&mut self, e: &StreamEdge) {
        if let Some(l) = e.label {
            self.prevention.note_transaction(l.instance, e.timestamp);
        }
    }

    fn on_round(&mut self, engine: &SpadeEngine<AnyMetric>, done_ts: u64) {
        let det = engine.cached_detection();
        for m in engine.community(det) {
            if let Some(&inst) = self.account_instance.get(&m.0) {
                self.prevention.note_detection(inst, done_ts);
            }
        }
    }

    fn respond(&mut self, queued: &mut Vec<StreamEdge>, start: u64, done: u64) {
        for e in queued.drain(..) {
            if e.is_fraud() {
                self.fraud_latency.record(e.timestamp, start.max(e.timestamp), done);
            }
        }
    }

    fn result(self, label: String) -> RunResult {
        // Ratio over instances this semantics actually detects — the
        // regime the paper's 86-92% numbers describe (each semantics
        // targets its own fraud pattern).
        let detected_ids: Vec<u32> = self
            .injected
            .instances
            .iter()
            .map(|i| i.instance)
            .filter(|&i| self.prevention.detected_at(i).is_some())
            .collect();
        let detected_only = if detected_ids.is_empty() {
            0.0
        } else {
            detected_ids.iter().filter_map(|&i| self.prevention.ratio(i)).sum::<f64>()
                / detected_ids.len() as f64
        };
        RunResult {
            label,
            mean_fraud_latency_ms: self.fraud_latency.mean() / 1e3,
            prevention: self.prevention.overall_ratio(),
            prevention_detected_only: detected_only,
            detected: self.prevention.num_detected(),
            instances: self.injected.instances.len(),
        }
    }
}

fn run_grouped(kind: MetricKind, injected: &InjectedStream, split: usize) -> RunResult {
    let (initial, increments) = injected.edges.split_at(split);
    let mut engine = bootstrap_engine(kind, initial);
    let mut grouper = EdgeGrouper::new(GroupingConfig::default());
    let mut attr = Attribution::new(injected);
    let mut clock = SimulatedClock::new();
    let mut queued: Vec<StreamEdge> = Vec::new();
    for e in increments {
        attr.on_transaction(e);
        queued.push(*e);
        let t0 = Instant::now();
        let outcome = grouper.submit(&mut engine, e.src, e.dst, e.raw).expect("submit");
        if outcome.flushed.is_some() {
            let dur = t0.elapsed().as_micros() as u64;
            let (start, done) = clock.process(e.timestamp, dur);
            attr.respond(&mut queued, start, done);
            attr.on_round(&engine, done);
        }
    }
    grouper.flush(&mut engine).expect("flush");
    attr.result(kind.grouped_name().to_string())
}

fn run_batched(
    kind: MetricKind,
    injected: &InjectedStream,
    split: usize,
    batch: usize,
) -> RunResult {
    let (initial, increments) = injected.edges.split_at(split);
    let mut engine = bootstrap_engine(kind, initial);
    let mut attr = Attribution::new(injected);
    let mut clock = SimulatedClock::new();
    for chunk in increments.chunks(batch) {
        for e in chunk {
            attr.on_transaction(e);
        }
        let edges: Vec<_> = chunk.iter().map(|e| (e.src, e.dst, e.raw)).collect();
        let trigger = chunk.last().expect("chunk").timestamp;
        let t0 = Instant::now();
        engine.insert_batch(&edges).expect("batch");
        let dur = t0.elapsed().as_micros() as u64;
        let (start, done) = clock.process(trigger, dur);
        let mut queued: Vec<StreamEdge> = chunk.to_vec();
        attr.respond(&mut queued, start, done);
        attr.on_round(&engine, done);
    }
    attr.result(format!("{}-1K", kind.inc_name()))
}

fn main() {
    let injected = labeled_stream();
    // Split on the time axis so every injected burst (they start after
    // 90% of the horizon) falls inside the replayed increments.
    let horizon = injected.edges.last().expect("stream").timestamp;
    let cut = (horizon as f64 * 0.88) as u64;
    let split = injected.edges.partition_point(|e| e.timestamp < cut);
    println!(
        "Figure 9a: prevention ratio vs latency ({} transactions, {} fraud instances)\n",
        injected.edges.len(),
        injected.instances.len()
    );
    let mut table = Table::new([
        "Config",
        "mean fraud latency (ms)",
        "prevention R (all)",
        "R (detected inst.)",
        "detected",
    ]);
    let mut results = Vec::new();
    for kind in MetricKind::ALL {
        results.push(run_grouped(kind, &injected, split));
    }
    for kind in MetricKind::ALL {
        results.push(run_batched(kind, &injected, split, 1_000));
    }
    for r in &results {
        table.row([
            r.label.clone(),
            format!("{:.3}", r.mean_fraud_latency_ms),
            format!("{:.2}%", 100.0 * r.prevention),
            format!("{:.2}%", 100.0 * r.prevention_detected_only),
            format!("{}/{}", r.detected, r.instances),
        ]);
    }
    table.print();
    println!("\n(paper: IncDGG 88.34%, IncDWG 86.53%, IncFDG 92.47%; prevention decreases");
    println!(" as latency increases — grouped variants dominate the 1K-batch variants)");
}
