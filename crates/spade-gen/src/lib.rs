//! # spade-gen
//!
//! Workload generators and dataset surrogates for the Spade reproduction.
//!
//! The paper evaluates on four proprietary Grab transaction graphs and
//! three public datasets (Table 3), replaying the final 10% of edges as
//! timestamped increments. None of those inputs ship with this
//! repository, so this crate builds statistically matched surrogates
//! (see DESIGN.md §2 for the substitution argument):
//!
//! * [`powerlaw`] — heavy-tailed degree samplers (transaction graphs are
//!   power-law distributed, paper Fig. 9b);
//! * [`transactions`] — Grab-like bipartite customer→merchant streams with
//!   timestamps and amounts;
//! * [`fraud`] — injection of the paper's three fraud patterns
//!   (customer–merchant collusion, deal-hunter, click-farming) with
//!   ground-truth labels;
//! * [`datasets`] — the seven Table 3 workloads at configurable scale,
//!   split 90% initial / 10% increments like the paper's protocol.

pub mod datasets;
pub mod fraud;
pub mod powerlaw;
pub mod transactions;

pub use datasets::{Dataset, DatasetSpec};
pub use fraud::{FraudInjector, FraudInjectorConfig};
pub use powerlaw::ZipfSampler;
pub use transactions::{TransactionStream, TransactionStreamConfig};
