//! Figure 15 — fraud-instance enumeration across 28 timespans.
//!
//! Each timespan (4 per day x 7 days) carries its own transaction stream
//! with a varying number of injected instances per pattern. Spade
//! enumerates dense communities per timespan (Appendix C.2), classifies
//! each one against ground truth, and prints per-pattern counts normalized
//! to the first timespan — the paper's stacked-bar figure as a table.
//!
//! `cargo run -p spade-bench --release --bin fig15_enumeration`

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use spade_core::stream::FraudPattern;
use spade_core::{enumerate_static, EnumerationConfig, SpadeConfig, SpadeEngine, WeightedDensity};
use spade_gen::fraud::{FraudInjector, FraudInjectorConfig};
use spade_gen::transactions::{TransactionStream, TransactionStreamConfig};
use spade_metrics::Table;
use std::collections::HashSet;

const TIMESPANS: usize = 28;

fn main() {
    println!("Figure 15: enumerated fraud instances per timespan (normalized to T1)\n");
    let mut rng = ChaCha8Rng::seed_from_u64(0xF15);
    let mut rows: Vec<[usize; 3]> = Vec::new();

    for t in 0..TIMESPANS {
        let base = TransactionStream::generate(&TransactionStreamConfig {
            customers: 1_500,
            merchants: 400,
            transactions: 8_000,
            seed: 1000 + t as u64,
            ..Default::default()
        });
        let injected = FraudInjector::inject(
            &base,
            &FraudInjectorConfig {
                instances_per_pattern: rng.gen_range(1..=3),
                transactions_per_instance: 180,
                amount: 500.0,
                inject_after_fraction: 0.1,
                ..Default::default()
            },
        );
        let engine = SpadeEngine::bootstrap(
            WeightedDensity,
            SpadeConfig::default(),
            injected.edges.iter().map(|e| (e.src, e.dst, e.raw)),
        )
        .expect("bootstrap");
        let det_density = {
            let mut e = engine;
            let d = e.detect().density;
            let found = enumerate_static(
                e.graph(),
                EnumerationConfig {
                    max_instances: 12,
                    min_density: d / 25.0,
                    ..Default::default()
                },
            );
            let mut counts = [0usize; 3];
            for inst in &found {
                let members: HashSet<u32> = inst.members.iter().map(|u| u.0).collect();
                // Classify by the ground-truth instance with best overlap,
                // requiring a majority of its members recovered.
                if let Some((gt, overlap)) = injected
                    .instances
                    .iter()
                    .map(|gt| (gt, gt.members.iter().filter(|m| members.contains(&m.0)).count()))
                    .max_by_key(|(_, o)| *o)
                {
                    if overlap * 2 >= gt.members.len() {
                        let idx = FraudPattern::ALL
                            .iter()
                            .position(|&p| p == gt.pattern)
                            .expect("pattern");
                        counts[idx] += 1;
                    }
                }
            }
            counts
        };
        rows.push(det_density);
    }

    let norm: usize = rows[0].iter().sum::<usize>().max(1);
    let mut table = Table::new([
        "Timespan",
        "collusion",
        "deal-hunter",
        "click-farming",
        "total (normalized to T1)",
    ]);
    for (t, counts) in rows.iter().enumerate() {
        let total: usize = counts.iter().sum();
        table.row([
            format!("T{}", t + 1),
            counts[0].to_string(),
            counts[1].to_string(),
            counts[2].to_string(),
            format!("{:.2}", total as f64 / norm as f64),
        ]);
    }
    table.print();
    let grand: usize = rows.iter().flat_map(|r| r.iter()).sum();
    println!("\nenumerated and classified {grand} fraud instances across {TIMESPANS} timespans");
    println!("(paper: every timespan surfaces instances of all three patterns over a week)");
}
