//! Figure 10 — efficiency of peeling algorithms vs their incremental
//! versions on Spade, single-edge updates (`|ΔE| = 1`).
//!
//! For every dataset and every semantics (DG/DW/FD), prints the static
//! per-update cost (one full peel), the incremental per-update cost
//! (mean over the replayed increments), and the speedup. The paper reports
//! speedups up to 1.96e6x; the shape to reproduce is *orders of magnitude*,
//! growing with graph size, largest for FD.
//!
//! `cargo run -p spade-bench --release --bin fig10_static_vs_inc`

use spade_bench::{
    measure_incremental_replay, measure_static_baseline, table3_datasets, MetricKind,
};
use spade_metrics::table::{fmt_speedup, fmt_us};
use spade_metrics::Table;

fn main() {
    println!("Figure 10: static vs incremental, |dE| = 1\n");
    let mut table = Table::new([
        "Dataset",
        "Algo",
        "static/update",
        "inc/update",
        "speedup",
        "affected E frac",
    ]);
    for data in table3_datasets() {
        // Keep single-edge replay tractable at larger scales.
        let cap = 2_000.min(data.increments.len());
        let increments = &data.increments[..cap];
        for kind in MetricKind::ALL {
            let static_us = measure_static_baseline(kind, &data.initial, &data.increments, 3);
            let report = measure_incremental_replay(kind, &data.initial, increments, 1);
            let inc_us = report.per_edge_us();
            let total_edges = data.initial.len() + data.increments.len();
            let frac = report.stats.edges_scanned as f64
                / (report.edges.max(1) as f64)
                / total_edges as f64;
            table.row([
                data.name.to_string(),
                format!("{} vs {}", kind.name(), kind.inc_name()),
                fmt_us(static_us),
                fmt_us(inc_us),
                fmt_speedup(static_us / inc_us.max(1e-3)),
                format!("{frac:.2e}"),
            ]);
        }
    }
    table.print();
    println!("\n(paper: IncDG up to 4.17e3x, IncDW up to 1.63e3x, IncFD up to 1.96e6x;");
    println!(" avg affected-edge fractions 3.5e-4 / 7.2e-4 / 2.5e-7 on Grab datasets)");
}
