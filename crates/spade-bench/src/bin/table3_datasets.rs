//! Table 3 — statistics of the (surrogate) datasets at the current scale.
//!
//! `cargo run -p spade-bench --release --bin table3_datasets`

use spade_bench::{env_scale, table3_datasets};
use spade_core::SpadeConfig;
use spade_core::SpadeEngine;
use spade_core::UnweightedDensity;
use spade_graph::stats::GraphStats;
use spade_metrics::Table;

fn main() {
    println!("Table 3: Statistics of datasets (scale = {})\n", env_scale());
    let mut table = Table::new(["Dataset", "|V|", "|E|", "avg. degree", "Increments", "Type"]);
    for data in table3_datasets() {
        // Materialize the full graph to report actual vertex counts.
        let engine = SpadeEngine::bootstrap(
            UnweightedDensity,
            SpadeConfig::default(),
            data.initial.iter().chain(&data.increments).map(|e| (e.src, e.dst, e.raw)),
        )
        .expect("bootstrap");
        let stats = GraphStats::of(engine.graph());
        let kind = if data.name.starts_with("Grab") {
            "Transaction"
        } else if data.name == "Amazon" {
            "Review"
        } else if data.name == "Wiki-Vote" {
            "Vote"
        } else {
            "Who-trust-whom"
        };
        table.row([
            data.name.to_string(),
            format_count(stats.num_vertices),
            format_count(stats.num_edges),
            format!("{:.3}", stats.avg_degree),
            format_count(data.increments.len()),
            kind.to_string(),
        ]);
    }
    table.print();
    println!("\n(paper scale: Grab1 3.991M/10M ... Grab4 6.023M/25M; surrogates preserve |E|/|V| ratios and heavy tails)");
}

fn format_count(n: usize) -> String {
    if n >= 1_000_000 {
        format!("{:.3}M", n as f64 / 1e6)
    } else if n >= 1_000 {
        format!("{:.1}K", n as f64 / 1e3)
    } else {
        n.to_string()
    }
}
