//! Figures 12/13 — case studies: the three fraud patterns, detection time
//! of the incremental algorithm vs the periodic static algorithm, and how
//! many fraudulent transactions slip through in between.
//!
//! For each pattern the binary injects one instance into a Grab-like
//! stream, replays the increments edge by edge, finds the stream time `T1`
//! at which the incremental engine first flags the instance, derives the
//! static detector's response `T2` (first full-peel round starting after
//! `T1`, completing one round-duration later — the paper's "second round"
//! effect), and counts the instance's transactions generated in `(T1, T2]`
//! — the paper's "720 potential fraudulent transactions".
//!
//! `cargo run -p spade-bench --release --bin fig12_case_studies`

use spade_bench::replay::{bootstrap_engine, measure_static_baseline, MetricKind};
use spade_core::stream::FraudPattern;
use spade_gen::fraud::{FraudInjector, FraudInjectorConfig};
use spade_gen::transactions::{TransactionStream, TransactionStreamConfig};
use spade_metrics::Table;
use std::collections::HashSet;

/// The paper pairs each pattern with one semantics (DG/DW/FD).
fn semantics_for(pattern: FraudPattern) -> MetricKind {
    match pattern {
        FraudPattern::CustomerMerchantCollusion => MetricKind::Dg,
        FraudPattern::DealHunter => MetricKind::Dw,
        FraudPattern::ClickFarming => MetricKind::Fd,
    }
}

fn main() {
    println!("Figures 12/13: case studies (one instance per pattern)\n");
    let mut table = Table::new([
        "Pattern",
        "Algo",
        "T1 (inc detects, ms)",
        "T2 (static detects, ms)",
        "fraud tx in (T1, T2]",
        "instance tx total",
    ]);

    for pattern in FraudPattern::ALL {
        let kind = semantics_for(pattern);
        let base = TransactionStream::generate(&TransactionStreamConfig {
            customers: 5_000,
            merchants: 1_500,
            transactions: 40_000,
            seed: 0xCA5E + pattern as u64,
            ..Default::default()
        });
        let mut injected = FraudInjector::inject(
            &base,
            &FraudInjectorConfig {
                instances_per_pattern: 1,
                transactions_per_instance: 1_200,
                amount: 420.0,
                burst_duration: 3_000_000,
                inject_after_fraction: 0.9,
                ..Default::default()
            },
        );
        // Keep only the requested pattern's instance.
        injected.instances.retain(|i| i.pattern == pattern);
        let info = injected.instances[0].clone();
        injected.edges.retain(|e| e.label.is_none() || e.label.unwrap().pattern == pattern);

        let split = (injected.edges.len() as f64 * 0.9) as usize;
        let (initial, increments) = injected.edges.split_at(split);
        let members: HashSet<u32> = info.members.iter().map(|m| m.0).collect();

        // Incremental replay: find T1 = first stream time where at least
        // half the instance is inside the detected community.
        let mut engine = bootstrap_engine(kind, initial);
        let mut t1: Option<u64> = None;
        for e in increments {
            let det = engine.insert_edge(e.src, e.dst, e.raw).expect("insert");
            if t1.is_none() {
                let hits = engine.community(det).iter().filter(|m| members.contains(&m.0)).count();
                if hits * 2 >= members.len() {
                    t1 = Some(e.timestamp);
                }
            }
        }
        let Some(t1) = t1 else {
            table.row([
                pattern.name().to_string(),
                format!("{} vs Inc{}", kind.name(), kind.name()),
                "not detected".into(),
                "-".into(),
                "-".into(),
                info.transactions.to_string(),
            ]);
            continue;
        };

        // Static competitor: rounds of duration D back to back; the round
        // covering T1's state starts at ceil(T1 / D) * D and responds one
        // duration later.
        let d = measure_static_baseline(kind, initial, increments, 2).max(1.0) as u64;
        let t2 = t1.div_ceil(d) * d + d;
        let missed = injected
            .edges
            .iter()
            .filter(|e| e.is_fraud() && e.timestamp > t1 && e.timestamp <= t2)
            .count();

        table.row([
            pattern.name().to_string(),
            format!("{} vs {}", kind.name(), kind.inc_name()),
            format!("{:.1}", t1 as f64 / 1e3),
            format!("{:.1}", t2 as f64 / 1e3),
            missed.to_string(),
            info.transactions.to_string(),
        ]);
    }
    table.print();
    println!("\n(paper: IncDG catches collusion at T0+1s while DG waits until T0+60s,");
    println!(" letting 720 / 71 / 1853 fraudulent transactions through per pattern)");
}
