//! # Router tier: the sharded runtime over processes
//!
//! [`SpadeRouter`] speaks the [`crate::wire`] protocol to N
//! [`crate::shard_server`] processes and reproduces the in-process
//! sharded runtime's contract at the process level: deterministic
//! partitioned ingest, the cross-shard repair/aggregation pass (§4's
//! per-shard peeling stitched back to the exact global detection), and
//! component migration as snapshots in flight. The pieces:
//!
//! * **Ingest**: edges are routed by a [`Partitioner`] (hash-by-source
//!   by default), buffered per shard, and shipped as `Batch` frames —
//!   one synchronous round trip per batch, so at most one batch per
//!   shard is ever in flight and replay order is deterministic.
//! * **Replication**: before a batch is offered to its home shard `k`,
//!   it is journaled on the *replica* shard `(k+1) % N` via a
//!   `Replicate` frame. An edge counts as acknowledged only after
//!   **both** the replica and the home shard acked — which is what
//!   makes "zero acked edges lost" provable under SIGKILL: any acked
//!   edge is either applied on a live home or sits in a live journal.
//! * **Recovery** ([`recover`](SpadeRouter::recover)): when a home
//!   connection dies, batches keep journaling on the replica and queue
//!   as *pending*. A restarted (empty) shard process is reseeded by
//!   draining the replica's journal (`Bootstrap` → `BootstrapChunk`
//!   stream) and replaying every journaled batch — raw edges, applied
//!   exactly once by the fresh engine — after which pending batches are
//!   acknowledged without a resend (they are part of the journal). One
//!   failure at a time is tolerated: a crash destroys the journals the
//!   victim held *for others*, which are not rebuilt.
//! * **Repair** ([`repair`](SpadeRouter::repair)): flush + pull every
//!   shard's candidate region over the wire (`Region` frames ride the
//!   shard FIFO queues, so the pass observes every acked edge) and run
//!   the same [`repair_regions`] union/re-peel the in-process
//!   aggregator uses — the detection it publishes is provably at least
//!   as dense as the best single-shard view, and exact on communities
//!   covered by the exported frontiers.
//! * **Consolidation** ([`consolidate`](SpadeRouter::consolidate)):
//!   migrates a repaired community onto its baseline shard with
//!   `MigrateOut` → `Absorb` (extract → evict → replay in flight), then
//!   pins the members there so future traffic stays co-resident.

use std::collections::{HashMap, VecDeque};
use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

use spade_core::service::CandidateRegion;
use spade_core::shard::{repair_regions, RepairOutcome, RepairScratch};
use spade_core::shard::{PartitionStrategy, Partitioner};
use spade_graph::VertexId;

/// A raw weighted edge as batched onto the wire.
type RawEdge = (VertexId, VertexId, f64);

use crate::wire::{
    read_frame, write_frame, WireError, WireFrame, MAX_BATCH_EDGES, MAX_MIGRATE_MEMBERS,
};

/// Tuning for a [`SpadeRouter`].
#[derive(Clone, Debug)]
pub struct RouterConfig {
    /// Edges buffered per shard before a batch ships.
    pub batch_edges: usize,
    /// Frontier radius of the repair pass (see `RepairConfig::hops`).
    pub hops: usize,
    /// Edge-routing policy.
    pub strategy: PartitionStrategy,
    /// Journal every batch on the replica shard before offering it to
    /// its home. Disabling trades crash recovery for one round trip.
    pub replicate: bool,
    /// Backoff before retrying a `Busy` suffix.
    pub busy_backoff: Duration,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            batch_edges: 512,
            hops: 1,
            strategy: PartitionStrategy::HashBySource,
            replicate: true,
            busy_backoff: Duration::from_millis(2),
        }
    }
}

/// Router-side accounting.
#[derive(Clone, Copy, Debug, Default)]
pub struct RouterStats {
    /// Edges accepted into the router (buffered or shipped).
    pub edges_submitted: u64,
    /// Edges acknowledged end to end (journaled *and* applied on a
    /// home shard — directly or through a recovery replay).
    pub edges_acked: u64,
    /// `Batch` frames shipped to home shards.
    pub batches: u64,
    /// `Replicate` frames journaled on replicas.
    pub replicated: u64,
    /// `Busy` suffix retries.
    pub busy_retries: u64,
    /// Completed [`SpadeRouter::recover`] calls.
    pub recoveries: u64,
    /// Edges replayed out of a replica journal during recovery.
    pub bootstrap_edges: u64,
    /// Batches queued while their home shard was offline.
    pub deferred_batches: u64,
}

/// One home shard as the router sees it.
struct Shard {
    addr: String,
    /// `None` while the shard is offline (connection died; awaiting
    /// [`SpadeRouter::recover`]).
    conn: Option<TcpStream>,
    /// Edges routed here, not yet shipped.
    buffer: Vec<(VertexId, VertexId, f64)>,
    /// Last replication sequence journaled for this shard as owner.
    seq: u64,
    /// Journaled batches not yet applied by a live home, FIFO by seq.
    pending: VecDeque<(u64, Vec<RawEdge>)>,
}

/// The router: partitioned ingest, repair, migration, and recovery over
/// N shard-server connections.
pub struct SpadeRouter {
    shards: Vec<Shard>,
    partitioner: Box<dyn Partitioner>,
    /// Vertices pinned to a shard by consolidation — consulted before
    /// the partitioner so migrated communities keep their new home.
    overrides: HashMap<VertexId, usize>,
    scratch: RepairScratch,
    config: RouterConfig,
    stats: RouterStats,
}

impl SpadeRouter {
    /// Connects to one shard server per address. Shard `k`'s replica is
    /// `(k + 1) % N`; with a single shard, replication degenerates to a
    /// self-journal (no crash tolerance).
    pub fn connect(addrs: &[String], config: RouterConfig) -> Result<SpadeRouter, WireError> {
        assert!(!addrs.is_empty(), "a router needs at least one shard");
        assert!(config.batch_edges >= 1 && config.batch_edges <= MAX_BATCH_EDGES);
        let mut shards = Vec::with_capacity(addrs.len());
        for addr in addrs {
            shards.push(Shard {
                addr: addr.clone(),
                conn: Some(dial(addr)?),
                buffer: Vec::new(),
                seq: 0,
                pending: VecDeque::new(),
            });
        }
        Ok(SpadeRouter {
            shards,
            partitioner: config.strategy.build(),
            overrides: HashMap::new(),
            scratch: RepairScratch::new(),
            config,
            stats: RouterStats::default(),
        })
    }

    /// Number of shard servers.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Router-side accounting snapshot.
    pub fn stats(&self) -> RouterStats {
        self.stats
    }

    /// `true` while `shard`'s home connection is down.
    pub fn is_offline(&self, shard: usize) -> bool {
        self.shards[shard].conn.is_none()
    }

    /// Routes one edge; ships the destination shard's buffer when full.
    /// An edge is only *submitted* here — it is acked after
    /// [`flush_batches`](Self::flush_batches) (or a buffer-full ship)
    /// confirms the round trips.
    pub fn submit(&mut self, src: VertexId, dst: VertexId, raw: f64) -> Result<(), WireError> {
        let num = self.shards.len();
        let shard = match self.overrides.get(&src) {
            Some(&pinned) => pinned,
            None => self.partitioner.route(src, dst, num),
        };
        self.stats.edges_submitted += 1;
        self.shards[shard].buffer.push((src, dst, raw));
        if self.shards[shard].buffer.len() >= self.config.batch_edges {
            self.ship(shard)?;
        }
        Ok(())
    }

    /// Ships every buffered batch.
    pub fn flush_batches(&mut self) -> Result<(), WireError> {
        for shard in 0..self.shards.len() {
            if !self.shards[shard].buffer.is_empty() {
                self.ship(shard)?;
            }
        }
        Ok(())
    }

    /// Journals the shard's buffered edges on its replica, then offers
    /// them to the home shard. A dead home defers the batch (it stays
    /// journaled and pending); a dead replica is an error — that is the
    /// second simultaneous failure the design excludes.
    fn ship(&mut self, shard: usize) -> Result<(), WireError> {
        let edges = std::mem::take(&mut self.shards[shard].buffer);
        debug_assert!(edges.len() <= MAX_BATCH_EDGES);
        let seq = self.shards[shard].seq + 1;
        if self.config.replicate {
            let replica = (shard + 1) % self.shards.len();
            let frame = WireFrame::Replicate { owner: shard as u32, seq, edges: edges.clone() };
            match self.request(replica, &frame)? {
                WireFrame::Ack { .. } => {}
                other => return Err(unexpected(other)),
            }
            self.stats.replicated += 1;
        }
        self.shards[shard].seq = seq;
        if self.shards[shard].conn.is_none() {
            // Home offline: the batch is safe in the journal; recovery
            // replays it and acks it then.
            self.shards[shard].pending.push_back((seq, edges));
            self.stats.deferred_batches += 1;
            return Ok(());
        }
        match self.deliver(shard, edges.clone()) {
            Ok(accepted) => {
                self.stats.edges_acked += accepted;
                Ok(())
            }
            Err(WireError::Io(_)) if self.config.replicate => {
                // The home died mid-round-trip. The batch is journaled,
                // so park it as pending instead of failing ingest; a
                // partially applied prefix on the dead engine died with
                // it, so the recovery replay cannot double-apply.
                self.shards[shard].conn = None;
                self.shards[shard].pending.push_back((seq, edges));
                self.stats.deferred_batches += 1;
                Ok(())
            }
            Err(e) => Err(e),
        }
    }

    /// One `Batch` round trip to a live home shard, retrying `Busy`
    /// suffixes until every edge is accepted. Returns the edge count.
    fn deliver(
        &mut self,
        shard: usize,
        mut edges: Vec<(VertexId, VertexId, f64)>,
    ) -> Result<u64, WireError> {
        let total = edges.len() as u64;
        self.stats.batches += 1;
        loop {
            match self.request(shard, &WireFrame::Batch { edges: edges.clone() })? {
                WireFrame::Ack { .. } => return Ok(total),
                WireFrame::Busy { accepted } => {
                    edges.drain(..accepted as usize);
                    self.stats.busy_retries += 1;
                    std::thread::sleep(self.config.busy_backoff);
                }
                other => return Err(unexpected(other)),
            }
        }
    }

    /// Reconnects a (re)started shard process at `addr` and reseeds it
    /// from its replica's journal: every journaled batch is replayed as
    /// an ordinary `Batch` frame — the fresh engine applies each edge
    /// exactly once — then the deferred pending batches (all part of
    /// the journal) are acknowledged without a resend. Returns the
    /// number of edges replayed.
    pub fn recover(&mut self, shard: usize, addr: &str) -> Result<u64, WireError> {
        assert!(self.config.replicate, "recovery needs replication enabled");
        assert!(self.shards.len() > 1, "a lone shard has no replica to recover from");
        self.shards[shard].addr = addr.to_string();
        self.shards[shard].conn = Some(dial(addr)?);
        let replica = (shard + 1) % self.shards.len();
        // Drain the journal. Chunks arrive in seq order, terminated by
        // a `done` chunk carrying the journal high-water mark.
        let request = WireFrame::Bootstrap { owner: shard as u32, after: 0 };
        {
            let conn = self.shards[replica].conn.as_mut().ok_or_else(|| {
                WireError::Io(std::io::Error::new(
                    std::io::ErrorKind::NotConnected,
                    "replica offline",
                ))
            })?;
            write_frame(conn, &request)?;
            conn.flush().map_err(WireError::Io)?;
        }
        let mut replayed = 0u64;
        loop {
            let chunk = {
                let conn = self.shards[replica].conn.as_mut().expect("checked above");
                match read_frame(conn)? {
                    Some(WireFrame::BootstrapChunk(chunk)) => chunk,
                    Some(other) => return Err(unexpected(other)),
                    None => return Err(WireError::Corrupt("EOF inside a bootstrap stream")),
                }
            };
            let done = chunk.done;
            if !chunk.edges.is_empty() {
                replayed += self.deliver(shard, chunk.edges)?;
            }
            if done {
                break;
            }
        }
        self.stats.bootstrap_edges += replayed;
        // Every pending batch was journaled before it was deferred, so
        // the replay above already applied it: ack without resending.
        while let Some((seq, edges)) = self.shards[shard].pending.pop_front() {
            debug_assert!(seq <= self.shards[shard].seq);
            self.stats.edges_acked += edges.len() as u64;
        }
        // The replacement is also the *replica* for its predecessor,
        // whose earlier batches were journaled on the dead incarnation
        // (they are applied on the live predecessor; re-journaling them
        // is the double-failure cover the design excludes). Sync the
        // fresh journal's watermark so the predecessor's next batch is
        // contiguous instead of a rejected sequence gap.
        let prev = (shard + self.shards.len() - 1) % self.shards.len();
        if prev != shard && self.shards[prev].seq > 0 {
            let sync = WireFrame::Replicate {
                owner: prev as u32,
                seq: self.shards[prev].seq,
                edges: Vec::new(),
            };
            match self.request(shard, &sync)? {
                WireFrame::Ack { .. } => {}
                other => return Err(unexpected(other)),
            }
        }
        self.stats.recoveries += 1;
        Ok(replayed)
    }

    /// The cross-shard repair pass over the wire: flush every shard,
    /// pull each candidate region (the request rides the shard's FIFO
    /// queue, so it observes every previously acked edge), and run the
    /// aggregator's union/re-peel locally.
    pub fn repair(&mut self) -> Result<RepairOutcome, WireError> {
        self.flush_batches()?;
        let hops = self.config.hops as u32;
        let mut regions: Vec<(usize, CandidateRegion)> = Vec::with_capacity(self.shards.len());
        for shard in 0..self.shards.len() {
            if self.shards[shard].conn.is_none() {
                continue;
            }
            match self.request(shard, &WireFrame::Flush)? {
                WireFrame::Ack { .. } => {}
                other => return Err(unexpected(other)),
            }
            let region = match self.request(shard, &WireFrame::Region { hops })? {
                WireFrame::RegionReply(region) => region,
                other => return Err(unexpected(other)),
            };
            regions.push((
                shard,
                CandidateRegion {
                    size: region.size as usize,
                    density: region.density,
                    members: region.members.into(),
                    encoded: region.encoded,
                    updates_applied: region.updates_applied,
                    epoch: region.epoch,
                },
            ));
        }
        Ok(repair_regions(&regions, &mut self.scratch))
    }

    /// Consolidates a repaired community onto its baseline shard:
    /// `MigrateOut` (extract + evict) from every other shard, `Absorb`
    /// into the baseline, and pin the members there for future routing.
    /// Returns the number of edges that moved.
    pub fn consolidate(&mut self, outcome: &RepairOutcome) -> Result<u64, WireError> {
        assert!(outcome.members.len() <= MAX_MIGRATE_MEMBERS, "community exceeds a wire frame");
        let baseline = outcome.baseline_shard;
        let mut moved = 0u64;
        for shard in 0..self.shards.len() {
            if shard == baseline || self.shards[shard].conn.is_none() {
                continue;
            }
            let out = WireFrame::MigrateOut { members: outcome.members.clone() };
            let slice = match self.request(shard, &out)? {
                WireFrame::SliceReply(slice) => slice,
                other => return Err(unexpected(other)),
            };
            if slice.is_empty() {
                continue;
            }
            moved += slice.edges;
            match self.request(baseline, &WireFrame::Absorb { slice })? {
                WireFrame::AbsorbReply(_) => {}
                other => return Err(unexpected(other)),
            }
        }
        for &member in &outcome.members {
            self.overrides.insert(member, baseline);
        }
        Ok(moved)
    }

    /// The baseline shard's live detection (exact for a community after
    /// [`consolidate`](Self::consolidate) moved it there).
    pub fn detect(&mut self, shard: usize) -> Result<crate::wire::DetectionReply, WireError> {
        match self.request(shard, &WireFrame::Flush)? {
            WireFrame::Ack { .. } => {}
            other => return Err(unexpected(other)),
        }
        match self.request(shard, &WireFrame::Detect)? {
            WireFrame::Detection(det) => Ok(det),
            other => Err(unexpected(other)),
        }
    }

    /// Per-shard stats over the wire (`None` for offline shards).
    pub fn shard_stats(&mut self) -> Result<Vec<Option<crate::wire::StatsReply>>, WireError> {
        let mut all = Vec::with_capacity(self.shards.len());
        for shard in 0..self.shards.len() {
            if self.shards[shard].conn.is_none() {
                all.push(None);
                continue;
            }
            match self.request(shard, &WireFrame::Stats)? {
                WireFrame::StatsReply(stats) => all.push(Some(stats)),
                other => return Err(unexpected(other)),
            }
        }
        Ok(all)
    }

    /// Sends `Shutdown` to every live shard server.
    pub fn shutdown_shards(&mut self) -> Result<(), WireError> {
        self.flush_batches()?;
        for shard in 0..self.shards.len() {
            if self.shards[shard].conn.is_none() {
                continue;
            }
            match self.request(shard, &WireFrame::Shutdown)? {
                WireFrame::Ack { .. } => {}
                other => return Err(unexpected(other)),
            }
            self.shards[shard].conn = None;
        }
        Ok(())
    }

    /// One synchronous request/reply round trip on `shard`'s
    /// connection. An `Error` reply is surfaced as corruption — the
    /// shard rejected the frame, which is a router bug, not transport
    /// noise.
    fn request(&mut self, shard: usize, frame: &WireFrame) -> Result<WireFrame, WireError> {
        let conn = self.shards[shard].conn.as_mut().ok_or_else(|| {
            WireError::Io(std::io::Error::new(std::io::ErrorKind::NotConnected, "shard offline"))
        })?;
        write_frame(conn, frame)?;
        conn.flush().map_err(WireError::Io)?;
        match read_frame(conn)? {
            Some(WireFrame::Error { .. }) => Err(WireError::Corrupt("shard rejected the frame")),
            Some(reply) => Ok(reply),
            None => Err(WireError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "shard closed the connection",
            ))),
        }
    }
}

fn dial(addr: &str) -> Result<TcpStream, WireError> {
    let stream = TcpStream::connect(addr).map_err(WireError::Io)?;
    stream.set_nodelay(true).map_err(WireError::Io)?;
    Ok(stream)
}

fn unexpected(frame: WireFrame) -> WireError {
    let _ = frame;
    WireError::Corrupt("unexpected reply frame")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard_server::{ShardServer, ShardServerConfig};
    use spade_core::service::SpadeService;
    use spade_core::{SpadeEngine, WeightedDensity};
    use std::sync::Arc;

    fn spawn_shards(n: usize) -> (Vec<ShardServer>, Vec<String>) {
        let mut servers = Vec::new();
        let mut addrs = Vec::new();
        for _ in 0..n {
            let engine = SpadeEngine::new(WeightedDensity);
            let service = Arc::new(SpadeService::spawn(engine, None, 1024));
            let server = ShardServer::spawn(service, &ShardServerConfig::default()).expect("bind");
            addrs.push(server.local_addr().to_string());
            servers.push(server);
        }
        (servers, addrs)
    }

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    /// A dense 6-clique split across shards by hash routing plus noise,
    /// repaired back to the exact global community.
    #[test]
    fn repair_stitches_a_split_community() {
        let (mut servers, addrs) = spawn_shards(3);
        let mut router = SpadeRouter::connect(&addrs, RouterConfig::default()).expect("connect");
        let clique: Vec<u32> = (100..106).collect();
        let mut solo = SpadeEngine::new(WeightedDensity);
        let push = |router: &mut SpadeRouter,
                    solo: &mut SpadeEngine<WeightedDensity>,
                    src: u32,
                    dst: u32,
                    w: f64| {
            router.submit(v(src), v(dst), w).expect("submit");
            let _ = solo.insert_edge(v(src), v(dst), w);
        };
        for &a in &clique {
            for &b in &clique {
                if a != b {
                    push(&mut router, &mut solo, a, b, 9.0);
                }
            }
        }
        for i in 0..200u32 {
            push(&mut router, &mut solo, 1000 + i, 2000 + (i % 7), 0.5);
        }
        let outcome = router.repair().expect("repair");
        let want = solo.detect();
        let mut want_members: Vec<VertexId> = solo.community(want).to_vec();
        want_members.sort_unstable_by_key(|m| m.0);
        assert_eq!(outcome.members, want_members);
        assert!((outcome.density - want.density).abs() < 1e-9);
        let acked = router.stats().edges_acked;
        assert_eq!(acked, router.stats().edges_submitted);

        // Consolidate the community onto its baseline shard: its live
        // detection now equals the solo engine with no repair pass.
        let moved = router.consolidate(&outcome).expect("consolidate");
        assert!(moved > 0, "a hash-split clique must have edges to move");
        let det = router.detect(outcome.baseline_shard).expect("detect");
        let mut got: Vec<VertexId> = det.members;
        got.sort_unstable_by_key(|m| m.0);
        assert_eq!(got, want_members);
        assert!((det.density - want.density).abs() < 1e-9);

        router.shutdown_shards().expect("shutdown");
        for s in &mut servers {
            s.stop();
        }
    }

    /// Kill nothing, but exercise the offline-defer path directly: a
    /// dead home connection defers batches into the journal, and
    /// recovery replays them into a fresh process.
    #[test]
    fn recovery_replays_the_journal_into_a_fresh_process() {
        let (mut servers, addrs) = spawn_shards(2);
        let mut router = SpadeRouter::connect(&addrs, RouterConfig::default()).expect("connect");
        // Edges homed on shard 0 (hash of src decides; probe for one).
        let mut p = spade_core::shard::HashPartitioner;
        let src0 = (0..).find(|&i| p.route(v(i), v(0), 2) == 0).unwrap();
        router.submit(v(src0), v(1), 2.0).expect("submit");
        router.flush_batches().expect("flush");
        let acked_before = router.stats().edges_acked;
        assert_eq!(acked_before, 1);

        // Shard 0 dies: drop its server entirely (connection resets).
        let dead = servers.remove(0);
        drop(dead.into_service());
        router.shards[0].conn = None;

        // Ingest continues: the batch defers but journals on shard 1.
        router.submit(v(src0), v(2), 3.0).expect("submit");
        router.flush_batches().expect("flush");
        assert_eq!(router.stats().deferred_batches, 1);
        assert_eq!(router.stats().edges_acked, acked_before, "deferred edges are not acked");

        // A fresh process takes over shard 0 and reseeds.
        let (mut fresh, fresh_addrs) = spawn_shards(1);
        let replayed = router.recover(0, &fresh_addrs[0]).expect("recover");
        assert_eq!(replayed, 2, "both journaled batches replay");
        assert_eq!(router.stats().edges_acked, acked_before + 1, "the deferred edge is now acked");
        let det = router.detect(0).expect("detect");
        assert_eq!(det.updates_applied, 2);

        router.shutdown_shards().expect("shutdown");
        for s in &mut fresh {
            s.stop();
        }
        for s in &mut servers {
            s.stop();
        }
    }
}
