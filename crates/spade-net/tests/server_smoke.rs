//! Server integration smoke tests over a real loopback socket: a basic
//! produce → detect roundtrip, protocol queries, and the malformed-frame
//! smoke check (garbage bytes earn an Error reply and a closed
//! connection while the server keeps serving everyone else).

use spade_core::metric::WeightedDensity;
use spade_core::shard::{ShardedConfig, ShardedSpadeService};
use spade_core::PartitionStrategy;
use spade_graph::VertexId;
use spade_net::{read_frame, SpadeNetClient, SpadeNetServer, WireFrame};
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;

fn v(i: u32) -> VertexId {
    VertexId(i)
}

fn spawn_server(shards: usize) -> (Arc<ShardedSpadeService>, SpadeNetServer) {
    let config = ShardedConfig {
        shards,
        strategy: PartitionStrategy::HashBySource,
        ..ShardedConfig::with_shards(shards)
    };
    let service = Arc::new(ShardedSpadeService::spawn(WeightedDensity, config));
    let server = SpadeNetServer::bind(Arc::clone(&service), "127.0.0.1:0").expect("bind");
    (service, server)
}

#[test]
fn a_producer_feeds_the_runtime_and_reads_the_detection_back() {
    let (service, server) = spawn_server(2);
    let mut client = SpadeNetClient::connect(server.local_addr()).expect("connect");
    for i in 0..10u32 {
        client.submit(v(i), v(i + 1), 1.0).unwrap();
    }
    for a in 50..54u32 {
        for b in 50..54u32 {
            if a != b {
                client.submit(v(a), v(b), 25.0).unwrap();
            }
        }
    }
    let det = client.detect().expect("detect");
    assert!(det.density > 10.0);
    assert!(det.members.iter().all(|m| (50..54).contains(&m.0)));
    assert_eq!(det.updates_applied, 10 + 12);

    let remote = client.server_stats().expect("stats");
    assert_eq!(remote.shards, 2);
    assert_eq!(remote.edges_accepted, 22);
    assert_eq!(remote.connections, 1);
    assert!(remote.frames >= 3);

    let stats = client.finish().expect("finish");
    assert_eq!(stats.edges_submitted, 22);
    assert_eq!(stats.edges_acked, 22);

    let net = server.shutdown();
    assert_eq!(net.edges_accepted, 22);
    assert_eq!(net.malformed_frames, 0);
    let service = Arc::try_unwrap(service).unwrap_or_else(|_| panic!("service still shared"));
    let global = service.shutdown();
    assert_eq!(global.total_updates, 22);
}

#[test]
fn metrics_scrape_over_the_wire_reconciles_with_ingest() {
    let (service, server) = spawn_server(2);
    let mut client = SpadeNetClient::connect(server.local_addr()).expect("connect");
    for i in 0..50u32 {
        client.submit(v(i % 10), v((i + 1) % 10), 1.0).unwrap();
    }
    // Detect waits for every acknowledged edge to be applied
    // (read-your-acks), so the queue-wait histogram is complete after.
    client.detect().expect("detect");

    let reply = client.server_metrics().expect("metrics");
    assert_eq!(reply.version, spade_net::METRICS_VERSION);
    let text = &reply.exposition;
    // Per-stage histograms: every applied edge was timed exactly once.
    assert!(
        text.contains("spade_stage_queue_wait_ns_count 50"),
        "queue-wait count must equal applied updates, got:\n{text}"
    );
    assert!(text.contains("spade_stage_publish_ns_count"), "missing publish stage:\n{text}");
    // Transport totals and per-connection labeled series ride along.
    assert!(text.contains("spade_net_edges_accepted_total 50"), "net totals missing:\n{text}");
    assert!(
        text.contains("spade_net_connection_frames{conn=\"1\"}"),
        "per-connection series missing:\n{text}"
    );
    // The runtime totals from the shard registries are merged in.
    assert!(text.contains("spade_updates_total 50"), "updates counter missing:\n{text}");

    // The extended stats reply carries uptime and live per-shard depths.
    let stats = client.server_stats().expect("stats");
    assert!(stats.uptime_secs > 0.0);
    assert_eq!(stats.shard_queue_depths.len(), 2);
    assert_eq!(stats.shard_queue_depths.iter().sum::<u64>(), stats.queue_depth);

    drop(client);
    server.shutdown();
    let service = Arc::try_unwrap(service).unwrap_or_else(|_| panic!("service still shared"));
    assert_eq!(service.shutdown().total_updates, 50);
}

#[test]
fn malformed_frames_get_an_error_reply_and_do_not_kill_the_server() {
    let (service, server) = spawn_server(2);

    // A hostile producer: a length prefix far beyond the frame bound.
    let mut hostile = TcpStream::connect(server.local_addr()).expect("connect");
    hostile.write_all(&u32::MAX.to_le_bytes()).unwrap();
    hostile.flush().unwrap();
    match read_frame(&mut hostile).expect("an error reply, not a dropped byte stream") {
        Some(WireFrame::Error { message }) => assert!(message.contains("exceeds")),
        other => panic!("expected an Error frame, got {other:?}"),
    }
    // The server hangs up on the hostile connection...
    assert_eq!(read_frame(&mut hostile).expect("clean close"), None);

    // A second hostile producer: valid length, garbage opcode.
    let mut garbage = TcpStream::connect(server.local_addr()).expect("connect");
    garbage.write_all(&5u32.to_le_bytes()).unwrap();
    garbage.write_all(&[0x7f, 1, 2, 3, 4]).unwrap();
    garbage.flush().unwrap();
    match read_frame(&mut garbage).expect("an error reply") {
        Some(WireFrame::Error { message }) => assert!(message.contains("opcode")),
        other => panic!("expected an Error frame, got {other:?}"),
    }

    // ...while honest producers keep working on the same server.
    let mut honest = SpadeNetClient::connect(server.local_addr()).expect("connect");
    for a in 10..13u32 {
        for b in 10..13u32 {
            if a != b {
                honest.submit(v(a), v(b), 9.0).unwrap();
            }
        }
    }
    let det = honest.detect().expect("detect still works");
    assert_eq!(det.size, 3);
    drop(honest);

    let net = server.shutdown();
    assert!(net.malformed_frames >= 2);
    assert_eq!(net.edges_accepted, 6);
    drop(service);
}

#[test]
fn shutdown_frame_stops_the_server() {
    let (service, server) = spawn_server(1);
    let mut client = SpadeNetClient::connect(server.local_addr()).expect("connect");
    client.submit(v(0), v(1), 2.0).unwrap();
    client.shutdown_server().expect("shutdown handshake");
    // The stop flag must flip promptly (the CLI's serve loop polls it).
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while !server.is_stopped() {
        assert!(std::time::Instant::now() < deadline, "server failed to stop");
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    let net = server.shutdown();
    assert_eq!(net.edges_accepted, 1);
    let service = Arc::try_unwrap(service).unwrap_or_else(|_| panic!("service still shared"));
    assert_eq!(service.shutdown().total_updates, 1);
}

#[test]
fn budgeted_batches_flow_through_the_slo_scheduler() {
    let (service, server) = spawn_server(2);
    // A client with a per-transaction detection budget ships BatchBudget
    // (protocol v2) frames; the server hands each one to the grouped
    // sharded submit with the budget attached.
    let mut client = SpadeNetClient::connect_with(
        server.local_addr(),
        spade_net::ClientConfig {
            batch: 16,
            budget: Some(std::time::Duration::from_millis(50)),
            ..Default::default()
        },
    )
    .expect("connect");
    for i in 0..100u32 {
        client.submit(v(i % 20), v((i + 1) % 20), 1.0 + (i % 5) as f64).unwrap();
    }
    client.detect().expect("detect");

    // Every applied edge recorded a deadline outcome: with a generous
    // 50ms budget each one lands in the slack histogram, none as a miss.
    let reply = client.server_metrics().expect("metrics");
    let text = &reply.exposition;
    assert!(
        text.contains("spade_deadline_slack_ns_count 100"),
        "every budgeted edge must record slack, got:\n{text}"
    );
    assert!(text.contains("spade_deadline_miss_total 0"), "misses under a 50ms budget:\n{text}");

    let stats = client.finish().expect("finish");
    assert_eq!(stats.edges_acked, 100);
    server.shutdown();
    let service = Arc::try_unwrap(service).unwrap_or_else(|_| panic!("service still shared"));
    assert_eq!(service.shutdown().total_updates, 100);
}

#[test]
fn empty_batches_and_pipelined_sends_are_harmless() {
    let (service, server) = spawn_server(2);
    let mut client = SpadeNetClient::connect_with(
        server.local_addr(),
        spade_net::ClientConfig { batch: 4, pipeline: 3, ..Default::default() },
    )
    .expect("connect");
    // Deep pipelining across many small batches.
    for i in 0..200u32 {
        client.submit(v(i % 40), v((i + 1) % 40), 1.0 + (i % 7) as f64).unwrap();
    }
    let stats = client.finish().expect("finish");
    assert_eq!(stats.edges_acked, 200);
    server.shutdown();
    let service = Arc::try_unwrap(service).unwrap_or_else(|_| panic!("service still shared"));
    assert_eq!(service.shutdown().total_updates, 200);
}
