//! Criterion: static peeling baselines (Algorithm 1) on the dataset
//! surrogates — the DG/DW/FD columns of Table 4.

#![allow(missing_docs)] // criterion macros generate undocumented items

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spade_bench::replay::{bootstrap_engine, MetricKind};
use spade_bench::table3_datasets;
use spade_core::order::MinQueue;
use spade_core::peel_with_queue;
use spade_graph::CsrGraph;

fn bench_static_peel(c: &mut Criterion) {
    let mut group = c.benchmark_group("static_peel");
    group.sample_size(10);
    for data in table3_datasets() {
        // One dataset per family keeps bench time sane.
        if data.name != "Grab1" && data.name != "Wiki-Vote" {
            continue;
        }
        for kind in MetricKind::ALL {
            let engine = bootstrap_engine(kind, &data.stream.edges);
            let csr = CsrGraph::from_graph(engine.graph());
            let mut queue = MinQueue::new();
            group.bench_function(BenchmarkId::new(kind.name(), data.name), |b| {
                b.iter(|| std::hint::black_box(peel_with_queue(&csr, &mut queue)));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_static_peel);
criterion_main!(benches);
