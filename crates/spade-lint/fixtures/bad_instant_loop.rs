// Self-test fixture: a clock read inside a per-edge loop in a hot-path
// module. One `Instant::now()` per edge is the classic silent
// throughput killer — stamp once per batch instead. Never compiled.

use std::time::Instant;

pub fn apply(edges: &[(u32, u32)]) {
    for (src, dst) in edges {
        let stamped = Instant::now();
        touch(*src, *dst, stamped);
    }
}
