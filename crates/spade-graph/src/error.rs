//! Error types for the graph substrate.

use crate::id::VertexId;
use std::fmt;

/// Errors produced by graph construction, mutation, and I/O.
#[derive(Debug)]
pub enum GraphError {
    /// A vertex id referenced a vertex that does not exist.
    VertexOutOfBounds {
        /// The offending vertex.
        vertex: VertexId,
        /// Current number of vertices.
        num_vertices: usize,
    },
    /// A vertex weight was negative (the model requires `a_i >= 0`).
    NegativeVertexWeight {
        /// The offending vertex.
        vertex: VertexId,
        /// The rejected weight.
        weight: f64,
    },
    /// An edge weight was not strictly positive (the model requires `c_ij > 0`).
    NonPositiveEdgeWeight {
        /// The offending edge endpoints.
        src: VertexId,
        /// Destination endpoint.
        dst: VertexId,
        /// The rejected weight.
        weight: f64,
    },
    /// A weight was NaN or infinite.
    NonFiniteWeight {
        /// Human-readable description of where the weight was supplied.
        context: &'static str,
    },
    /// Self-loops are not part of the transaction-graph model.
    SelfLoop {
        /// The vertex that attempted to connect to itself.
        vertex: VertexId,
    },
    /// An edge deletion or lookup referenced an edge that does not exist.
    EdgeNotFound {
        /// Source endpoint.
        src: VertexId,
        /// Destination endpoint.
        dst: VertexId,
    },
    /// An I/O failure while loading or saving a graph.
    Io(std::io::Error),
    /// A parse failure while loading an edge list.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the malformed content.
        message: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfBounds { vertex, num_vertices } => write!(
                f,
                "vertex {vertex} out of bounds (graph has {num_vertices} vertices)"
            ),
            GraphError::NegativeVertexWeight { vertex, weight } => {
                write!(f, "vertex {vertex} weight {weight} is negative; the model requires a_i >= 0")
            }
            GraphError::NonPositiveEdgeWeight { src, dst, weight } => write!(
                f,
                "edge ({src} -> {dst}) weight {weight} is not strictly positive; the model requires c_ij > 0"
            ),
            GraphError::NonFiniteWeight { context } => {
                write!(f, "non-finite weight supplied for {context}")
            }
            GraphError::SelfLoop { vertex } => {
                write!(f, "self-loop on vertex {vertex} is not allowed")
            }
            GraphError::EdgeNotFound { src, dst } => {
                write!(f, "edge ({src} -> {dst}) not found")
            }
            GraphError::Io(e) => write!(f, "I/O error: {e}"),
            GraphError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = GraphError::VertexOutOfBounds { vertex: VertexId(7), num_vertices: 3 };
        assert!(e.to_string().contains("vertex 7"));
        assert!(e.to_string().contains("3 vertices"));

        let e =
            GraphError::NonPositiveEdgeWeight { src: VertexId(1), dst: VertexId(2), weight: 0.0 };
        assert!(e.to_string().contains("c_ij > 0"));

        let e = GraphError::SelfLoop { vertex: VertexId(4) };
        assert!(e.to_string().contains("self-loop"));
    }

    #[test]
    fn io_error_converts_and_sources() {
        use std::error::Error;
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: GraphError = io.into();
        assert!(e.source().is_some());
    }
}
