//! Table 4 — time for incremental maintenance by batch size.
//!
//! Columns mirror the paper: static seconds per full run for DG/DW/FD,
//! then mean microseconds *per edge* for IncDG/IncDW/IncFD at batch sizes
//! `|ΔE| ∈ {1, 10, 100, 1K, 100K}`. The shape to reproduce: per-edge cost
//! falls as batches grow (stale reordering is skipped), and IncFD is far
//! cheaper than IncDG/IncDW.
//!
//! `cargo run -p spade-bench --release --bin table4_batch_sizes`

use spade_bench::{
    measure_incremental_replay, measure_static_baseline, table3_datasets, MetricKind,
};
use spade_metrics::table::fmt_us;
use spade_metrics::Table;

const BATCHES: [usize; 5] = [1, 10, 100, 1_000, 100_000];

fn main() {
    println!("Table 4: incremental maintenance cost by batch size (per-edge us)\n");
    let mut header: Vec<String> =
        vec!["Dataset".into(), "DG(s)".into(), "DW(s)".into(), "FD(s)".into()];
    for b in BATCHES {
        for kind in MetricKind::ALL {
            header.push(format!("{}@{}", kind.inc_name(), label(b)));
        }
    }
    let mut table = Table::new(header);

    for data in table3_datasets() {
        let mut row: Vec<String> = vec![data.name.to_string()];
        for kind in MetricKind::ALL {
            let us = measure_static_baseline(kind, &data.initial, &data.increments, 3);
            row.push(format!("{:.3}", us / 1e6));
        }
        for b in BATCHES {
            // Cap the single-edge replay so the sweep completes quickly.
            let cap = if b == 1 { 2_000.min(data.increments.len()) } else { data.increments.len() };
            let increments = &data.increments[..cap];
            for kind in MetricKind::ALL {
                let report = measure_incremental_replay(kind, &data.initial, increments, b);
                row.push(fmt_us(report.per_edge_us()));
            }
        }
        table.row(row);
    }
    table.print();
    println!("\n(paper: per-edge time drops monotonically with batch size;");
    println!(" IncDG-100K up to 1211x faster than IncDG-1, IncFD stays in single-digit us)");
}

fn label(b: usize) -> String {
    if b >= 1_000 {
        format!("{}K", b / 1_000)
    } else {
        b.to_string()
    }
}
