//! # spade-net
//!
//! The network ingest front end of the Spade runtime: a length-prefixed
//! binary wire protocol ([`WireFrame`]), a multi-producer TCP server
//! ([`SpadeNetServer`]) that bridges decoded frames into the sharded
//! detection runtime over a readiness-based reactor (a fixed pool of
//! `poll(2)` event-loop workers with per-connection fairness budgets —
//! see [`ReactorConfig`] and the [`reactor`] module), and a batching,
//! pipelining client ([`SpadeNetClient`]) for producers.
//!
//! The paper frames Spade as a *real-time* system fed by live transaction
//! streams; until now the runtime only ingested from in-process
//! iterators. This crate is the thin transport the sharded worker loop
//! was built to receive: frames decode straight into
//! `ShardedSpadeService::try_submit`, so every shard's drain-coalescing
//! batch path, routing policy, and repair/migration machinery is
//! inherited unchanged — and back-pressure crosses the wire. When a
//! shard's bounded ingest queue is full, the server answers
//! [`WireFrame::Busy`] with the count of edges it *did* enqueue instead
//! of blocking the connection handler; the client retries the
//! unacknowledged suffix. An edge is acknowledged **only after** it sits
//! in a shard queue, so the acked count is exact drain accounting: at
//! shutdown, `sum(updates_applied)` across shards equals the sum of all
//! producers' acknowledged edges.
//!
//! Protocol shape (all integers little-endian, `f64` as raw bits):
//!
//! ```text
//! frame   := u32 payload_len | payload            (len ≤ MAX_FRAME_BYTES)
//! payload := u8 opcode | body
//! ```
//!
//! Requests: `Edge`, `Batch`, `Flush`, `Detect`, `Stats`, `Shutdown`,
//! `Metrics`, plus the protocol-v3 shard-server operations `Region`,
//! `MigrateOut`, `Absorb`, `Replicate`, and `Bootstrap` (served by
//! [`ShardServer`], driven by [`SpadeRouter`]). Replies: `Ack`, `Busy`,
//! `Detection`, `StatsReply`, `MetricsReply`, `RegionReply`,
//! `SliceReply`, `AbsorbReply`, `BootstrapChunk`, `Error`.
//! The decoder rejects truncated, oversized,
//! and structurally invalid frames with an error — never a panic —
//! mirroring the overflow-safe section checks of the
//! `spade_core::persist` snapshot codec.
//!
//! Observability rides the same socket: a `Metrics` request answers with
//! the merged runtime + transport registry snapshot rendered as
//! Prometheus text exposition ([`MetricsReply`]), and
//! [`MetricsHttpServer`] serves the identical rendering to plain HTTP
//! scrapers (`spade-cli serve --metrics`).

pub mod client;
pub mod http;
pub mod reactor;
pub mod router;
pub mod server;
pub mod shard_server;
pub mod wire;

pub use client::{ClientConfig, ClientStats, SpadeNetClient};
pub use http::MetricsHttpServer;
pub use reactor::ReactorConfig;
pub use router::{RouterConfig, RouterStats, SpadeRouter};
pub use server::{NetStats, SpadeNetServer};
pub use shard_server::{ShardServer, ShardServerConfig};
pub use wire::{
    read_frame, write_frame, AbsorbReply, BootstrapChunk, DetectionReply, FrameDecoder,
    MetricsReply, RegionReply, StatsReply, WireError, WireFrame, WireSlice, MAX_BATCH_EDGES,
    MAX_DETECTION_MEMBERS, MAX_EXPOSITION_BYTES, MAX_FRAME_BYTES, MAX_MIGRATE_MEMBERS,
    MAX_SNAPSHOT_BYTES, MAX_STATS_SHARDS, METRICS_VERSION, PROTOCOL_VERSION,
};
