//! A readiness-based event loop for the ingest front end.
//!
//! The thread-per-connection server topped out at "one OS thread per
//! producer"; this module replaces it with a small fixed pool of
//! event-loop workers, each multiplexing many nonblocking sockets over
//! `poll(2)`. The syscall is reached through a direct `extern "C"`
//! binding — the vendored-shim policy holds: no new external crates, no
//! libc dependency, just the one POSIX entry point the loop needs.
//!
//! Shape of the loop (one per worker thread):
//!
//! * **Worker 0 owns the listener.** Accepted sockets are handed out
//!   round-robin across the pool through per-worker inboxes; a
//!   `UnixStream` wake pipe per worker interrupts its `poll` so adoption
//!   is prompt. This also retires the old `ACCEPT_POLL` sleep-poll — the
//!   listener is just another readable fd in worker 0's poll set.
//! * **Fairness is budgeted.** Each readiness cycle visits connections
//!   in a rotating order and applies at most
//!   [`ReactorConfig::frame_budget`] frames per connection before moving
//!   on, so a firehose producer with a deep kernel receive buffer cannot
//!   monopolize the cycle; leftover buffered frames keep the loop hot
//!   (zero poll timeout) and are drained next cycle. Exhaustions are
//!   counted (`spade_net_reactor_budget_exhausted_total`).
//! * **Writes never block the loop.** Replies land in a per-connection
//!   pending-write buffer flushed only while the socket accepts bytes;
//!   a slow reader accumulates backlog until
//!   [`ReactorConfig::max_pending_write`], at which point the loop stops
//!   *reading* from that connection (back-pressure through the kernel
//!   window) but keeps every other connection moving.
//! * **Nothing on the loop blocks on the runtime.** Ingest goes through
//!   `try_submit`/`submit_batch` exactly as before, and the one formerly
//!   blocking wait — read-your-acks `Detect` — becomes a deferred reply:
//!   the connection parks (reads paused, replies in order preserved)
//!   until the shards' applied total reaches the acknowledged watermark,
//!   checked once per cycle.
//!
//! Per-loop observability rides the transport's existing
//! [`spade_metrics::MetricsRegistry`]: connections resident
//! (`spade_net_reactor_connections_resident`), readiness wakeups
//! (`spade_net_reactor_wakeups_total`), drain-budget exhaustions, and a
//! per-cycle dispatch latency histogram
//! (`spade_net_reactor_dispatch_ns`).

use crate::server::{
    apply_frame, register_conn, write_detection, ConnCounters, FrameStep, NetTelemetry,
};
use crate::wire::{write_frame, FrameDecoder, WireFrame};
use parking_lot::Mutex;
use spade_core::shard::ShardedSpadeService;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Upper bound on waiting for acknowledged edges to be applied before a
/// deferred Detect answers anyway. Acked edges always drain (workers
/// never drop queued commands), so this only fires if the runtime is
/// torn down under a live connection.
const DETECT_DEADLINE: Duration = Duration::from_secs(10);
/// Poll timeout while every connection is idle — bounds how long a stop
/// request can go unnoticed without a wake byte.
const IDLE_POLL_MS: i32 = 50;

// ---------------------------------------------------------------------
// poll(2), bound directly. `pollfd` layout and event bits are POSIX.
// ---------------------------------------------------------------------

#[repr(C)]
#[derive(Clone, Copy)]
struct PollFd {
    fd: RawFd,
    events: i16,
    revents: i16,
}

const POLLIN: i16 = 0x001;
const POLLOUT: i16 = 0x004;
const POLLERR: i16 = 0x008;
const POLLHUP: i16 = 0x010;
const POLLNVAL: i16 = 0x020;

extern "C" {
    fn poll(
        fds: *mut PollFd,
        nfds: core::ffi::c_ulong,
        timeout: core::ffi::c_int,
    ) -> core::ffi::c_int;
}

/// `poll(2)` over `fds`, retrying on `EINTR`. Returns the number of fds
/// with events.
fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> std::io::Result<usize> {
    loop {
        // SAFETY: `fds` is a valid, exclusively borrowed slice for the
        // whole call; PollFd is #[repr(C)] and matches the libc layout,
        // and nfds is exactly the slice length.
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as core::ffi::c_ulong, timeout_ms) };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let err = std::io::Error::last_os_error();
        if err.kind() != std::io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

/// Blocks up to `timeout` for `fd` to become readable. The
/// readiness-wait primitive the HTTP exporter uses in place of its old
/// accept-loop sleep poll.
pub(crate) fn wait_readable(fd: RawFd, timeout: Duration) -> std::io::Result<bool> {
    let mut fds = [PollFd { fd, events: POLLIN, revents: 0 }];
    let ms = timeout.as_millis().min(i32::MAX as u128) as i32;
    Ok(poll_fds(&mut fds, ms)? > 0 && fds[0].revents != 0)
}

// ---------------------------------------------------------------------
// Configuration and pool scaffolding.
// ---------------------------------------------------------------------

/// Tuning knobs of the reactor worker pool (`serve --listen
/// --net-workers N` surfaces `workers`).
#[derive(Clone, Copy, Debug)]
pub struct ReactorConfig {
    /// Event-loop worker threads; connections are assigned round-robin.
    pub workers: usize,
    /// Frames decoded and applied per connection per readiness cycle —
    /// the fan-in fairness knob. Leftovers stay buffered and the loop
    /// re-runs immediately, so the budget bounds burst monopoly, not
    /// throughput.
    pub frame_budget: usize,
    /// Bytes read per connection per cycle (one `read` call each).
    pub read_chunk: usize,
    /// Pending-write backlog (bytes) at which the loop stops reading
    /// from a connection until its peer drains replies — a slow reader
    /// back-pressures itself, never the loop.
    pub max_pending_write: usize,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        ReactorConfig {
            workers: 2,
            frame_budget: 32,
            read_chunk: 64 * 1024,
            max_pending_write: 256 * 1024,
        }
    }
}

/// A worker's adoption inbox: accepted sockets with their counters.
type Inbox = Mutex<Vec<(TcpStream, Arc<ConnCounters>)>>;

/// State shared by every worker in one reactor.
struct Shared {
    service: Arc<ShardedSpadeService>,
    stop: Arc<AtomicBool>,
    telemetry: Arc<NetTelemetry>,
    config: ReactorConfig,
    /// Live connections across all workers (drives the resident gauge;
    /// signed so a racy decrement can never wrap a gauge to 2^64).
    resident: AtomicI64,
    /// Accepted sockets awaiting adoption, one inbox per worker.
    inboxes: Vec<Inbox>,
    /// Write ends of each worker's wake pipe.
    wakers: Vec<UnixStream>,
}

impl Shared {
    fn wake(&self, worker: usize) {
        // A failed wake is harmless: the worker's idle poll timeout
        // bounds the delay instead.
        let _ = (&self.wakers[worker]).write(&[1u8]);
    }

    fn wake_all(&self) {
        for w in 0..self.wakers.len() {
            self.wake(w);
        }
    }
}

/// A running pool of event-loop workers. Dropping (via
/// [`Reactor::join`]) stops and joins every worker.
pub(crate) struct Reactor {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Reactor {
    /// Spawns `config.workers` event loops; worker 0 adopts `listener`.
    pub(crate) fn start(
        listener: TcpListener,
        service: Arc<ShardedSpadeService>,
        stop: Arc<AtomicBool>,
        telemetry: Arc<NetTelemetry>,
        mut config: ReactorConfig,
    ) -> std::io::Result<Reactor> {
        config.workers = config.workers.clamp(1, 64);
        config.frame_budget = config.frame_budget.max(1);
        config.read_chunk = config.read_chunk.clamp(1024, 1 << 22);
        config.max_pending_write = config.max_pending_write.max(4096);
        let mut wakers = Vec::with_capacity(config.workers);
        let mut wake_rxs = Vec::with_capacity(config.workers);
        for _ in 0..config.workers {
            let (tx, rx) = UnixStream::pair()?;
            tx.set_nonblocking(true)?;
            rx.set_nonblocking(true)?;
            wakers.push(tx);
            wake_rxs.push(rx);
        }
        let shared = Arc::new(Shared {
            service,
            stop,
            telemetry,
            config,
            resident: AtomicI64::new(0),
            inboxes: (0..config.workers).map(|_| Mutex::new(Vec::new())).collect(),
            wakers,
        });
        let mut listener = Some(listener);
        let workers = wake_rxs
            .into_iter()
            .enumerate()
            .map(|(idx, wake_rx)| {
                let shared = Arc::clone(&shared);
                let listener = if idx == 0 { listener.take() } else { None };
                std::thread::Builder::new()
                    .name(format!("spade-net-loop-{idx}"))
                    .spawn(move || run_worker(idx, listener, wake_rx, &shared))
                    .expect("failed to spawn a reactor worker")
            })
            .collect();
        Ok(Reactor { shared, workers })
    }

    /// Interrupts every worker's poll so a stop request is seen now.
    pub(crate) fn wake_all(&self) {
        self.shared.wake_all();
    }

    /// Wakes and joins every worker (the stop flag must already be set).
    pub(crate) fn join(&mut self) {
        self.shared.wake_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

// ---------------------------------------------------------------------
// Per-connection state and the worker loop.
// ---------------------------------------------------------------------

/// One multiplexed producer connection.
struct Conn {
    stream: TcpStream,
    decoder: FrameDecoder,
    /// Pending reply bytes: `out[out_cursor..]` is not yet written.
    out: Vec<u8>,
    out_cursor: usize,
    counters: Arc<ConnCounters>,
    /// A parked read-your-acks Detect: `(acked watermark, deadline)`.
    /// While set, no further frames are applied (replies stay in request
    /// order) and the socket is not read.
    pending_detect: Option<(u64, Instant)>,
    /// Reply written for a frame that ends the connection; close once
    /// the out buffer drains.
    closing: bool,
    /// Peer half-closed; drain buffered frames, then close.
    eof: bool,
    /// Budget exhausted with bytes still buffered — poll with zero
    /// timeout so the leftovers drain next cycle.
    hot: bool,
}

impl Conn {
    fn pending_out(&self) -> usize {
        self.out.len() - self.out_cursor
    }
}

/// Resolved metric handles, one set per worker (same registry names, so
/// the exposition aggregates the pool).
struct LoopMetrics {
    resident: Arc<spade_metrics::Gauge>,
    wakeups: Arc<spade_metrics::Counter>,
    budget_exhausted: Arc<spade_metrics::Counter>,
    dispatch: Arc<spade_metrics::Histogram>,
}

impl LoopMetrics {
    fn resolve(telemetry: &NetTelemetry) -> LoopMetrics {
        let r = telemetry.registry();
        LoopMetrics {
            resident: r.gauge("spade_net_reactor_connections_resident"),
            wakeups: r.counter("spade_net_reactor_wakeups_total"),
            budget_exhausted: r.counter("spade_net_reactor_budget_exhausted_total"),
            dispatch: r.histogram("spade_net_reactor_dispatch_ns"),
        }
    }
}

fn run_worker(idx: usize, listener: Option<TcpListener>, wake_rx: UnixStream, shared: &Shared) {
    let metrics = LoopMetrics::resolve(&shared.telemetry);
    let mut conns: Vec<Conn> = Vec::new();
    let mut next_conn_id = 0u64; // worker 0 only (owns the listener)
    let mut rotate = 0usize;
    let mut chunk = vec![0u8; shared.config.read_chunk];

    while !shared.stop.load(Ordering::Acquire) {
        // Leftover buffered frames or a parked Detect need a prompt
        // re-visit; otherwise sleep until readiness or the idle bound.
        let mut timeout = IDLE_POLL_MS;
        for c in &conns {
            if c.hot {
                timeout = 0;
            } else if c.pending_detect.is_some() {
                timeout = timeout.min(1);
            }
        }

        let mut fds = Vec::with_capacity(conns.len() + 2);
        fds.push(PollFd { fd: wake_rx.as_raw_fd(), events: POLLIN, revents: 0 });
        if let Some(l) = listener.as_ref() {
            fds.push(PollFd { fd: l.as_raw_fd(), events: POLLIN, revents: 0 });
        }
        let base = fds.len();
        for c in &conns {
            let paused = c.pending_detect.is_some()
                || c.closing
                || c.eof
                || c.pending_out() >= shared.config.max_pending_write;
            let mut events = 0i16;
            if !paused {
                events |= POLLIN;
            }
            if c.pending_out() > 0 {
                events |= POLLOUT;
            }
            fds.push(PollFd { fd: c.stream.as_raw_fd(), events, revents: 0 });
        }

        if poll_fds(&mut fds, timeout).is_err() {
            // A transient poll failure must not spin the loop hot.
            std::thread::sleep(Duration::from_millis(1));
            continue;
        }
        metrics.wakeups.inc();
        let dispatch_started = Instant::now();

        if fds[0].revents != 0 {
            let mut sink = [0u8; 64];
            while matches!((&wake_rx).read(&mut sink), Ok(n) if n > 0) {}
        }

        // Adopt handed-over sockets, then accept fresh ones (worker 0).
        let adopted = std::mem::take(&mut *shared.inboxes[idx].lock());
        for (stream, counters) in adopted {
            conns.push(new_conn(stream, counters));
        }
        if let Some(l) = listener.as_ref() {
            accept_ready(l, &mut next_conn_id, &mut conns, shared);
        }

        // Service connections in a rotating order: whoever went last
        // cycle goes first eventually, so a budget-capped firehose can
        // never push a drip producer to the end of every cycle.
        let len = conns.len();
        let mut dead = Vec::new();
        for k in 0..len {
            let i = (rotate + k) % len;
            let revents = fds.get(base + i).map(|f| f.revents).unwrap_or(0);
            if !service_conn(&mut conns[i], revents, shared, &metrics, &mut chunk) {
                dead.push(i);
            }
        }
        rotate = rotate.wrapping_add(1);
        if !dead.is_empty() {
            dead.sort_unstable();
            for i in dead.into_iter().rev() {
                conns.swap_remove(i);
            }
        }
        // audit: resident gauge is telemetry-only, single counter cell
        let resident = shared.resident.load(Ordering::Relaxed);
        metrics.resident.set(resident.max(0) as u64);

        metrics.dispatch.record_duration(dispatch_started.elapsed());
    }

    // Wind-down: one best-effort flush per connection so replies already
    // produced (e.g. the Shutdown Ack) reach their producers.
    // audit: resident gauge is telemetry-only, single counter cell
    for c in &mut conns {
        let _ = flush_out(c);
        shared.resident.fetch_sub(1, Ordering::Relaxed);
    }
    let resident = shared.resident.load(Ordering::Relaxed);
    metrics.resident.set(resident.max(0) as u64);
}

fn new_conn(stream: TcpStream, counters: Arc<ConnCounters>) -> Conn {
    Conn {
        stream,
        decoder: FrameDecoder::new(),
        out: Vec::new(),
        out_cursor: 0,
        counters,
        pending_detect: None,
        closing: false,
        eof: false,
        hot: false,
    }
}

/// Drains the listener, assigning each new socket round-robin across
/// the pool (worker 0 keeps its own share).
fn accept_ready(
    listener: &TcpListener,
    next_conn_id: &mut u64,
    own: &mut Vec<Conn>,
    shared: &Shared,
) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                stream.set_nodelay(true).ok();
                *next_conn_id += 1;
                let id = *next_conn_id;
                let counters = register_conn(&shared.telemetry, id);
                // audit: resident gauge is telemetry-only, single counter cell
                shared.resident.fetch_add(1, Ordering::Relaxed);
                let target = (id as usize - 1) % shared.config.workers;
                if target == 0 {
                    own.push(new_conn(stream, counters));
                } else {
                    shared.inboxes[target].lock().push((stream, counters));
                    shared.wake(target);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(_) => break,
        }
    }
}

/// One readiness-cycle visit to one connection. Returns `false` once
/// the connection is finished and must be dropped.
fn service_conn(
    c: &mut Conn,
    revents: i16,
    shared: &Shared,
    metrics: &LoopMetrics,
    chunk: &mut [u8],
) -> bool {
    c.hot = false;
    if revents & (POLLERR | POLLNVAL) != 0 {
        return drop_conn(c, shared);
    }

    // Flush first: freeing reply backlog may unpause reading below.
    if !flush_out(c) {
        return drop_conn(c, shared);
    }

    // A parked Detect answers once the shards catch up to the
    // acknowledged watermark (or the teardown deadline passes). Until
    // then nothing else on this connection is read or applied, so the
    // reply order the producer sees is unchanged from the blocking
    // server.
    if let Some((watermark, deadline)) = c.pending_detect {
        if crate::server::applied_total(&shared.service) >= watermark || Instant::now() >= deadline
        {
            c.pending_detect = None;
            write_detection(&shared.service, &mut c.out);
        }
    }

    if revents & (POLLIN | POLLHUP) != 0
        && c.pending_detect.is_none()
        && !c.closing
        && !c.eof
        && c.pending_out() < shared.config.max_pending_write
    {
        match c.stream.read(chunk) {
            Ok(0) => c.eof = true,
            Ok(n) => {
                // audit: per-connection byte counter, telemetry only
                c.counters.bytes.fetch_add(n as u64, Ordering::Relaxed);
                c.decoder.extend(&chunk[..n]);
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return drop_conn(c, shared),
        }
    }

    // Apply at most `frame_budget` frames, then yield the cycle to the
    // other connections — fan-in fairness.
    let budget = shared.config.frame_budget;
    let mut applied = 0usize;
    while applied < budget && c.pending_detect.is_none() && !c.closing {
        match c.decoder.next_frame() {
            Ok(Some(frame)) => {
                applied += 1;
                shared.telemetry.count_frame(&c.counters);
                match apply_frame(
                    frame,
                    &shared.service,
                    &shared.stop,
                    &shared.telemetry,
                    &c.counters,
                    &mut c.out,
                ) {
                    FrameStep::Continue => {}
                    FrameStep::Close => c.closing = true,
                    FrameStep::Defer { watermark } => {
                        c.pending_detect = Some((watermark, Instant::now() + DETECT_DEADLINE));
                    }
                }
            }
            Ok(None) => break,
            Err(err) => {
                shared.telemetry.count_malformed();
                write_frame(&mut c.out, &WireFrame::Error { message: err.to_string() })
                    .expect("writing a frame to a Vec cannot fail");
                c.closing = true;
            }
        }
    }
    if applied == budget && c.decoder.buffered() > 0 {
        metrics.budget_exhausted.inc();
        c.hot = true;
    }
    if (c.pending_detect.is_some() || c.eof) && c.decoder.buffered() > 0 {
        // Parked or half-closed with bytes still queued: revisit soon.
        c.hot = true;
    }

    if !flush_out(c) {
        return drop_conn(c, shared);
    }
    if c.closing && c.pending_out() == 0 {
        return drop_conn(c, shared);
    }
    if c.eof && c.pending_out() == 0 && c.pending_detect.is_none() && applied == 0 {
        // Peer gone, replies delivered, and the residual buffer holds no
        // complete frame: nothing left to do.
        return drop_conn(c, shared);
    }
    true
}

fn drop_conn(c: &mut Conn, shared: &Shared) -> bool {
    let _ = flush_out(c);
    // audit: resident gauge is telemetry-only, single counter cell
    shared.resident.fetch_sub(1, Ordering::Relaxed);
    false
}

/// Writes pending reply bytes until the socket would block. Returns
/// `false` on a fatal socket error.
fn flush_out(c: &mut Conn) -> bool {
    while c.out_cursor < c.out.len() {
        match (&c.stream).write(&c.out[c.out_cursor..]) {
            Ok(0) => return false,
            Ok(n) => c.out_cursor += n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return false,
        }
    }
    if c.out_cursor >= c.out.len() {
        c.out.clear();
        c.out_cursor = 0;
    } else if c.out_cursor > 64 * 1024 {
        // Reclaim the written prefix of a long-lived backlog.
        c.out.drain(..c.out_cursor);
        c.out_cursor = 0;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn wait_readable_reports_idle_then_ready() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        listener.set_nonblocking(true).expect("nonblocking");
        let fd = listener.as_raw_fd();
        // Nothing pending: the wait times out false.
        assert!(!wait_readable(fd, Duration::from_millis(10)).expect("poll"));
        // A pending connection flips it true well before the timeout.
        let _client = std::net::TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        assert!(wait_readable(fd, Duration::from_secs(5)).expect("poll"));
    }

    #[test]
    fn poll_handles_many_fds_in_one_call() {
        let listeners: Vec<TcpListener> =
            (0..8).map(|_| TcpListener::bind("127.0.0.1:0").expect("bind")).collect();
        let mut fds: Vec<PollFd> = listeners
            .iter()
            .map(|l| PollFd { fd: l.as_raw_fd(), events: POLLIN, revents: 0 })
            .collect();
        // All idle.
        assert_eq!(poll_fds(&mut fds, 0).expect("poll"), 0);
        // Exactly the listeners with a pending connection turn ready.
        let _a = std::net::TcpStream::connect(listeners[2].local_addr().unwrap()).unwrap();
        let _b = std::net::TcpStream::connect(listeners[5].local_addr().unwrap()).unwrap();
        let ready = poll_fds(&mut fds, 1000).expect("poll");
        assert_eq!(ready, 2);
        assert!(fds[2].revents & POLLIN != 0);
        assert!(fds[5].revents & POLLIN != 0);
    }
}
