//! The multi-producer TCP front end of the sharded runtime.
//!
//! [`SpadeNetServer`] binds a `std::net` listener and bridges decoded
//! [`WireFrame`]s into a shared [`ShardedSpadeService`]. Connections are
//! multiplexed by a fixed pool of readiness-driven event-loop workers
//! (see [`crate::reactor`]) rather than one OS thread per producer, so
//! fan-in scales with sockets, not threads. Three properties make the
//! bridge safe under load:
//!
//! * **Back-pressure crosses the wire.** Ingest goes through
//!   [`ShardedSpadeService::try_submit`]; a full shard queue turns into a
//!   [`WireFrame::Busy`] reply carrying the count of edges that *were*
//!   enqueued, and the producer retries the rest. The event loop never
//!   blocks on the runtime — one back-pressured shard never
//!   head-of-line-blocks the listener or any other connection.
//! * **Acknowledgement is enqueue.** An edge is counted in an Ack/Busy
//!   `accepted` total only after `try_submit` queued it, and every queued
//!   command is drained before shutdown completes — so the sum of
//!   acknowledged edges equals the shards' `updates_applied` total at
//!   shutdown. The back-pressure integration test pins this down.
//! * **Fan-in is fair.** Each readiness cycle grants every connection a
//!   bounded frame budget and buffers replies per connection, so a
//!   firehose producer can neither starve others of Acks nor wedge the
//!   loop on a slow reader (see `ReactorConfig`).
//!
//! A malformed frame (bad opcode, truncated section, oversized length
//! prefix) earns the producer an [`WireFrame::Error`] reply and its
//! connection is closed; the server itself never panics on wire input.

use crate::reactor::{Reactor, ReactorConfig};
use crate::wire::{write_frame, MetricsReply, StatsReply, WireFrame, METRICS_VERSION};
use parking_lot::Mutex;
use spade_core::shard::ShardedSpadeService;
use spade_core::TrySubmit;
use spade_graph::VertexId;
use spade_metrics::MetricsSnapshot;
use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Most per-connection counter sets kept for the metrics exposition.
/// The global totals stay exact forever; labeled `conn="N"` series are a
/// sliding window over the most recent connections so a long-lived
/// server's exposition stays bounded.
const MAX_TRACKED_CONNS: usize = 64;

/// Per-connection transport counters, exposed as labeled series in the
/// metrics exposition (`spade_net_connection_frames{conn="N"}` …).
#[derive(Debug, Default)]
pub(crate) struct ConnCounters {
    pub(crate) frames: AtomicU64,
    pub(crate) bytes: AtomicU64,
    pub(crate) busy_replies: AtomicU64,
}

/// Monotonic transport counters (shared by every event-loop worker).
#[derive(Debug, Default)]
pub(crate) struct NetTelemetry {
    pub(crate) connections: AtomicU64,
    pub(crate) frames: AtomicU64,
    pub(crate) edges_accepted: AtomicU64,
    pub(crate) busy_replies: AtomicU64,
    pub(crate) malformed_frames: AtomicU64,
    /// Live + recently closed connections, keyed by accept order.
    per_conn: Mutex<BTreeMap<u64, Arc<ConnCounters>>>,
    /// Transport-side event trace (Busy bounces, malformed frames) plus
    /// the reactor's per-loop series — merged into the runtime's trace
    /// in the metrics snapshot.
    registry: spade_metrics::MetricsRegistry,
}

impl NetTelemetry {
    /// The transport's own registry (reactor loops resolve their gauge /
    /// counter / histogram handles here).
    pub(crate) fn registry(&self) -> &spade_metrics::MetricsRegistry {
        &self.registry
    }

    /// Counts one decoded frame, globally and per connection.
    pub(crate) fn count_frame(&self, conn: &ConnCounters) {
        // audit: monotone transport counter, telemetry only
        self.frames.fetch_add(1, Ordering::Relaxed);
        conn.frames.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one malformed frame (the connection is about to close).
    pub(crate) fn count_malformed(&self) {
        // audit: monotone transport counter, telemetry only
        self.malformed_frames.fetch_add(1, Ordering::Relaxed);
        self.registry.event(spade_metrics::EventKind::MalformedFrame, 0);
    }
}

/// Registers a freshly accepted connection: bumps the accept total and
/// tracks its counters in the bounded labeled-series window.
pub(crate) fn register_conn(telemetry: &NetTelemetry, conn_id: u64) -> Arc<ConnCounters> {
    // audit: monotone transport counter, telemetry only
    telemetry.connections.fetch_add(1, Ordering::Relaxed);
    let conn = Arc::new(ConnCounters::default());
    let mut per_conn = telemetry.per_conn.lock();
    per_conn.insert(conn_id, Arc::clone(&conn));
    // Oldest connections age out of the labeled series window (the
    // global totals already counted them).
    while per_conn.len() > MAX_TRACKED_CONNS {
        let oldest = *per_conn.keys().next().expect("non-empty map");
        per_conn.remove(&oldest);
    }
    conn
}

/// Renders the transport counters as a [`MetricsSnapshot`] ready to
/// merge with [`ShardedSpadeService::metrics`]: global totals plus one
/// labeled series triple per tracked connection, plus the transport's
/// event trace and the reactor's per-loop series.
fn net_snapshot(telemetry: &NetTelemetry) -> MetricsSnapshot {
    let mut snap = telemetry.registry.snapshot();
    let mut c = |name: &str, v: u64| {
        snap.counters.insert(name.to_string(), v);
    };
    // audit: telemetry counter reads, each cell independently monotone
    c("spade_net_connections_total", telemetry.connections.load(Ordering::Relaxed));
    c("spade_net_frames_total", telemetry.frames.load(Ordering::Relaxed));
    c("spade_net_edges_accepted_total", telemetry.edges_accepted.load(Ordering::Relaxed));
    c("spade_net_busy_replies_total", telemetry.busy_replies.load(Ordering::Relaxed));
    c("spade_net_malformed_frames_total", telemetry.malformed_frames.load(Ordering::Relaxed));
    // audit: telemetry counter reads, each cell independently monotone
    for (id, conn) in telemetry.per_conn.lock().iter() {
        c(
            &format!("spade_net_connection_frames{{conn=\"{id}\"}}"),
            conn.frames.load(Ordering::Relaxed),
        );
        c(
            &format!("spade_net_connection_bytes{{conn=\"{id}\"}}"),
            conn.bytes.load(Ordering::Relaxed),
        );
        c(
            &format!("spade_net_connection_busy{{conn=\"{id}\"}}"),
            conn.busy_replies.load(Ordering::Relaxed),
        );
    }
    snap
}

/// Point-in-time transport statistics of a [`SpadeNetServer`].
#[derive(Clone, Copy, Debug, Default)]
pub struct NetStats {
    /// Connections accepted since the server started.
    pub connections: u64,
    /// Frames decoded across all connections.
    pub frames: u64,
    /// Edges acknowledged — each one was enqueued into a shard queue.
    pub edges_accepted: u64,
    /// Busy replies sent (an edge bounced off a full shard queue).
    pub busy_replies: u64,
    /// Connections dropped over malformed frames.
    pub malformed_frames: u64,
}

/// A running TCP ingest server wrapped around a shared sharded runtime.
///
/// Dropping the handle stops the reactor and joins every event-loop
/// worker (mirroring the worker-join discipline of [`SpadeService`]'s
/// drop); the wrapped service itself is left running — shut it down
/// through its own handle once `Arc::try_unwrap` succeeds.
///
/// [`SpadeService`]: spade_core::service::SpadeService
pub struct SpadeNetServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    telemetry: Arc<NetTelemetry>,
    reactor: Option<Reactor>,
}

impl SpadeNetServer {
    /// Binds `addr` (use port 0 for an OS-assigned port — see
    /// [`local_addr`](Self::local_addr)) and starts accepting producers
    /// into `service` with the default reactor tuning.
    pub fn bind<A: ToSocketAddrs>(
        service: Arc<ShardedSpadeService>,
        addr: A,
    ) -> std::io::Result<SpadeNetServer> {
        Self::bind_with(service, addr, ReactorConfig::default())
    }

    /// Binds `addr` with explicit reactor tuning (`serve --listen
    /// --net-workers N` routes here).
    pub fn bind_with<A: ToSocketAddrs>(
        service: Arc<ShardedSpadeService>,
        addr: A,
        config: ReactorConfig,
    ) -> std::io::Result<SpadeNetServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let telemetry = Arc::new(NetTelemetry::default());
        let reactor =
            Reactor::start(listener, service, Arc::clone(&stop), Arc::clone(&telemetry), config)?;
        Ok(SpadeNetServer { local_addr, stop, telemetry, reactor: Some(reactor) })
    }

    /// The bound address (resolves port 0 to the real port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// `true` once a producer's Shutdown frame (or [`stop`](Self::stop))
    /// has stopped the server. The CLI's `serve --listen` loop polls
    /// this.
    pub fn is_stopped(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }

    /// Asks every event-loop worker to wind down without blocking.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Release);
        if let Some(reactor) = &self.reactor {
            reactor.wake_all();
        }
    }

    /// The transport's own counters as a [`MetricsSnapshot`] — global
    /// totals, per-connection `conn="N"`-labeled series, and the
    /// reactor's per-loop series. Merge with
    /// [`ShardedSpadeService::metrics`] for the full picture (the wire
    /// `Metrics` request does exactly that server-side).
    pub fn metrics(&self) -> MetricsSnapshot {
        net_snapshot(&self.telemetry)
    }

    /// A cloneable provider of the transport's metrics snapshot, for
    /// exporters whose render closure must outlive this handle's borrow
    /// (the CLI's HTTP exporter thread).
    pub fn metrics_provider(&self) -> Arc<dyn Fn() -> MetricsSnapshot + Send + Sync> {
        let telemetry = Arc::clone(&self.telemetry);
        Arc::new(move || net_snapshot(&telemetry))
    }

    /// Current transport counters.
    pub fn stats(&self) -> NetStats {
        let t = &self.telemetry;
        // audit: telemetry counter reads, each cell independently monotone
        NetStats {
            connections: t.connections.load(Ordering::Relaxed),
            frames: t.frames.load(Ordering::Relaxed),
            edges_accepted: t.edges_accepted.load(Ordering::Relaxed),
            busy_replies: t.busy_replies.load(Ordering::Relaxed),
            malformed_frames: t.malformed_frames.load(Ordering::Relaxed),
        }
    }

    /// Stops the server, joins every event-loop worker, and returns the
    /// final transport counters. Edges already acknowledged sit in shard
    /// queues; drain them by shutting the underlying service down
    /// afterwards.
    pub fn shutdown(mut self) -> NetStats {
        self.join();
        self.stats()
    }

    fn join(&mut self) {
        self.stop();
        if let Some(mut reactor) = self.reactor.take() {
            reactor.join();
        }
    }
}

impl Drop for SpadeNetServer {
    fn drop(&mut self) {
        self.join();
    }
}

/// What the event loop must do after applying one frame.
pub(crate) enum FrameStep {
    /// Keep the connection; replies (if any) are in the out buffer.
    Continue,
    /// The reply ends the connection — close once the out buffer drains.
    Close,
    /// A read-your-acks Detect that cannot answer yet: park the
    /// connection until the shards' applied total reaches `watermark`,
    /// then write the detection reply.
    Defer { watermark: u64 },
}

/// Applies one decoded request, appending any reply to `out` (flushed by
/// the event loop, never here — no blocking on the reactor).
pub(crate) fn apply_frame(
    frame: WireFrame,
    service: &ShardedSpadeService,
    stop: &AtomicBool,
    telemetry: &NetTelemetry,
    conn: &ConnCounters,
    out: &mut Vec<u8>,
) -> FrameStep {
    let mut reply = |frame: &WireFrame| {
        write_frame(out, frame).expect("writing a frame to a Vec cannot fail");
    };
    match frame {
        WireFrame::Edge { src, dst, raw } => {
            let (frame, alive) = submit_run(&[(src, dst, raw)], service, telemetry, conn);
            reply(&frame);
            step_if(alive)
        }
        WireFrame::Batch { edges } => {
            let (frame, alive) = submit_grouped(&edges, None, service, telemetry, conn);
            reply(&frame);
            step_if(alive)
        }
        WireFrame::BatchBudget { budget_us, edges } => {
            let budget = (budget_us > 0).then(|| Duration::from_micros(u64::from(budget_us)));
            let (frame, alive) = submit_grouped(&edges, budget, service, telemetry, conn);
            reply(&frame);
            step_if(alive)
        }
        WireFrame::Flush => {
            // The one channel send on the event loop: Flush posts a
            // marker command per shard and returns without waiting for
            // it to apply. The flush channel is the same bounded queue
            // ingest uses, but a producer only sends Flush after its
            // pipeline drained, so the queues have room by construction.
            if service.flush() {
                reply(&WireFrame::Ack { accepted: 0 });
                FrameStep::Continue
            } else {
                reply(&WireFrame::Error { message: "runtime has shut down".into() });
                FrameStep::Close
            }
        }
        WireFrame::Detect => {
            // Read-your-acks: every edge the server acknowledged before
            // this request must be reflected in the answer. If the
            // shards already caught up, answer inline; otherwise park
            // the connection — the event loop re-checks the watermark
            // every cycle instead of blocking here.
            let acked = telemetry.edges_accepted.load(Ordering::Acquire);
            if applied_total(service) >= acked {
                write_detection(service, out);
                FrameStep::Continue
            } else {
                FrameStep::Defer { watermark: acked }
            }
        }
        WireFrame::Stats => {
            let shard_stats = service.stats();
            let t = telemetry;
            // audit: telemetry counter reads, each cell independently monotone
            reply(&WireFrame::StatsReply(StatsReply {
                shards: shard_stats.len() as u64,
                updates_applied: shard_stats.iter().map(|s| s.service.updates_applied).sum(),
                queue_depth: shard_stats.iter().map(|s| s.service.queue_depth as u64).sum(),
                connections: t.connections.load(Ordering::Relaxed),
                frames: t.frames.load(Ordering::Relaxed),
                edges_accepted: t.edges_accepted.load(Ordering::Relaxed),
                busy_replies: t.busy_replies.load(Ordering::Relaxed),
                malformed_frames: t.malformed_frames.load(Ordering::Relaxed),
                uptime_secs: service.uptime().as_secs_f64(),
                shard_queue_depths: shard_stats
                    .iter()
                    .map(|s| s.service.queue_depth as u64)
                    .collect(),
            }));
            FrameStep::Continue
        }
        WireFrame::Metrics => {
            // Runtime registries (every shard, merged) + the transport's
            // own counters, rendered once server-side so every exporter
            // ships the identical exposition.
            let merged = service.metrics().merge(&net_snapshot(telemetry));
            reply(&WireFrame::MetricsReply(MetricsReply {
                version: METRICS_VERSION,
                exposition: merged.render_prometheus(),
            }));
            FrameStep::Continue
        }
        WireFrame::Shutdown => {
            // The coordinator's end-of-stream marker: acknowledge, then
            // stop the whole server (acked edges stay queued — the
            // operator drains them by shutting the service down).
            reply(&WireFrame::Ack { accepted: 0 });
            stop.store(true, Ordering::Release);
            FrameStep::Close
        }
        // Shard-server operations (protocol v3) are not served by the
        // sharded front end — they address one engine, not the fan-in
        // tier. A router must dial `spade shard-serve` for these.
        WireFrame::Region { .. }
        | WireFrame::MigrateOut { .. }
        | WireFrame::Absorb { .. }
        | WireFrame::Replicate { .. }
        | WireFrame::Bootstrap { .. } => {
            // audit: monotone transport counter, telemetry only
            telemetry.malformed_frames.fetch_add(1, Ordering::Relaxed);
            reply(&WireFrame::Error {
                message: "shard operation sent to the sharded front end".into(),
            });
            FrameStep::Close
        }
        // Reply frames arriving at the server are a protocol violation.
        WireFrame::Ack { .. }
        | WireFrame::Busy { .. }
        | WireFrame::Detection(_)
        | WireFrame::StatsReply(_)
        | WireFrame::MetricsReply(_)
        | WireFrame::RegionReply(_)
        | WireFrame::SliceReply(_)
        | WireFrame::AbsorbReply(_)
        | WireFrame::BootstrapChunk(_)
        | WireFrame::Error { .. } => {
            // audit: monotone transport counter, telemetry only
            telemetry.malformed_frames.fetch_add(1, Ordering::Relaxed);
            reply(&WireFrame::Error { message: "reply frame sent to server".into() });
            FrameStep::Close
        }
    }
}

fn step_if(alive: bool) -> FrameStep {
    if alive {
        FrameStep::Continue
    } else {
        FrameStep::Close
    }
}

/// Appends the current merged global detection as a reply frame.
pub(crate) fn write_detection(service: &ShardedSpadeService, out: &mut Vec<u8>) {
    let global = service.current_detection();
    write_frame(
        out,
        &WireFrame::Detection(crate::wire::DetectionReply {
            size: global.best.size as u64,
            density: global.best.density,
            updates_applied: global.total_updates,
            members: global.best.members.to_vec(),
        }),
    )
    .expect("writing a frame to a Vec cannot fail");
}

/// Ingest commands applied across all shards.
pub(crate) fn applied_total(service: &ShardedSpadeService) -> u64 {
    service.stats().iter().map(|s| s.service.updates_applied).sum()
}

/// Enqueues a run of edges until done or a shard queue fills, producing
/// the Ack/Busy/Error reply. Returns `(reply, keep_connection)`.
fn submit_run(
    edges: &[(VertexId, VertexId, f64)],
    service: &ShardedSpadeService,
    telemetry: &NetTelemetry,
    conn: &ConnCounters,
) -> (WireFrame, bool) {
    let mut accepted = 0u64;
    for &(src, dst, raw) in edges {
        // audit: monotone transport counters, telemetry only
        match service.try_submit(src, dst, raw) {
            TrySubmit::Queued => accepted += 1,
            TrySubmit::Full => {
                telemetry.edges_accepted.fetch_add(accepted, Ordering::Relaxed);
                telemetry.busy_replies.fetch_add(1, Ordering::Relaxed);
                conn.busy_replies.fetch_add(1, Ordering::Relaxed);
                telemetry.registry.event(spade_metrics::EventKind::Busy, accepted);
                return (WireFrame::Busy { accepted }, true);
            }
            TrySubmit::Closed => {
                telemetry.edges_accepted.fetch_add(accepted, Ordering::Relaxed);
                return (WireFrame::Error { message: "runtime has shut down".into() }, false);
            }
        }
    }
    // audit: monotone transport counter, telemetry only
    telemetry.edges_accepted.fetch_add(accepted, Ordering::Relaxed);
    (WireFrame::Ack { accepted }, true)
}

/// The batch fast path: hands the whole frame to
/// [`ShardedSpadeService::submit_batch`], which routes every edge once
/// and enqueues one grouped command per destination shard — instead of a
/// route + `try_send` round trip per edge. Admission is still the strict
/// frame-order prefix, so a `Busy` reply's `accepted` count keeps its
/// retry-the-suffix meaning, and the Ack/Busy/Error telemetry is
/// identical to the per-edge path.
fn submit_grouped(
    edges: &[(VertexId, VertexId, f64)],
    budget: Option<Duration>,
    service: &ShardedSpadeService,
    telemetry: &NetTelemetry,
    conn: &ConnCounters,
) -> (WireFrame, bool) {
    // audit: monotone transport counters, telemetry only
    let outcome = service.submit_batch(edges, budget);
    let accepted = outcome.accepted as u64;
    telemetry.edges_accepted.fetch_add(accepted, Ordering::Relaxed);
    if outcome.closed {
        return (WireFrame::Error { message: "runtime has shut down".into() }, false);
    }
    if outcome.accepted < edges.len() {
        telemetry.busy_replies.fetch_add(1, Ordering::Relaxed);
        conn.busy_replies.fetch_add(1, Ordering::Relaxed);
        telemetry.registry.event(spade_metrics::EventKind::Busy, accepted);
        return (WireFrame::Busy { accepted }, true);
    }
    (WireFrame::Ack { accepted }, true)
}
