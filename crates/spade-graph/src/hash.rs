//! Fast hashing for integer keys.
//!
//! The default `std` hasher (SipHash 1-3) is DoS-resistant but slow for the
//! small integer keys that dominate this workload (packed edge keys, vertex
//! ids). This module implements the `fx` multiply-xor hash used by rustc —
//! a public-domain algorithm, reimplemented here so the workspace stays
//! within its approved dependency set. Fraud-detection inputs are internal
//! ids, not attacker-controlled strings, so HashDoS resistance is not
//! required.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Firefox/rustc `fx` hash (64-bit).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The `fx` hasher: a fast, non-cryptographic hasher for integer-like keys.
#[derive(Default, Clone)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline(always)]
    fn add_to_hash(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback: consume 8-byte words, then the tail.
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(tail));
        }
    }

    #[inline(always)]
    fn write_u8(&mut self, v: u8) {
        self.add_to_hash(v as u64);
    }

    #[inline(always)]
    fn write_u16(&mut self, v: u16) {
        self.add_to_hash(v as u64);
    }

    #[inline(always)]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(v as u64);
    }

    #[inline(always)]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline(always)]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }

    #[inline(always)]
    fn finish(&self) -> u64 {
        self.state
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` keyed with the fast `fx` hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed with the fast `fx` hasher.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_u64(v: u64) -> u64 {
        let mut h = FxHasher::default();
        h.write_u64(v);
        h.finish()
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_u64(12345), hash_u64(12345));
    }

    #[test]
    fn distinct_inputs_rarely_collide() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            seen.insert(hash_u64(i));
        }
        // fx is not perfect, but sequential integers must not collapse.
        assert_eq!(seen.len(), 10_000);
    }

    #[test]
    fn byte_stream_matches_tail_handling() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(a.finish(), b.finish());

        let mut c = FxHasher::default();
        c.write(&[1, 2, 3]);
        assert_ne!(a.finish(), c.finish());
    }

    #[test]
    fn works_as_map_hasher() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.get(&500), Some(&1000));
        assert_eq!(m.len(), 1000);
    }
}
