//! Lock-free runtime metrics: counters, gauges, log-scale latency
//! histograms, a mergeable snapshot model, and an event-trace ring.
//!
//! The hot path is allocation-free: recording into a [`Counter`],
//! [`Gauge`] or [`Histogram`] is a handful of atomic bumps on
//! pre-registered handles. Registration (name → handle) and snapshots
//! take a lock, but both happen off the per-edge path — workers resolve
//! their handles once at spawn and only ever touch the atomics after
//! that.
//!
//! Writes use `Release` and reads `Acquire`: a snapshot that observes a
//! counter at `N` also observes every metric write the recording thread
//! made before bumping it to `N`, so cross-metric reconciliation (e.g.
//! an applied-updates counter against a latency histogram's count) can
//! never see the counter lead its companion writes. On x86 both orders
//! compile to the same instructions as `Relaxed`, so the hot path pays
//! nothing for the guarantee.
//!
//! Snapshots are plain owned data ([`MetricsSnapshot`]) that
//! [`merge`](MetricsSnapshot::merge) across shards: counters and gauges
//! add, histograms add bucket-wise, so a sharded runtime can expose one
//! global view without ever stopping a worker. [`HistogramSnapshot`]
//! estimates p50/p90/p99 from fixed log-scale buckets (4 sub-buckets
//! per octave, ≤ 25 % relative bucket width) and caps every quantile at
//! the exact recorded maximum.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Number of histogram buckets: values 0..=7 get exact buckets, then 4
/// sub-buckets per power of two up to `u64::MAX` (index `4·62 + 3`).
pub const NUM_BUCKETS: usize = 252;

/// Capacity of a registry's event-trace ring.
pub const EVENT_RING_CAPACITY: usize = 256;

/// Monotonically increasing event counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        // Release: pairs with the Acquire load in `get` so an observer
        // of the new count also sees prior writes by this thread.
        self.value.fetch_add(n, Ordering::Release);
    }

    /// Overwrites the value — for counters mirrored from an external
    /// monotone source (e.g. a grouper's own flush count).
    #[inline]
    pub fn store(&self, v: u64) {
        // Release: see `add`.
        self.value.store(v, Ordering::Release);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        // Acquire: pairs with the Release writes above.
        self.value.load(Ordering::Acquire)
    }
}

/// Instantaneous level (queue depth, resident edges, …).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Overwrites the level.
    #[inline]
    pub fn set(&self, v: u64) {
        // Release: pairs with the Acquire load in `get` (see module doc).
        self.value.store(v, Ordering::Release);
    }

    /// Current level.
    #[inline]
    pub fn get(&self) -> u64 {
        // Acquire: pairs with the Release store above.
        self.value.load(Ordering::Acquire)
    }
}

/// Maps a value to its fixed log-scale bucket.
///
/// Values 0..=7 get exact buckets; above that each power of two splits
/// into 4 sub-buckets keyed by the two bits after the leading one, so
/// adjacent bucket bounds stay within 25 % of each other.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < 8 {
        v as usize
    } else {
        let exp = 63 - v.leading_zeros() as usize;
        let sub = ((v >> (exp - 2)) & 3) as usize;
        4 * (exp - 1) + sub
    }
}

/// Inclusive upper bound of bucket `idx` (the conservative quantile
/// representative).
fn bucket_upper(idx: usize) -> u64 {
    if idx < 8 {
        idx as u64
    } else {
        let exp = idx / 4 + 1;
        let sub = (idx % 4) as u64;
        let width = 1u64 << (exp - 2);
        (1u64 << exp) + (sub + 1) * width - 1
    }
}

/// Fixed-bucket log-scale histogram with atomic recording.
///
/// [`record`](Histogram::record) is three atomic operations — no
/// allocation, no lock — so it is safe on the per-edge hot path.
/// Units are whatever the caller records (the runtime uses
/// nanoseconds for stage latencies and raw counts for batch sizes).
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[AtomicU64; NUM_BUCKETS]>,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: Box::new(std::array::from_fn(|_| AtomicU64::new(0))),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one observation. Allocation-free: one bucket bump plus
    /// sum/max updates.
    #[inline]
    pub fn record(&self, v: u64) {
        // Release: pairs with the Acquire loads in `count`/`snapshot`.
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Release);
        self.sum.fetch_add(v, Ordering::Release);
        self.max.fetch_max(v, Ordering::Release);
    }

    /// Records a duration in nanoseconds (saturating at `u64::MAX`).
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Observations recorded so far (bucket sum, so it is always
    /// consistent with a concurrently taken snapshot's count).
    pub fn count(&self) -> u64 {
        // Acquire: pairs with the Release bumps in `record`.
        self.buckets.iter().map(|b| b.load(Ordering::Acquire)).sum()
    }

    /// A point-in-time copy of the buckets. Under concurrent recording
    /// the snapshot's `count` is derived from the same bucket loads, so
    /// quantiles are always internally consistent; `sum` and `max` may
    /// trail or lead by in-flight records but never regress.
    pub fn snapshot(&self) -> HistogramSnapshot {
        // Acquire: pairs with the Release bumps in `record`.
        let buckets: Vec<u64> = self.buckets.iter().map(|b| b.load(Ordering::Acquire)).collect();
        let count = buckets.iter().sum();
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Acquire),
            max: self.max.load(Ordering::Acquire),
            buckets,
        }
    }
}

/// Owned, mergeable copy of a [`Histogram`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Observations (sum over buckets).
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Exact maximum recorded value.
    pub max: u64,
    /// Per-bucket observation counts (`NUM_BUCKETS` entries).
    pub buckets: Vec<u64>,
}

impl Default for HistogramSnapshot {
    fn default() -> HistogramSnapshot {
        HistogramSnapshot { count: 0, sum: 0, max: 0, buckets: vec![0; NUM_BUCKETS] }
    }
}

impl HistogramSnapshot {
    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Arithmetic mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimated quantile `q` in `[0, 1]`: the upper bound of the
    /// bucket holding the rank-`⌈q·count⌉` observation, capped at the
    /// exact recorded maximum. Empty snapshots yield 0.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper(idx).min(self.max);
            }
        }
        self.max
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile estimate.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Bucket-wise sum of two snapshots. Commutative and associative,
    /// so shard order never changes the merged view.
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        let buckets: Vec<u64> =
            self.buckets.iter().zip(&other.buckets).map(|(a, b)| a + b).collect();
        HistogramSnapshot {
            count: self.count + other.count,
            sum: self.sum.saturating_add(other.sum),
            max: self.max.max(other.max),
            buckets,
        }
    }
}

/// What happened, for the event-trace ring.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A grouper flush ran (value: edges flushed, when known).
    Flush,
    /// A detection was published (value: publish epoch).
    Publish,
    /// A cross-shard repair pass completed (value: regions exported).
    RepairPass,
    /// A migration move completed (value: edges moved).
    Migration,
    /// Back-pressure: a submit was rejected or a Busy reply was sent
    /// (value: edges accepted before the bounce).
    Busy,
    /// A malformed wire frame was dropped (value: decoder error code,
    /// when known).
    MalformedFrame,
    /// A transaction was applied after its latency budget elapsed
    /// (value: overshoot in microseconds).
    DeadlineMiss,
}

impl EventKind {
    /// Stable lower-case label (used in traces and the CLI).
    pub fn label(&self) -> &'static str {
        match self {
            EventKind::Flush => "flush",
            EventKind::Publish => "publish",
            EventKind::RepairPass => "repair_pass",
            EventKind::Migration => "migration",
            EventKind::Busy => "busy",
            EventKind::MalformedFrame => "malformed_frame",
            EventKind::DeadlineMiss => "deadline_miss",
        }
    }
}

/// One discrete runtime event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Per-registry sequence number (dense, starts at 0).
    pub seq: u64,
    /// Microseconds since the owning registry was created.
    pub at_us: u64,
    /// What happened.
    pub kind: EventKind,
    /// Kind-specific payload (see [`EventKind`]).
    pub value: u64,
}

/// Bounded ring of recent [`TraceEvent`]s. Pushes take a mutex — events
/// are rare (flushes, repairs, back-pressure), never per-edge.
#[derive(Debug)]
struct EventRing {
    inner: Mutex<EventRingInner>,
    capacity: usize,
}

#[derive(Debug, Default)]
struct EventRingInner {
    next_seq: u64,
    buf: std::collections::VecDeque<TraceEvent>,
}

impl EventRing {
    fn new(capacity: usize) -> EventRing {
        EventRing { inner: Mutex::new(EventRingInner::default()), capacity }
    }

    fn push(&self, at_us: u64, kind: EventKind, value: u64) {
        let mut inner = self.inner.lock().expect("event ring poisoned");
        let seq = inner.next_seq;
        inner.next_seq += 1;
        if inner.buf.len() == self.capacity {
            inner.buf.pop_front();
        }
        inner.buf.push_back(TraceEvent { seq, at_us, kind, value });
    }

    fn recent(&self) -> Vec<TraceEvent> {
        let inner = self.inner.lock().expect("event ring poisoned");
        inner.buf.iter().copied().collect()
    }
}

/// Named metrics for one runtime component (a worker, a shard set, a
/// network front end).
///
/// Handles are `Arc`-shared: resolve them once (registration locks a
/// map), then record through the atomics forever after. `snapshot()`
/// walks the maps under the same short locks.
#[derive(Debug)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    events: EventRing,
    started: Instant,
}

impl Default for MetricsRegistry {
    fn default() -> MetricsRegistry {
        MetricsRegistry {
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
            events: EventRing::new(EVENT_RING_CAPACITY),
            started: Instant::now(),
        }
    }
}

impl MetricsRegistry {
    /// An empty registry; its uptime clock starts now.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Returns the counter registered under `name`, creating it on
    /// first use. Call once per handle, not per record.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().expect("counter map poisoned");
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// Returns the gauge registered under `name`, creating it on first
    /// use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().expect("gauge map poisoned");
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// Returns the histogram registered under `name`, creating it on
    /// first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().expect("histogram map poisoned");
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// Appends a discrete event to the trace ring, stamped with the
    /// registry's uptime clock.
    pub fn event(&self, kind: EventKind, value: u64) {
        let at_us = self.started.elapsed().as_micros().min(u64::MAX as u128) as u64;
        self.events.push(at_us, kind, value);
    }

    /// Recent events, oldest first (the ring keeps the last
    /// [`EVENT_RING_CAPACITY`]).
    pub fn recent_events(&self) -> Vec<TraceEvent> {
        self.events.recent()
    }

    /// Time since the registry was created.
    pub fn uptime(&self) -> Duration {
        self.started.elapsed()
    }

    /// A point-in-time copy of every registered metric plus the recent
    /// event trace.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .lock()
            .expect("counter map poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .expect("gauge map poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("histogram map poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
            events: self.events.recent(),
            uptime_secs: self.started.elapsed().as_secs_f64(),
        }
    }
}

/// Owned, mergeable copy of a registry (or of many, merged).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge levels by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Recent trace events (concatenated across merges).
    pub events: Vec<TraceEvent>,
    /// Seconds since the source registry started (max across merges).
    pub uptime_secs: f64,
}

impl MetricsSnapshot {
    /// Combines two snapshots: counters and gauges add (a gauge summed
    /// across shards reads as the global level, e.g. total queue
    /// depth), histograms merge bucket-wise, events concatenate.
    pub fn merge(mut self, other: &MetricsSnapshot) -> MetricsSnapshot {
        for (name, v) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, v) in &other.gauges {
            *self.gauges.entry(name.clone()).or_insert(0) += v;
        }
        for (name, h) in &other.histograms {
            let merged = match self.histograms.get(name) {
                Some(mine) => mine.merge(h),
                None => h.clone(),
            };
            self.histograms.insert(name.clone(), merged);
        }
        self.events.extend_from_slice(&other.events);
        self.uptime_secs = self.uptime_secs.max(other.uptime_secs);
        self
    }

    /// Renders the Prometheus text exposition format (version 0.0.4):
    /// `# TYPE` comments, plain `name value` samples, histograms as
    /// summaries with `quantile` labels plus `_sum`/`_count`/`_max`.
    /// Keys may carry a `{label="v"}` suffix; the `# TYPE` line is
    /// emitted once per base name.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("# TYPE spade_uptime_seconds gauge\n");
        out.push_str(&format!("spade_uptime_seconds {:.3}\n", self.uptime_secs));

        let mut last_base = String::new();
        for (name, v) in &self.counters {
            let base = base_name(name);
            if base != last_base {
                out.push_str(&format!("# TYPE {base} counter\n"));
                last_base = base.to_string();
            }
            out.push_str(&format!("{name} {v}\n"));
        }
        last_base.clear();
        for (name, v) in &self.gauges {
            let base = base_name(name);
            if base != last_base {
                out.push_str(&format!("# TYPE {base} gauge\n"));
                last_base = base.to_string();
            }
            out.push_str(&format!("{name} {v}\n"));
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!("# TYPE {name} summary\n"));
            for (q, label) in [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")] {
                out.push_str(&format!("{name}{{quantile=\"{label}\"}} {}\n", h.quantile(q)));
            }
            out.push_str(&format!("{name}_sum {}\n", h.sum));
            out.push_str(&format!("{name}_count {}\n", h.count));
            out.push_str(&format!("{name}_max {}\n", h.max));
        }
        out
    }
}

/// Metric name with any `{label="v"}` suffix stripped.
fn base_name(name: &str) -> &str {
    match name.find('{') {
        Some(i) => &name[..i],
        None => name,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_in_range() {
        let mut last = 0usize;
        for exp in 0..64u32 {
            let mid = (1u64 << exp) | (1u64 << exp.saturating_sub(1));
            for &v in &[1u64 << exp, (1u64 << exp) + 1, mid] {
                let idx = bucket_index(v);
                assert!(idx < NUM_BUCKETS, "v={v} idx={idx}");
                assert!(idx >= last || v < 8, "bucket index regressed at v={v}");
                last = last.max(idx);
            }
        }
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(7), 7);
        assert!(bucket_index(u64::MAX) < NUM_BUCKETS);
    }

    #[test]
    fn bucket_upper_bounds_contain_their_values() {
        for v in [0u64, 1, 7, 8, 9, 100, 1_000, 123_456, u64::MAX / 2] {
            let idx = bucket_index(v);
            assert!(bucket_upper(idx) >= v, "upper bound of bucket {idx} excludes {v}");
            if idx > 0 {
                assert!(bucket_upper(idx - 1) < v, "v={v} should not fit bucket {}", idx - 1);
            }
        }
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let h = Histogram::new();
        let s = h.snapshot();
        assert!(s.is_empty());
        assert_eq!(s.p50(), 0);
        assert_eq!(s.p99(), 0);
        assert_eq!(s.max, 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn single_sample_quantiles_are_exact() {
        let h = Histogram::new();
        h.record(42);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.p50(), 42);
        assert_eq!(s.p90(), 42);
        assert_eq!(s.p99(), 42);
        assert_eq!(s.max, 42);
    }

    #[test]
    fn all_equal_samples_collapse_to_the_value() {
        let h = Histogram::new();
        for _ in 0..1000 {
            h.record(777);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        // Quantiles are capped at the exact max, so an all-equal
        // distribution reports the value itself at every quantile.
        assert_eq!(s.p50(), 777);
        assert_eq!(s.p99(), 777);
        assert_eq!(s.quantile(1.0), 777);
    }

    #[test]
    fn quantiles_bound_the_distribution() {
        let h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        let p50 = s.p50();
        let p99 = s.p99();
        assert!((5_000..=6_250).contains(&p50), "p50={p50}");
        assert!((9_900..=10_000).contains(&p99), "p99={p99}");
        assert!(s.p90() <= p99);
        assert!(p99 <= s.max);
    }

    #[test]
    fn merge_is_commutative_and_associative() {
        let (ha, hb, hc) = (Histogram::new(), Histogram::new(), Histogram::new());
        for v in 1..500u64 {
            ha.record(v);
            hb.record(v * 17);
            hc.record(v * 1000);
        }
        let (a, b, c) = (ha.snapshot(), hb.snapshot(), hc.snapshot());
        assert_eq!(a.merge(&b), b.merge(&a));
        assert_eq!(a.merge(&b).merge(&c), a.merge(&b.merge(&c)));
        let m = a.merge(&b);
        assert_eq!(m.count, a.count + b.count);
        assert_eq!(m.max, a.max.max(b.max));
    }

    #[test]
    fn snapshot_is_stable_under_concurrent_recording() {
        let h = Arc::new(Histogram::new());
        let stop = Arc::new(AtomicU64::new(0));
        let writers: Vec<_> = (0..4)
            .map(|t| {
                let h = Arc::clone(&h);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut v = 1u64 + t;
                    while stop.load(Ordering::Relaxed) == 0 {
                        h.record(v % 100_000 + 1);
                        v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
                    }
                })
            })
            .collect();
        let mut last_count = 0u64;
        for _ in 0..200 {
            let s = h.snapshot();
            // Internally consistent: count derives from the same bucket
            // loads, so quantiles are always defined and ordered.
            assert_eq!(s.count, s.buckets.iter().sum::<u64>());
            assert!(s.p50() <= s.p99());
            assert!(s.count >= last_count, "count regressed");
            last_count = s.count;
        }
        stop.store(1, Ordering::Relaxed);
        for w in writers {
            w.join().unwrap();
        }
        let s = h.snapshot();
        assert!(s.count > 0);
        assert!(s.p99() <= s.max);
    }

    #[test]
    fn registry_returns_shared_handles() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("spade_test_total");
        let b = reg.counter("spade_test_total");
        a.add(3);
        b.inc();
        assert_eq!(reg.counter("spade_test_total").get(), 4);
        let g = reg.gauge("spade_depth");
        g.set(17);
        assert_eq!(reg.gauge("spade_depth").get(), 17);
        reg.histogram("spade_lat_ns").record(9);
        assert_eq!(reg.snapshot().histograms["spade_lat_ns"].count, 1);
    }

    #[test]
    fn snapshot_merge_sums_counters_and_gauges() {
        let (ra, rb) = (MetricsRegistry::new(), MetricsRegistry::new());
        ra.counter("c").add(5);
        rb.counter("c").add(7);
        rb.counter("only_b").inc();
        ra.gauge("depth").set(3);
        rb.gauge("depth").set(4);
        ra.histogram("h").record(10);
        rb.histogram("h").record(1_000);
        let merged = ra.snapshot().merge(&rb.snapshot());
        assert_eq!(merged.counters["c"], 12);
        assert_eq!(merged.counters["only_b"], 1);
        assert_eq!(merged.gauges["depth"], 7);
        assert_eq!(merged.histograms["h"].count, 2);
        assert_eq!(merged.histograms["h"].max, 1_000);
    }

    #[test]
    fn event_ring_keeps_the_tail_and_dense_seqs() {
        let reg = MetricsRegistry::new();
        for i in 0..(EVENT_RING_CAPACITY as u64 + 10) {
            reg.event(EventKind::Flush, i);
        }
        let events = reg.recent_events();
        assert_eq!(events.len(), EVENT_RING_CAPACITY);
        assert_eq!(events.first().unwrap().seq, 10);
        assert_eq!(events.last().unwrap().seq, EVENT_RING_CAPACITY as u64 + 9);
        for w in events.windows(2) {
            assert_eq!(w[1].seq, w[0].seq + 1);
            assert!(w[1].at_us >= w[0].at_us);
        }
    }

    #[test]
    fn prometheus_rendering_is_well_formed() {
        let reg = MetricsRegistry::new();
        reg.counter("spade_updates_total").add(12);
        reg.counter("spade_net_frames{conn=\"0\"}").add(3);
        reg.counter("spade_net_frames{conn=\"1\"}").add(4);
        reg.gauge("spade_queue_depth").set(2);
        let h = reg.histogram("spade_stage_publish_ns");
        h.record(1_500);
        h.record(2_500);
        let text = reg.snapshot().render_prometheus();
        assert!(text.contains("spade_uptime_seconds"));
        assert!(text.contains("# TYPE spade_updates_total counter\n"));
        assert!(text.contains("spade_updates_total 12\n"));
        // Labeled series share one TYPE line for the base name.
        assert_eq!(text.matches("# TYPE spade_net_frames counter").count(), 1);
        assert!(text.contains("spade_net_frames{conn=\"0\"} 3\n"));
        assert!(text.contains("spade_stage_publish_ns{quantile=\"0.5\"}"));
        assert!(text.contains("spade_stage_publish_ns_count 2\n"));
        assert!(text.contains("spade_stage_publish_ns_sum 4000\n"));
        // Every non-comment line is `name[{labels}] value`.
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let (name, value) = line.rsplit_once(' ').expect("sample line has a value");
            assert!(!name.is_empty());
            assert!(value.parse::<f64>().is_ok(), "unparseable value in {line:?}");
        }
    }
}
