//! Criterion: design-choice ablations called out in DESIGN.md —
//!
//! * single-edge fast path vs a batch of size 1 (shared window runner);
//! * edge-grouping urgency test with and without pending accounting;
//! * CSR snapshot vs dynamic adjacency for the static baseline.

#![allow(missing_docs)] // criterion macros generate undocumented items

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spade_bench::replay::{bootstrap_engine, MetricKind};
use spade_bench::table3_datasets;
use spade_core::order::MinQueue;
use spade_core::{peel_with_queue, EdgeGrouper, GroupingConfig};
use spade_graph::CsrGraph;

fn bench_single_vs_batch1(c: &mut Criterion) {
    let mut group = c.benchmark_group("single_vs_batch1");
    let data = table3_datasets().into_iter().find(|d| d.name == "Epinion").unwrap();
    let kind = MetricKind::Dw;
    group.bench_function("insert_edge", |b| {
        let mut engine = bootstrap_engine(kind, &data.initial);
        let mut cursor = 0usize;
        b.iter(|| {
            if cursor >= data.increments.len() {
                engine = bootstrap_engine(kind, &data.initial);
                cursor = 0;
            }
            let e = &data.increments[cursor];
            cursor += 1;
            std::hint::black_box(engine.insert_edge(e.src, e.dst, e.raw).unwrap());
        });
    });
    group.bench_function("insert_batch_of_1", |b| {
        let mut engine = bootstrap_engine(kind, &data.initial);
        let mut cursor = 0usize;
        b.iter(|| {
            if cursor >= data.increments.len() {
                engine = bootstrap_engine(kind, &data.initial);
                cursor = 0;
            }
            let e = &data.increments[cursor];
            cursor += 1;
            std::hint::black_box(engine.insert_batch(&[(e.src, e.dst, e.raw)]).unwrap());
        });
    });
    group.finish();
}

fn bench_grouping_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("grouping");
    let data = table3_datasets().into_iter().find(|d| d.name == "Grab1").unwrap();
    let kind = MetricKind::Fd;
    for (label, pending) in [("pending_on", true), ("pending_off", false)] {
        group.bench_function(BenchmarkId::new("submit", label), |b| {
            let mut engine = bootstrap_engine(kind, &data.initial);
            let mut grouper =
                EdgeGrouper::new(GroupingConfig { max_buffer: 0, include_pending: pending });
            let mut cursor = 0usize;
            b.iter(|| {
                if cursor >= data.increments.len() {
                    cursor = 0;
                }
                let e = &data.increments[cursor];
                cursor += 1;
                std::hint::black_box(grouper.submit(&mut engine, e.src, e.dst, e.raw).unwrap());
            });
        });
    }
    group.finish();
}

fn bench_csr_vs_dynamic_peel(c: &mut Criterion) {
    let mut group = c.benchmark_group("static_peel_layout");
    group.sample_size(10);
    let data = table3_datasets().into_iter().find(|d| d.name == "Wiki-Vote").unwrap();
    let engine = bootstrap_engine(MetricKind::Dg, &data.stream.edges);
    let csr = CsrGraph::from_graph(engine.graph());
    let mut queue = MinQueue::new();
    group.bench_function("csr", |b| {
        b.iter(|| std::hint::black_box(peel_with_queue(&csr, &mut queue)));
    });
    group.bench_function("dynamic", |b| {
        b.iter(|| std::hint::black_box(peel_with_queue(engine.graph(), &mut queue)));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_single_vs_batch1,
    bench_grouping_overhead,
    bench_csr_vs_dynamic_peel
);
criterion_main!(benches);
