// Self-test fixture: an `Ordering::Relaxed` with no `// audit:`
// annotation anywhere in its paragraph must be flagged as unallowable.
// This file is never compiled — spade-lint reads it as text.

use std::sync::atomic::{AtomicU64, Ordering};

pub fn bump(counter: &AtomicU64) {
    counter.fetch_add(1, Ordering::Relaxed);
}
