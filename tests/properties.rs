//! Property-based tests over the full stack: arbitrary update scripts must
//! keep the incremental engine bit-equivalent to a from-scratch peel, the
//! detection indexes must agree, and snapshots must round-trip — the
//! paper's correctness claims (§4.1/§4.2/Appendix A/D) as executable
//! properties.

use proptest::prelude::*;
use spade::core::{
    load_engine, peel, save_engine, DetectionBackend, GroupingConfig, IngestConfig, KineticIndex,
    SpadeConfig, SpadeEngine, SpadeService, TimeWindowDetector, WeightedDensity, WindowRecord,
};
use spade::graph::VertexId;
use spade::shard::{PartitionStrategy, ShardedConfig, ShardedSpadeService};

fn v(i: u32) -> VertexId {
    VertexId(i)
}

/// One step of an arbitrary update script against a small vertex universe.
#[derive(Clone, Debug)]
enum Op {
    Insert(u32, u32, u8),
    InsertBatch(Vec<(u32, u32, u8)>),
    Delete(u32, u32),
    SetVertexSusp(u32, u8),
}

fn op_strategy(n: u32) -> impl Strategy<Value = Op> {
    let edge = (0..n, 0..n, 1u8..6);
    prop_oneof![
        5 => edge.clone().prop_map(|(a, b, w)| Op::Insert(a, b, w)),
        2 => proptest::collection::vec(edge, 1..8).prop_map(Op::InsertBatch),
        2 => (0..n, 0..n).prop_map(|(a, b)| Op::Delete(a, b)),
        1 => (0..n, 0u8..4).prop_map(|(a, w)| Op::SetVertexSusp(a, w)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The flagship invariant: after ANY script of insertions (single and
    /// batched), deletions, and vertex-suspiciousness updates, the
    /// incrementally maintained peeling sequence equals a from-scratch
    /// greedy peel of the final graph, and the detection matches.
    #[test]
    fn engine_stays_equivalent_to_static_peel(
        ops in proptest::collection::vec(op_strategy(10), 1..40)
    ) {
        let mut engine = SpadeEngine::new(WeightedDensity);
        for op in ops {
            match op {
                Op::Insert(a, b, w) => {
                    if a != b {
                        engine.insert_edge(v(a), v(b), w as f64).unwrap();
                    }
                }
                Op::InsertBatch(edges) => {
                    let batch: Vec<_> = edges
                        .into_iter()
                        .filter(|(a, b, _)| a != b)
                        .map(|(a, b, w)| (v(a), v(b), w as f64))
                        .collect();
                    if !batch.is_empty() {
                        engine.insert_batch(&batch).unwrap();
                    }
                }
                Op::Delete(a, b) => {
                    if engine.graph().contains_vertex(v(a))
                        && engine.graph().contains_vertex(v(b))
                        && engine.graph().contains_edge(v(a), v(b))
                    {
                        engine.delete_edge(v(a), v(b)).unwrap();
                    }
                }
                Op::SetVertexSusp(a, w) => {
                    engine.set_vertex_suspiciousness(v(a), w as f64).unwrap();
                }
            }
        }
        if engine.graph().num_vertices() == 0 {
            return Ok(());
        }
        let fresh = peel(engine.graph());
        prop_assert_eq!(engine.state().logical_order(), fresh.order);
        let det = engine.detect();
        prop_assert!((det.density - fresh.best_density).abs() < 1e-9);
        engine.state().validate_greedy(engine.graph(), 1e-9);
        engine.graph().check_invariants().unwrap();
    }

    /// Kinetic detection equals the O(n) scan under arbitrary scripts.
    #[test]
    fn kinetic_backend_equals_scan_backend(
        ops in proptest::collection::vec(op_strategy(8), 1..30)
    ) {
        let mut kinetic = SpadeEngine::with_config(
            WeightedDensity,
            SpadeConfig { detection: DetectionBackend::Kinetic },
        );
        let mut scan = SpadeEngine::with_config(
            WeightedDensity,
            SpadeConfig { detection: DetectionBackend::EagerScan },
        );
        for op in ops {
            let (a, b, w) = match op {
                Op::Insert(a, b, w) => (a, b, w),
                Op::InsertBatch(edges) if !edges.is_empty() => edges[0],
                _ => continue,
            };
            if a == b {
                continue;
            }
            let d1 = kinetic.insert_edge(v(a), v(b), w as f64).unwrap();
            let d2 = scan.insert_edge(v(a), v(b), w as f64).unwrap();
            prop_assert_eq!(d1.size, d2.size);
            prop_assert!((d1.density - d2.density).abs() < 1e-9);
        }
    }

    /// The kinetic index agrees with a direct prefix-sum oracle under
    /// arbitrary append/rewrite scripts (shrinking finds tiny
    /// counterexamples if the certificates are ever wrong).
    #[test]
    fn kinetic_index_matches_prefix_sum_oracle(
        init in proptest::collection::vec(0u8..20, 1..30),
        scripts in proptest::collection::vec(
            (0usize..30, proptest::collection::vec(0u8..20, 1..5)), 0..20
        )
    ) {
        let mut deltas: Vec<f64> = init.iter().map(|&d| d as f64).collect();
        let mut idx = KineticIndex::from_deltas(&deltas);
        for (lo, vals) in scripts {
            let lo = lo % deltas.len();
            let len = vals.len().min(deltas.len() - lo);
            if len == 0 {
                continue;
            }
            let vals: Vec<f64> = vals[..len].iter().map(|&d| d as f64).collect();
            idx.rewrite_deltas(lo, &vals);
            deltas[lo..lo + len].copy_from_slice(&vals);

            // Oracle: max over prefix sums / size, positive densities
            // only, ties -> larger (the detection-layer convention).
            let mut best = (0usize, 0.0f64);
            let mut sum = 0.0;
            for (i, &d) in deltas.iter().enumerate() {
                sum += d;
                let g = sum / (i + 1) as f64;
                if g > 0.0 && g >= best.1 {
                    best = (i + 1, g);
                }
            }
            let got = idx.best();
            prop_assert!((got.density - best.1).abs() < 1e-9,
                "density {} vs oracle {}", got.density, best.1);
            prop_assert_eq!(got.size, best.0);
        }
    }

    /// The drained/coalesced service path is bit-identical to per-edge
    /// insertion on a solo engine: for random interleavings (including
    /// malformed self-loops the worker must reject and keep serving),
    /// the worker's batch runs (§4.2) yield the same peeling sequence
    /// and the same final detection — the coalescing optimization is
    /// observationally pure, now exercised through the service layer.
    /// With `deadline: None` this is also the no-budget half of the
    /// scheduler property: a budget-free config never takes the
    /// spring-push wait, so the SLO scheduler IS plain drain-coalescing.
    #[test]
    fn coalesced_service_equals_per_edge_solo_engine(
        edges in proptest::collection::vec((0u32..12, 0u32..12, 1u8..7), 1..60),
        coalesce in 1usize..40,
        grouped in (0u8..2).prop_map(|x| x == 1),
    ) {
        let grouping = grouped.then(GroupingConfig::default);
        let service = SpadeService::spawn_with(
            SpadeEngine::new(WeightedDensity),
            grouping,
            IngestConfig { queue_capacity: 128, coalesce, deadline: None },
            "prop-coalesce".into(),
        );
        let mut submitted = 0u64;
        for &(a, b, w) in &edges {
            prop_assert!(service.submit(v(a), v(b), w as f64));
            submitted += 1;
        }
        let (det, engine) = service.shutdown_into_engine::<WeightedDensity>();
        let mut coalesced = engine.expect("worker hands the engine back");
        prop_assert_eq!(det.updates_applied, submitted);

        let mut solo = SpadeEngine::new(WeightedDensity);
        for &(a, b, w) in &edges {
            // The worker drops malformed transactions (self-loops here)
            // and keeps serving; mirror that per edge.
            let _ = solo.insert_edge(v(a), v(b), w as f64);
        }
        prop_assert_eq!(coalesced.state().logical_order(), solo.state().logical_order());
        let (got, want) = (coalesced.detect(), solo.detect());
        prop_assert_eq!(got.size, want.size);
        prop_assert_eq!(got.density.to_bits(), want.density.to_bits());
        prop_assert_eq!(det.size, want.size);
        // The published members are exactly the solo community.
        let published: Vec<VertexId> = det.members.to_vec();
        prop_assert_eq!(&published[..], solo.community(want));
    }

    /// Scheduler exactness under budgets: turning the spring-push
    /// scheduler ON (every transaction carries a budget) changes only
    /// WHEN batches apply, never WHAT they compute — the final peeling
    /// sequence and detection stay bit-identical to per-edge solo
    /// insertion, and under feasible offered load no admitted
    /// transaction's queue-wait sample exceeds its budget plus one
    /// batch-peel p99 (plus scheduler wakeup slop).
    #[test]
    fn budgeted_scheduler_is_exact_and_respects_budgets(
        edges in proptest::collection::vec((0u32..12, 0u32..12, 1u8..7), 1..50),
        coalesce in 1usize..40,
        budget_ms in 40u64..120,
        flush_early in (0u8..2).prop_map(|x| x == 1),
    ) {
        use std::time::{Duration, Instant};
        let budget = Duration::from_millis(budget_ms);
        let service = SpadeService::spawn_with(
            SpadeEngine::new(WeightedDensity),
            None,
            IngestConfig { queue_capacity: 128, coalesce, deadline: Some(budget) },
            "prop-budget".into(),
        );
        let mut submitted = 0u64;
        for &(a, b, w) in &edges {
            prop_assert!(service.submit(v(a), v(b), w as f64));
            submitted += 1;
        }
        if flush_early {
            // A flush wakes the spring wait immediately; otherwise the
            // final partial batch is held until its budget boundary.
            prop_assert!(service.flush());
        }
        let deadline = Instant::now() + budget + Duration::from_secs(10);
        while service.stats().updates_applied < submitted {
            prop_assert!(Instant::now() < deadline, "scheduler stalled past every budget");
            std::thread::sleep(Duration::from_millis(1));
        }
        let snap = service.metrics();
        let wait = &snap.histograms["spade_stage_queue_wait_ns"];
        prop_assert_eq!(wait.count, submitted);
        let peel_p99 = Duration::from_nanos(snap.histograms["spade_stage_reorder_ns"].p99());
        let bound = budget + peel_p99 + Duration::from_millis(250);
        prop_assert!(
            wait.max <= bound.as_nanos() as u64,
            "queue wait {}ns exceeds budget {}ms + peel p99 {}ns + slop",
            wait.max, budget_ms, peel_p99.as_nanos()
        );
        if flush_early {
            // With the wait cut short, nothing comes near its budget.
            prop_assert_eq!(snap.counters["spade_deadline_miss_total"], 0);
        }

        let (det, engine) = service.shutdown_into_engine::<WeightedDensity>();
        let mut budgeted = engine.expect("worker hands the engine back");
        prop_assert_eq!(det.updates_applied, submitted);
        let mut solo = SpadeEngine::new(WeightedDensity);
        for &(a, b, w) in &edges {
            let _ = solo.insert_edge(v(a), v(b), w as f64);
        }
        prop_assert_eq!(budgeted.state().logical_order(), solo.state().logical_order());
        let (got, want) = (budgeted.detect(), solo.detect());
        prop_assert_eq!(got.size, want.size);
        prop_assert_eq!(got.density.to_bits(), want.density.to_bits());
    }

    /// Snapshot round-trips preserve the engine state exactly.
    #[test]
    fn snapshot_roundtrip(
        edges in proptest::collection::vec((0u32..8, 0u32..8, 1u8..6), 1..25)
    ) {
        let mut engine = SpadeEngine::new(WeightedDensity);
        for (a, b, w) in edges {
            if a != b {
                engine.insert_edge(v(a), v(b), w as f64).unwrap();
            }
        }
        let mut buf = Vec::new();
        save_engine(&engine, &mut buf).unwrap();
        let mut restored =
            load_engine(WeightedDensity, SpadeConfig::default(), buf.as_slice()).unwrap();
        prop_assert_eq!(restored.state().logical_order(), engine.state().logical_order());
        let (d1, d2) = (restored.detect(), engine.cached_detection());
        prop_assert_eq!(d1.size, d2.size);
        prop_assert!((d1.density - d2.density).abs() < 1e-9);
    }

    /// Cross-shard repair recovers single-engine exactness under hash
    /// routing: for any generated background traffic, any planted
    /// dominant ring (whose ids hash across shards and split it), and
    /// any shard count, the repaired detection (a) is never less dense
    /// than the best per-shard view — the provable floor — and (b)
    /// equals the solo engine's detection exactly, members and density.
    #[test]
    fn repaired_detection_matches_solo_engine(
        background in proptest::collection::vec((0u32..40, 0u32..40, 1u8..10), 0..40),
        links in proptest::collection::vec((0u32..40, 0u32..6), 0..4),
        base in 100u32..160,
        stride in 1u32..40,
        ring in 3usize..6,
        shards in 2usize..5,
    ) {
        // Planted ring: every ordered pair at weight 50 — dominant over
        // the background (≤ 40 edges of ≤ 1.0 plus ≤ 4 weak links), so
        // every shard's slice of the ring is locally densest and the
        // solo detection is exactly the ring.
        let ring_ids: Vec<u32> = (0..ring as u32).map(|i| base + i * stride).collect();
        let mut edges: Vec<(VertexId, VertexId, f64)> = Vec::new();
        for &(a, b, w) in &background {
            if a != b {
                edges.push((v(a), v(b), w as f64 / 10.0));
            }
        }
        for &(bg, r) in &links {
            edges.push((v(bg), v(ring_ids[r as usize % ring_ids.len()]), 0.1));
        }
        for &a in &ring_ids {
            for &b in &ring_ids {
                if a != b {
                    edges.push((v(a), v(b), 50.0));
                }
            }
        }

        let mut solo = SpadeEngine::new(WeightedDensity);
        for &(a, b, w) in &edges {
            solo.insert_edge(a, b, w).unwrap();
        }
        let want = solo.detect();
        let mut want_members: Vec<u32> = solo.community(want).iter().map(|m| m.0).collect();
        want_members.sort_unstable();

        let service = ShardedSpadeService::spawn(
            WeightedDensity,
            ShardedConfig {
                shards,
                strategy: PartitionStrategy::HashBySource,
                ..Default::default()
            },
        );
        for &(a, b, w) in &edges {
            prop_assert!(service.submit(a, b, w));
        }
        let repaired = service.repair();
        let global = service.shutdown();

        // (a) the provable floor: repaired ≥ every per-shard view.
        prop_assert!(repaired.detection.density >= repaired.baseline_density - 1e-9);
        prop_assert!(repaired.detection.density >= global.best.density - 1e-9);
        // (b) exactness: the repaired community is the solo community.
        let got: Vec<u32> = repaired.detection.members.iter().map(|m| m.0).collect();
        prop_assert_eq!(got, want_members);
        prop_assert!(
            (repaired.detection.density - want.density).abs() < 1e-9,
            "repaired {} vs solo {}",
            repaired.detection.density,
            want.density
        );
    }

    /// Arbitrary time-window moves match a fresh bootstrap of the window.
    #[test]
    fn time_windows_match_fresh_bootstrap(
        recs in proptest::collection::vec((0u32..6, 0u32..6, 1u8..5, 0u64..40), 1..30),
        moves in proptest::collection::vec((0u64..45, 0u64..45), 1..8)
    ) {
        let records: Vec<WindowRecord> = recs
            .into_iter()
            .filter(|(a, b, _, _)| a != b)
            .map(|(a, b, w, ts)| WindowRecord { src: v(a), dst: v(b), c: w as f64, ts })
            .collect();
        if records.is_empty() {
            return Ok(());
        }
        let mut detector = TimeWindowDetector::new(records.clone());
        let mut sorted = records;
        sorted.sort_by_key(|r| r.ts);
        for (a, b) in moves {
            let (ts, te) = (a.min(b), a.max(b));
            let (det, _) = detector.detect_window(ts, te).unwrap();
            let fresh = SpadeEngine::bootstrap(
                WeightedDensity,
                SpadeConfig::default(),
                sorted
                    .iter()
                    .filter(|r| r.ts >= ts && r.ts < te)
                    .map(|r| (r.src, r.dst, r.c)),
            )
            .unwrap();
            let want = peel(fresh.graph());
            let want_density = if want.order.is_empty() { 0.0 } else { want.best_density };
            prop_assert!(
                (det.density - want_density).abs() < 1e-9,
                "window [{}, {}): {} vs {}",
                ts,
                te,
                det.density,
                want_density
            );
        }
    }
}
