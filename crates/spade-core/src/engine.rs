//! The Spade engine: evolving graph + peeling state + density metric +
//! detection index, glued by the incremental reordering passes.
//!
//! This is the layer the paper's architecture diagram (Fig. 4) calls the
//! "Spade engine": it owns the transaction graph, keeps the peeling
//! sequence and weights up to date on every update (auto-
//! incrementalization), and answers `Detect` in O(1)/O(log n) through a
//! pluggable detection backend. The thin, paper-faithful `Spade` facade
//! (`crate::spade`) and the edge-grouping layer (`crate::grouping`) sit on
//! top.

use crate::kinetic::KineticIndex;
use crate::metric::DensityMetric;
use crate::peel::peel;
use crate::reorder::{reorder, ReorderScratch, ReorderStats};
use crate::state::{Detection, PeelingState};
use spade_graph::hash::FxHashMap;
use spade_graph::{DynamicGraph, EdgeRef, GraphError, VertexId};

/// How the densest-suffix detection is maintained.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum DetectionBackend {
    /// Kinetic tournament — exact, amortized polylog per update, O(1)
    /// queries. The default.
    #[default]
    Kinetic,
    /// Exact O(n) rescan after every update batch. Simple; used as the
    /// oracle in tests and ablation benches.
    EagerScan,
    /// No maintenance; [`SpadeEngine::detect`] rescans on demand and
    /// updates run fastest. Urgency thresholds read the cached (stale)
    /// detection.
    Lazy,
}

/// Engine configuration.
#[derive(Clone, Copy, Debug, Default)]
pub struct SpadeConfig {
    /// Detection maintenance strategy.
    pub detection: DetectionBackend,
}

/// The auto-incrementalized peeling engine.
///
/// Generic over the density metric `M`, so the metric's suspiciousness
/// functions inline into the hot paths.
#[derive(Debug)]
pub struct SpadeEngine<M: DensityMetric> {
    graph: DynamicGraph,
    state: PeelingState,
    metric: M,
    config: SpadeConfig,
    kinetic: Option<KineticIndex>,
    detection: Detection,
    detection_dirty: bool,
    scratch: ReorderScratch,
    blacks_buf: Vec<VertexId>,
    /// Reusable batch scratch: edges that actually landed in the graph
    /// during the current batch insertion.
    inserted_buf: Vec<(VertexId, VertexId)>,
    /// Reusable batch scratch: within-batch duplicate-pair coalescing.
    coalesce_buf: Vec<(VertexId, VertexId, f64)>,
    /// Reusable batch scratch: packed pair → `coalesce_buf` slot.
    pair_index: FxHashMap<u64, usize>,
    last_stats: ReorderStats,
    total_stats: ReorderStats,
}

impl<M: DensityMetric> SpadeEngine<M> {
    /// Creates an empty engine with the default configuration.
    pub fn new(metric: M) -> Self {
        Self::with_config(metric, SpadeConfig::default())
    }

    /// Creates an empty engine.
    pub fn with_config(metric: M, config: SpadeConfig) -> Self {
        SpadeEngine {
            graph: DynamicGraph::new(),
            state: PeelingState::new(),
            metric,
            config,
            kinetic: match config.detection {
                DetectionBackend::Kinetic => Some(KineticIndex::new()),
                _ => None,
            },
            detection: Detection::EMPTY,
            detection_dirty: false,
            scratch: ReorderScratch::new(),
            blacks_buf: Vec::new(),
            inserted_buf: Vec::new(),
            coalesce_buf: Vec::new(),
            pair_index: FxHashMap::default(),
            last_stats: ReorderStats::default(),
            total_stats: ReorderStats::default(),
        }
    }

    /// Bootstraps an engine from an initial transaction log by building
    /// the graph edge-by-edge (streaming suspiciousness semantics) and
    /// then running **one** static peel — the `LoadGraph` path of
    /// Listing 1.
    pub fn bootstrap(
        metric: M,
        config: SpadeConfig,
        edges: impl IntoIterator<Item = (VertexId, VertexId, f64)>,
    ) -> Result<Self, GraphError> {
        let mut engine = Self::with_config(metric, config);
        let mut graph = DynamicGraph::new();
        for (src, dst, raw) in edges {
            for v in [src, dst] {
                let created = graph.ensure_vertex(v);
                if created > 0 {
                    let start = graph.num_vertices() - created;
                    for i in start..graph.num_vertices() {
                        let u = VertexId::from_index(i);
                        let a = engine.metric.vertex_susp(u, &graph);
                        graph.set_vertex_weight(u, a)?;
                    }
                }
            }
            let c = engine.metric.edge_susp(src, dst, raw, &graph);
            validate_susp(src, dst, c)?;
            if c > 0.0 {
                graph.insert_edge(src, dst, c)?;
            }
        }
        engine.install_graph(graph);
        Ok(engine)
    }

    /// Builds an engine around a graph whose weights are **already** the
    /// final suspiciousness values (no metric evaluation happens).
    pub fn from_weighted_graph(graph: DynamicGraph, metric: M, config: SpadeConfig) -> Self {
        let mut engine = Self::with_config(metric, config);
        engine.install_graph(graph);
        engine
    }

    /// Rehydrates an engine from a previously captured graph + peeling
    /// state (the snapshot path of [`crate::persist`]) **without** running
    /// a static peel. The caller asserts that `state` is a valid greedy
    /// peel of `graph`; `PeelingState::validate_greedy` checks it in tests.
    pub fn from_parts(
        graph: DynamicGraph,
        state: PeelingState,
        metric: M,
        config: SpadeConfig,
    ) -> Self {
        debug_assert_eq!(state.len(), graph.num_vertices());
        let mut engine = Self::with_config(metric, config);
        if let Some(k) = engine.kinetic.as_mut() {
            k.reset(state.delta_phys());
        }
        engine.detection = match engine.config.detection {
            DetectionBackend::Kinetic => engine.kinetic.as_ref().unwrap().best(),
            _ => state.scan_detect(),
        };
        engine.graph = graph;
        engine.state = state;
        engine.detection_dirty = false;
        engine
    }

    /// Replaces the engine's graph with `graph` — whose weights must
    /// already be final suspiciousness values — and re-peels it in place.
    /// The engine value is recycled: metric, configuration, kinetic index
    /// and reorder scratch buffers all survive, so a repair pass can run
    /// many union re-peels through one borrowed scratch engine instead of
    /// constructing a fresh engine per union.
    pub fn reload_graph(&mut self, graph: DynamicGraph) {
        self.install_graph(graph);
    }

    fn install_graph(&mut self, graph: DynamicGraph) {
        let outcome = peel(&graph);
        self.state = PeelingState::from_outcome(&outcome);
        self.graph = graph;
        if let Some(k) = self.kinetic.as_mut() {
            k.reset(self.state.delta_phys());
        }
        self.detection = match self.config.detection {
            DetectionBackend::Kinetic => self.kinetic.as_ref().unwrap().best(),
            _ => self.state.scan_detect(),
        };
        self.detection_dirty = false;
    }

    /// The underlying graph (read-only).
    pub fn graph(&self) -> &DynamicGraph {
        &self.graph
    }

    /// The live peeling state (read-only).
    pub fn state(&self) -> &PeelingState {
        &self.state
    }

    /// The configured metric.
    pub fn metric(&self) -> &M {
        &self.metric
    }

    /// The engine configuration.
    pub fn config(&self) -> SpadeConfig {
        self.config
    }

    /// Counters from the most recent reordering pass.
    pub fn last_reorder_stats(&self) -> ReorderStats {
        self.last_stats
    }

    /// Cumulative reordering counters since construction.
    pub fn total_reorder_stats(&self) -> ReorderStats {
        self.total_stats
    }

    /// The most recently maintained detection **without** forcing a
    /// recomputation — under the `Lazy` backend this may be stale.
    pub fn cached_detection(&self) -> Detection {
        self.detection
    }

    /// The current fraudulent community descriptor, recomputing if the
    /// backend requires it.
    pub fn detect(&mut self) -> Detection {
        if self.detection_dirty {
            self.detection = self.state.scan_detect();
            self.detection_dirty = false;
        }
        self.detection
    }

    /// The members of a detected community (the `size` densest-end
    /// vertices of the peeling sequence). O(1) slice.
    pub fn community(&self, detection: Detection) -> &[VertexId] {
        self.state.community(detection.size)
    }

    /// Materializes `v` (and any implied lower ids) in graph, state and
    /// index ahead of time — the edge-grouping buffer uses this so that
    /// urgency classification can read `w_u(S_0)` for endpoints it has not
    /// inserted yet.
    pub fn ensure_vertex(&mut self, v: VertexId) -> Result<(), GraphError> {
        self.prepare_vertex(v)
    }

    /// Ensures `v` (and any implied lower ids) exist in graph, state and
    /// index, assigning vertex suspiciousness on first sight.
    fn prepare_vertex(&mut self, v: VertexId) -> Result<(), GraphError> {
        let created = self.graph.ensure_vertex(v);
        if created == 0 {
            return Ok(());
        }
        let start = self.graph.num_vertices() - created;
        for i in start..self.graph.num_vertices() {
            let u = VertexId::from_index(i);
            let a = self.metric.vertex_susp(u, &self.graph);
            self.graph.set_vertex_weight(u, a)?;
            // New vertices enter at the head of the peeling sequence
            // (§4.1) with their true isolated weight a_u.
            self.state.push_front(u, a);
            if let Some(k) = self.kinetic.as_mut() {
                k.append(a);
            }
        }
        Ok(())
    }

    /// Inserts one transaction, evaluates its suspiciousness, reorders the
    /// affected window, and returns the (possibly updated) detection —
    /// the paper's `InsertEdge`.
    ///
    /// A metric may return suspiciousness 0 to declare the transaction
    /// *redundant* (e.g. DG/FD set semantics for repeated pairs); the
    /// insertion is then a no-op.
    pub fn insert_edge(
        &mut self,
        src: VertexId,
        dst: VertexId,
        raw: f64,
    ) -> Result<Detection, GraphError> {
        self.prepare_vertex(src)?;
        self.prepare_vertex(dst)?;
        let c = self.metric.edge_susp(src, dst, raw, &self.graph);
        validate_susp(src, dst, c)?;
        if c == 0.0 {
            return Ok(self.cached_detection());
        }
        self.graph.insert_edge(src, dst, c)?;
        self.blacks_buf.clear();
        let earlier =
            if self.state.position_of(src) < self.state.position_of(dst) { src } else { dst };
        self.blacks_buf.push(earlier);
        self.run_reorder();
        Ok(self.refresh_detection())
    }

    /// Inserts a batch of transactions and reorders **once** (Algorithm 2)
    /// — the paper's `InsertBatchEdges`.
    pub fn insert_batch(
        &mut self,
        edges: &[(VertexId, VertexId, f64)],
    ) -> Result<Detection, GraphError> {
        self.insert_batch_inner(edges, false)
    }

    /// [`insert_batch`](Self::insert_batch) for edges whose suspiciousness
    /// `c` has already been evaluated (used by the edge-grouping buffer,
    /// which classifies at arrival time).
    pub fn insert_batch_weighted(
        &mut self,
        edges: &[(VertexId, VertexId, f64)],
    ) -> Result<Detection, GraphError> {
        self.insert_batch_inner(edges, true)
    }

    /// Batch insertion that **never fails**: malformed transactions
    /// (self-loops, non-finite or negative suspiciousness) are skipped
    /// and counted instead of aborting the rest of the batch — exactly
    /// what per-edge [`insert_edge`](Self::insert_edge) callers get by
    /// dropping individual errors. Returns the post-batch detection and
    /// the number of rejected transactions. This is the service worker's
    /// drain-coalescing entry point.
    pub fn insert_batch_tolerant(
        &mut self,
        edges: &[(VertexId, VertexId, f64)],
    ) -> (Detection, u64) {
        match self.insert_batch_run(edges, false, true) {
            Ok(result) => result,
            // Tolerant runs swallow per-edge errors by construction.
            Err(_) => unreachable!("tolerant batch insertion cannot fail"),
        }
    }

    /// [`insert_batch_tolerant`](Self::insert_batch_tolerant) for edges
    /// whose suspiciousness is already final (no metric evaluation) —
    /// the migration absorb path, where a possibly corrupt slice must
    /// never abort the healthy remainder of the batch.
    pub fn insert_batch_weighted_tolerant(
        &mut self,
        edges: &[(VertexId, VertexId, f64)],
    ) -> (Detection, u64) {
        match self.insert_batch_run(edges, true, true) {
            Ok(result) => result,
            Err(_) => unreachable!("tolerant batch insertion cannot fail"),
        }
    }

    fn insert_batch_inner(
        &mut self,
        edges: &[(VertexId, VertexId, f64)],
        preweighted: bool,
    ) -> Result<Detection, GraphError> {
        if preweighted && edges.len() > 1 {
            // Pre-coalesce duplicate `(src, dst)` pairs: suspiciousness
            // is already evaluated, so accumulation is linear and k
            // parallel transactions collapse into one graph touch. (The
            // metric-evaluating path cannot coalesce — `edge_susp` reads
            // the evolving graph, so arrival order matters there.)
            let mut coalesced = std::mem::take(&mut self.coalesce_buf);
            coalesced.clear();
            let merge = coalesce_pairs(edges, &mut coalesced, &mut self.pair_index);
            let result = match merge {
                Ok(()) => self.insert_batch_run(&coalesced, true, false).map(|(det, _)| det),
                Err(e) => Err(e),
            };
            self.coalesce_buf = coalesced;
            return result;
        }
        self.insert_batch_run(edges, preweighted, false).map(|(det, _)| det)
    }

    /// Shared batch core: stages every edge into the graph, seeds `ΔV`
    /// (deduplicated by the reordering pass), and reorders **once**.
    /// `tolerant` turns per-edge errors into a rejection count.
    fn insert_batch_run(
        &mut self,
        edges: &[(VertexId, VertexId, f64)],
        preweighted: bool,
        tolerant: bool,
    ) -> Result<(Detection, u64), GraphError> {
        self.blacks_buf.clear();
        let mut inserted = std::mem::take(&mut self.inserted_buf);
        inserted.clear();
        let mut rejected: u64 = 0;
        for &(src, dst, raw) in edges {
            match self.stage_edge(src, dst, raw, preweighted) {
                Ok(true) => inserted.push((src, dst)),
                Ok(false) => {} // redundant under the metric's set semantics
                Err(_) if tolerant => rejected += 1,
                Err(e) => {
                    self.inserted_buf = inserted;
                    return Err(e);
                }
            }
        }
        for &(src, dst) in &inserted {
            let earlier =
                if self.state.position_of(src) < self.state.position_of(dst) { src } else { dst };
            self.blacks_buf.push(earlier);
        }
        self.inserted_buf = inserted;
        self.run_reorder();
        Ok((self.refresh_detection(), rejected))
    }

    /// Stages one transaction of a batch into the graph (no reorder).
    /// Returns whether an edge actually landed.
    fn stage_edge(
        &mut self,
        src: VertexId,
        dst: VertexId,
        raw: f64,
        preweighted: bool,
    ) -> Result<bool, GraphError> {
        self.prepare_vertex(src)?;
        self.prepare_vertex(dst)?;
        let c = if preweighted { raw } else { self.metric.edge_susp(src, dst, raw, &self.graph) };
        validate_susp(src, dst, c)?;
        if c == 0.0 {
            return Ok(false);
        }
        self.graph.insert_edge(src, dst, c)?;
        Ok(true)
    }

    fn run_reorder(&mut self) {
        let kinetic = &mut self.kinetic;
        let stats = reorder(
            &self.graph,
            &mut self.state,
            &mut self.blacks_buf,
            &mut self.scratch,
            |lo, ws| {
                if let Some(k) = kinetic.as_mut() {
                    k.rewrite_deltas(lo, ws);
                }
            },
        );
        self.last_stats = stats;
        self.total_stats.merge(stats);
    }

    fn refresh_detection(&mut self) -> Detection {
        match self.config.detection {
            DetectionBackend::Kinetic => {
                self.detection = self.kinetic.as_ref().unwrap().best();
                self.detection_dirty = false;
            }
            DetectionBackend::EagerScan => {
                self.detection = self.state.scan_detect();
                self.detection_dirty = false;
            }
            DetectionBackend::Lazy => {
                self.detection_dirty = true;
            }
        }
        self.detection
    }

    /// Removes an accumulated edge entirely and reorders (Appendix C.1).
    pub fn delete_edge(&mut self, src: VertexId, dst: VertexId) -> Result<Detection, GraphError> {
        let w = self.graph.edge_weight(src, dst).ok_or(GraphError::EdgeNotFound { src, dst })?;
        self.delete_transaction(src, dst, w)
    }

    /// Removes `amount` of suspiciousness from edge `(src, dst)` —
    /// deleting it entirely when `amount` equals its accumulated weight —
    /// and reorders (Appendix C.1 generalized to transaction granularity).
    pub fn delete_transaction(
        &mut self,
        src: VertexId,
        dst: VertexId,
        amount: f64,
    ) -> Result<Detection, GraphError> {
        let kinetic = &mut self.kinetic;
        let stats = crate::deletion::delete_and_reorder(
            &mut self.graph,
            &mut self.state,
            &mut self.scratch,
            src,
            dst,
            amount,
            |lo, ws| {
                if let Some(k) = kinetic.as_mut() {
                    k.rewrite_deltas(lo, ws);
                }
            },
        )?;
        self.last_stats = stats;
        self.total_stats.merge(stats);
        Ok(self.refresh_detection())
    }

    /// Removes the induced slice of `members` — every edge with both
    /// endpoints in the set plus the members' vertex suspiciousness —
    /// through the incremental deletion pass, keeping order, peeling
    /// state and the kinetic index consistent at every step. The members
    /// stay materialized as zero-weight singletons (dense ids cannot be
    /// reclaimed); the removed slice mirrors exactly what
    /// [`crate::persist::SubgraphSnapshot::extract`] captures at
    /// `hops = 0`, which is what makes extract → remove → replay a
    /// lossless migration (`crate::shard::migrate`).
    pub fn remove_member_slice(
        &mut self,
        members: &[VertexId],
    ) -> Result<crate::deletion::SliceRemoval, GraphError> {
        let kinetic = &mut self.kinetic;
        let removal = crate::deletion::remove_member_slice(
            &mut self.graph,
            &mut self.state,
            &mut self.scratch,
            members,
            |lo, ws| {
                if let Some(k) = kinetic.as_mut() {
                    k.rewrite_deltas(lo, ws);
                }
            },
        )?;
        self.last_stats = removal.reorder;
        self.total_stats.merge(removal.reorder);
        self.refresh_detection();
        Ok(removal)
    }

    /// Updates the prior suspiciousness of `v` from fresh side information
    /// and reorders as needed. Increases run through the insertion merge
    /// (the vertex can only move later); decreases through the deletion
    /// pass (it can only move earlier).
    pub fn set_vertex_suspiciousness(
        &mut self,
        v: VertexId,
        a: f64,
    ) -> Result<Detection, GraphError> {
        self.prepare_vertex(v)?;
        let old = self.graph.vertex_weight(v);
        if a > old {
            self.graph.set_vertex_weight(v, a)?;
            self.blacks_buf.clear();
            self.blacks_buf.push(v);
            self.run_reorder();
        } else if a < old {
            let kinetic = &mut self.kinetic;
            let stats = crate::deletion::decrease_vertex_weight_and_reorder(
                &mut self.graph,
                &mut self.state,
                &mut self.scratch,
                v,
                a,
                |lo, ws| {
                    if let Some(k) = kinetic.as_mut() {
                        k.rewrite_deltas(lo, ws);
                    }
                },
            )?;
            self.last_stats = stats;
            self.total_stats.merge(stats);
        }
        Ok(self.refresh_detection())
    }

    /// Consumes the engine, returning the graph (used by the enumeration
    /// extension to avoid a clone).
    pub fn into_graph(self) -> DynamicGraph {
        self.graph
    }
}

impl<M: DensityMetric + Clone> Clone for SpadeEngine<M> {
    /// Deep-copies the engine — the moderator's "what-if" tool: clone,
    /// apply hypothetical transactions, inspect the detection, discard.
    fn clone(&self) -> Self {
        SpadeEngine {
            graph: self.graph.clone(),
            state: self.state.clone(),
            metric: self.metric.clone(),
            config: self.config,
            kinetic: self.kinetic.clone(),
            detection: self.detection,
            detection_dirty: self.detection_dirty,
            scratch: self.scratch.clone(),
            blacks_buf: self.blacks_buf.clone(),
            inserted_buf: self.inserted_buf.clone(),
            coalesce_buf: self.coalesce_buf.clone(),
            pair_index: self.pair_index.clone(),
            last_stats: self.last_stats,
            total_stats: self.total_stats,
        }
    }
}

/// Sums duplicate ordered `(src, dst)` pairs of a pre-weighted batch into
/// `out`, keeping first-occurrence order (so vertex materialization order
/// is identical to the sequential path). Each entry is validated before
/// summing — a malformed weight must not hide inside an aggregate.
/// `index` is caller-owned scratch (cleared here) so frequent flushes pay
/// no per-batch allocation.
fn coalesce_pairs(
    edges: &[(VertexId, VertexId, f64)],
    out: &mut Vec<(VertexId, VertexId, f64)>,
    index: &mut FxHashMap<u64, usize>,
) -> Result<(), GraphError> {
    index.clear();
    for &(src, dst, c) in edges {
        validate_susp(src, dst, c)?;
        match index.entry(EdgeRef::new(src, dst).packed()) {
            std::collections::hash_map::Entry::Occupied(slot) => out[*slot.get()].2 += c,
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(out.len());
                out.push((src, dst, c));
            }
        }
    }
    Ok(())
}

fn validate_susp(src: VertexId, dst: VertexId, c: f64) -> Result<(), GraphError> {
    if !c.is_finite() {
        return Err(GraphError::NonFiniteWeight { context: "edge suspiciousness" });
    }
    // Exactly zero means "redundant transaction" (set semantics) and is
    // handled by the callers; negative suspiciousness is a metric bug.
    if c < 0.0 {
        return Err(GraphError::NonPositiveEdgeWeight { src, dst, weight: c });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::{Fraudar, UnweightedDensity, WeightedDensity};

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    fn check_against_static<M: DensityMetric + Clone>(engine: &mut SpadeEngine<M>) {
        let fresh = peel(engine.graph());
        assert_eq!(engine.state().logical_order(), fresh.order, "sequence diverged");
        let det = engine.detect();
        assert!(
            (det.density - fresh.best_density).abs() < 1e-9,
            "detection density {} vs static {}",
            det.density,
            fresh.best_density
        );
        assert_eq!(det.size, fresh.order.len() - fresh.best_prefix);
    }

    #[test]
    fn empty_engine_detects_nothing() {
        let mut e = SpadeEngine::new(UnweightedDensity);
        assert_eq!(e.detect(), Detection::EMPTY);
    }

    #[test]
    fn streaming_from_scratch_matches_static_dg() {
        let mut e = SpadeEngine::new(UnweightedDensity);
        let edges = [(0u32, 1u32), (1, 2), (2, 0), (3, 4), (0, 3), (2, 3), (1, 4)];
        for &(a, b) in &edges {
            e.insert_edge(v(a), v(b), 1.0).unwrap();
            check_against_static(&mut e);
        }
        assert_eq!(e.graph().num_edges(), edges.len());
    }

    #[test]
    fn streaming_matches_static_dw() {
        let mut e = SpadeEngine::new(WeightedDensity);
        let edges = [(0u32, 1u32, 5.0), (1, 2, 2.0), (2, 0, 7.0), (3, 0, 1.0), (1, 2, 3.0)];
        for &(a, b, w) in &edges {
            e.insert_edge(v(a), v(b), w).unwrap();
            check_against_static(&mut e);
        }
    }

    #[test]
    fn dense_block_raises_detection_density() {
        let mut e = SpadeEngine::new(WeightedDensity);
        // Sparse background.
        for i in 0..6u32 {
            e.insert_edge(v(i), v(i + 1), 1.0).unwrap();
        }
        let before = e.detect();
        // Fraud ring: heavy mutual transactions among 8..11.
        for a in 8..12u32 {
            for b in 8..12u32 {
                if a != b {
                    e.insert_edge(v(a), v(b), 20.0).unwrap();
                }
            }
        }
        let after = e.detect();
        assert!(after.density > before.density);
        let mut community: Vec<u32> = e.community(after).iter().map(|u| u.0).collect();
        community.sort_unstable();
        assert_eq!(community, vec![8, 9, 10, 11]);
        check_against_static(&mut e);
    }

    #[test]
    fn batch_insert_matches_single_inserts() {
        let edges = [(0u32, 1u32, 2.0), (1, 2, 3.0), (0, 2, 1.0), (3, 1, 4.0), (4, 3, 2.0)];
        let mut single = SpadeEngine::new(WeightedDensity);
        for &(a, b, w) in &edges {
            single.insert_edge(v(a), v(b), w).unwrap();
        }
        let mut batch = SpadeEngine::new(WeightedDensity);
        let batch_edges: Vec<_> = edges.iter().map(|&(a, b, w)| (v(a), v(b), w)).collect();
        batch.insert_batch(&batch_edges).unwrap();
        assert_eq!(single.state().logical_order(), batch.state().logical_order());
        assert_eq!(single.detect(), batch.detect());
    }

    #[test]
    fn preweighted_batch_coalesces_duplicate_pairs_identically() {
        // A burst with heavy pair duplication: coalesced insertion must
        // be bit-identical to the sequential pre-weighted path.
        let mut edges: Vec<(VertexId, VertexId, f64)> = Vec::new();
        for rep in 0..6 {
            for a in 0..4u32 {
                for b in 0..4u32 {
                    if a != b {
                        edges.push((v(a), v(b), 1.0 + rep as f64));
                    }
                }
            }
        }
        edges.push((v(9), v(2), 3.0));
        let mut sequential = SpadeEngine::new(WeightedDensity);
        for &(a, b, w) in &edges {
            sequential.insert_edge(a, b, w).unwrap();
        }
        let mut batched = SpadeEngine::new(WeightedDensity);
        batched.insert_batch_weighted(&edges).unwrap();
        assert_eq!(batched.state().logical_order(), sequential.state().logical_order());
        assert_eq!(batched.detect(), sequential.detect());
        assert_eq!(batched.graph().num_edges(), sequential.graph().num_edges());
    }

    #[test]
    fn tolerant_batch_counts_rejects_and_applies_the_rest() {
        let mut e = SpadeEngine::new(WeightedDensity);
        let edges = [
            (v(0), v(1), 2.0),
            (v(3), v(3), 1.0),  // self-loop: rejected
            (v(1), v(2), -4.0), // negative susp: rejected
            (v(2), v(0), 5.0),
        ];
        let (det, rejected) = e.insert_batch_tolerant(&edges);
        assert_eq!(rejected, 2);
        assert_eq!(e.graph().num_edges(), 2);
        assert!(det.size > 0);
        // The rejected self-loop still materialized its vertex, exactly
        // like the per-edge path would have before erroring.
        assert!(e.graph().contains_vertex(v(3)));
        check_against_static(&mut e);
    }

    #[test]
    fn batch_scratch_buffers_are_reused_across_calls() {
        let mut e = SpadeEngine::new(WeightedDensity);
        e.insert_batch(&[(v(0), v(1), 2.0), (v(1), v(2), 3.0)]).unwrap();
        e.insert_batch_weighted(&[(v(2), v(3), 1.0), (v(2), v(3), 2.0), (v(3), v(4), 1.0)])
            .unwrap();
        e.insert_batch(&[(v(4), v(0), 2.0)]).unwrap();
        check_against_static(&mut e);
        // Accumulated duplicate pair from the weighted batch.
        assert_eq!(e.graph().edge_weight(v(2), v(3)), Some(3.0));
    }

    #[test]
    fn bootstrap_then_stream() {
        let initial: Vec<(VertexId, VertexId, f64)> =
            vec![(v(0), v(1), 1.0), (v(1), v(2), 1.0), (v(2), v(0), 1.0)];
        let mut e =
            SpadeEngine::bootstrap(UnweightedDensity, SpadeConfig::default(), initial).unwrap();
        check_against_static(&mut e);
        e.insert_edge(v(3), v(0), 1.0).unwrap();
        e.insert_edge(v(3), v(1), 1.0).unwrap();
        check_against_static(&mut e);
    }

    #[test]
    fn detection_backends_agree() {
        let edges = [(0u32, 1u32, 2.0), (1, 2, 5.0), (2, 0, 1.0), (3, 2, 2.0), (3, 0, 3.0)];
        let mut engines = [
            SpadeEngine::with_config(
                WeightedDensity,
                SpadeConfig { detection: DetectionBackend::Kinetic },
            ),
            SpadeEngine::with_config(
                WeightedDensity,
                SpadeConfig { detection: DetectionBackend::EagerScan },
            ),
            SpadeEngine::with_config(
                WeightedDensity,
                SpadeConfig { detection: DetectionBackend::Lazy },
            ),
        ];
        for &(a, b, w) in &edges {
            let mut dets = Vec::new();
            for e in engines.iter_mut() {
                e.insert_edge(v(a), v(b), w).unwrap();
                dets.push(e.detect());
            }
            assert_eq!(dets[0].size, dets[1].size);
            assert_eq!(dets[0].size, dets[2].size);
            assert!((dets[0].density - dets[1].density).abs() < 1e-9);
            assert!((dets[0].density - dets[2].density).abs() < 1e-9);
        }
    }

    #[test]
    fn fraudar_streaming_keeps_valid_greedy_state() {
        let mut e = SpadeEngine::new(Fraudar::new());
        let edges = [(0u32, 5u32), (1, 5), (2, 5), (3, 5), (0, 6), (1, 6), (2, 6), (4, 7), (3, 7)];
        for &(a, b) in &edges {
            e.insert_edge(v(a), v(b), 1.0).unwrap();
        }
        // FD weights are irrational; verify the greedy invariant within
        // tolerance rather than bit equality.
        e.state().validate_greedy(e.graph(), 1e-6);
    }

    #[test]
    fn zero_suspiciousness_is_a_noop_negative_is_an_error() {
        let mut e = SpadeEngine::new(crate::metric::CustomMetric::new(
            "zero",
            |_, _| 0.0,
            |_, _, _, _| 0.0,
        ));
        // Zero = redundant transaction: vertices materialize, no edge.
        let det = e.insert_edge(v(0), v(1), 1.0).unwrap();
        assert_eq!(det.size, 0);
        assert_eq!(e.graph().num_edges(), 0);
        assert_eq!(e.graph().num_vertices(), 2);

        let mut neg = SpadeEngine::new(crate::metric::CustomMetric::new(
            "negative",
            |_, _| 0.0,
            |_, _, _, _| -1.0,
        ));
        assert!(neg.insert_edge(v(0), v(1), 1.0).is_err());
    }

    #[test]
    fn dg_set_semantics_ignores_duplicate_transactions() {
        let mut e = SpadeEngine::new(UnweightedDensity);
        e.insert_edge(v(0), v(1), 1.0).unwrap();
        e.insert_edge(v(0), v(1), 1.0).unwrap();
        e.insert_edge(v(0), v(1), 1.0).unwrap();
        assert_eq!(e.graph().num_edges(), 1);
        assert_eq!(e.graph().edge_weight(v(0), v(1)), Some(1.0));
        // The antiparallel edge is distinct.
        e.insert_edge(v(1), v(0), 1.0).unwrap();
        assert_eq!(e.graph().num_edges(), 2);
        check_against_static(&mut e);
    }

    #[test]
    fn reorder_stats_accumulate() {
        let mut e = SpadeEngine::new(UnweightedDensity);
        e.insert_edge(v(0), v(1), 1.0).unwrap();
        e.insert_edge(v(1), v(2), 1.0).unwrap();
        let total = e.total_reorder_stats();
        assert!(total.windows >= 2);
        assert!(total.moved >= e.last_reorder_stats().moved);
    }

    #[test]
    fn cloned_engine_supports_what_if_analysis() {
        let mut live = SpadeEngine::new(WeightedDensity);
        for i in 0..6u32 {
            live.insert_edge(v(i), v(i + 1), 2.0).unwrap();
        }
        let baseline = live.detect();
        // What if this suspicious transfer went through?
        let mut hypothetical = live.clone();
        for a in 10..13u32 {
            for b in 10..13u32 {
                if a != b {
                    hypothetical.insert_edge(v(a), v(b), 50.0).unwrap();
                }
            }
        }
        assert!(hypothetical.detect().density > baseline.density);
        // The live engine is untouched.
        assert_eq!(live.detect(), baseline);
        assert_eq!(live.graph().num_edges(), 6);
        check_against_static(&mut hypothetical);
    }

    #[test]
    fn partial_transaction_deletion_at_engine_level() {
        let mut e = SpadeEngine::new(WeightedDensity);
        e.insert_edge(v(0), v(1), 10.0).unwrap();
        e.insert_edge(v(1), v(2), 4.0).unwrap();
        e.delete_transaction(v(0), v(1), 6.0).unwrap();
        assert_eq!(e.graph().edge_weight(v(0), v(1)), Some(4.0));
        check_against_static(&mut e);
        // Draining the remainder removes the edge.
        e.delete_transaction(v(0), v(1), 4.0).unwrap();
        assert_eq!(e.graph().edge_weight(v(0), v(1)), None);
        check_against_static(&mut e);
    }

    #[test]
    fn remove_member_slice_keeps_engine_exact_and_detection_fresh() {
        let mut e = SpadeEngine::new(WeightedDensity);
        // Background path plus two rings; the heavier ring dominates.
        for i in 0..6u32 {
            e.insert_edge(v(i), v(i + 1), 1.0).unwrap();
        }
        for a in 10..14u32 {
            for b in 10..14u32 {
                if a != b {
                    e.insert_edge(v(a), v(b), 30.0).unwrap();
                }
            }
        }
        for a in 20..23u32 {
            for b in 20..23u32 {
                if a != b {
                    e.insert_edge(v(a), v(b), 8.0).unwrap();
                }
            }
        }
        let before = e.detect();
        assert!(e.community(before).iter().all(|m| (10..14).contains(&m.0)));
        // Evict the dominant ring: the detection must fall through to the
        // second ring immediately (kinetic index updated in lock-step).
        let members: Vec<VertexId> = (10..14).map(v).collect();
        let removal = e.remove_member_slice(&members).unwrap();
        assert_eq!(removal.edges_removed, 12);
        let after = e.detect();
        assert!(after.density < before.density);
        assert!(e.community(after).iter().all(|m| (20..23).contains(&m.0)));
        check_against_static(&mut e);
        e.state().validate_greedy(e.graph(), 1e-9);
        // Evicted members remain as valid zero-weight singletons and can
        // be re-used by later traffic.
        e.insert_edge(v(10), v(21), 2.0).unwrap();
        check_against_static(&mut e);
    }

    #[test]
    fn vertex_suspiciousness_updates_reorder_both_directions() {
        let mut e = SpadeEngine::new(WeightedDensity);
        for i in 0..5u32 {
            e.insert_edge(v(i), v((i + 1) % 5), 2.0).unwrap();
        }
        // Raise: v3 becomes highly suspicious side information.
        e.set_vertex_suspiciousness(v(3), 25.0).unwrap();
        check_against_static(&mut e);
        // Lower it back down.
        e.set_vertex_suspiciousness(v(3), 0.5).unwrap();
        check_against_static(&mut e);
        e.state().validate_greedy(e.graph(), 1e-9);
    }

    #[test]
    fn randomized_streaming_with_new_vertices_matches_static() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2024);
        for _trial in 0..25 {
            let mut e = SpadeEngine::new(WeightedDensity);
            let universe = rng.gen_range(3..16u32);
            for _ in 0..rng.gen_range(1..40) {
                let a = rng.gen_range(0..universe);
                let b = rng.gen_range(0..universe);
                if a == b {
                    continue;
                }
                e.insert_edge(v(a), v(b), rng.gen_range(1..6) as f64).unwrap();
            }
            if e.graph().num_edges() == 0 {
                continue;
            }
            check_against_static(&mut e);
            e.state().validate_greedy(e.graph(), 1e-9);
        }
    }
}
