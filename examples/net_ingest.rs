//! Network ingest replay: concurrent TCP producers feeding one server.
//!
//! The production shape of the transport front end: a `SpadeNetServer`
//! wraps the hash-routed sharded runtime on a loopback socket, four
//! producer threads each connect a `SpadeNetClient` and replay an
//! interleaved slice of a Zipf marketplace stream with an injected fraud
//! burst — batched, pipelined, retrying Busy replies — and a moderator
//! reads the detection back over the same wire. At the end the
//! cross-shard repair pass is compared against a solo engine fed the
//! identical stream: the answer must match member-for-member.
//!
//! Run with: `cargo run --release --example net_ingest`

use spade::core::{SpadeEngine, WeightedDensity};
use spade::gen::fraud::{FraudInjector, FraudInjectorConfig};
use spade::gen::transactions::{TransactionStream, TransactionStreamConfig};
use spade::graph::VertexId;
use spade::net::{ClientConfig, SpadeNetClient, SpadeNetServer};
use spade::shard::{PartitionStrategy, ShardedConfig, ShardedSpadeService};
use std::sync::Arc;
use std::time::Instant;

const PRODUCERS: usize = 4;

fn main() {
    // The workload: a seeded marketplace stream with one injected
    // collusion burst per fraud pattern.
    let base = TransactionStream::generate(&TransactionStreamConfig {
        customers: 2_000,
        merchants: 600,
        transactions: 30_000,
        seed: 77,
        ..Default::default()
    });
    let injected = FraudInjector::inject(
        &base,
        &FraudInjectorConfig {
            instances_per_pattern: 1,
            transactions_per_instance: 250,
            amount: 500.0,
            seed: 77,
            ..Default::default()
        },
    );
    let edges: Vec<(VertexId, VertexId, f64)> =
        injected.edges.iter().map(|e| (e.src, e.dst, e.raw)).collect();
    println!("stream: {} transactions, {PRODUCERS} TCP producers", edges.len());

    // Ground truth: one engine over the whole stream.
    let mut solo = SpadeEngine::new(WeightedDensity);
    for &(a, b, w) in &edges {
        let _ = solo.insert_edge(a, b, w);
    }
    let want = solo.detect();
    let mut want_members: Vec<u32> = solo.community(want).iter().map(|m| m.0).collect();
    want_members.sort_unstable();

    // The server: 4 hash-routed shards behind a loopback listener.
    let service = Arc::new(ShardedSpadeService::spawn(
        WeightedDensity,
        ShardedConfig {
            shards: 4,
            queue_capacity: 4096,
            strategy: PartitionStrategy::HashBySource,
            ..Default::default()
        },
    ));
    let server = SpadeNetServer::bind(Arc::clone(&service), "127.0.0.1:0").expect("bind");
    let addr = server.local_addr();
    println!("listening on {addr} (4 shards, hash routing)");

    // Producers: each replays edges[i], i ≡ p (mod PRODUCERS).
    let started = Instant::now();
    let workers: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let slice: Vec<(VertexId, VertexId, f64)> =
                edges.iter().skip(p).step_by(PRODUCERS).copied().collect();
            std::thread::spawn(move || {
                let mut client = SpadeNetClient::connect_with(
                    addr,
                    ClientConfig { batch: 256, pipeline: 16, ..Default::default() },
                )
                .expect("producer connect");
                for (src, dst, raw) in slice {
                    client.submit(src, dst, raw).expect("submit");
                }
                client.finish().expect("flush")
            })
        })
        .collect();
    let mut acked = 0u64;
    let mut busy = 0u64;
    for w in workers {
        let stats = w.join().expect("producer thread");
        acked += stats.edges_acked;
        busy += stats.busy_replies;
    }
    let elapsed = started.elapsed().as_secs_f64();
    println!(
        "replayed {acked} edges in {:.1} ms ({:.0} tx/s across {PRODUCERS} producers, \
         {busy} busy retries)",
        elapsed * 1e3,
        acked as f64 / elapsed.max(1e-9),
    );

    // A moderator connection reads the live state over the wire.
    let mut moderator = SpadeNetClient::connect(addr).expect("moderator connect");
    let det = moderator.detect().expect("detect");
    println!(
        "wire detection: {} members, density {:.3} ({} updates applied)",
        det.size, det.density, det.updates_applied,
    );
    let stats = moderator.server_stats().expect("stats");
    println!(
        "server counters: {} connections, {} frames, {} edges acked, {} busy replies",
        stats.connections, stats.frames, stats.edges_accepted, stats.busy_replies,
    );
    moderator.shutdown_server().expect("shutdown frame");
    server.shutdown();

    // Exactness: the repair pass over the server-fed shards recovers the
    // solo answer, concurrent interleaving and all.
    let repaired = service.repair();
    let mut got: Vec<u32> = repaired.detection.members.iter().map(|m| m.0).collect();
    got.sort_unstable();
    println!(
        "repair: best shard density {:.3} -> repaired {:.3} (solo {:.3})",
        repaired.baseline_density, repaired.detection.density, want.density,
    );
    assert_eq!(got, want_members, "server-fed repaired members diverge from solo");
    assert!((repaired.detection.density - want.density).abs() < 1e-9);
    println!("server-fed detection matches the solo engine exactly ({} members)", want.size);

    let service = Arc::try_unwrap(service).unwrap_or_else(|_| panic!("service still shared"));
    service.shutdown();
}
