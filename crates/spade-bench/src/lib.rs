//! # spade-bench
//!
//! Benchmark harness regenerating every table and figure of the Spade
//! paper's evaluation (§5 + Appendix B). Each table/figure has a binary
//! (`cargo run -p spade-bench --release --bin <name>`); per-operation
//! micro-benchmarks live in `benches/` (Criterion).
//!
//! Scale control: the `SPADE_SCALE` environment variable scales dataset
//! sizes relative to the paper (default `0.01`, i.e. Grab1 becomes ~40K
//! vertices / 100K edges). `SPADE_QUICK=1` shrinks everything further for
//! smoke runs. Absolute numbers will differ from the paper's testbed; the
//! *relations* (who wins, by how many orders, how curves bend) are what
//! the harness reproduces — see EXPERIMENTS.md.

pub mod clock;
pub mod replay;
pub mod workloads;

pub use clock::SimulatedClock;
pub use replay::{
    measure_grouped_replay, measure_incremental_replay, measure_static_baseline, MetricKind,
    ReplayReport,
};
pub use workloads::{env_scale, grab_datasets, open_datasets, table3_datasets};
