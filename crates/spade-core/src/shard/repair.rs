//! Cross-shard community repair: recovering single-engine exactness
//! under hash routing.
//!
//! Hash partitioning splits a community's edges across shards, so every
//! shard sees a *diluted* slice and the aggregator's best-of answer
//! understates the true density. The repair pass recovers the exact
//! answer without connectivity routing's state:
//!
//! 1. every shard exports a **candidate region** — its detected
//!    community plus a configurable k-hop frontier of boundary edges,
//!    serialized with the [`crate::persist`] subgraph codec
//!    ([`CandidateRegion`]);
//! 2. regions that share *any* vertex are grouped (union-find): shared
//!    members are exactly the signature of a split community, since a
//!    hash-routed vertex appears as an edge endpoint on every shard that
//!    holds one of its edges;
//! 3. each group's subgraphs are unioned into one dense-id scratch graph
//!    and **re-peeled** through a borrowed scratch engine
//!    ([`RepairScratch`]) — one engine value recycled across repairs;
//! 4. the published [`RepairOutcome`] density is **provably ≥ the best
//!    per-shard detection**: besides the union re-peel's own best suffix,
//!    every contributing shard's member set is re-evaluated on the union
//!    graph, and a member set can only gain weight there (the union holds
//!    every local edge among those members, plus whatever other shards
//!    contribute), so the maximum dominates every local answer.
//!
//! This mirrors how per-partition evidence is reconciled into one global
//! ranking in partitioned fraud pipelines (BreachRadar's per-partition
//! point-of-compromise aggregation, SAD-F's per-executor partials): local
//! detectors stay hot and independent, a cheap global pass restores
//! exactness.

use crate::engine::{DetectionBackend, SpadeConfig, SpadeEngine};
use crate::metric::WeightedDensity;
use crate::persist::SubgraphSnapshot;
use crate::service::CandidateRegion;
use spade_graph::hash::FxHashMap;
use spade_graph::{DynamicGraph, VertexId};

/// Tuning of the repair pass and its scheduler.
#[derive(Clone, Copy, Debug)]
pub struct RepairConfig {
    /// Frontier radius exported around each shard's community: the
    /// candidate region is the induced subgraph over the community plus
    /// `hops` breadth-first rings of boundary vertices. `1` suffices to
    /// stitch communities that share members; larger radii also capture
    /// structure connected only through bystander vertices.
    pub hops: usize,
    /// Staleness budget of the scheduler: even without member overlap
    /// between published detections, a repair pass re-runs after this
    /// many new ingest commands (frontier-only overlaps are invisible to
    /// the cheap member check).
    pub staleness_budget: u64,
}

impl Default for RepairConfig {
    fn default() -> Self {
        RepairConfig { hops: 1, staleness_budget: 4096 }
    }
}

/// Monotonic counters of the repair subsystem.
#[derive(Clone, Copy, Debug, Default)]
pub struct RepairStats {
    /// Repair passes executed (forced or scheduled).
    pub repairs: u64,
    /// Candidate regions exported across all passes.
    pub regions_exported: u64,
    /// Region groups that actually merged (≥ 2 regions) and re-peeled.
    pub groups_merged: u64,
    /// Repaired snapshots that swapped the published detection.
    pub published: u64,
    /// Scheduler calls answered from the cached snapshot (no pass ran).
    pub served_cached: u64,
    /// Regions dropped because their bytes failed to decode.
    pub corrupt_regions: u64,
    /// Density gained by the most recent pass (repaired − best shard).
    pub last_gain: f64,
    /// Wall time of the most recent pass, nanoseconds. The full
    /// distribution lives in the runtime registry's
    /// `spade_repair_pass_ns` histogram
    /// (`crate::shard::service::metric_names::REPAIR_PASS_NS`); this
    /// field keeps the latest sample visible in plain stats reports.
    pub last_pass_ns: u64,
}

/// Per-shard accounting of one repair pass, for reports.
#[derive(Clone, Copy, Debug)]
pub struct RegionSummary {
    /// Exporting shard.
    pub shard: usize,
    /// Vertices in the exported region (community + frontier).
    pub vertices: usize,
    /// Edges in the exported region.
    pub edges: usize,
    /// The shard's local detection size at export.
    pub detection_size: usize,
    /// The shard's local detection density at export.
    pub density: f64,
    /// Whether this region merged with at least one other region.
    pub merged: bool,
}

/// The published product of the repair subsystem: an epoch-versioned,
/// zero-copy detection snapshot (same discipline as
/// [`crate::service::PublishedDetection`] — members behind an `Arc`,
/// swapped only when the repaired answer changes) plus the provenance a
/// moderator needs to trust it.
#[derive(Clone, Debug, Default)]
pub struct RepairedDetection {
    /// The repaired global detection. `epoch` counts repaired-snapshot
    /// swaps; `updates_applied` sums the per-shard counters at export.
    pub detection: crate::service::PublishedDetection,
    /// Best per-shard density before repair (the diluted baseline).
    pub baseline_density: f64,
    /// The shard holding that baseline.
    pub baseline_shard: usize,
    /// Shards whose regions merged into the winning union (empty when a
    /// single shard's candidate already won).
    pub merged_shards: Vec<usize>,
    /// Whether the winning answer came out of a multi-region union
    /// re-peel.
    pub repaired: bool,
    /// Per-shard export accounting of the pass that produced this
    /// snapshot (empty when the snapshot came from the cheap
    /// no-overlap path, which publishes the best per-shard view without
    /// exporting regions).
    pub regions: Vec<RegionSummary>,
}

/// The result of one repair pass over a set of candidate regions.
#[derive(Clone, Debug, Default)]
pub struct RepairOutcome {
    /// Members of the repaired community (global ids, ascending).
    pub members: Vec<VertexId>,
    /// `|S|` of the repaired community.
    pub size: usize,
    /// Density of the repaired community — ≥ `baseline_density`.
    pub density: f64,
    /// The best per-shard density before repair (the diluted baseline).
    pub baseline_density: f64,
    /// The shard holding that baseline.
    pub baseline_shard: usize,
    /// Shards whose regions merged into the winning union (empty when a
    /// single shard's candidate already won).
    pub merged_shards: Vec<usize>,
    /// Whether the winning candidate came out of a multi-region union
    /// re-peel (`false`: the best single-shard view was already best).
    pub repaired: bool,
    /// Region groups with ≥ 2 members that were union-re-peeled.
    pub groups_merged: usize,
    /// Regions dropped because their bytes failed to decode.
    pub corrupt_regions: usize,
    /// Per-shard export accounting.
    pub regions: Vec<RegionSummary>,
}

/// Reusable workspace of the repair pass: one scratch engine (re-peeled
/// in place via [`SpadeEngine::reload_graph`]) plus the id-remap tables.
///
/// The scratch metric is irrelevant to correctness: region weights are
/// already final suspiciousness values, and a static re-peel reads graph
/// weights only — no metric callback runs. `WeightedDensity` (identity on
/// weights) documents that.
#[derive(Debug)]
pub struct RepairScratch {
    engine: SpadeEngine<WeightedDensity>,
    /// Dense local id → global id of the current union.
    remap: Vec<VertexId>,
    /// Global id → dense local id of the current union.
    local: FxHashMap<u32, u32>,
    /// Packed global `(src, dst)` → slot in the staged edge list.
    edge_slots: FxHashMap<u64, usize>,
}

impl Default for RepairScratch {
    fn default() -> Self {
        RepairScratch {
            // EagerScan: one O(n) scan after the re-peel beats
            // maintaining a kinetic tournament nobody updates.
            engine: SpadeEngine::with_config(
                WeightedDensity,
                SpadeConfig { detection: DetectionBackend::EagerScan },
            ),
            remap: Vec::new(),
            local: FxHashMap::default(),
            edge_slots: FxHashMap::default(),
        }
    }
}

impl RepairScratch {
    /// Fresh scratch state.
    pub fn new() -> Self {
        Self::default()
    }

    fn local_id(&mut self, global: VertexId) -> u32 {
        match self.local.get(&global.0) {
            Some(&l) => l,
            None => {
                let l = self.remap.len() as u32;
                self.local.insert(global.0, l);
                self.remap.push(global);
                l
            }
        }
    }
}

/// One decoded candidate region, ready for grouping.
struct Region<'a> {
    shard: usize,
    candidate: &'a CandidateRegion,
    snapshot: SubgraphSnapshot,
}

/// Runs one repair pass over per-shard candidate regions: group by shared
/// vertices, union + re-peel each merged group through `scratch`, and
/// return the best candidate seen — guaranteed no worse than the best
/// per-shard detection.
pub fn repair_regions(
    regions: &[(usize, CandidateRegion)],
    scratch: &mut RepairScratch,
) -> RepairOutcome {
    let mut outcome = RepairOutcome::default();
    let mut decoded: Vec<Region<'_>> = Vec::with_capacity(regions.len());
    for (shard, candidate) in regions {
        match SubgraphSnapshot::decode(&candidate.encoded) {
            Ok(snapshot) => {
                outcome.regions.push(RegionSummary {
                    shard: *shard,
                    vertices: snapshot.vertices.len(),
                    edges: snapshot.edges.len(),
                    detection_size: candidate.size,
                    density: candidate.density,
                    merged: false,
                });
                decoded.push(Region { shard: *shard, candidate, snapshot });
            }
            Err(_) => outcome.corrupt_regions += 1,
        }
    }
    if decoded.is_empty() {
        return outcome;
    }

    // The diluted baseline: best per-shard density, ties to lower shard.
    let (baseline_slot, _) = decoded
        .iter()
        .enumerate()
        .max_by(|(_, a), (_, b)| {
            a.candidate.density.total_cmp(&b.candidate.density).then(b.shard.cmp(&a.shard))
        })
        .expect("decoded is non-empty");
    outcome.baseline_density = decoded[baseline_slot].candidate.density;
    outcome.baseline_shard = decoded[baseline_slot].shard;

    // Group regions sharing any vertex (union-find over region slots). A
    // split community's pieces always share vertices: a vertex appears on
    // every shard holding one of its edges.
    let mut parent: Vec<usize> = (0..decoded.len()).collect();
    fn find(parent: &mut [usize], mut i: usize) -> usize {
        while parent[i] != i {
            parent[i] = parent[parent[i]];
            i = parent[i];
        }
        i
    }
    let mut owner: FxHashMap<u32, usize> = FxHashMap::default();
    for (slot, region) in decoded.iter().enumerate() {
        for &(u, _) in &region.snapshot.vertices {
            match owner.get(&u.0) {
                Some(&other) => {
                    let (a, b) = (find(&mut parent, slot), find(&mut parent, other));
                    if a != b {
                        parent[a] = b;
                    }
                }
                None => {
                    owner.insert(u.0, slot);
                }
            }
        }
    }
    let mut groups: FxHashMap<usize, Vec<usize>> = FxHashMap::default();
    for slot in 0..decoded.len() {
        let root = find(&mut parent, slot);
        groups.entry(root).or_default().push(slot);
    }
    let mut grouped: Vec<Vec<usize>> = groups.into_values().collect();
    for g in &mut grouped {
        g.sort_unstable();
    }
    grouped.sort_unstable();

    // Best candidate across groups: (density, size, members, shards,
    // from_union).
    let mut best: Option<(f64, Vec<VertexId>, Vec<usize>, bool)> = None;
    let mut consider = |density: f64, members: Vec<VertexId>, shards: Vec<usize>, union: bool| {
        let better = match &best {
            None => true,
            Some((d, m, _, _)) => {
                density > *d + 1e-12 || ((density - *d).abs() <= 1e-12 && members.len() > m.len())
            }
        };
        if better {
            best = Some((density, members, shards, union));
        }
    };

    for group in &grouped {
        if group.len() == 1 {
            let region = &decoded[group[0]];
            if region.candidate.size > 0 {
                consider(
                    region.candidate.density,
                    region.candidate.members.to_vec(),
                    vec![region.shard],
                    false,
                );
            }
            continue;
        }
        outcome.groups_merged += 1;
        let shards: Vec<usize> = group.iter().map(|&slot| decoded[slot].shard).collect();
        for &slot in group {
            let shard = decoded[slot].shard;
            if let Some(summary) = outcome.regions.iter_mut().find(|s| s.shard == shard) {
                summary.merged = true;
            }
        }

        // Union the group's subgraphs into one dense-id scratch graph.
        // Vertex weights take the max across regions (every shard
        // evaluated the same metric prior; max is exact for the built-in
        // metrics and conservative otherwise); duplicate directed edges —
        // impossible when each edge lives on exactly one shard, but
        // tolerated — also keep the max rather than accumulating.
        scratch.remap.clear();
        scratch.local.clear();
        scratch.edge_slots.clear();
        let mut weights: Vec<f64> = Vec::new();
        let mut edges: Vec<(u32, u32, f64)> = Vec::new();
        for &slot in group {
            for &(u, w) in &decoded[slot].snapshot.vertices {
                let l = scratch.local_id(u) as usize;
                if l == weights.len() {
                    weights.push(w);
                } else if w > weights[l] {
                    weights[l] = w;
                }
            }
            for &(src, dst, w) in &decoded[slot].snapshot.edges {
                let s = scratch.local_id(src);
                let d = scratch.local_id(dst);
                let key = (s as u64) << 32 | d as u64;
                match scratch.edge_slots.get(&key) {
                    Some(&at) => {
                        if w > edges[at].2 {
                            edges[at].2 = w;
                        }
                    }
                    None => {
                        scratch.edge_slots.insert(key, edges.len());
                        edges.push((s, d, w));
                    }
                }
            }
        }
        let mut graph = DynamicGraph::with_capacity(weights.len());
        for &w in &weights {
            let _ = graph.add_vertex(w.max(0.0));
        }
        for &(s, d, w) in &edges {
            if w > 0.0 && s != d {
                let _ = graph.insert_edge(VertexId(s), VertexId(d), w);
            }
        }

        // Re-peel the union in place through the borrowed scratch engine.
        scratch.engine.reload_graph(graph);
        let det = scratch.engine.detect();
        let peel_members: Vec<VertexId> =
            scratch.engine.community(det).iter().map(|&l| scratch.remap[l.index()]).collect();
        consider(det.density, peel_members, shards.clone(), true);

        // The provable floor: every contributing shard's member set,
        // re-evaluated on the union graph, where it can only be denser
        // than on the shard's local slice.
        for &slot in group {
            let region = &decoded[slot];
            if region.candidate.size == 0 {
                continue;
            }
            let locals: Vec<u32> = region
                .candidate
                .members
                .iter()
                .filter_map(|m| scratch.local.get(&m.0).copied())
                .collect();
            // Every community member is in the region's own vertex set.
            debug_assert_eq!(locals.len(), region.candidate.members.len());
            let density = set_density(scratch.engine.graph(), &locals);
            consider(density, region.candidate.members.to_vec(), shards.clone(), true);
        }
    }

    if let Some((density, mut members, shards, union)) = best {
        members.sort_unstable_by_key(|m| m.0);
        outcome.density = density;
        outcome.size = members.len();
        outcome.members = members;
        outcome.repaired = union;
        outcome.merged_shards = if union { shards } else { Vec::new() };
    }
    outcome
}

/// `g(S)` of an explicit member set on `graph`: vertex weights plus every
/// edge with both endpoints inside, divided by `|S|`.
fn set_density(graph: &DynamicGraph, members: &[u32]) -> f64 {
    if members.is_empty() {
        return 0.0;
    }
    let mut inside = vec![false; graph.num_vertices()];
    for &m in members {
        inside[m as usize] = true;
    }
    let mut f = 0.0;
    for &m in members {
        let u = VertexId(m);
        f += graph.vertex_weight(u);
        for nb in graph.out_neighbors(u) {
            if inside[nb.v.index()] {
                f += nb.w;
            }
        }
    }
    f / members.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SpadeEngine;
    use crate::metric::WeightedDensity;
    use std::sync::Arc;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    /// Builds a CandidateRegion the way a shard worker would: run a local
    /// engine over `edges`, detect, export the k-hop region.
    fn region_from_edges(edges: &[(u32, u32, f64)], hops: usize) -> CandidateRegion {
        let mut engine = SpadeEngine::new(WeightedDensity);
        for &(a, b, w) in edges {
            engine.insert_edge(v(a), v(b), w).unwrap();
        }
        let det = engine.detect();
        let members: Arc<[VertexId]> = Arc::from(engine.community(det));
        let snapshot = SubgraphSnapshot::extract(engine.graph(), &members, hops);
        CandidateRegion {
            size: det.size,
            density: det.density,
            members,
            encoded: snapshot.encode(),
            updates_applied: edges.len() as u64,
            epoch: 1,
        }
    }

    /// A 4-ring (all ordered pairs, weight 10) split across two shards by
    /// edge parity: each shard alone sees half the weight; the union must
    /// recover the full density.
    fn split_ring_regions() -> Vec<(usize, CandidateRegion)> {
        let ring = [100u32, 101, 102, 103];
        let mut shard0 = Vec::new();
        let mut shard1 = Vec::new();
        let mut flip = false;
        for &a in &ring {
            for &b in &ring {
                if a != b {
                    if flip {
                        shard0.push((a, b, 10.0));
                    } else {
                        shard1.push((a, b, 10.0));
                    }
                    flip = !flip;
                }
            }
        }
        vec![(0, region_from_edges(&shard0, 1)), (1, region_from_edges(&shard1, 1))]
    }

    #[test]
    fn union_recovers_the_full_ring_density() {
        let regions = split_ring_regions();
        let baseline = regions.iter().map(|(_, r)| r.density).fold(f64::NEG_INFINITY, f64::max);
        let mut scratch = RepairScratch::new();
        let outcome = repair_regions(&regions, &mut scratch);
        assert!(outcome.repaired, "split ring must trigger a union re-peel");
        assert_eq!(outcome.groups_merged, 1);
        assert_eq!(outcome.merged_shards, vec![0, 1]);
        // Full ring: 12 ordered pairs × 10 over 4 vertices = density 30.
        assert_eq!(outcome.size, 4);
        assert!((outcome.density - 30.0).abs() < 1e-9);
        assert!((outcome.baseline_density - baseline).abs() < 1e-12);
        assert!(outcome.density >= baseline);
        assert_eq!(
            outcome.members,
            vec![v(100), v(101), v(102), v(103)],
            "members come back as sorted global ids"
        );
    }

    #[test]
    fn disjoint_regions_never_merge() {
        let a = region_from_edges(&[(0, 1, 8.0), (1, 0, 8.0)], 1);
        let b = region_from_edges(&[(10, 11, 6.0), (11, 10, 6.0)], 1);
        let mut scratch = RepairScratch::new();
        let outcome = repair_regions(&[(0, a), (1, b)], &mut scratch);
        assert!(!outcome.repaired);
        assert_eq!(outcome.groups_merged, 0);
        assert!(outcome.merged_shards.is_empty());
        // The densest single-shard candidate wins untouched.
        assert!((outcome.density - 8.0).abs() < 1e-12);
        assert_eq!(outcome.members, vec![v(0), v(1)]);
        assert_eq!(outcome.baseline_shard, 0);
    }

    #[test]
    fn repaired_density_never_below_any_shard() {
        // A merged group where the union re-peel's best suffix could
        // differ: shard 1's candidate is denser than what a naive union
        // peel of mostly-noise structure would pick. The floor evaluation
        // keeps the answer ≥ every local density.
        let a = region_from_edges(
            &[(0, 1, 2.0), (1, 2, 2.0), (2, 3, 2.0), (3, 4, 2.0), (4, 0, 2.0)],
            1,
        );
        let b = region_from_edges(&[(2, 7, 30.0), (7, 2, 30.0)], 1);
        let locals = [a.density, b.density];
        let mut scratch = RepairScratch::new();
        let outcome = repair_regions(&[(0, a), (1, b)], &mut scratch);
        for d in locals {
            assert!(outcome.density >= d - 1e-9, "repaired {} < local {d}", outcome.density);
        }
    }

    #[test]
    fn corrupt_regions_are_skipped_not_fatal() {
        let good = region_from_edges(&[(0, 1, 5.0), (1, 0, 5.0)], 1);
        let mut bad = region_from_edges(&[(0, 2, 9.0), (2, 0, 9.0)], 1);
        bad.encoded[0] ^= 0xFF;
        let mut scratch = RepairScratch::new();
        let outcome = repair_regions(&[(0, good), (1, bad)], &mut scratch);
        assert_eq!(outcome.corrupt_regions, 1);
        assert!((outcome.density - 5.0).abs() < 1e-12);
    }

    #[test]
    fn empty_input_yields_default_outcome() {
        let mut scratch = RepairScratch::new();
        let outcome = repair_regions(&[], &mut scratch);
        assert_eq!(outcome.size, 0);
        assert!(!outcome.repaired);
        assert!(outcome.regions.is_empty());
    }

    #[test]
    fn scratch_is_reusable_across_passes() {
        let mut scratch = RepairScratch::new();
        let first = repair_regions(&split_ring_regions(), &mut scratch);
        let second = repair_regions(&split_ring_regions(), &mut scratch);
        assert_eq!(first.members, second.members);
        assert!((first.density - second.density).abs() < 1e-12);
        // And a different workload through the same scratch stays exact.
        let a = region_from_edges(&[(0, 1, 8.0), (1, 0, 8.0)], 1);
        let third = repair_regions(&[(0, a)], &mut scratch);
        assert_eq!(third.members, vec![v(0), v(1)]);
    }
}
