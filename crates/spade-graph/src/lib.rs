//! # spade-graph
//!
//! Dynamic directed weighted graph substrate for the Spade fraud-detection
//! framework (Jiang et al., *Spade: A Real-Time Fraud Detection Framework on
//! Evolving Graphs*, PVLDB 16(3)).
//!
//! The paper's transaction graph model (§2.1) is a directed graph
//! `G = (V, E)` where every vertex `u_i` carries a non-negative
//! *suspiciousness* weight `a_i >= 0` and every edge `(u_i, u_j)` carries a
//! strictly positive suspiciousness weight `c_ij > 0`. Transaction graphs
//! evolve by edge insertion (single or batched); the Appendix C extensions
//! additionally require edge deletion.
//!
//! This crate provides:
//!
//! * [`DynamicGraph`] — an adjacency-list graph supporting O(1) amortized
//!   edge insertion, O(1) edge-weight lookup/accumulation, O(1) deletion,
//!   and the running aggregates the peeling algorithms need
//!   (`f(V)` total weight, per-vertex incident weight `w_u(V)`).
//! * [`CsrGraph`] — an immutable compressed-sparse-row snapshot used by the
//!   static (from-scratch) peeling baselines for cache-friendly traversal.
//! * [`stats`] — degree distributions and summary statistics (paper Fig. 9b).
//! * [`io`] — plain-text edge-list readers/writers and a string interner for
//!   datasets with external vertex labels.

pub mod csr;
pub mod error;
pub mod graph;
pub mod hash;
pub mod id;
pub mod io;
pub mod stats;

pub use csr::CsrGraph;
pub use error::GraphError;
pub use graph::{DynamicGraph, EdgeInsertion, Neighbor};
pub use id::{EdgeRef, VertexId};

/// Result alias used across the graph substrate.
pub type Result<T> = std::result::Result<T, GraphError>;
