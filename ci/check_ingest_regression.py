#!/usr/bin/env python3
"""Throughput regression gate over BENCH_ingest.json trajectories.

Compares a freshly measured ingest trajectory against the committed
baseline and fails (exit 1) when any `bursty` sample's edges/sec drops by
more than the allowed fraction. Drip samples are reported but never gate:
they measure round-trip latency, which is far noisier across runner
generations than sustained throughput.

Caveat: the committed baseline is machine-specific (currently measured on
the 1-hardware-thread build container). If CI runner hardware changes or
the gate flakes without a code change, regenerate the baseline on the new
runner class (`cargo run --release -p spade-bench --bin bench_ingest`)
and commit it alongside a note in EXPERIMENTS.md.

Tolerance notes: the runtime metrics registry (per-stage latency
histograms on every applied edge) is always on and is included in the
committed baseline, so the gate also bounds instrumentation cost — the
hot path does two `Instant` reads and a handful of relaxed atomic
increments per drained batch, no allocation, measured under 5% on the
bursty path at the coalesce caps that matter (>=64). Samples also carry
`queue_wait_*_ns` / `publish_*_ns` stage quantiles; most are
informational (EXPERIMENTS.md), since queue-wait scales with backlog
depth rather than code quality — EXCEPT at the default operating point
(bursty, coalesce=256), whose `queue_wait_p99_ns` gates alongside
throughput: the SLO scheduler work made tail queue wait a first-class
deliverable, and a >20% p99 rise at the default config fails the build
even when throughput holds.

Usage:
    ci/check_ingest_regression.py BASELINE.json FRESH.json \
        [--max-drop 0.20] [--max-wait-rise 0.20]
    ci/check_ingest_regression.py --self-test
"""

import argparse
import json
import sys


def samples_by_key(trajectory):
    return {
        (s["scenario"], s["coalesce"]): s
        for s in trajectory["samples"]
    }


def self_test():
    """Re-runs this gate against the committed fixtures: an unchanged
    trajectory must pass and a 50% bursty throughput drop must fail."""
    import os
    import subprocess

    fixtures = os.path.join(os.path.dirname(os.path.abspath(__file__)), "fixtures")
    script = os.path.abspath(__file__)
    baseline = os.path.join(fixtures, "ingest_baseline.json")
    cases = [
        (True, [baseline, baseline]),
        (False, [baseline, os.path.join(fixtures, "ingest_fresh_bad.json")]),
    ]
    for expect_ok, argv in cases:
        proc = subprocess.run([sys.executable, script, *argv],
                              capture_output=True, text=True)
        ok = proc.returncode == 0
        if ok != expect_ok:
            print(proc.stdout)
            print(proc.stderr, file=sys.stderr)
            sys.exit(f"FAIL: self-test case {argv} expected "
                     f"{'pass' if expect_ok else 'fail'} but got rc "
                     f"{proc.returncode}")
    print("OK: self-test — unchanged trajectory passes, 50% bursty drop fails")
    return 0


def main():
    if "--self-test" in sys.argv[1:]:
        return self_test()

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed BENCH_ingest.json")
    parser.add_argument("fresh", help="freshly measured trajectory")
    parser.add_argument(
        "--max-drop",
        type=float,
        default=0.20,
        help="maximum tolerated fractional drop in bursty edges/sec (default 0.20)",
    )
    parser.add_argument(
        "--max-wait-rise",
        type=float,
        default=0.20,
        help="maximum tolerated fractional rise in queue_wait_p99_ns at the "
             "default config (bursty, coalesce=256) (default 0.20)",
    )
    args = parser.parse_args()

    with open(args.baseline) as f:
        baseline = samples_by_key(json.load(f))
    with open(args.fresh) as f:
        fresh = samples_by_key(json.load(f))

    failures = []
    rows = []
    for key in sorted(baseline, key=str):
        if key not in fresh:
            failures.append(f"sample {key} missing from the fresh trajectory")
            continue
        base_tps = baseline[key]["throughput_eps"]
        fresh_tps = fresh[key]["throughput_eps"]
        ratio = fresh_tps / base_tps if base_tps > 0 else float("inf")
        gated = key[0] == "bursty"
        verdict = "ok"
        if gated and ratio < 1.0 - args.max_drop:
            verdict = "REGRESSION"
            failures.append(
                f"{key[0]} coalesce={key[1]}: {fresh_tps:,.0f} tx/s is "
                f"{(1.0 - ratio) * 100:.1f}% below the baseline {base_tps:,.0f} tx/s"
            )
        rows.append(
            (key[0], key[1], base_tps, fresh_tps, ratio, verdict if gated else "info")
        )

    # Tail-latency gate at the default operating point only: elsewhere
    # queue wait is backlog-bound and machine-noisy, but the default
    # config is what every quickstart and the serve path run, and the
    # deadline scheduler exists to keep its tail down.
    default_key = ("bursty", 256)
    if default_key in baseline and default_key in fresh:
        base_p99 = baseline[default_key].get("queue_wait_p99_ns", 0)
        fresh_p99 = fresh[default_key].get("queue_wait_p99_ns", 0)
        if base_p99 > 0:
            rise = fresh_p99 / base_p99 - 1.0
            verdict = "ok"
            if rise > args.max_wait_rise:
                verdict = "REGRESSION"
                failures.append(
                    f"bursty coalesce=256 queue_wait_p99_ns rose "
                    f"{rise * 100:.1f}%: {base_p99:,} -> {fresh_p99:,} ns"
                )
            print(f"queue_wait_p99_ns at bursty/256: {base_p99:,} -> "
                  f"{fresh_p99:,} ns ({rise:+.1%})  {verdict}\n")

    print(f"{'scenario':>10} {'coalesce':>8} {'baseline tx/s':>14} "
          f"{'fresh tx/s':>12} {'ratio':>6}  verdict")
    for scenario, coalesce, base_tps, fresh_tps, ratio, verdict in rows:
        print(f"{scenario:>10} {coalesce:>8} {base_tps:>14,.0f} "
              f"{fresh_tps:>12,.0f} {ratio:>6.2f}  {verdict}")

    if failures:
        print("\nFAIL: ingest gates regressed:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"\nOK: no bursty sample dropped more than {args.max_drop * 100:.0f}% "
          f"and default-config p99 queue wait rose at most "
          f"{args.max_wait_rise * 100:.0f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
