//! Dense-subgraph enumeration (Appendix C.2, Fig. 14/15).
//!
//! One detected dense subgraph can contain several independent fraud
//! instances (Fig. 14): peeling returns their union when their densities
//! tie. To report individual instances to moderators, Spade repeatedly
//! detects the densest community, removes it from the graph, and detects
//! again until the residual density falls below a floor.
//!
//! Two implementations:
//!
//! * [`enumerate_static`] re-peels the residual graph from scratch each
//!   round — the baseline Appendix C.2 describes first;
//! * [`enumerate_incremental`] removes the community's incident edges
//!   through the deletion reordering (Appendix C.1), avoiding full
//!   re-peels — the "remark" optimization of C.2. It consumes the engine;
//!   clone the engine first if it is still needed.

use crate::engine::SpadeEngine;
use crate::metric::DensityMetric;
use crate::peel::peel;
use spade_graph::{DynamicGraph, VertexId};

/// One enumerated fraud instance.
#[derive(Clone, Debug, PartialEq)]
pub struct FraudInstance {
    /// Community members.
    pub members: Vec<VertexId>,
    /// Density `g` of the community at extraction time.
    pub density: f64,
}

/// Options bounding an enumeration run.
#[derive(Clone, Copy, Debug)]
pub struct EnumerationConfig {
    /// Stop after this many instances (0 = unbounded).
    pub max_instances: usize,
    /// Stop when the next community's density falls below this floor.
    pub min_density: f64,
    /// Split each detected community into weakly connected components —
    /// tied-density instances are returned as a union by peeling (Fig. 14)
    /// and the paper "enumerates these instances" individually
    /// (Appendix B). Default on.
    pub split_components: bool,
}

impl Default for EnumerationConfig {
    fn default() -> Self {
        EnumerationConfig { max_instances: 0, min_density: f64::EPSILON, split_components: true }
    }
}

/// Splits `members` into weakly connected components of the induced
/// subgraph and reports each with its own density; single-component
/// communities come back unchanged.
fn split_instances(g: &DynamicGraph, members: &[VertexId], density: f64) -> Vec<FraudInstance> {
    use spade_graph::hash::FxHashMap;
    let mut index: FxHashMap<u32, usize> = FxHashMap::default();
    for (i, m) in members.iter().enumerate() {
        index.insert(m.0, i);
    }
    let mut component = vec![usize::MAX; members.len()];
    let mut stack = Vec::new();
    let mut n_comp = 0usize;
    for i in 0..members.len() {
        if component[i] != usize::MAX {
            continue;
        }
        component[i] = n_comp;
        stack.push(i);
        while let Some(j) = stack.pop() {
            for nb in g.neighbors(members[j]) {
                if let Some(&k) = index.get(&nb.v.0) {
                    if component[k] == usize::MAX {
                        component[k] = n_comp;
                        stack.push(k);
                    }
                }
            }
        }
        n_comp += 1;
    }
    if n_comp <= 1 {
        return vec![FraudInstance { members: members.to_vec(), density }];
    }
    let mut groups: Vec<Vec<VertexId>> = vec![Vec::new(); n_comp];
    for (i, &c) in component.iter().enumerate() {
        groups[c].push(members[i]);
    }
    groups
        .into_iter()
        .map(|group| {
            let mut f: f64 = group.iter().map(|&u| g.vertex_weight(u)).sum();
            for &u in &group {
                for nb in g.out_neighbors(u) {
                    if index.contains_key(&nb.v.0)
                        && component[index[&nb.v.0]] == component[index[&u.0]]
                    {
                        f += nb.w;
                    }
                }
            }
            let density = f / group.len() as f64;
            FraudInstance { members: group, density }
        })
        .collect()
}

/// Enumerates dense communities by re-peeling the residual graph from
/// scratch after each extraction. Operates on a private copy of `graph`.
pub fn enumerate_static(graph: &DynamicGraph, config: EnumerationConfig) -> Vec<FraudInstance> {
    let mut g = graph.clone();
    let mut out = Vec::new();
    loop {
        if config.max_instances > 0 && out.len() >= config.max_instances {
            break;
        }
        let outcome = peel(&g);
        if outcome.order.is_empty() || outcome.best_density < config.min_density {
            break;
        }
        let members = outcome.community().to_vec();
        remove_members(&mut g, &members);
        if config.split_components {
            out.extend(split_instances(graph, &members, outcome.best_density));
        } else {
            out.push(FraudInstance { members, density: outcome.best_density });
        }
    }
    out
}

/// Enumerates dense communities through incremental deletion reordering:
/// each extracted community's incident edges are deleted one at a time via
/// Appendix C.1's pass, so no full re-peel happens. Destroys the engine's
/// content (the graph ends up sparse); clone beforehand if needed.
pub fn enumerate_incremental<M: DensityMetric>(
    engine: &mut SpadeEngine<M>,
    config: EnumerationConfig,
) -> Vec<FraudInstance> {
    let mut out = Vec::new();
    loop {
        if config.max_instances > 0 && out.len() >= config.max_instances {
            break;
        }
        let det = engine.detect();
        if det.size == 0 || det.density < config.min_density {
            break;
        }
        let members = engine.community(det).to_vec();
        let split = if config.split_components {
            Some(split_instances(engine.graph(), &members, det.density))
        } else {
            None
        };
        // Zero the members' vertex weights and drop their incident edges,
        // restoring the peeling invariant after every deletion.
        let mut edges = Vec::new();
        for &u in &members {
            for nb in engine.graph().out_neighbors(u) {
                edges.push((u, nb.v));
            }
            for nb in engine.graph().in_neighbors(u) {
                edges.push((nb.v, u));
            }
        }
        edges.sort_unstable_by_key(|&(a, b)| (a.0, b.0));
        edges.dedup();
        for (a, b) in edges {
            // Edges inside the community appear from both endpoints; the
            // first deletion removes them, so tolerate "not found".
            let _ = engine.delete_edge(a, b);
        }
        for &u in &members {
            engine
                .set_vertex_suspiciousness(u, 0.0)
                .expect("clearing prior suspiciousness cannot fail");
        }
        match split {
            Some(instances) => out.extend(instances),
            None => out.push(FraudInstance { members, density: det.density }),
        }
    }
    out
}

fn remove_members(g: &mut DynamicGraph, members: &[VertexId]) {
    for &u in members {
        let mut edges: Vec<(VertexId, VertexId)> = Vec::with_capacity(g.degree(u));
        for nb in g.out_neighbors(u) {
            edges.push((u, nb.v));
        }
        for nb in g.in_neighbors(u) {
            edges.push((nb.v, u));
        }
        for (a, b) in edges {
            let _ = g.delete_edge(a, b);
        }
        g.set_vertex_weight(u, 0.0).expect("zeroing vertex weight cannot fail");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::WeightedDensity;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    /// Two planted blocks of different densities plus background noise.
    fn two_block_graph() -> DynamicGraph {
        let mut g = DynamicGraph::new();
        for _ in 0..14 {
            g.add_vertex(0.0).unwrap();
        }
        // Block A (vertices 0..4): weight-10 clique, density 15.
        for a in 0..4u32 {
            for b in (a + 1)..4 {
                g.insert_edge(v(a), v(b), 10.0).unwrap();
            }
        }
        // Block B (vertices 4..8): weight-4 clique, density 6.
        for a in 4..8u32 {
            for b in (a + 1)..8 {
                g.insert_edge(v(a), v(b), 4.0).unwrap();
            }
        }
        // Background path.
        for i in 8..13u32 {
            g.insert_edge(v(i), v(i + 1), 1.0).unwrap();
        }
        g
    }

    #[test]
    fn static_enumeration_finds_both_blocks_in_density_order() {
        let g = two_block_graph();
        let instances = enumerate_static(
            &g,
            EnumerationConfig { max_instances: 2, min_density: 1.0, ..Default::default() },
        );
        assert_eq!(instances.len(), 2);
        let mut a: Vec<u32> = instances[0].members.iter().map(|u| u.0).collect();
        a.sort_unstable();
        assert_eq!(a, vec![0, 1, 2, 3]);
        assert!((instances[0].density - 15.0).abs() < 1e-9);
        let mut b: Vec<u32> = instances[1].members.iter().map(|u| u.0).collect();
        b.sort_unstable();
        assert_eq!(b, vec![4, 5, 6, 7]);
        assert!((instances[1].density - 6.0).abs() < 1e-9);
        assert!(instances[0].density >= instances[1].density);
    }

    #[test]
    fn min_density_floor_stops_enumeration() {
        let g = two_block_graph();
        let instances = enumerate_static(
            &g,
            EnumerationConfig { max_instances: 0, min_density: 10.0, ..Default::default() },
        );
        assert_eq!(instances.len(), 1);
    }

    #[test]
    fn incremental_enumeration_matches_static() {
        let g = two_block_graph();
        let config = EnumerationConfig { max_instances: 0, min_density: 1.0, ..Default::default() };
        let want = enumerate_static(&g, config);

        let mut engine = SpadeEngine::from_weighted_graph(
            g,
            WeightedDensity,
            crate::engine::SpadeConfig::default(),
        );
        let got = enumerate_incremental(&mut engine, config);
        assert_eq!(want.len(), got.len());
        for (wi, gi) in want.iter().zip(&got) {
            let mut a: Vec<u32> = wi.members.iter().map(|u| u.0).collect();
            let mut b: Vec<u32> = gi.members.iter().map(|u| u.0).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
            assert!((wi.density - gi.density).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_graph_enumerates_nothing() {
        let g = DynamicGraph::new();
        assert!(enumerate_static(&g, EnumerationConfig::default()).is_empty());
    }

    #[test]
    fn tied_densities_enumerate_as_union_then_split() {
        // Fig. 14: disjoint same-density blocks are returned together by a
        // single detection; enumeration splits them across rounds only if
        // removal separates them. Here the union is one detection.
        let mut g = DynamicGraph::new();
        for _ in 0..8 {
            g.add_vertex(0.0).unwrap();
        }
        for base in [0u32, 4u32] {
            for a in base..base + 4 {
                for b in (a + 1)..base + 4 {
                    g.insert_edge(v(a), v(b), 2.0).unwrap();
                }
            }
        }
        let union_only = enumerate_static(
            &g,
            EnumerationConfig { split_components: false, ..Default::default() },
        );
        assert_eq!(union_only.len(), 1, "tied blocks form one dense union (Fig. 14)");
        assert_eq!(union_only[0].members.len(), 8);
        // With component splitting (the default), the union separates into
        // the two planted blocks, each with its own density.
        let split = enumerate_static(&g, EnumerationConfig::default());
        assert_eq!(split.len(), 2);
        for inst in &split {
            assert_eq!(inst.members.len(), 4);
            assert!((inst.density - 3.0).abs() < 1e-9); // 6 edges * 2 / 4
        }
    }
}
