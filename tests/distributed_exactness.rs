//! The multi-process half of the `cross-shard-exactness` CI gate.
//!
//! A router drives N ∈ {2, 4} **real shard-server child processes**
//! (`shardd`, one detection engine each) over the protocol-v3 wire:
//! hash-routed ingest with replicated journaling, then the cross-shard
//! repair pass pulled over `Region` frames. The repaired detection must
//! equal the solo engine — same members, same density — exactly as the
//! in-process and single-server TCP gates prove for their topologies.
//! Accounting is exact at shutdown: the router's acked count equals the
//! shards' applied-update total (no acknowledged edge lost, none
//! double-applied), and consolidation moves the stitched community whole
//! onto its baseline shard whose *local* detection then matches solo.

mod distributed_harness;

use distributed_harness::{seeded_injected_stream, solo_detection, ShardProc};
use spade::graph::VertexId;
use spade::net::{RouterConfig, SpadeRouter};

fn assert_distributed_exactness(num_shards: usize) {
    let edges: Vec<(VertexId, VertexId, f64)> =
        seeded_injected_stream().iter().map(|e| (e.src, e.dst, e.raw)).collect();
    let (want_size, want_density, want_members) = solo_detection(&edges);
    assert!(want_size > 0, "the seeded dataset must contain a detectable community");

    let mut shards: Vec<ShardProc> = (0..num_shards).map(|_| ShardProc::spawn()).collect();
    let addrs: Vec<String> = shards.iter().map(|s| s.addr.clone()).collect();
    let mut router = SpadeRouter::connect(&addrs, RouterConfig::default()).expect("connect router");

    for &(src, dst, raw) in &edges {
        router.submit(src, dst, raw).expect("submit");
    }
    router.flush_batches().expect("flush");
    let stats = router.stats();
    assert_eq!(stats.edges_submitted, edges.len() as u64);
    assert_eq!(stats.edges_acked, edges.len() as u64, "every edge must be acknowledged");
    assert_eq!(stats.deferred_batches, 0, "no shard died; nothing may defer");

    // The premise: hash routing across processes dilutes the community…
    let outcome = router.repair().expect("repair");
    assert!(
        outcome.baseline_density < want_density * (1.0 - 1e-9),
        "N={num_shards}: expected dilution, got baseline {} vs solo {}",
        outcome.baseline_density,
        want_density
    );
    // …and the over-the-wire repair pass recovers solo exactness.
    let got: Vec<u32> = outcome.members.iter().map(|m| m.0).collect();
    assert_eq!(got, want_members, "N={num_shards}: repaired members diverge from solo");
    assert_eq!(outcome.size, want_size, "N={num_shards}: size mismatch");
    assert!(
        (outcome.density - want_density).abs() < 1e-9,
        "N={num_shards}: repaired density {} vs solo {}",
        outcome.density,
        want_density
    );

    // acked == applied: each edge landed in exactly one live engine.
    let applied: u64 = router
        .shard_stats()
        .expect("shard stats")
        .into_iter()
        .map(|s| s.expect("every shard is live").updates_applied)
        .sum();
    assert_eq!(applied, stats.edges_acked, "N={num_shards}: acked-edge count != applied total");

    // Consolidation over the wire: migrate the community whole onto the
    // baseline shard; its local detection is then exact without repair.
    let moved = router.consolidate(&outcome).expect("consolidate");
    assert!(moved > 0, "N={num_shards}: a split community must move edges");
    let baseline = router.detect(outcome.baseline_shard).expect("baseline detect");
    let mut local: Vec<u32> = baseline.members.iter().map(|m| m.0).collect();
    local.sort_unstable();
    assert_eq!(local, want_members, "N={num_shards}: post-consolidation members diverge");
    assert!(
        baseline.density >= want_density * (1.0 - 1e-9),
        "N={num_shards}: post-consolidation density {} below solo {}",
        baseline.density,
        want_density
    );

    router.shutdown_shards().expect("shutdown");
    for shard in &mut shards {
        shard.wait();
    }
    println!(
        "N={num_shards}: {} edges across {num_shards} processes, diluted {:.3} repaired to \
         {:.3} (solo {:.3}, {} members), {} edges consolidated",
        stats.edges_acked,
        outcome.baseline_density,
        outcome.density,
        want_density,
        want_size,
        moved,
    );
}

#[test]
fn router_and_2_shard_processes_recover_solo_exactness() {
    assert_distributed_exactness(2);
}

#[test]
fn router_and_4_shard_processes_recover_solo_exactness() {
    assert_distributed_exactness(4);
}
