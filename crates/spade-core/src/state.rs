//! The live peeling state maintained between updates.
//!
//! Spade stores the peeling sequence `_seq` and the peeling weights
//! `_weight` (Listing 1). Two storage subtleties matter for real-time
//! updates:
//!
//! * **Head insertions are O(1).** New vertices enter at the *head* of the
//!   peeling sequence (§4.1). We key physical storage by *rank* — the size
//!   of the suffix a vertex belongs to, i.e. `rank = n - logical_position`.
//!   Ranks of existing vertices are invariant under head insertion (both
//!   `n` and the position shift by one), so a head insertion is a plain
//!   `push` and no stored index ever needs fixing.
//! * **Suffix prefix-sums are detection-ready.** `f(S_k)` for the suffix of
//!   size `r = n - k` is exactly the prefix sum of the first `r` physical
//!   weights, so the density `g(S_k) = f(S_k)/|S_k|` over every candidate
//!   community is `prefix_sum(r) / r` — the quantity the
//!   [`crate::kinetic`] index maintains.
//!
//! Logical accessors (`vertex_at`, `delta_at`, `position_of`) hide the
//! reversed layout from the reordering algorithms.

use crate::order::{MinQueue, PeelKey};
use crate::peel::PeelingOutcome;
use spade_graph::{DynamicGraph, VertexId};

/// A detected fraudulent community: the densest suffix of the peeling
/// sequence.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Detection {
    /// Number of vertices in the community (`|S_P|`).
    pub size: usize,
    /// Its density `g(S_P)`.
    pub density: f64,
}

impl Detection {
    /// Detection over an empty graph.
    pub const EMPTY: Detection = Detection { size: 0, density: 0.0 };
}

/// The peeling sequence, peeling weights, and the vertex→rank map.
#[derive(Clone, Debug, Default)]
pub struct PeelingState {
    /// `seq_phys[r - 1]` = the vertex of rank `r` (rank 1 = peeled last =
    /// densest end).
    seq_phys: Vec<VertexId>,
    /// Peeling weight parallel to `seq_phys`.
    delta_phys: Vec<f64>,
    /// 1-based rank per vertex; 0 = vertex not present in the state.
    rank: Vec<u32>,
}

impl PeelingState {
    /// Empty state (no vertices peeled yet).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds the state from a completed static peel.
    pub fn from_outcome(outcome: &PeelingOutcome) -> Self {
        let n = outcome.order.len();
        let mut seq_phys = Vec::with_capacity(n);
        let mut delta_phys = Vec::with_capacity(n);
        for i in (0..n).rev() {
            seq_phys.push(outcome.order[i]);
            delta_phys.push(outcome.weights[i]);
        }
        let mut rank = Vec::new();
        for (phys, &u) in seq_phys.iter().enumerate() {
            if u.index() >= rank.len() {
                rank.resize(u.index() + 1, 0);
            }
            rank[u.index()] = (phys + 1) as u32;
        }
        PeelingState { seq_phys, delta_phys, rank }
    }

    /// Number of vertices in the sequence.
    #[inline(always)]
    pub fn len(&self) -> usize {
        self.seq_phys.len()
    }

    /// `true` when no vertices are tracked.
    #[inline(always)]
    pub fn is_empty(&self) -> bool {
        self.seq_phys.is_empty()
    }

    /// `true` if `u` is tracked by the state.
    #[inline(always)]
    pub fn contains(&self, u: VertexId) -> bool {
        u.index() < self.rank.len() && self.rank[u.index()] != 0
    }

    /// The logical peeling position of `u` (0 = peeled first).
    #[inline(always)]
    pub fn position_of(&self, u: VertexId) -> usize {
        debug_assert!(self.contains(u), "position_of on untracked vertex {u}");
        self.seq_phys.len() - self.rank[u.index()] as usize
    }

    /// The vertex at logical position `i`.
    #[inline(always)]
    pub fn vertex_at(&self, i: usize) -> VertexId {
        self.seq_phys[self.seq_phys.len() - 1 - i]
    }

    /// The recorded peeling weight at logical position `i`.
    #[inline(always)]
    pub fn delta_at(&self, i: usize) -> f64 {
        self.delta_phys[self.delta_phys.len() - 1 - i]
    }

    /// The `(weight, id)` peeling key at logical position `i`.
    #[inline(always)]
    pub fn key_at(&self, i: usize) -> PeelKey {
        let phys = self.seq_phys.len() - 1 - i;
        PeelKey::new(self.delta_phys[phys], self.seq_phys[phys])
    }

    /// Physical (rank-space) view of the peeling weights: index `r - 1`
    /// holds the weight of the rank-`r` vertex. Prefix sums of this slice
    /// are the suffix suspiciousness values `f(S_{n-r})`.
    #[inline(always)]
    pub fn delta_phys(&self) -> &[f64] {
        &self.delta_phys
    }

    /// Physical (rank-space) view of the sequence.
    #[inline(always)]
    pub fn seq_phys(&self) -> &[VertexId] {
        &self.seq_phys
    }

    /// Inserts a new vertex at the head of the sequence (§4.1) with its
    /// current true peeling weight (`a_u` for an isolated newcomer). O(1).
    pub fn push_front(&mut self, u: VertexId, delta: f64) {
        assert!(!self.contains(u), "vertex {u} already tracked");
        if u.index() >= self.rank.len() {
            self.rank.resize(u.index() + 1, 0);
        }
        self.seq_phys.push(u);
        self.delta_phys.push(delta);
        self.rank[u.index()] = self.seq_phys.len() as u32;
    }

    /// Overwrites the logical window `[start, start + entries.len())` with
    /// `entries` (in logical order) and refreshes the rank map.
    ///
    /// Returns the physical range `[lo, hi)` that changed, for feeding the
    /// density index.
    pub fn write_window(&mut self, start: usize, entries: &[(VertexId, f64)]) -> (usize, usize) {
        let n = self.seq_phys.len();
        let end = start + entries.len();
        debug_assert!(end <= n, "window exceeds sequence");
        for (j, &(u, w)) in entries.iter().enumerate() {
            let logical = start + j;
            let phys = n - 1 - logical;
            self.seq_phys[phys] = u;
            self.delta_phys[phys] = w;
            self.rank[u.index()] = (phys + 1) as u32;
        }
        (n - end, n - start)
    }

    /// Exact detection by scanning every suffix size: returns the maximum
    /// of `prefix_sum(r)/r`, preferring the **larger** community on density
    /// ties (matching the static peel, which keeps the first maximum seen
    /// while removing vertices). A graph with no suspiciousness at all
    /// (every candidate density zero) reports [`Detection::EMPTY`] — there
    /// is no community worth a moderator's attention.
    pub fn scan_detect(&self) -> Detection {
        let mut best = Detection::EMPTY;
        let mut sum = 0.0;
        for (i, &d) in self.delta_phys.iter().enumerate() {
            sum += d;
            let density = sum / (i + 1) as f64;
            if density > 0.0 && density >= best.density {
                best = Detection { size: i + 1, density };
            }
        }
        best
    }

    /// The community of the given size: the `size` highest-rank vertices
    /// (a physical prefix — O(1) slice).
    pub fn community(&self, size: usize) -> &[VertexId] {
        &self.seq_phys[..size]
    }

    /// The peeling sequence in logical order (peeled-first first). O(n);
    /// intended for tests and reporting.
    pub fn logical_order(&self) -> Vec<VertexId> {
        self.seq_phys.iter().rev().copied().collect()
    }

    /// The peeling weights in logical order. O(n); for tests/reporting.
    pub fn logical_weights(&self) -> Vec<f64> {
        self.delta_phys.iter().rev().copied().collect()
    }

    /// Verifies that this state is a valid greedy peel of `graph`: at
    /// every step the stored vertex's live weight must match the stored
    /// weight within `tol` and must be within `tol` of the global minimum
    /// over the remaining set. O(|E| log |V|). Panics on violation;
    /// intended for tests.
    ///
    /// The tolerance exists for metrics with irrational weights (FD's
    /// `1/ln`), where incremental and from-scratch float summation orders
    /// legitimately differ in the last bits; integer-weight tests combine
    /// this check with exact sequence comparison against a fresh peel.
    pub fn validate_greedy(&self, graph: &DynamicGraph, tol: f64) {
        assert_eq!(self.len(), graph.num_vertices(), "state covers a different vertex set");
        let mut queue = MinQueue::new();
        queue.reset(graph.num_vertices());
        for u in graph.vertices() {
            queue.insert(u, graph.incident_weight(u));
        }
        for i in 0..self.len() {
            let u = self.vertex_at(i);
            assert!(queue.contains(u), "position {i}: {u} appears twice in the sequence");
            let live = queue.weight_of(u);
            assert!(
                (live - self.delta_at(i)).abs() <= tol,
                "position {i} ({u}): stored weight {}, live weight {live}",
                self.delta_at(i),
            );
            let min = queue.peek().expect("queue exhausted early").weight;
            assert!(
                live <= min + tol,
                "position {i}: {u} (weight {live}) is not the minimum (min {min})"
            );
            queue.remove(u);
            for nb in graph.neighbors(u) {
                if queue.contains(nb.v) {
                    queue.add_weight(nb.v, -nb.w);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::peel::peel;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    fn sample_graph() -> DynamicGraph {
        let mut g = DynamicGraph::new();
        for _ in 0..5 {
            g.add_vertex(0.0).unwrap();
        }
        g.insert_edge(v(0), v(1), 2.0).unwrap();
        g.insert_edge(v(1), v(2), 1.0).unwrap();
        g.insert_edge(v(1), v(4), 4.0).unwrap();
        g.insert_edge(v(3), v(4), 2.0).unwrap();
        g.insert_edge(v(0), v(3), 2.0).unwrap();
        g
    }

    #[test]
    fn from_outcome_roundtrips_logical_order() {
        let g = sample_graph();
        let out = peel(&g);
        let st = PeelingState::from_outcome(&out);
        assert_eq!(st.len(), 5);
        assert_eq!(st.logical_order(), out.order);
        assert_eq!(st.logical_weights(), out.weights);
        for (i, &u) in out.order.iter().enumerate() {
            assert_eq!(st.position_of(u), i);
            assert_eq!(st.vertex_at(i), u);
            assert_eq!(st.delta_at(i), out.weights[i]);
        }
    }

    #[test]
    fn scan_detect_matches_static_peel() {
        let g = sample_graph();
        let out = peel(&g);
        let st = PeelingState::from_outcome(&out);
        let det = st.scan_detect();
        assert_eq!(det.size, out.order.len() - out.best_prefix);
        assert!((det.density - out.best_density).abs() < 1e-9);
        // Community contents agree as sets.
        let mut a: Vec<u32> = st.community(det.size).iter().map(|u| u.0).collect();
        let mut b: Vec<u32> = out.community().iter().map(|u| u.0).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn push_front_keeps_ranks_stable() {
        let g = sample_graph();
        let st0 = PeelingState::from_outcome(&peel(&g));
        let mut st = st0.clone();
        let newcomer = v(5);
        st.push_front(newcomer, 0.0);
        assert_eq!(st.len(), 6);
        assert_eq!(st.position_of(newcomer), 0);
        assert_eq!(st.vertex_at(0), newcomer);
        assert_eq!(st.delta_at(0), 0.0);
        // Every pre-existing vertex shifted one logical slot but kept rank.
        for i in 0..st0.len() {
            assert_eq!(st.vertex_at(i + 1), st0.vertex_at(i));
            assert_eq!(st.delta_at(i + 1), st0.delta_at(i));
        }
    }

    #[test]
    fn write_window_updates_ranks_and_reports_phys_range() {
        let g = sample_graph();
        let mut st = PeelingState::from_outcome(&peel(&g));
        let before = st.logical_order();
        // Swap logical positions 1 and 2 with synthetic weights.
        let entries = [(before[2], 9.0), (before[1], 11.0)];
        let (lo, hi) = st.write_window(1, &entries);
        assert_eq!((lo, hi), (st.len() - 3, st.len() - 1));
        assert_eq!(st.vertex_at(1), before[2]);
        assert_eq!(st.vertex_at(2), before[1]);
        assert_eq!(st.delta_at(1), 9.0);
        assert_eq!(st.delta_at(2), 11.0);
        assert_eq!(st.position_of(before[2]), 1);
        assert_eq!(st.position_of(before[1]), 2);
        // Untouched positions survive.
        assert_eq!(st.vertex_at(0), before[0]);
        assert_eq!(st.vertex_at(3), before[3]);
    }

    #[test]
    fn validate_greedy_accepts_static_peel() {
        let g = sample_graph();
        let st = PeelingState::from_outcome(&peel(&g));
        st.validate_greedy(&g, 1e-9);
    }

    #[test]
    #[should_panic(expected = "is not the minimum")]
    fn validate_greedy_rejects_non_minimal_first_pick() {
        let g = sample_graph();
        let mut st = PeelingState::from_outcome(&peel(&g));
        // Put the heaviest vertex first with its (correct) live weight:
        // the stored-weight check passes but the minimality check must
        // fire.
        let heavy = g
            .vertices()
            .max_by(|&a, &b| g.incident_weight(a).total_cmp(&g.incident_weight(b)))
            .unwrap();
        st.write_window(0, &[(heavy, g.incident_weight(heavy))]);
        st.validate_greedy(&g, 1e-9);
    }

    #[test]
    #[should_panic(expected = "stored weight")]
    fn validate_greedy_rejects_wrong_stored_weight() {
        let g = sample_graph();
        let mut st = PeelingState::from_outcome(&peel(&g));
        let u = st.vertex_at(0);
        st.write_window(0, &[(u, st.delta_at(0) + 1.0)]);
        st.validate_greedy(&g, 1e-9);
    }

    #[test]
    fn empty_state_detects_nothing() {
        let st = PeelingState::new();
        assert_eq!(st.scan_detect(), Detection::EMPTY);
        assert!(st.is_empty());
    }

    #[test]
    fn detection_prefers_larger_community_on_ties() {
        // Two disjoint unit-weight pairs: every suffix of size 2 and 4 has
        // density 0.5; the scan must keep the larger (size 4... sizes with
        // equal density: r=2 -> 1/2, r=4 -> 2/4). Prefer 4.
        let mut g = DynamicGraph::new();
        for _ in 0..4 {
            g.add_vertex(0.0).unwrap();
        }
        g.insert_edge(v(0), v(1), 1.0).unwrap();
        g.insert_edge(v(2), v(3), 1.0).unwrap();
        let st = PeelingState::from_outcome(&peel(&g));
        let det = st.scan_detect();
        assert_eq!(det.size, 4);
        assert!((det.density - 0.5).abs() < 1e-12);
    }
}
