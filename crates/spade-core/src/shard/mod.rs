//! Sharded parallel detection runtime.
//!
//! The paper's Spade engine is a single-stream system: one engine, one
//! peeling order, one worker thread. Its incremental reordering, however,
//! is *local to a community* (§4.2 — an update perturbs only the window
//! between its endpoints), which means the transaction graph partitions
//! naturally: route each community's edges to one of N parallel engines
//! and every shard maintains an exact Spade detection over its slice of
//! the graph, while ingest throughput scales with cores. A shard's slice
//! equals the whole community when the community's component keeps a
//! single home (the common case for fraud bursts on fresh accounts);
//! communities assembled by merging separately-homed components, or
//! living inside a spilled giant component, are split across shards and
//! their density diluted — see [`partition`] for the exact rules. This is the same
//! path related stream-processing fraud systems take (partitioned
//! detectors over a keyed stream); here it is a first-class subsystem:
//!
//! * [`partition`] — the [`Partitioner`](partition::Partitioner) trait
//!   with hash-by-source and connectivity-aware (union-find with spill)
//!   policies;
//! * [`service`] — [`ShardedSpadeService`](service::ShardedSpadeService),
//!   N worker engines behind bounded queues reusing the single-service
//!   worker loop;
//! * [`aggregate`] — merging per-shard snapshots into a global
//!   densest-community view with per-shard statistics;
//! * [`repair`] — the cross-shard community repair pass: per-shard
//!   candidate regions (community + k-hop frontier, persist-codec bytes)
//!   unioned and re-peeled so hash-split communities recover
//!   single-engine exactness;
//! * [`migrate`] — live component migration (extract → evict → replay
//!   through the persist codec): repairs merge-stranded slices at their
//!   surviving home and sheds pinned components off overloaded shards,
//!   driven by the partitioner's strand events and the [`ShardStats`]
//!   load signal.

pub mod aggregate;
pub mod migrate;
pub mod partition;
pub mod repair;
pub mod service;

pub use aggregate::{DetectionAggregator, GlobalDetection, ShardDetection};
pub use migrate::{
    pick_load_move, pick_load_moves, MigrationPolicy, MigrationRecord, MigrationReport,
    MigrationStats, MigrationTrigger,
};
pub use partition::{
    ConnectivityPartitioner, HashPartitioner, PartitionStrategy, Partitioner, StrandEvent,
};
pub use repair::{
    repair_regions, RegionSummary, RepairConfig, RepairOutcome, RepairScratch, RepairStats,
    RepairedDetection,
};
pub use service::{BatchSubmit, ShardStats, ShardedConfig, ShardedSpadeService};
