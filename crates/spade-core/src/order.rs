//! The peeling total order and the lazy-deletion minimum heap.
//!
//! Peeling (Algorithm 1) repeatedly extracts the vertex with the smallest
//! peeling weight. Weight ties are frequent (DG weights are small integers),
//! so every comparison in this crate uses the *total* order
//! `(weight asc, vertex id desc)` — lexicographic, with `f64::total_cmp`
//! on the weight. Determinism matters twice over: it makes runs
//! reproducible, and it makes the incremental reorderings (§4) produce
//! bit-identical sequences to a from-scratch peel, which the property
//! tests rely on.
//!
//! Ties break toward the **larger id** ("newest first") deliberately:
//! vertex ids are assigned in arrival order, and §4.1 inserts a new vertex
//! at the *head* of the peeling sequence. Under newest-first ties that
//! head placement is exactly what a from-scratch greedy peel would do for
//! a fresh zero-weight vertex, so incremental and static sequences stay
//! bit-identical even across vertex insertions.

use spade_graph::VertexId;
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

/// The `(weight, id)` key ordered lexicographically with total `f64`
/// comparison.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PeelKey {
    /// Current peeling weight.
    pub weight: f64,
    /// Vertex identifier (tie-breaker).
    pub vertex: VertexId,
}

impl PeelKey {
    /// Creates a key.
    #[inline(always)]
    pub fn new(weight: f64, vertex: VertexId) -> Self {
        PeelKey { weight, vertex }
    }
}

impl Eq for PeelKey {}

impl PartialOrd for PeelKey {
    #[inline(always)]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for PeelKey {
    #[inline(always)]
    fn cmp(&self, other: &Self) -> Ordering {
        self.weight.total_cmp(&other.weight).then_with(|| other.vertex.cmp(&self.vertex))
    }
}

/// A minimum priority queue over vertices with updatable weights.
///
/// Implemented as a lazy-deletion binary heap: `update` pushes a fresh
/// entry and remembers the authoritative weight in a side table; `pop`
/// discards entries whose weight no longer matches. This is the standard
/// heap discipline for peeling (decrease-key-heavy, pop-light) and costs
/// `O(log n)` per operation with excellent constants.
#[derive(Clone, Debug, Default)]
pub struct MinQueue {
    heap: BinaryHeap<Reverse<PeelKey>>,
    /// Authoritative current weight per enqueued vertex, keyed densely.
    current: Vec<f64>,
    /// Membership stamp: `live[v] == generation` means `v` is enqueued.
    live: Vec<u64>,
    generation: u64,
    len: usize,
}

impl MinQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears the queue in O(1) amortized by bumping the liveness
    /// generation; reuses allocations across epochs.
    pub fn reset(&mut self, num_vertices: usize) {
        self.heap.clear();
        self.generation += 1;
        if self.current.len() < num_vertices {
            self.current.resize(num_vertices, 0.0);
            self.live.resize(num_vertices, 0);
        }
        self.len = 0;
    }

    /// Number of live entries.
    #[inline(always)]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no live entries remain.
    #[inline(always)]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `true` if `v` is currently enqueued.
    #[inline(always)]
    pub fn contains(&self, v: VertexId) -> bool {
        self.live[v.index()] == self.generation
    }

    /// The authoritative weight of an enqueued vertex.
    ///
    /// # Panics
    /// Panics (in debug builds) if `v` is not enqueued.
    #[inline(always)]
    pub fn weight_of(&self, v: VertexId) -> f64 {
        debug_assert!(self.contains(v), "weight_of on non-member {v}");
        self.current[v.index()]
    }

    /// Inserts `v` with `weight`, or updates its weight if already present.
    #[inline]
    pub fn insert(&mut self, v: VertexId, weight: f64) {
        let idx = v.index();
        if self.live[idx] != self.generation {
            self.live[idx] = self.generation;
            self.len += 1;
        }
        self.current[idx] = weight;
        self.heap.push(Reverse(PeelKey::new(weight, v)));
    }

    /// Adds `delta` to the weight of an enqueued vertex.
    #[inline]
    pub fn add_weight(&mut self, v: VertexId, delta: f64) {
        debug_assert!(self.contains(v), "add_weight on non-member {v}");
        let w = self.current[v.index()] + delta;
        self.current[v.index()] = w;
        self.heap.push(Reverse(PeelKey::new(w, v)));
    }

    /// The smallest live `(weight, id)` key without removing it.
    #[inline]
    pub fn peek(&mut self) -> Option<PeelKey> {
        while let Some(&Reverse(key)) = self.heap.peek() {
            let idx = key.vertex.index();
            if self.live[idx] == self.generation && self.current[idx] == key.weight {
                return Some(key);
            }
            self.heap.pop();
        }
        None
    }

    /// Removes and returns the smallest live `(weight, id)` key.
    #[inline]
    pub fn pop(&mut self) -> Option<PeelKey> {
        let key = self.peek()?;
        self.heap.pop();
        self.live[key.vertex.index()] = 0;
        self.len -= 1;
        Some(key)
    }

    /// Removes an arbitrary member (lazy: stale heap entries are discarded
    /// by later peeks). Returns `true` if `v` was enqueued.
    #[inline]
    pub fn remove(&mut self, v: VertexId) -> bool {
        if self.contains(v) {
            self.live[v.index()] = 0;
            self.len -= 1;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    #[test]
    fn key_orders_by_weight_then_newest_id() {
        let a = PeelKey::new(1.0, v(5));
        let b = PeelKey::new(2.0, v(1));
        let c = PeelKey::new(1.0, v(6));
        assert!(a < b);
        // Equal weights: the newer (larger) id wins.
        assert!(c < a);
        assert!(c < b);
    }

    #[test]
    fn key_total_order_handles_negatives_and_zero() {
        let neg = PeelKey::new(-1.0, v(0));
        let zero = PeelKey::new(0.0, v(0));
        let negzero = PeelKey::new(-0.0, v(0));
        assert!(neg < zero);
        // total_cmp puts -0.0 < +0.0: a stable, documented order.
        assert!(negzero < zero);
    }

    #[test]
    fn pops_in_sorted_order() {
        let mut q = MinQueue::new();
        q.reset(10);
        q.insert(v(3), 5.0);
        q.insert(v(1), 2.0);
        q.insert(v(2), 2.0);
        q.insert(v(0), 9.0);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|k| k.vertex.0).collect();
        // Weight ties (v1, v2 at 2.0) break newest-first.
        assert_eq!(order, vec![2, 1, 3, 0]);
        assert!(q.is_empty());
    }

    #[test]
    fn update_decreases_and_increases() {
        let mut q = MinQueue::new();
        q.reset(4);
        q.insert(v(0), 10.0);
        q.insert(v(1), 20.0);
        q.add_weight(v(1), -15.0); // 1 now at 5.0
        assert_eq!(q.peek().unwrap().vertex, v(1));
        q.insert(v(1), 50.0); // direct overwrite upward
        assert_eq!(q.pop().unwrap().vertex, v(0));
        let last = q.pop().unwrap();
        assert_eq!(last.vertex, v(1));
        assert_eq!(last.weight, 50.0);
    }

    #[test]
    fn reset_reuses_without_leaking_members() {
        let mut q = MinQueue::new();
        q.reset(4);
        q.insert(v(2), 1.0);
        q.reset(4);
        assert!(q.is_empty());
        assert!(!q.contains(v(2)));
        q.insert(v(3), 7.0);
        assert_eq!(q.pop().unwrap().vertex, v(3));
        assert!(q.pop().is_none());
    }

    #[test]
    fn stale_entries_are_discarded() {
        let mut q = MinQueue::new();
        q.reset(4);
        q.insert(v(0), 1.0);
        q.insert(v(0), 3.0);
        q.insert(v(1), 2.0);
        // The stale (1.0, v0) entry must not win.
        assert_eq!(q.pop().unwrap().vertex, v(1));
        assert_eq!(q.pop().unwrap().weight, 3.0);
    }

    #[test]
    fn remove_arbitrary_member() {
        let mut q = MinQueue::new();
        q.reset(4);
        q.insert(v(0), 1.0);
        q.insert(v(1), 2.0);
        q.insert(v(2), 3.0);
        assert!(q.remove(v(0)));
        assert!(!q.remove(v(0)));
        assert!(!q.remove(v(3)));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop().unwrap().vertex, v(1));
        assert_eq!(q.pop().unwrap().vertex, v(2));
    }

    #[test]
    fn len_tracks_live_membership() {
        let mut q = MinQueue::new();
        q.reset(8);
        q.insert(v(0), 1.0);
        q.insert(v(1), 2.0);
        q.insert(v(0), 5.0); // update, not a new member
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }
}
