//! Minimal dependency-free argument parsing for the `spade` binary.
//!
//! The workspace deliberately stays within its approved dependency set, so
//! this is a small hand-rolled parser: positional arguments plus
//! `--flag value` options, with typed accessors and helpful errors.

use std::collections::HashMap;

/// Parsed command line: subcommand, positionals, and `--key value` options.
#[derive(Debug, Default, Clone)]
pub struct Args {
    /// The subcommand (first non-flag token).
    pub command: String,
    /// Positional arguments after the subcommand.
    pub positional: Vec<String>,
    /// `--key value` pairs (bare `--key` stores an empty string).
    pub options: HashMap<String, String>,
}

/// Parse errors with the offending token.
#[derive(Debug, PartialEq, Eq)]
pub enum ArgError {
    /// No subcommand given.
    MissingCommand,
    /// An option required a value (e.g. `--metric` at end of line).
    MissingValue(String),
    /// An option value failed to parse.
    BadValue {
        /// Option name.
        option: String,
        /// The raw value.
        value: String,
        /// What was expected.
        expected: &'static str,
    },
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgError::MissingCommand => write!(f, "missing subcommand; try `spade help`"),
            ArgError::MissingValue(opt) => write!(f, "option --{opt} requires a value"),
            ArgError::BadValue { option, value, expected } => {
                write!(f, "option --{option}: expected {expected}, got {value:?}")
            }
        }
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses raw tokens (without the program name).
    pub fn parse<I: IntoIterator<Item = String>>(tokens: I) -> Result<Args, ArgError> {
        let mut args = Args::default();
        let mut it = tokens.into_iter().peekable();
        while let Some(tok) = it.next() {
            if let Some(key) = tok.strip_prefix("--") {
                let value = match it.peek() {
                    Some(next) if !next.starts_with("--") => it.next().unwrap(),
                    _ => String::new(),
                };
                args.options.insert(key.to_string(), value);
            } else if args.command.is_empty() {
                args.command = tok;
            } else {
                args.positional.push(tok);
            }
        }
        if args.command.is_empty() {
            return Err(ArgError::MissingCommand);
        }
        Ok(args)
    }

    /// A string option with a default.
    pub fn str_opt(&self, key: &str, default: &str) -> String {
        match self.options.get(key) {
            Some(v) if !v.is_empty() => v.clone(),
            _ => default.to_string(),
        }
    }

    /// A numeric option with a default.
    pub fn num_opt<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError> {
        match self.options.get(key) {
            Some(v) if !v.is_empty() => v.parse::<T>().map_err(|_| ArgError::BadValue {
                option: key.to_string(),
                value: v.clone(),
                expected: std::any::type_name::<T>(),
            }),
            Some(v) => Err(ArgError::MissingValue(format!("{key} (got {v:?})"))),
            None => Ok(default),
        }
    }

    /// Whether a bare flag is present.
    pub fn flag(&self, key: &str) -> bool {
        self.options.contains_key(key)
    }

    /// The n-th positional argument, if present.
    pub fn pos(&self, n: usize) -> Option<&str> {
        self.positional.get(n).map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(line: &str) -> Result<Args, ArgError> {
        Args::parse(line.split_whitespace().map(String::from))
    }

    #[test]
    fn parses_command_positionals_and_options() {
        let a = parse("detect edges.txt --metric fd --top 5").unwrap();
        assert_eq!(a.command, "detect");
        assert_eq!(a.pos(0), Some("edges.txt"));
        assert_eq!(a.str_opt("metric", "dg"), "fd");
        assert_eq!(a.num_opt("top", 1usize).unwrap(), 5);
    }

    #[test]
    fn defaults_apply_when_options_absent() {
        let a = parse("detect edges.txt").unwrap();
        assert_eq!(a.str_opt("metric", "dg"), "dg");
        assert_eq!(a.num_opt("top", 3usize).unwrap(), 3);
        assert!(!a.flag("grouping"));
    }

    #[test]
    fn bare_flags_are_detected() {
        let a = parse("stream edges.txt --grouping --batch 100").unwrap();
        assert!(a.flag("grouping"));
        assert_eq!(a.num_opt("batch", 1usize).unwrap(), 100);
    }

    #[test]
    fn missing_command_is_an_error() {
        assert_eq!(parse("").unwrap_err(), ArgError::MissingCommand);
        assert_eq!(parse("--metric fd").unwrap_err(), ArgError::MissingCommand);
    }

    #[test]
    fn bad_numeric_value_reports_context() {
        let a = parse("gen --scale abc").unwrap();
        let err = a.num_opt("scale", 0.01f64).unwrap_err();
        assert!(matches!(err, ArgError::BadValue { .. }));
        assert!(err.to_string().contains("scale"));
    }
}
