//! Crash-recovery fault injection for the multi-process runtime: SIGKILL
//! a real shard process mid-ingest — with acknowledged batches applied
//! and unacknowledged batches in flight — restart it on a fresh port,
//! reseed it from its replica's journal over the `Bootstrap` handshake,
//! and prove the distributed detection still equals the solo engine with
//! **zero acknowledged edges lost and none double-applied**. In-flight
//! unacked batches are replayed out of the journal, never resent, so the
//! fresh incarnation applies each edge exactly once.
//!
//! Deterministic by construction: the router is synchronous (at most one
//! batch per shard in flight), the kill happens between round trips and
//! is reaped before the next wire operation, and the crash-window edges
//! are aimed at the victim so no batch ever needs the victim as a
//! *replica* while it is down (the single-failure model).

mod distributed_harness;

use distributed_harness::{edges_routed_to, seeded_injected_stream, solo_detection, ShardProc};
use spade::graph::VertexId;
use spade::net::{RouterConfig, SpadeRouter};
use spade::shard::{HashPartitioner, Partitioner};
use std::time::Instant;

const NUM_SHARDS: usize = 3;
const VICTIM: usize = 1;
const BATCH_EDGES: usize = 64;

#[test]
fn sigkill_mid_ingest_then_journal_bootstrap_loses_nothing() {
    let stream: Vec<(VertexId, VertexId, f64)> =
        seeded_injected_stream().iter().map(|e| (e.src, e.dst, e.raw)).collect();
    let split = stream.len() * 2 / 3;
    // Two full batches aimed at the victim: they ship during the crash
    // window, journal on the replica, and defer (home dead) — the
    // "unacked in-flight edges" the recovery contract is about.
    let window = edges_routed_to(VICTIM, NUM_SHARDS, 2 * BATCH_EDGES);

    // Ground truth over the exact multiset the cluster will ingest.
    let mut full = stream[..split].to_vec();
    full.extend_from_slice(&window);
    full.extend_from_slice(&stream[split..]);
    let (want_size, want_density, want_members) = solo_detection(&full);
    assert!(want_size > 0, "the seeded dataset must contain a detectable community");

    let mut shards: Vec<ShardProc> = (0..NUM_SHARDS).map(|_| ShardProc::spawn()).collect();
    let addrs: Vec<String> = shards.iter().map(|s| s.addr.clone()).collect();
    let config = RouterConfig { batch_edges: BATCH_EDGES, ..Default::default() };
    let mut router = SpadeRouter::connect(&addrs, config).expect("connect router");

    // Phase A: normal ingest, fully flushed and acknowledged.
    for &(src, dst, raw) in &stream[..split] {
        router.submit(src, dst, raw).expect("submit");
    }
    router.flush_batches().expect("flush phase A");
    assert_eq!(router.stats().edges_acked, split as u64);

    // Phase B: the crash. SIGKILL the victim (reaped before the next
    // wire call), then keep ingesting edges homed on it. Each full batch
    // still journals on the replica, fails delivery, and defers.
    shards[VICTIM].sigkill();
    for &(src, dst, raw) in &window {
        router.submit(src, dst, raw).expect("crash-window submit must not error");
    }
    let mid = router.stats();
    assert!(router.is_offline(VICTIM), "the router must have observed the death");
    assert_eq!(mid.deferred_batches, 2, "both crash-window batches must defer");
    assert_eq!(
        mid.edges_acked, split as u64,
        "a batch the dead shard never applied must not be acknowledged"
    );

    // Phase C: restart on a fresh port and bootstrap from the replica's
    // journal. The replay must cover every batch ever shipped to the
    // victim — phase A's applied ones (their applications died with the
    // process) and the deferred window — each exactly once.
    let recovery_start = Instant::now();
    let replacement = ShardProc::spawn();
    let replayed = router.recover(VICTIM, &replacement.addr).expect("recover");
    let recovery_time = recovery_start.elapsed();
    shards[VICTIM] = replacement;
    let mut partitioner = HashPartitioner;
    let expected_replay = stream[..split]
        .iter()
        .filter(|&&(src, dst, _)| partitioner.route(src, dst, NUM_SHARDS) == VICTIM)
        .count() as u64
        + window.len() as u64;
    assert_eq!(replayed, expected_replay, "journal replay must cover every shipped batch");
    assert_eq!(
        router.stats().edges_acked,
        split as u64 + window.len() as u64,
        "recovery must acknowledge the deferred batches without resending them"
    );
    assert_eq!(router.stats().recoveries, 1);

    // Phase D: resume the stream, then prove exactness over the wire.
    for &(src, dst, raw) in &stream[split..] {
        router.submit(src, dst, raw).expect("post-recovery submit");
    }
    router.flush_batches().expect("flush phase D");
    let stats = router.stats();
    assert_eq!(stats.edges_submitted, full.len() as u64);
    assert_eq!(stats.edges_acked, full.len() as u64, "zero acknowledged edges may be lost");

    let outcome = router.repair().expect("repair");
    let got: Vec<u32> = outcome.members.iter().map(|m| m.0).collect();
    assert_eq!(got, want_members, "post-recovery repaired members diverge from solo");
    assert_eq!(outcome.size, want_size);
    assert!(
        (outcome.density - want_density).abs() < 1e-9,
        "post-recovery repaired density {} vs solo {}",
        outcome.density,
        want_density
    );

    // Exactly-once: every acked edge is applied by exactly one live
    // engine — a lost journal entry would undershoot, a double replay
    // (or a resent deferred batch) would overshoot.
    let applied: u64 = router
        .shard_stats()
        .expect("shard stats")
        .into_iter()
        .map(|s| s.expect("every shard is live again").updates_applied)
        .sum();
    assert_eq!(applied, stats.edges_acked, "acked != applied: an edge was lost or duplicated");

    router.shutdown_shards().expect("shutdown");
    for shard in &mut shards {
        shard.wait();
    }
    println!(
        "recovered shard {VICTIM}/{NUM_SHARDS} in {:.1} ms (spawn + journal bootstrap): \
         {} journaled edges replayed, {} total acked and applied exactly once, \
         repaired density {:.3} == solo",
        recovery_time.as_secs_f64() * 1e3,
        replayed,
        stats.edges_acked,
        outcome.density,
    );
}
