//! Workspace invariant linter for the Spade repository.
//!
//! `spade-lint` is a dependency-free, token-level source analyzer that
//! enforces the project's concurrency and hot-path invariants — the
//! mechanisms the end-to-end exactness gates *rely on* but cannot see:
//!
//! * **`relaxed`** — every `Ordering::Relaxed` must sit under an
//!   adjacent `// audit:` comment justifying why relaxed suffices, and
//!   the justification must be registered in the committed allowlist.
//! * **`unsafe`** — every `unsafe` block/fn must sit under an adjacent
//!   `// SAFETY:` comment registered in the allowlist.
//! * **`hot-panic`** — no `unwrap()` / `expect(` / `panic!` /
//!   `unreachable!` in hot-path modules (the service worker loop, the
//!   reactor, wire decode) outside `#[cfg(test)]` code, except sites
//!   explicitly registered in the allowlist.
//! * **`instant-loop`** — no `Instant::now()` lexically inside a loop
//!   in a hot-path module (per-edge clock reads are the classic silent
//!   throughput killer), except registered sites.
//! * **`wire-arith`** — length arithmetic in the wire codec must use
//!   checked/saturating ops; every raw `+`/`*` on a length is either a
//!   finding or a registered, justified exception.
//!
//! The analyzer is intentionally lexical, not syntactic: it strips
//! strings and comments with a small state machine, tracks brace and
//! loop depth, and skips `#[cfg(test)]` modules. That is enough to make
//! the five rules precise on rustfmt-formatted code while keeping the
//! whole tool a single fast pass with zero dependencies.
//!
//! An *annotation* rule (relaxed/unsafe) covers the whole "paragraph"
//! that follows it: a `// audit:`/`// SAFETY:` comment blesses every
//! matching site until the next blank line, so a block of telemetry
//! bumps needs one justification, not six.

use std::collections::BTreeSet;
use std::fmt;
use std::path::{Path, PathBuf};

/// Rule identifiers, also the first column of allowlist entries.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// `Ordering::Relaxed` without a registered `// audit:` annotation.
    Relaxed,
    /// `unsafe` without a registered `// SAFETY:` annotation.
    Unsafe,
    /// Panic machinery in a hot-path module.
    HotPanic,
    /// `Instant::now()` inside a loop in a hot-path module.
    InstantLoop,
    /// Unchecked length arithmetic in the wire codec.
    WireArith,
}

impl Rule {
    /// Stable lower-case name (used in reports and the allowlist).
    pub fn name(&self) -> &'static str {
        match self {
            Rule::Relaxed => "relaxed",
            Rule::Unsafe => "unsafe",
            Rule::HotPanic => "hot-panic",
            Rule::InstantLoop => "instant-loop",
            Rule::WireArith => "wire-arith",
        }
    }

    /// Parses an allowlist rule column.
    pub fn from_name(name: &str) -> Option<Rule> {
        match name {
            "relaxed" => Some(Rule::Relaxed),
            "unsafe" => Some(Rule::Unsafe),
            "hot-panic" => Some(Rule::HotPanic),
            "instant-loop" => Some(Rule::InstantLoop),
            "wire-arith" => Some(Rule::WireArith),
            _ => None,
        }
    }
}

/// One rule violation (before allowlist filtering).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Which rule fired.
    pub rule: Rule,
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Allowlist key: the annotation text for annotation rules, the
    /// normalized code snippet otherwise.
    pub key: String,
    /// Human explanation.
    pub message: String,
    /// Whether an allowlist entry can bless this finding. Missing
    /// annotations cannot be allowlisted — the fix is writing the
    /// annotation, not registering its absence.
    pub allowable: bool,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.path, self.line, self.rule.name(), self.message)
    }
}

// ---------------------------------------------------------------------
// Lexical pass: strip strings and comments, keep comment text aside.
// ---------------------------------------------------------------------

/// One source line after the lexical pass.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StrippedLine {
    /// Code with string/char-literal contents blanked and comments
    /// removed. Quotes are kept so patterns like `.expect(` survive.
    pub code: String,
    /// Concatenated `//`-comment text on the line (block comments are
    /// ignored for annotations — the project annotates with line
    /// comments).
    pub comment: String,
}

impl StrippedLine {
    /// True when the line carries neither code nor comment.
    pub fn is_blank(&self) -> bool {
        self.code.trim().is_empty() && self.comment.trim().is_empty()
    }
}

/// Strips `source` into per-line code/comment pairs.
///
/// Handles line comments, (nested) block comments, string literals,
/// raw strings with up to many `#`s, and char literals vs lifetimes.
pub fn strip_source(source: &str) -> Vec<StrippedLine> {
    let mut out = Vec::new();
    let mut block_comment_depth = 0usize;
    // Raw-string state survives newlines: Some(hashes) while inside.
    let mut raw_string: Option<usize> = None;
    let mut in_string = false;

    for raw_line in source.lines() {
        let bytes = raw_line.as_bytes();
        let mut code = String::with_capacity(raw_line.len());
        let mut comment = String::new();
        let mut i = 0usize;
        while i < bytes.len() {
            if block_comment_depth > 0 {
                if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    block_comment_depth -= 1;
                    i += 2;
                } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    block_comment_depth += 1;
                    i += 2;
                } else {
                    i += 1;
                }
                continue;
            }
            if let Some(hashes) = raw_string {
                // Look for `"` followed by `hashes` `#`s.
                if bytes[i] == b'"'
                    && bytes[i + 1..].iter().take_while(|&&b| b == b'#').count() >= hashes
                {
                    raw_string = None;
                    code.push('"');
                    for _ in 0..hashes {
                        code.push('#');
                    }
                    i += 1 + hashes;
                } else {
                    i += 1;
                }
                continue;
            }
            if in_string {
                match bytes[i] {
                    b'\\' => i += 2, // skip the escaped byte
                    b'"' => {
                        in_string = false;
                        code.push('"');
                        i += 1;
                    }
                    _ => i += 1,
                }
                continue;
            }
            match bytes[i] {
                b'/' if bytes.get(i + 1) == Some(&b'/') => {
                    // Line comment: keep its text for annotations.
                    let text = &raw_line[i + 2..];
                    let text = text.trim_start_matches(['/', '!']);
                    if !comment.is_empty() {
                        comment.push(' ');
                    }
                    comment.push_str(text.trim());
                    i = bytes.len();
                }
                b'/' if bytes.get(i + 1) == Some(&b'*') => {
                    block_comment_depth += 1;
                    i += 2;
                }
                b'r' if matches!(bytes.get(i + 1), Some(&b'"') | Some(&b'#'))
                    && !prev_is_ident(&code) =>
                {
                    let hashes = bytes[i + 1..].iter().take_while(|&&b| b == b'#').count();
                    if bytes.get(i + 1 + hashes) == Some(&b'"') {
                        raw_string = Some(hashes);
                        code.push('r');
                        for _ in 0..hashes {
                            code.push('#');
                        }
                        code.push('"');
                        i += 2 + hashes;
                    } else {
                        code.push('r');
                        i += 1;
                    }
                }
                b'"' => {
                    in_string = true;
                    code.push('"');
                    i += 1;
                }
                b'\'' => {
                    // Char literal vs lifetime: a literal closes within
                    // a few bytes (`'a'`, `'\n'`, `'\u{1F600}'`).
                    if let Some(close) = char_literal_len(&bytes[i..]) {
                        code.push_str("''");
                        i += close;
                    } else {
                        code.push('\'');
                        i += 1;
                    }
                }
                b => {
                    code.push(b as char);
                    i += 1;
                }
            }
        }
        out.push(StrippedLine { code, comment });
    }
    out
}

/// Whether the last code char continues an identifier (so `r` in
/// `for r"` is a raw-string sigil but in `var"` it is part of a name).
fn prev_is_ident(code: &str) -> bool {
    code.chars().next_back().is_some_and(|c| c.is_alphanumeric() || c == '_')
}

/// If `bytes` (starting at `'`) opens a char literal, returns its total
/// byte length; `None` for a lifetime.
fn char_literal_len(bytes: &[u8]) -> Option<usize> {
    debug_assert_eq!(bytes[0], b'\'');
    if bytes.get(1) == Some(&b'\\') {
        // Escaped: find the closing quote (bounded — `'\u{10FFFF}'`).
        for (j, &b) in bytes.iter().enumerate().skip(2).take(12) {
            if b == b'\'' {
                return Some(j + 1);
            }
        }
        return None;
    }
    // Unescaped: `'X'` where X is one char (possibly multi-byte UTF-8).
    let s = std::str::from_utf8(&bytes[1..]).ok()?;
    let c = s.chars().next()?;
    if s[c.len_utf8()..].starts_with('\'') {
        Some(1 + c.len_utf8() + 1)
    } else {
        None
    }
}

// ---------------------------------------------------------------------
// Rules engine.
// ---------------------------------------------------------------------

/// Path suffixes of the hot-path modules (service worker loop, reactor,
/// wire decode) where `hot-panic` and `instant-loop` apply.
pub const HOT_PATH_SUFFIXES: &[&str] =
    &["spade-core/src/service.rs", "spade-net/src/reactor.rs", "spade-net/src/wire.rs"];

/// Path suffixes of the wire codec where `wire-arith` applies.
pub const WIRE_SUFFIXES: &[&str] = &["spade-net/src/wire.rs"];

fn has_suffix(path: &str, suffixes: &[&str]) -> bool {
    suffixes.iter().any(|s| path.ends_with(s))
}

/// Collapses interior whitespace so allowlist keys survive reformatting.
pub fn normalize_snippet(line: &str) -> String {
    line.split_whitespace().collect::<Vec<_>>().join(" ")
}

/// A pending annotation and the paragraph it covers.
#[derive(Clone, Debug, Default)]
struct Annotations {
    audit: Option<String>,
    safety: Option<String>,
}

/// Runs every applicable rule over one file. `path` must be
/// workspace-relative with forward slashes.
pub fn scan_file(path: &str, source: &str) -> Vec<Finding> {
    let lines = strip_source(source);
    let hot = has_suffix(path, HOT_PATH_SUFFIXES);
    let wire = has_suffix(path, WIRE_SUFFIXES);

    let mut findings = Vec::new();
    let mut depth = 0usize; // brace depth
    let mut loop_stack: Vec<usize> = Vec::new(); // depth of each open loop body
    let mut pending_loop = false;
    // `#[cfg(test)]` handling: once the attribute is seen, the next
    // `mod`/`fn` item starts a skipped region until its braces close.
    let mut pending_cfg_test = false;
    let mut skip_below: Option<usize> = None;
    let mut ann = Annotations::default();

    for (idx, line) in lines.iter().enumerate() {
        let lineno = idx + 1;
        let code = line.code.trim();

        if line.is_blank() {
            ann = Annotations::default();
        }
        // Collect annotations before rule checks so a same-line comment
        // covers its own line.
        if let Some(text) = annotation_text(&line.comment, "audit:") {
            ann.audit = Some(text);
        }
        if let Some(text) = annotation_text(&line.comment, "SAFETY:") {
            ann.safety = Some(text);
        }

        let in_test = skip_below.is_some();
        if !in_test {
            if code.contains("#[cfg(test)]") {
                pending_cfg_test = true;
            } else if pending_cfg_test
                && (starts_item(code, "mod") || starts_item(code, "fn") || code.contains(" fn "))
            {
                // The test item begins here; skip until depth returns.
                skip_below = Some(depth);
                pending_cfg_test = false;
            } else if pending_cfg_test && !code.is_empty() && !code.starts_with("#[") {
                pending_cfg_test = false;
            }
        }
        let in_test = skip_below.is_some();

        if !in_test {
            check_line(
                path,
                lineno,
                code,
                &line.comment,
                hot,
                wire,
                &loop_stack,
                &ann,
                &mut findings,
            );
        }

        // Brace/loop bookkeeping on the stripped code.
        for word in words(code) {
            if matches!(word, "for" | "while" | "loop") {
                pending_loop = true;
            }
        }
        for ch in code.chars() {
            match ch {
                '{' => {
                    depth += 1;
                    if pending_loop {
                        loop_stack.push(depth);
                        pending_loop = false;
                    }
                }
                '}' => {
                    depth = depth.saturating_sub(1);
                    while loop_stack.last().is_some_and(|&d| d > depth) {
                        loop_stack.pop();
                    }
                    if let Some(at) = skip_below {
                        if depth <= at {
                            skip_below = None;
                        }
                    }
                }
                ';' => pending_loop = false,
                _ => {}
            }
        }
    }
    findings
}

/// Extracts the text after `marker` in a comment, if present.
fn annotation_text(comment: &str, marker: &str) -> Option<String> {
    let at = comment.find(marker)?;
    Some(comment[at + marker.len()..].trim().to_string())
}

fn starts_item(code: &str, kw: &str) -> bool {
    code.strip_prefix(kw).is_some_and(|rest| rest.starts_with([' ', '\t']))
        || code.strip_prefix("pub ").is_some_and(|rest| starts_item(rest, kw))
        || code.strip_prefix("pub(crate) ").is_some_and(|rest| starts_item(rest, kw))
}

fn words(code: &str) -> impl Iterator<Item = &str> {
    code.split(|c: char| !c.is_alphanumeric() && c != '_').filter(|w| !w.is_empty())
}

#[allow(clippy::too_many_arguments)]
fn check_line(
    path: &str,
    lineno: usize,
    code: &str,
    comment: &str,
    hot: bool,
    wire: bool,
    loop_stack: &[usize],
    ann: &Annotations,
    findings: &mut Vec<Finding>,
) {
    if code.contains("Ordering::Relaxed") {
        match &ann.audit {
            None => findings.push(Finding {
                rule: Rule::Relaxed,
                path: path.to_string(),
                line: lineno,
                key: normalize_snippet(code),
                message: "Ordering::Relaxed without an adjacent `// audit:` justification"
                    .to_string(),
                allowable: false,
            }),
            Some(key) => findings.push(Finding {
                rule: Rule::Relaxed,
                path: path.to_string(),
                line: lineno,
                key: key.clone(),
                message: format!("unregistered audit annotation: {key:?}"),
                allowable: true,
            }),
        }
    }

    if words(code).any(|w| w == "unsafe") {
        match &ann.safety {
            None => findings.push(Finding {
                rule: Rule::Unsafe,
                path: path.to_string(),
                line: lineno,
                key: normalize_snippet(code),
                message: "`unsafe` without an adjacent `// SAFETY:` comment".to_string(),
                allowable: false,
            }),
            Some(key) => findings.push(Finding {
                rule: Rule::Unsafe,
                path: path.to_string(),
                line: lineno,
                key: key.clone(),
                message: format!("unregistered SAFETY annotation: {key:?}"),
                allowable: true,
            }),
        }
    }

    if hot {
        let panicky = code.contains(".unwrap()")
            || code.contains(".expect(")
            || code.contains("panic!(")
            || code.contains("unreachable!(");
        if panicky {
            findings.push(Finding {
                rule: Rule::HotPanic,
                path: path.to_string(),
                line: lineno,
                key: normalize_snippet(code),
                message: "panic machinery in a hot-path module".to_string(),
                allowable: true,
            });
        }
        if code.contains("Instant::now") && !loop_stack.is_empty() {
            findings.push(Finding {
                rule: Rule::InstantLoop,
                path: path.to_string(),
                line: lineno,
                key: normalize_snippet(code),
                message: "Instant::now() inside a loop in a hot-path module".to_string(),
                allowable: true,
            });
        }
    }

    if wire {
        let lengthy =
            code.contains("len()") || code.contains("remaining()") || code.contains("buffered()");
        let raw_arith = code.contains(" + ") || code.contains(" * ");
        let checked = code.contains("checked_") || code.contains("saturating_");
        if lengthy && raw_arith && !checked {
            findings.push(Finding {
                rule: Rule::WireArith,
                path: path.to_string(),
                line: lineno,
                key: normalize_snippet(code),
                message: "unchecked length arithmetic in the wire codec".to_string(),
                allowable: true,
            });
        }
    }
    let _ = comment;
}

// ---------------------------------------------------------------------
// Allowlist.
// ---------------------------------------------------------------------

/// The committed allowlist: tab-separated `rule<TAB>path<TAB>key` lines,
/// `#` comments and blanks ignored. Keys for annotation rules are the
/// annotation text; for the other rules, the normalized code snippet.
#[derive(Clone, Debug, Default)]
pub struct Allowlist {
    entries: Vec<(Rule, String, String)>,
}

impl Allowlist {
    /// Parses allowlist text; errors carry the offending line number.
    pub fn parse(text: &str) -> Result<Allowlist, String> {
        let mut entries = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut cols = raw.splitn(3, '\t');
            let (rule, path, key) = match (cols.next(), cols.next(), cols.next()) {
                (Some(r), Some(p), Some(k)) => (r.trim(), p.trim(), k.trim()),
                _ => {
                    return Err(format!(
                        "allowlist line {}: expected rule<TAB>path<TAB>key, got {raw:?}",
                        idx + 1
                    ))
                }
            };
            let rule = Rule::from_name(rule)
                .ok_or_else(|| format!("allowlist line {}: unknown rule {rule:?}", idx + 1))?;
            if key.is_empty() {
                return Err(format!("allowlist line {}: empty key", idx + 1));
            }
            entries.push((rule, path.to_string(), key.to_string()));
        }
        Ok(Allowlist { entries })
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the allowlist has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether `finding` is blessed by a registered entry.
    pub fn permits(&self, finding: &Finding) -> bool {
        finding.allowable
            && self
                .entries
                .iter()
                .any(|(r, p, k)| *r == finding.rule && *p == finding.path && *k == finding.key)
    }

    /// Entries that blessed nothing in `findings` — stale registrations
    /// that must be pruned so the allowlist stays an honest inventory.
    pub fn stale_entries(&self, findings: &[Finding]) -> Vec<(Rule, String, String)> {
        self.entries
            .iter()
            .filter(|(r, p, k)| {
                !findings.iter().any(|f| f.rule == *r && f.path == *p && f.key == *k && f.allowable)
            })
            .cloned()
            .collect()
    }
}

// ---------------------------------------------------------------------
// Workspace walking.
// ---------------------------------------------------------------------

/// Collects the `.rs` files `--workspace` scans: `src/` trees of the
/// facade crate and every crate under `crates/`, excluding the offline
/// vendor shims (stand-in code with its own idioms, replaced wholesale
/// on a networked builder) and this linter's intentionally-bad fixtures.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![root.join("src"), root.join("crates")];
    while let Some(dir) = stack.pop() {
        let entries = match std::fs::read_dir(&dir) {
            Ok(e) => e,
            Err(_) => continue,
        };
        for entry in entries {
            let entry = entry?;
            let path = entry.path();
            let rel = path.strip_prefix(root).unwrap_or(&path);
            let rel_str = rel.to_string_lossy().replace('\\', "/");
            if rel_str.starts_with("crates/vendor") || rel_str.contains("spade-lint/fixtures") {
                continue;
            }
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs")
                && (rel_str.starts_with("src/") || rel_str.contains("/src/"))
            {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Scans every workspace file, returning all findings (allowlist not
/// yet applied) keyed by workspace-relative path.
pub fn scan_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for file in workspace_files(root)? {
        let rel = file.strip_prefix(root).unwrap_or(&file).to_string_lossy().replace('\\', "/");
        let source = std::fs::read_to_string(&file)?;
        findings.extend(scan_file(&rel, &source));
    }
    Ok(findings)
}

/// Result of judging a finding set against an allowlist.
pub struct Evaluation {
    /// Findings the allowlist does not permit.
    pub violations: Vec<Finding>,
    /// Allowlist entries matching no finding, as `(rule, path, key)`.
    pub stale: Vec<(Rule, String, String)>,
    /// Total findings per rule (audited sites, violations included).
    pub audited: Vec<(Rule, usize)>,
}

/// Splits findings into violations and a per-rule audit summary, given
/// the allowlist.
pub fn evaluate(findings: &[Finding], allowlist: &Allowlist) -> Evaluation {
    let violations: Vec<Finding> =
        findings.iter().filter(|f| !allowlist.permits(f)).cloned().collect();
    let stale = allowlist.stale_entries(findings);
    let mut audited: Vec<(Rule, usize)> = Vec::new();
    for rule in [Rule::Relaxed, Rule::Unsafe, Rule::HotPanic, Rule::InstantLoop, Rule::WireArith] {
        let n = findings.iter().filter(|f| f.rule == rule).count();
        audited.push((rule, n));
    }
    Evaluation { violations, stale, audited }
}

/// Distinct files among `findings` — used for reporting.
pub fn files_covered(findings: &[Finding]) -> BTreeSet<String> {
    findings.iter().map(|f| f.path.clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stripper_blanks_strings_and_keeps_comments() {
        let src = "let x = \"Ordering::Relaxed\"; // audit: just a string\n";
        let lines = strip_source(src);
        assert!(!lines[0].code.contains("Ordering::Relaxed"));
        assert_eq!(annotation_text(&lines[0].comment, "audit:").as_deref(), Some("just a string"));
    }

    #[test]
    fn stripper_handles_block_comments_and_char_literals() {
        let src = "let a = 'x'; /* Ordering::Relaxed\nstill comment */ let b: &'static str = \"\";";
        let lines = strip_source(src);
        assert!(!lines[0].code.contains("Relaxed"));
        assert!(lines[1].code.contains("'static"));
    }

    #[test]
    fn stripper_handles_raw_strings() {
        let src = "let re = r#\"unsafe { \"quoted\" }\"#; let after = 1;";
        let lines = strip_source(src);
        assert!(!lines[0].code.contains("unsafe"));
        assert!(lines[0].code.contains("let after = 1;"));
    }

    #[test]
    fn relaxed_without_annotation_is_unallowable() {
        let src = "fn f(c: &AtomicU64) { c.load(Ordering::Relaxed); }\n";
        let findings = scan_file("crates/x/src/lib.rs", src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, Rule::Relaxed);
        assert!(!findings[0].allowable);
    }

    #[test]
    fn audit_annotation_covers_its_paragraph_until_a_blank_line() {
        let src = "\
// audit: monotone counter, coherence suffices
a.fetch_add(1, Ordering::Relaxed);
b.fetch_add(1, Ordering::Relaxed);

c.fetch_add(1, Ordering::Relaxed);
";
        let findings = scan_file("crates/x/src/lib.rs", src);
        assert_eq!(findings.len(), 3);
        assert!(findings[0].allowable && findings[1].allowable);
        assert_eq!(findings[0].key, "monotone counter, coherence suffices");
        assert!(!findings[2].allowable, "the blank line must end the annotation's scope");
    }

    #[test]
    fn unsafe_requires_safety_and_registration() {
        let bare = "let rc = unsafe { libc_call() };\n";
        let f = scan_file("crates/x/src/lib.rs", bare);
        assert_eq!(f.len(), 1);
        assert!(!f[0].allowable);

        let annotated =
            "// SAFETY: the pointer outlives the call\nlet rc = unsafe { libc_call() };\n";
        let f = scan_file("crates/x/src/lib.rs", annotated);
        assert_eq!(f.len(), 1);
        assert!(f[0].allowable);
        assert_eq!(f[0].key, "the pointer outlives the call");
    }

    #[test]
    fn hot_panic_fires_only_in_hot_modules_and_skips_tests() {
        let src =
            "fn f() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn g() { y.unwrap(); }\n}\n";
        let cold = scan_file("crates/spade-gen/src/lib.rs", src);
        assert!(cold.is_empty());
        let hot = scan_file("crates/spade-core/src/service.rs", src);
        assert_eq!(hot.len(), 1, "the cfg(test) module must be skipped: {hot:?}");
        assert_eq!(hot[0].line, 1);
    }

    #[test]
    fn unwrap_or_else_is_not_a_panic_site() {
        let src = "fn f() { x.unwrap_or_else(|| 3); y.unwrap_or(0); }\n";
        assert!(scan_file("crates/spade-core/src/service.rs", src).is_empty());
    }

    #[test]
    fn instant_in_loop_fires_only_inside_loops() {
        let src = "\
fn f() {
    let t0 = Instant::now();
    for e in edges {
        let t = Instant::now();
    }
    while go() {
        if x { let u = Instant::now(); }
    }
}
";
        let f = scan_file("crates/spade-net/src/reactor.rs", src);
        assert_eq!(f.iter().filter(|f| f.rule == Rule::InstantLoop).count(), 2);
        assert!(f.iter().all(|f| f.line == 4 || f.line == 7));
    }

    #[test]
    fn wire_arith_requires_checked_ops() {
        let bad = "let n = 4 + payload.len();\n";
        let f = scan_file("crates/spade-net/src/wire.rs", bad);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::WireArith);

        let good = "let n = count.checked_mul(width);\nlet m = base.saturating_add(x.len());\n";
        assert!(scan_file("crates/spade-net/src/wire.rs", good).is_empty());

        let elsewhere = scan_file("crates/spade-core/src/service.rs", bad);
        assert!(elsewhere.iter().all(|f| f.rule != Rule::WireArith));
    }

    #[test]
    fn allowlist_parses_and_permits() {
        let text = "# comment\n\nrelaxed\tcrates/x/src/lib.rs\tmonotone counter\n";
        let allow = Allowlist::parse(text).expect("parse");
        assert_eq!(allow.len(), 1);
        let f = Finding {
            rule: Rule::Relaxed,
            path: "crates/x/src/lib.rs".into(),
            line: 3,
            key: "monotone counter".into(),
            message: String::new(),
            allowable: true,
        };
        assert!(allow.permits(&f));
        let other = Finding { key: "different".into(), ..f.clone() };
        assert!(!allow.permits(&other));
        let unallowable = Finding { allowable: false, ..f };
        assert!(!allow.permits(&unallowable));
    }

    #[test]
    fn allowlist_rejects_malformed_lines() {
        assert!(Allowlist::parse("relaxed only-two-columns\n").is_err());
        assert!(Allowlist::parse("bogus-rule\tpath\tkey\n").is_err());
        assert!(Allowlist::parse("relaxed\tpath\t\n").is_err());
    }

    #[test]
    fn stale_entries_are_reported() {
        let allow = Allowlist::parse("relaxed\tcrates/x/src/lib.rs\tgone\n").expect("parse");
        let stale = allow.stale_entries(&[]);
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].2, "gone");
    }

    #[test]
    fn evaluate_separates_violations_from_audited_sites() {
        let src =
            "// audit: ok\na.load(Ordering::Relaxed);\n\nfn f() { b.load(Ordering::Relaxed); }\n";
        let findings = scan_file("crates/x/src/lib.rs", src);
        let allow = Allowlist::parse("relaxed\tcrates/x/src/lib.rs\tok\n").expect("parse");
        let eval = evaluate(&findings, &allow);
        assert_eq!(eval.violations.len(), 1, "{:?}", eval.violations);
        assert!(eval.stale.is_empty());
        assert_eq!(eval.audited.iter().find(|(r, _)| *r == Rule::Relaxed).unwrap().1, 2);
    }
}
