//! Fan-in fairness half of the `cross-shard-exactness` CI job.
//!
//! One firehose producer (deep pipeline, large batches, submitting as
//! fast as the socket accepts) shares a single reactor event loop with
//! 8 drip producers (one edge per round trip). The drain-budget rotation
//! must keep the drips serviced: every drip edge is acknowledged, each
//! drip's ack p99 stays within a bounded multiple of the solo-drip
//! baseline measured on an idle server, and no ack waits out a full
//! drain cycle unserviced.
//!
//! Bounds are deliberately generous: CI runs in a 1-CPU container, so
//! the firehose, eight drips, two shard workers, and the event loop all
//! time-share one core — the gate catches starvation (seconds-long or
//! lost acks), not scheduler noise.

use spade::core::WeightedDensity;
use spade::graph::VertexId;
use spade::net::{ClientConfig, ReactorConfig, SpadeNetClient, SpadeNetServer};
use spade::shard::{PartitionStrategy, ShardedConfig, ShardedSpadeService};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Edges each drip producer pushes, one flush round trip at a time.
const DRIP_EDGES: u32 = 120;
/// Drip ack p99 under contention may exceed the idle baseline by at
/// most this factor (or the absolute floor below, whichever is larger).
const P99_MULTIPLE: f64 = 100.0;
/// Absolute p99 floor: an idle-loopback baseline is microseconds, and
/// microseconds × multiple would gate on scheduler jitter.
const P99_FLOOR: Duration = Duration::from_millis(500);
/// No single drip ack may wait longer than this — a connection going
/// unserviced for a full drain cycle shows up here first.
const MAX_ACK_WAIT: Duration = Duration::from_secs(5);

fn spawn_server(shards: usize) -> (Arc<ShardedSpadeService>, SpadeNetServer) {
    let service = Arc::new(ShardedSpadeService::spawn(
        WeightedDensity,
        ShardedConfig {
            shards,
            queue_capacity: 8192,
            strategy: PartitionStrategy::HashBySource,
            ..Default::default()
        },
    ));
    // One event-loop worker on purpose: fairness must come from the
    // frame budget and service rotation, not from the pool absorbing
    // the firehose on another thread.
    let server = SpadeNetServer::bind_with(
        Arc::clone(&service),
        "127.0.0.1:0",
        ReactorConfig { workers: 1, frame_budget: 16, ..Default::default() },
    )
    .expect("bind");
    (service, server)
}

/// One drip producer: single-edge batches, one flush round trip per
/// edge. Returns per-edge ack latencies (submit → every ack drained).
fn drip(addr: std::net::SocketAddr, base: u32) -> (Vec<Duration>, u64) {
    let mut client = SpadeNetClient::connect_with(
        addr,
        ClientConfig { batch: 1, pipeline: 1, ..Default::default() },
    )
    .expect("drip connect");
    let mut latencies = Vec::with_capacity(DRIP_EDGES as usize);
    for i in 0..DRIP_EDGES {
        let started = Instant::now();
        client.submit(VertexId(base + i), VertexId(base + i + 1), 2.0).expect("submit");
        client.flush().expect("flush");
        latencies.push(started.elapsed());
    }
    let stats = client.finish().expect("finish");
    (latencies, stats.edges_acked)
}

fn p99(latencies: &mut [Duration]) -> Duration {
    latencies.sort_unstable();
    latencies[(latencies.len() * 99 / 100).min(latencies.len() - 1)]
}

#[test]
fn a_firehose_cannot_starve_drip_producers() {
    // Solo baseline: one drip on an otherwise idle server.
    let (service, server) = spawn_server(2);
    let (mut solo_lat, solo_acked) = drip(server.local_addr(), 1_000);
    assert_eq!(solo_acked, u64::from(DRIP_EDGES));
    let solo_p99 = p99(&mut solo_lat);
    server.shutdown();
    drop(Arc::try_unwrap(service).unwrap_or_else(|_| panic!("service still shared")).shutdown());

    // Contended run: 1 firehose + 8 drips on one event loop.
    let (service, server) = spawn_server(2);
    let addr = server.local_addr();
    let stop_firehose = Arc::new(AtomicBool::new(false));
    let firehose = {
        let stop = Arc::clone(&stop_firehose);
        std::thread::spawn(move || {
            let mut client = SpadeNetClient::connect_with(
                addr,
                ClientConfig { batch: 256, pipeline: 16, ..Default::default() },
            )
            .expect("firehose connect");
            let mut i = 0u32;
            while !stop.load(Ordering::Acquire) {
                // A compact id range disjoint from every drip. Ids must
                // stay small: the graph is dense over raw vertex ids
                // (`ensure_vertex` materializes every implied lower id),
                // so a sparse multi-million id would turn the first
                // apply into an O(max id) vertex bootstrap and stall
                // the shard workers for the whole test.
                let src = i % 2048;
                client.submit(VertexId(src), VertexId(4096 + src), 1.0).expect("submit");
                i += 1;
            }
            client.finish().expect("firehose finish")
        })
    };

    let drips: Vec<_> =
        (0..8u32).map(|d| std::thread::spawn(move || drip(addr, 10_000 + d * 1_000))).collect();
    let mut worst_p99 = Duration::ZERO;
    let mut worst_ack = Duration::ZERO;
    for (d, handle) in drips.into_iter().enumerate() {
        let (mut latencies, acked) = handle.join().expect("drip thread");
        // Starvation would first show up as lost acks: flush() retries
        // Busy suffixes until the server acknowledges every edge.
        assert_eq!(acked, u64::from(DRIP_EDGES), "drip {d}: every edge must be acknowledged");
        let max = *latencies.iter().max().expect("non-empty");
        worst_ack = worst_ack.max(max);
        worst_p99 = worst_p99.max(p99(&mut latencies));
    }
    stop_firehose.store(true, Ordering::Release);
    let firehose_stats = firehose.join().expect("firehose thread");

    let bound = P99_FLOOR.max(solo_p99.mul_f64(P99_MULTIPLE));
    assert!(
        worst_p99 <= bound,
        "drip ack p99 {worst_p99:?} exceeds bound {bound:?} (solo baseline {solo_p99:?})"
    );
    assert!(
        worst_ack <= MAX_ACK_WAIT,
        "an ack waited {worst_ack:?} — a connection went unserviced"
    );

    // The reactor's per-loop series are live in the merged exposition.
    let mut probe = SpadeNetClient::connect(addr).expect("probe connect");
    let exposition = probe.server_metrics().expect("metrics").exposition;
    for series in [
        "spade_net_reactor_wakeups_total",
        "spade_net_reactor_connections_resident",
        "spade_net_reactor_dispatch_ns_count",
        "spade_net_reactor_budget_exhausted_total",
    ] {
        assert!(exposition.contains(series), "missing reactor series {series}:\n{exposition}");
    }
    drop(probe);

    // Acked == applied survives the contended run.
    let total_acked = firehose_stats.edges_acked + 8 * u64::from(DRIP_EDGES);
    let deadline = Instant::now() + Duration::from_secs(60);
    while service.stats().iter().map(|s| s.service.updates_applied).sum::<u64>() < total_acked {
        assert!(Instant::now() < deadline, "drain timed out: an acknowledged edge was lost");
        std::thread::sleep(Duration::from_millis(1));
    }
    let net = server.shutdown();
    assert_eq!(net.edges_accepted, total_acked);
    assert_eq!(net.malformed_frames, 0);
    let service = Arc::try_unwrap(service).unwrap_or_else(|_| panic!("service still shared"));
    let global = service.shutdown();
    assert_eq!(global.total_updates, total_acked);
    println!(
        "fairness: solo p99 {solo_p99:?}, contended worst p99 {worst_p99:?} (bound {bound:?}), \
         worst ack {worst_ack:?}, firehose acked {}",
        firehose_stats.edges_acked
    );
}
