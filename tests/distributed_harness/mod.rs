//! Shared harness for the multi-process distributed tests: real `shardd`
//! child processes (spawned from `CARGO_BIN_EXE_shardd`), the seeded
//! injected-fraud workload every exactness gate compares against, and
//! routing probes for aiming edges at a chosen shard.

// Compiled into each distributed test binary; not every binary uses
// every helper (only the recovery test kills shards or aims probes).
#![allow(dead_code)]

use spade::core::stream::StreamEdge;
use spade::core::{SpadeEngine, WeightedDensity};
use spade::gen::fraud::{FraudInjector, FraudInjectorConfig};
use spade::gen::transactions::{TransactionStream, TransactionStreamConfig};
use spade::graph::VertexId;
use spade::shard::{HashPartitioner, Partitioner};
use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};

/// One real shard-server child process. The first stdout line is the
/// bound address (`shardd` always binds port 0, so a restarted shard
/// lands on a fresh port and never trips over `TIME_WAIT`).
pub struct ShardProc {
    child: Child,
    pub addr: String,
}

impl ShardProc {
    /// Spawns `shardd` and blocks until it prints its bound address.
    pub fn spawn() -> ShardProc {
        let mut child = Command::new(env!("CARGO_BIN_EXE_shardd"))
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn shardd");
        let stdout = child.stdout.take().expect("shardd stdout");
        let mut line = String::new();
        BufReader::new(stdout).read_line(&mut line).expect("read shardd bound address");
        let addr = line.trim().to_string();
        assert!(addr.contains(':'), "shardd printed {line:?}, expected an address");
        ShardProc { child, addr }
    }

    /// SIGKILLs the process — no shutdown handshake, no flush; exactly
    /// the crash the recovery path must tolerate — and reaps it, so the
    /// death is complete before the caller's next wire operation.
    pub fn sigkill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }

    /// Waits for a clean exit (after a `Shutdown` frame).
    pub fn wait(&mut self) {
        let status = self.child.wait().expect("wait shardd");
        assert!(status.success(), "shardd exited with {status}");
    }
}

impl Drop for ShardProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// The seeded dataset: identical to the in-process repair gate and the
/// TCP net gate, so every half of the `cross-shard-exactness` CI job
/// compares the same ground truth.
pub fn seeded_injected_stream() -> Vec<StreamEdge> {
    let base = TransactionStream::generate(&TransactionStreamConfig {
        customers: 600,
        merchants: 200,
        transactions: 6_000,
        seed: 0xC1_5EED,
        ..Default::default()
    });
    let injected = FraudInjector::inject(
        &base,
        &FraudInjectorConfig {
            instances_per_pattern: 1,
            transactions_per_instance: 240,
            amount: 600.0,
            seed: 0xC1_5EED,
            ..Default::default()
        },
    );
    injected.edges
}

/// Solo-engine ground truth over `edges`.
pub fn solo_detection(edges: &[(VertexId, VertexId, f64)]) -> (usize, f64, Vec<u32>) {
    let mut solo = SpadeEngine::new(WeightedDensity);
    for &(src, dst, raw) in edges {
        let _ = solo.insert_edge(src, dst, raw);
    }
    let det = solo.detect();
    let mut members: Vec<u32> = solo.community(det).iter().map(|m| m.0).collect();
    members.sort_unstable();
    (det.size, det.density, members)
}

/// `count` unique low-weight noise edges whose *sources all hash-route
/// to `shard`* (out of `num_shards`). Vertex ids sit just above the
/// seeded workload's range (the graph substrate stores per-vertex state
/// densely, so ids stay small), and at weight 1.0 these never perturb
/// the detected community — they exist to aim in-flight batches at a
/// chosen victim.
pub fn edges_routed_to(
    shard: usize,
    num_shards: usize,
    count: usize,
) -> Vec<(VertexId, VertexId, f64)> {
    let mut partitioner = HashPartitioner;
    let mut edges = Vec::with_capacity(count);
    let mut v = 50_000u32;
    while edges.len() < count {
        let src = VertexId(v);
        let dst = VertexId(v + 50_000);
        if partitioner.route(src, dst, num_shards) == shard {
            edges.push((src, dst, 1.0));
        }
        v += 1;
    }
    edges
}
