//! Edge grouping (paper §4.3, Algorithm 3).
//!
//! Most transactions come from normal users; reordering after every one of
//! them wastes work that later insertions will undo (§4.2's staleness
//! argument). Spade therefore buffers **benign** edges and reorders in
//! batch, while an **urgent** edge — one that could push an endpoint into
//! the densest subgraph — flushes the buffer immediately so potential
//! fraudsters are caught in real time.
//!
//! Definition 4.1: edge `e = (u_i, u_j)` with suspiciousness `c` is
//! *urgent* iff `w_{u_i}(S_0) + c >= g(S_P)` or `w_{u_j}(S_0) + c >= g(S_P)`,
//! where `w(S_0)` is the endpoint's full-set peeling weight and `g(S_P)`
//! the density of the currently detected community. Lemmas 4.3/4.4: a
//! benign insertion cannot put either endpoint into the optimal subgraph,
//! nor produce a denser peeling community containing them — postponing it
//! is safe.
//!
//! Implementation notes (DESIGN.md §4): suspiciousness is evaluated once,
//! at arrival, and reused at flush; the urgency test optionally counts the
//! buffered-but-uninserted weight of each endpoint (`include_pending`,
//! default on) so a burst of buffered transactions onto one vertex cannot
//! hide below the threshold.

use crate::engine::SpadeEngine;
use crate::metric::DensityMetric;
use crate::state::Detection;
use spade_graph::hash::{FxHashMap, FxHashSet};
use spade_graph::{EdgeRef, GraphError, VertexId};

/// Configuration of the edge-grouping buffer.
#[derive(Clone, Copy, Debug)]
pub struct GroupingConfig {
    /// Flush when the buffer reaches this many edges (0 = unbounded, flush
    /// only on urgent edges or manually).
    pub max_buffer: usize,
    /// Count buffered-but-uninserted edge weight toward the urgency test.
    pub include_pending: bool,
}

impl Default for GroupingConfig {
    fn default() -> Self {
        GroupingConfig { max_buffer: 0, include_pending: true }
    }
}

/// Why a flush happened.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlushReason {
    /// An urgent edge arrived (Definition 4.1).
    Urgent,
    /// The buffer hit `max_buffer`.
    Capacity,
    /// The caller invoked [`EdgeGrouper::flush`] (e.g. from `Detect`).
    Manual,
}

/// Result of submitting one transaction to the grouping layer.
#[derive(Clone, Copy, Debug)]
pub struct SubmitOutcome {
    /// Whether the edge classified as urgent.
    pub urgent: bool,
    /// Detection after the flush this submission triggered, if any.
    pub flushed: Option<(FlushReason, Detection)>,
    /// Edges sitting in the buffer after this submission.
    pub buffered: usize,
}

/// Cumulative grouping statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct GroupingStats {
    /// Transactions submitted.
    pub submitted: usize,
    /// Transactions classified urgent.
    pub urgent: usize,
    /// Flushes performed, by any reason.
    pub flushes: usize,
    /// Total edges that went through a flush.
    pub flushed_edges: usize,
}

/// The edge-grouping buffer in front of a [`SpadeEngine`].
#[derive(Debug, Default)]
pub struct EdgeGrouper {
    config: GroupingConfig,
    /// Buffered edges with their arrival-time suspiciousness.
    buffer: Vec<(VertexId, VertexId, f64)>,
    /// Per-vertex buffered incident weight (for `include_pending`).
    pending: FxHashMap<u32, f64>,
    /// Ordered pairs sitting in the buffer (dedup for set-semantics
    /// metrics whose duplicates are redundant).
    buffered_pairs: FxHashSet<u64>,
    stats: GroupingStats,
}

impl EdgeGrouper {
    /// Creates a grouper with the given configuration.
    pub fn new(config: GroupingConfig) -> Self {
        EdgeGrouper { config, ..Default::default() }
    }

    /// Number of edges currently buffered.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// The grouper's configuration.
    pub fn config(&self) -> GroupingConfig {
        self.config
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> GroupingStats {
        self.stats
    }

    /// Submits one transaction: classifies it (Definition 4.1), buffers it,
    /// and flushes through `engine` if it was urgent or the buffer filled.
    pub fn submit<M: DensityMetric>(
        &mut self,
        engine: &mut SpadeEngine<M>,
        src: VertexId,
        dst: VertexId,
        raw: f64,
    ) -> Result<SubmitOutcome, GraphError> {
        engine.ensure_vertex(src)?;
        engine.ensure_vertex(dst)?;
        // Reject self-loops here (after vertex materialization, exactly
        // like the per-edge engine path) — buffering one would poison
        // the whole flush batch later.
        if src == dst {
            return Err(GraphError::SelfLoop { vertex: src });
        }
        let c = engine.metric().edge_susp(src, dst, raw, engine.graph());
        if !c.is_finite() {
            return Err(GraphError::NonFiniteWeight { context: "edge suspiciousness" });
        }
        if c < 0.0 {
            return Err(GraphError::NonPositiveEdgeWeight { src, dst, weight: c });
        }
        self.stats.submitted += 1;
        let pair = EdgeRef::new(src, dst).packed();
        let redundant = c == 0.0
            || (!engine.metric().accumulates_duplicates() && self.buffered_pairs.contains(&pair));
        if redundant {
            // Redundant under the metric's set semantics (the pair exists
            // in the graph, or already waits in the buffer) — nothing to
            // buffer or flush.
            return Ok(SubmitOutcome { urgent: false, flushed: None, buffered: self.buffer.len() });
        }

        let threshold = engine.cached_detection().density;
        let urgent = self.is_urgent(engine, src, dst, c, threshold);
        self.buffer.push((src, dst, c));
        self.buffered_pairs.insert(pair);
        if self.config.include_pending {
            *self.pending.entry(src.0).or_insert(0.0) += c;
            *self.pending.entry(dst.0).or_insert(0.0) += c;
        }

        let flushed = if urgent {
            self.stats.urgent += 1;
            Some((FlushReason::Urgent, self.flush_inner(engine)?))
        } else if self.config.max_buffer > 0 && self.buffer.len() >= self.config.max_buffer {
            Some((FlushReason::Capacity, self.flush_inner(engine)?))
        } else {
            None
        };
        Ok(SubmitOutcome { urgent, flushed, buffered: self.buffer.len() })
    }

    /// `IsBenign` (negated): Definition 4.1 against the engine's current
    /// detection density.
    fn is_urgent<M: DensityMetric>(
        &self,
        engine: &SpadeEngine<M>,
        src: VertexId,
        dst: VertexId,
        c: f64,
        threshold: f64,
    ) -> bool {
        let pending = |v: VertexId| {
            if self.config.include_pending {
                self.pending.get(&v.0).copied().unwrap_or(0.0)
            } else {
                0.0
            }
        };
        let w_src = engine.graph().incident_weight(src) + pending(src);
        let w_dst = engine.graph().incident_weight(dst) + pending(dst);
        w_src + c >= threshold || w_dst + c >= threshold
    }

    /// Flushes the buffer into the engine (one batch reorder), returning
    /// the post-flush detection. No-op returning the cached detection when
    /// the buffer is empty.
    pub fn flush<M: DensityMetric>(
        &mut self,
        engine: &mut SpadeEngine<M>,
    ) -> Result<Detection, GraphError> {
        if self.buffer.is_empty() {
            return Ok(engine.cached_detection());
        }
        self.flush_inner(engine)
    }

    fn flush_inner<M: DensityMetric>(
        &mut self,
        engine: &mut SpadeEngine<M>,
    ) -> Result<Detection, GraphError> {
        self.stats.flushes += 1;
        self.stats.flushed_edges += self.buffer.len();
        let det = engine.insert_batch_weighted(&self.buffer)?;
        self.buffer.clear();
        self.pending.clear();
        self.buffered_pairs.clear();
        Ok(det)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::WeightedDensity;
    use crate::peel::peel;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    /// Engine with an established dense community (density 12) plus sparse
    /// background so benign traffic exists.
    fn engine_with_community() -> SpadeEngine<WeightedDensity> {
        let mut e = SpadeEngine::new(WeightedDensity);
        for a in 0..4u32 {
            for b in 0..4u32 {
                if a != b {
                    e.insert_edge(v(a), v(b), 4.0).unwrap();
                }
            }
        }
        for i in 4..10u32 {
            e.insert_edge(v(i), v(i + 1), 0.5).unwrap();
        }
        e
    }

    #[test]
    fn benign_edges_buffer_without_reordering() {
        let mut e = engine_with_community();
        let threshold = e.detect().density;
        assert!(threshold > 4.0);
        let mut g = EdgeGrouper::new(GroupingConfig::default());
        // A tiny transaction between two background users is benign.
        let out = g.submit(&mut e, v(5), v(8), 0.1).unwrap();
        assert!(!out.urgent);
        assert!(out.flushed.is_none());
        assert_eq!(out.buffered, 1);
        assert_eq!(g.buffered(), 1);
        // The graph has not yet seen the edge.
        assert!(e.graph().edge_weight(v(5), v(8)).is_none());
    }

    #[test]
    fn urgent_edge_flushes_immediately() {
        let mut e = engine_with_community();
        let mut g = EdgeGrouper::new(GroupingConfig::default());
        g.submit(&mut e, v(5), v(8), 0.1).unwrap();
        // A massive transaction towards the dense block is urgent.
        let out = g.submit(&mut e, v(5), v(0), 50.0).unwrap();
        assert!(out.urgent);
        let (reason, det) = out.flushed.unwrap();
        assert_eq!(reason, FlushReason::Urgent);
        assert!(det.size > 0);
        assert_eq!(g.buffered(), 0);
        // Both buffered edges landed in the graph.
        assert!(e.graph().edge_weight(v(5), v(8)).is_some());
        assert!(e.graph().edge_weight(v(5), v(0)).is_some());
        // State stayed exact.
        assert_eq!(e.state().logical_order(), peel(e.graph()).order);
    }

    #[test]
    fn capacity_flush() {
        let mut e = engine_with_community();
        let mut g = EdgeGrouper::new(GroupingConfig { max_buffer: 3, include_pending: true });
        g.submit(&mut e, v(5), v(8), 0.1).unwrap();
        g.submit(&mut e, v(6), v(9), 0.1).unwrap();
        let out = g.submit(&mut e, v(7), v(10), 0.1).unwrap();
        assert!(!out.urgent);
        assert_eq!(out.flushed.unwrap().0, FlushReason::Capacity);
        assert_eq!(g.buffered(), 0);
        assert_eq!(g.stats().flushes, 1);
        assert_eq!(g.stats().flushed_edges, 3);
    }

    #[test]
    fn manual_flush_applies_buffer() {
        let mut e = engine_with_community();
        let before_edges = e.graph().num_edges();
        let mut g = EdgeGrouper::new(GroupingConfig::default());
        g.submit(&mut e, v(5), v(8), 0.1).unwrap();
        g.submit(&mut e, v(8), v(5), 0.1).unwrap();
        let det = g.flush(&mut e).unwrap();
        assert_eq!(e.graph().num_edges(), before_edges + 2);
        assert!(det.size > 0);
        assert_eq!(g.buffered(), 0);
        // Flushing an empty buffer is a no-op.
        let again = g.flush(&mut e).unwrap();
        assert_eq!(again.size, det.size);
        assert_eq!(g.stats().flushes, 1);
    }

    #[test]
    fn pending_weight_accumulation_triggers_urgency() {
        let mut e = engine_with_community();
        let threshold = e.detect().density;
        let mut g = EdgeGrouper::new(GroupingConfig::default());
        // Individually benign, but the accumulated pending weight on v20
        // crosses the threshold.
        let each = threshold / 4.0;
        let mut fired = false;
        for i in 0..10u32 {
            let out = g.submit(&mut e, v(20), v(30 + i), each).unwrap();
            if out.urgent {
                fired = true;
                break;
            }
        }
        assert!(fired, "pending accumulation never triggered urgency");

        // Without pending accounting the same traffic stays buffered.
        let mut e2 = engine_with_community();
        let mut g2 = EdgeGrouper::new(GroupingConfig { max_buffer: 0, include_pending: false });
        for i in 0..10u32 {
            let out = g2.submit(&mut e2, v(20), v(30 + i), each).unwrap();
            assert!(!out.urgent);
        }
        assert_eq!(g2.buffered(), 10);
    }

    #[test]
    fn grouped_stream_matches_eager_insertion_after_flush() {
        let mut eager = engine_with_community();
        let mut grouped = engine_with_community();
        let mut g = EdgeGrouper::new(GroupingConfig::default());
        let stream = [
            (v(5), v(8), 0.2),
            (v(6), v(4), 0.3),
            (v(9), v(10), 0.1),
            (v(0), v(5), 9.0), // urgent
            (v(7), v(8), 0.2),
        ];
        for &(a, b, w) in &stream {
            eager.insert_edge(a, b, w).unwrap();
            g.submit(&mut grouped, a, b, w).unwrap();
        }
        g.flush(&mut grouped).unwrap();
        assert_eq!(eager.state().logical_order(), grouped.state().logical_order());
        assert_eq!(eager.detect(), grouped.detect());
    }

    #[test]
    fn self_loops_are_rejected_at_submit_not_buffered() {
        // Buffering a self-loop would poison the whole flush batch; it
        // must be rejected up front (after vertex materialization,
        // matching the per-edge engine path) while serving continues.
        let mut e = engine_with_community();
        let mut g = EdgeGrouper::new(GroupingConfig::default());
        g.submit(&mut e, v(5), v(8), 0.2).unwrap();
        assert!(matches!(
            g.submit(&mut e, v(6), v(6), 1.0),
            Err(GraphError::SelfLoop { vertex: VertexId(6) })
        ));
        assert_eq!(g.buffered(), 1);
        // The flush still applies the healthy buffered edge.
        g.flush(&mut e).unwrap();
        assert!(e.graph().edge_weight(v(5), v(8)).is_some());
        assert_eq!(e.state().logical_order(), peel(e.graph()).order);
    }

    #[test]
    fn rejects_bad_suspiciousness_without_buffering() {
        let mut e = engine_with_community();
        let mut g = EdgeGrouper::new(GroupingConfig::default());
        assert!(g.submit(&mut e, v(1), v(2), -1.0).is_err());
        assert_eq!(g.buffered(), 0);
        assert_eq!(g.stats().submitted, 0);
    }

    #[test]
    fn zero_suspiciousness_submission_is_noop() {
        let mut e = SpadeEngine::new(crate::metric::UnweightedDensity);
        e.insert_edge(v(0), v(1), 1.0).unwrap();
        let mut g = EdgeGrouper::new(GroupingConfig::default());
        // Duplicate pair under DG set semantics: nothing buffered.
        let out = g.submit(&mut e, v(0), v(1), 1.0).unwrap();
        assert!(!out.urgent);
        assert!(out.flushed.is_none());
        assert_eq!(g.buffered(), 0);
        assert_eq!(g.stats().submitted, 1);
    }
}
