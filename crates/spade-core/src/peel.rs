//! Static peeling — the execution paradigm of Algorithm 1.
//!
//! Starting from `S_0 = V`, repeatedly remove the vertex `u` whose peeling
//! weight `w_u(S)` (Eq. 2) is smallest — equivalently the vertex whose
//! removal maximizes `g(S \ {u})` for arithmetic densities — recording the
//! removal order `O` and the weight of every removal. The prefix that
//! maximizes `g(S_i)` is the detected community `S_P`, with the classic
//! guarantee `g(S_P) >= g(S*) / 2` (Lemma 2.1).
//!
//! Cost: `O(|E| log |V|)` with the lazy-deletion min-heap.
//!
//! The peel is generic over an [`Incidence`] source so it runs both on the
//! live [`DynamicGraph`] and on the frozen [`CsrGraph`] snapshot that the
//! static baselines use (Fig. 10's DG/DW/FD-from-scratch competitors).

use crate::order::MinQueue;
use spade_graph::{CsrGraph, DynamicGraph, VertexId};

/// Read-only incidence access required by the static peel.
pub trait Incidence {
    /// Number of vertices.
    fn num_vertices(&self) -> usize;
    /// `f(V)`: total suspiciousness.
    fn total_weight(&self) -> f64;
    /// `w_u(V)`: vertex weight plus all incident edge weights.
    fn initial_weight(&self, u: VertexId) -> f64;
    /// Visits every incident edge of `u` as `(neighbor, edge_weight)`.
    fn for_each_incident(&self, u: VertexId, f: impl FnMut(VertexId, f64));
}

impl Incidence for DynamicGraph {
    #[inline]
    fn num_vertices(&self) -> usize {
        DynamicGraph::num_vertices(self)
    }

    #[inline]
    fn total_weight(&self) -> f64 {
        DynamicGraph::total_weight(self)
    }

    #[inline]
    fn initial_weight(&self, u: VertexId) -> f64 {
        self.incident_weight(u)
    }

    #[inline]
    fn for_each_incident(&self, u: VertexId, mut f: impl FnMut(VertexId, f64)) {
        for nb in self.neighbors(u) {
            f(nb.v, nb.w);
        }
    }
}

impl Incidence for CsrGraph {
    #[inline]
    fn num_vertices(&self) -> usize {
        CsrGraph::num_vertices(self)
    }

    #[inline]
    fn total_weight(&self) -> f64 {
        CsrGraph::total_weight(self)
    }

    #[inline]
    fn initial_weight(&self, u: VertexId) -> f64 {
        self.incident_weight(u)
    }

    #[inline]
    fn for_each_incident(&self, u: VertexId, mut f: impl FnMut(VertexId, f64)) {
        let (nbrs, ws) = self.incidence(u);
        for (&v, &w) in nbrs.iter().zip(ws) {
            f(v, w);
        }
    }
}

/// The result of a full static peel.
#[derive(Clone, Debug, Default)]
pub struct PeelingOutcome {
    /// The peeling sequence `O` (logical order: index 0 peeled first).
    pub order: Vec<VertexId>,
    /// `weights[i]` = peeling weight of `order[i]` at its removal
    /// (`Δ_i = w_{u_i}(S_{i-1})`).
    pub weights: Vec<f64>,
    /// Number of removals after which the density peaks: the community is
    /// `S_P = V \ order[..best_prefix]`, of size `n - best_prefix`.
    pub best_prefix: usize,
    /// `g(S_P)` — the density of the detected community.
    pub best_density: f64,
    /// `f(V)` at peel time.
    pub total_weight: f64,
}

impl PeelingOutcome {
    /// The detected community `S_P` as a vertex list (suffix of the
    /// peeling order).
    pub fn community(&self) -> &[VertexId] {
        &self.order[self.best_prefix..]
    }

    /// Density `g(S_k)` of the suffix after `k` removals; `k < |V|`.
    pub fn density_after(&self, k: usize) -> f64 {
        let f: f64 = self.total_weight - self.weights[..k].iter().sum::<f64>();
        f / (self.order.len() - k) as f64
    }
}

/// Runs the full peeling paradigm (Algorithm 1) on `source`.
///
/// Returns an empty outcome for the empty graph.
pub fn peel<G: Incidence>(source: &G) -> PeelingOutcome {
    let mut queue = MinQueue::new();
    peel_with_queue(source, &mut queue)
}

/// [`peel`] with a caller-provided queue so repeated static baselines can
/// reuse heap allocations (the paper's from-scratch competitors run once
/// per update).
pub fn peel_with_queue<G: Incidence>(source: &G, queue: &mut MinQueue) -> PeelingOutcome {
    let n = source.num_vertices();
    let mut outcome = PeelingOutcome {
        order: Vec::with_capacity(n),
        weights: Vec::with_capacity(n),
        best_prefix: 0,
        best_density: f64::NEG_INFINITY,
        total_weight: source.total_weight(),
    };
    if n == 0 {
        outcome.best_density = 0.0;
        return outcome;
    }

    queue.reset(n);
    for i in 0..n {
        let u = VertexId::from_index(i);
        queue.insert(u, source.initial_weight(u));
    }

    // g(S_0) is a candidate: zero removals.
    let mut f = outcome.total_weight;
    outcome.best_density = f / n as f64;
    outcome.best_prefix = 0;

    while let Some(key) = queue.pop() {
        let u = key.vertex;
        outcome.order.push(u);
        outcome.weights.push(key.weight);
        f -= key.weight;
        source.for_each_incident(u, |v, w| {
            if queue.contains(v) {
                queue.add_weight(v, -w);
            }
        });
        let remaining = n - outcome.order.len();
        if remaining > 0 {
            let g = f / remaining as f64;
            if g > outcome.best_density {
                outcome.best_density = g;
                outcome.best_prefix = outcome.order.len();
            }
        }
    }
    debug_assert_eq!(outcome.order.len(), n);
    outcome
}

/// Brute-force densest-subgraph search by exhaustive enumeration.
///
/// Exponential in `|V|`; used only by tests to verify Lemma 2.1
/// (`g(S_P) >= g(S*) / 2`) on small graphs.
pub fn brute_force_densest(g: &DynamicGraph) -> (Vec<VertexId>, f64) {
    let n = g.num_vertices();
    assert!(n <= 20, "brute force is exponential; use small graphs");
    let mut best_set = Vec::new();
    let mut best_density = f64::NEG_INFINITY;
    for mask in 1u32..(1 << n) {
        let members: Vec<VertexId> =
            (0..n).filter(|&i| mask & (1 << i) != 0).map(VertexId::from_index).collect();
        let mut f: f64 = members.iter().map(|&u| g.vertex_weight(u)).sum();
        for &u in &members {
            for nb in g.out_neighbors(u) {
                if mask & (1 << nb.v.index()) != 0 {
                    f += nb.w;
                }
            }
        }
        let density = f / members.len() as f64;
        if density > best_density {
            best_density = density;
            best_set = members;
        }
    }
    (best_set, best_density)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spade_graph::CsrGraph;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    /// The paper's running example (Fig. 3): five vertices, weights on
    /// edges 2, 1, 4, 2, 2 — peeling order O = [u1, u3, u2, u4, u5]
    /// (paper names are 1-based; ours 0-based).
    fn figure3_graph() -> DynamicGraph {
        let mut g = DynamicGraph::new();
        for _ in 0..5 {
            g.add_vertex(0.0).unwrap();
        }
        // Figure 3 edges (weights chosen to match the example):
        // u1-u2: 2, u2-u3: 1, u2-u4: 4 ... the figure's exact topology is:
        //   u1 -- u2 (2), u2 -- u3 (1), u2 -- u5 (4), u4 -- u5 (2), u1 -- u4 (2)
        // which yields the removal order u1, u3, u2, u4, u5.
        g.insert_edge(v(0), v(1), 2.0).unwrap(); // u1-u2
        g.insert_edge(v(1), v(2), 1.0).unwrap(); // u2-u3
        g.insert_edge(v(1), v(4), 4.0).unwrap(); // u2-u5
        g.insert_edge(v(3), v(4), 2.0).unwrap(); // u4-u5
        g.insert_edge(v(0), v(3), 2.0).unwrap(); // u1-u4
        g
    }

    #[test]
    fn empty_graph_peels_to_nothing() {
        let g = DynamicGraph::new();
        let out = peel(&g);
        assert!(out.order.is_empty());
        assert_eq!(out.best_density, 0.0);
    }

    #[test]
    fn single_vertex() {
        let mut g = DynamicGraph::new();
        g.add_vertex(3.0).unwrap();
        let out = peel(&g);
        assert_eq!(out.order, vec![v(0)]);
        assert_eq!(out.weights, vec![3.0]);
        assert_eq!(out.best_prefix, 0);
        assert_eq!(out.best_density, 3.0);
    }

    #[test]
    fn figure3_example_order() {
        let g = figure3_graph();
        let out = peel(&g);
        // Initial weights: u1=4, u2=7, u3=1, u4=4, u5=6.
        // Peel u3 (w=1)? No: paper peels u1 first... our weights say u3=1
        // is smallest. The paper's figure uses its own weights; what we
        // verify here is the greedy invariant and the recorded weights.
        assert_eq!(out.order.len(), 5);
        // First peeled must be the global minimum (u3 with weight 1).
        assert_eq!(out.order[0], v(2));
        assert_eq!(out.weights[0], 1.0);
        // f conservation: sum of peeling weights equals f(V).
        let sum: f64 = out.weights.iter().sum();
        assert!((sum - g.total_weight()).abs() < 1e-9);
    }

    #[test]
    fn peeling_weights_sum_to_total_weight() {
        let g = figure3_graph();
        let out = peel(&g);
        assert!((out.weights.iter().sum::<f64>() - out.total_weight).abs() < 1e-9);
    }

    #[test]
    fn detects_planted_dense_block() {
        // Background path + a dense 4-clique of weight-10 edges.
        let mut g = DynamicGraph::new();
        for _ in 0..12 {
            g.add_vertex(0.0).unwrap();
        }
        for i in 0..7u32 {
            g.insert_edge(v(i), v(i + 1), 1.0).unwrap();
        }
        let clique = [8u32, 9, 10, 11];
        for (a_i, &a) in clique.iter().enumerate() {
            for &b in &clique[a_i + 1..] {
                g.insert_edge(v(a), v(b), 10.0).unwrap();
            }
        }
        let out = peel(&g);
        let mut community: Vec<u32> = out.community().iter().map(|u| u.0).collect();
        community.sort_unstable();
        assert_eq!(community, vec![8, 9, 10, 11]);
        // Density of the clique: 6 edges * 10 / 4 vertices = 15.
        assert!((out.best_density - 15.0).abs() < 1e-9);
    }

    #[test]
    fn csr_and_dynamic_agree() {
        let g = figure3_graph();
        let csr = CsrGraph::from_graph(&g);
        let a = peel(&g);
        let b = peel(&csr);
        assert_eq!(a.order, b.order);
        assert_eq!(a.weights, b.weights);
        assert_eq!(a.best_prefix, b.best_prefix);
    }

    #[test]
    fn half_approximation_guarantee_on_small_graphs() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        for _ in 0..30 {
            let n = rng.gen_range(2..10usize);
            let mut g = DynamicGraph::new();
            for _ in 0..n {
                g.add_vertex(0.0).unwrap();
            }
            for a in 0..n as u32 {
                for b in 0..n as u32 {
                    if a != b && rng.gen_bool(0.4) {
                        g.insert_edge(v(a), v(b), rng.gen_range(1..6) as f64).unwrap();
                    }
                }
            }
            let out = peel(&g);
            let (_, opt) = brute_force_densest(&g);
            assert!(
                out.best_density >= opt / 2.0 - 1e-9,
                "guarantee violated: got {}, optimum {}",
                out.best_density,
                opt
            );
        }
    }

    #[test]
    fn density_after_matches_running_best() {
        let g = figure3_graph();
        let out = peel(&g);
        let n = out.order.len();
        let best = (0..n).map(|k| out.density_after(k)).fold(f64::NEG_INFINITY, f64::max);
        assert!((best - out.best_density).abs() < 1e-9);
        assert!((out.density_after(out.best_prefix) - out.best_density).abs() < 1e-9);
    }
}
