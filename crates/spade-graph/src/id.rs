//! Vertex and edge identifiers.
//!
//! Vertices are dense `u32` indices so that per-vertex state (weights,
//! peeling positions, colors) can live in flat arrays — the hot loops of the
//! peeling algorithms never touch a hash table keyed by vertex. Datasets
//! with external string labels map them through [`crate::io::Interner`].

use std::fmt;

/// A dense vertex identifier.
///
/// `VertexId` wraps a `u32`, which bounds graphs at ~4.29 billion vertices —
/// far beyond the paper's largest dataset (Grab4: 6.02M vertices) — while
/// halving the memory footprint of adjacency lists compared to `usize`.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct VertexId(pub u32);

impl VertexId {
    /// Returns the identifier as a `usize` index for flat-array addressing.
    #[inline(always)]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `VertexId` from a `usize` index.
    ///
    /// # Panics
    /// Panics if `index` exceeds `u32::MAX`.
    #[inline(always)]
    pub fn from_index(index: usize) -> Self {
        debug_assert!(index <= u32::MAX as usize, "vertex index overflows u32");
        VertexId(index as u32)
    }
}

impl fmt::Debug for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for VertexId {
    #[inline]
    fn from(raw: u32) -> Self {
        VertexId(raw)
    }
}

impl From<VertexId> for u32 {
    #[inline]
    fn from(id: VertexId) -> Self {
        id.0
    }
}

/// A directed edge reference `(src, dst)`.
///
/// `EdgeRef` identifies an edge by its endpoints; parallel transactions
/// between the same ordered pair are accumulated into a single weighted edge
/// (see [`crate::DynamicGraph::insert_edge`]), so the pair is a unique key.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct EdgeRef {
    /// Source endpoint (e.g. the paying customer).
    pub src: VertexId,
    /// Destination endpoint (e.g. the merchant).
    pub dst: VertexId,
}

impl EdgeRef {
    /// Creates an edge reference from endpoints.
    #[inline]
    pub fn new(src: VertexId, dst: VertexId) -> Self {
        EdgeRef { src, dst }
    }

    /// Packs both endpoints into a single `u64` key (used for hashing).
    #[inline(always)]
    pub fn packed(self) -> u64 {
        ((self.src.0 as u64) << 32) | self.dst.0 as u64
    }

    /// Returns the opposite endpoint of `v`, if `v` is an endpoint.
    #[inline]
    pub fn other(self, v: VertexId) -> Option<VertexId> {
        if v == self.src {
            Some(self.dst)
        } else if v == self.dst {
            Some(self.src)
        } else {
            None
        }
    }
}

impl fmt::Debug for EdgeRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({} -> {})", self.src, self.dst)
    }
}

impl From<(u32, u32)> for EdgeRef {
    #[inline]
    fn from((s, d): (u32, u32)) -> Self {
        EdgeRef::new(VertexId(s), VertexId(d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_id_roundtrip() {
        let v = VertexId::from_index(42);
        assert_eq!(v.index(), 42);
        assert_eq!(u32::from(v), 42);
        assert_eq!(VertexId::from(42u32), v);
    }

    #[test]
    fn vertex_id_ordering_matches_raw() {
        assert!(VertexId(1) < VertexId(2));
        assert!(VertexId(100) > VertexId(99));
    }

    #[test]
    fn edge_ref_packed_is_injective_on_distinct_pairs() {
        let a = EdgeRef::from((1, 2));
        let b = EdgeRef::from((2, 1));
        assert_ne!(a.packed(), b.packed());
        assert_ne!(a, b);
    }

    #[test]
    fn edge_ref_other_endpoint() {
        let e = EdgeRef::from((3, 7));
        assert_eq!(e.other(VertexId(3)), Some(VertexId(7)));
        assert_eq!(e.other(VertexId(7)), Some(VertexId(3)));
        assert_eq!(e.other(VertexId(5)), None);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", VertexId(9)), "9");
        assert_eq!(format!("{:?}", VertexId(9)), "v9");
        assert_eq!(format!("{:?}", EdgeRef::from((1, 2))), "(1 -> 2)");
    }
}
