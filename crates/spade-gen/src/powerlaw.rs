//! Heavy-tailed samplers for realistic transaction-graph topology.
//!
//! Real transaction graphs are strongly power-law distributed (paper
//! Fig. 9b): a few merchants receive most transactions. The generators
//! sample endpoints from a Zipf distribution over the id space, which
//! yields a graph whose degree histogram follows `P(d) ~ d^-alpha`.

use rand::Rng;

/// Zipf(`exponent`) sampler over `{0, 1, …, n-1}` using the classic
/// rejection-inversion method (Hörmann & Derflinger) — O(1) expected time
/// per sample, no O(n) table.
#[derive(Clone, Debug)]
pub struct ZipfSampler {
    n: f64,
    exponent: f64,
    h_x1: f64,
    h_n: f64,
    s: f64,
}

impl ZipfSampler {
    /// Creates a sampler over `n` items with the given exponent
    /// (`exponent > 0`, typically 1.0–2.5 for transaction graphs).
    pub fn new(n: usize, exponent: f64) -> Self {
        assert!(n >= 1, "ZipfSampler needs at least one item");
        assert!(exponent > 0.0, "Zipf exponent must be positive");
        let n = n as f64;
        let h_x1 = Self::h_integral(1.5, exponent) - 1.0;
        let h_n = Self::h_integral(n + 0.5, exponent);
        let s = 2.0
            - Self::h_integral_inverse(
                Self::h_integral(2.5, exponent) - Self::h(2.0, exponent),
                exponent,
            );
        ZipfSampler { n, exponent, h_x1, h_n, s }
    }

    fn h(x: f64, e: f64) -> f64 {
        (-e * x.ln()).exp()
    }

    fn h_integral(x: f64, e: f64) -> f64 {
        let log_x = x.ln();
        Self::helper((1.0 - e) * log_x) * log_x
    }

    fn h_integral_inverse(x: f64, e: f64) -> f64 {
        let mut t = x * (1.0 - e);
        if t < -1.0 {
            t = -1.0;
        }
        (Self::helper_inverse(t) * x).exp()
    }

    /// `(exp(x) - 1) / x` with a series fallback near zero.
    fn helper(x: f64) -> f64 {
        if x.abs() > 1e-8 {
            x.exp_m1() / x
        } else {
            1.0 + x * 0.5 * (1.0 + x / 3.0 * (1.0 + 0.25 * x))
        }
    }

    /// `ln(1 + x) / x` with a series fallback near zero.
    fn helper_inverse(x: f64) -> f64 {
        if x.abs() > 1e-8 {
            x.ln_1p() / x
        } else {
            1.0 - x * 0.5 * (1.0 - x / 3.0 * (1.0 - 0.25 * x))
        }
    }

    /// Draws one rank in `{0, …, n-1}`; rank 0 is the most popular item.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        loop {
            let u = self.h_n + rng.gen::<f64>() * (self.h_x1 - self.h_n);
            let x = Self::h_integral_inverse(u, self.exponent);
            let k = x.clamp(1.0, self.n).round();
            if k - x <= self.s
                || u >= Self::h_integral(k + 0.5, self.exponent) - Self::h(k, self.exponent)
            {
                return (k as usize) - 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn samples_stay_in_range() {
        let z = ZipfSampler::new(100, 1.5);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 100);
        }
    }

    #[test]
    fn single_item_always_zero() {
        let z = ZipfSampler::new(1, 2.0);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }

    #[test]
    fn rank_zero_dominates() {
        let z = ZipfSampler::new(1000, 1.2);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut counts = vec![0usize; 1000];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10] && counts[10] > counts[200]);
        // Roughly Zipfian head/tail ratio: item 0 vs item 9 should differ
        // by about 10^1.2 ≈ 16 (tolerate 2x band).
        let ratio = counts[0] as f64 / counts[9].max(1) as f64;
        assert!(ratio > 6.0 && ratio < 50.0, "ratio = {ratio}");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let z = ZipfSampler::new(50, 1.7);
        let a: Vec<usize> = {
            let mut rng = ChaCha8Rng::seed_from_u64(9);
            (0..100).map(|_| z.sample(&mut rng)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = ChaCha8Rng::seed_from_u64(9);
            (0..100).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
