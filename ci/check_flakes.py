#!/usr/bin/env python3
"""Flake gate for process-spawning test binaries.

The distributed tests fork real shard-server child processes, SIGKILL
them mid-ingest, and race recovery against the OS — exactly the kind of
test that can pass once and flake forever after. This gate reruns the
command N times in sequence and fails on ANY failing run, printing which
runs failed so a nondeterministic test (some runs pass, some fail) is
distinguishable from a deterministic regression (every run fails).

Each run gets a per-run wall-clock budget; a hung run (a child process
that never dies, a drain loop that never drains) is killed and counted
as a failure rather than wedging CI.

Usage:
    ci/check_flakes.py [--runs 10] [--timeout-s 600] -- <command> [args...]
    ci/check_flakes.py --self-test
"""

import argparse
import subprocess
import sys
import time


def run_once(command, timeout_s):
    """One run: (passed, seconds, detail)."""
    started = time.monotonic()
    try:
        proc = subprocess.run(command, capture_output=True, text=True,
                              timeout=timeout_s)
    except subprocess.TimeoutExpired:
        return False, time.monotonic() - started, "timed out"
    except OSError as e:
        return False, time.monotonic() - started, f"failed to start: {e}"
    elapsed = time.monotonic() - started
    if proc.returncode != 0:
        tail = (proc.stdout + proc.stderr).splitlines()[-15:]
        return False, elapsed, "rc {}:\n    {}".format(
            proc.returncode, "\n    ".join(tail))
    return True, elapsed, ""


def self_test():
    """Drives this gate against three synthetic commands: a stable pass
    must pass, a run-2-only failure (a simulated flake, keyed off a
    marker file) must fail, and a stable failure must fail."""
    import os
    import tempfile

    script = os.path.abspath(__file__)
    with tempfile.TemporaryDirectory() as tmp:
        marker = os.path.join(tmp, "flake-marker")
        flaky = (
            "import os, sys\n"
            f"p = {marker!r}\n"
            "if os.path.exists(p):\n"
            "    sys.exit(1)\n"
            "open(p, 'w').close()\n"
        )
        cases = [
            ("stable pass", True,
             [sys.executable, "-c", "import sys; sys.exit(0)"]),
            ("flaky (fails from run 2)", False,
             [sys.executable, "-c", flaky]),
            ("stable fail", False,
             [sys.executable, "-c", "import sys; sys.exit(1)"]),
        ]
        for name, expect_ok, command in cases:
            proc = subprocess.run(
                [sys.executable, script, "--runs", "3", "--", *command],
                capture_output=True, text=True)
            ok = proc.returncode == 0
            if ok != expect_ok:
                print(proc.stdout)
                print(proc.stderr, file=sys.stderr)
                sys.exit(f"FAIL: self-test case {name!r} expected "
                         f"{'pass' if expect_ok else 'fail'} but got rc "
                         f"{proc.returncode}")
    print("OK: self-test — stable pass passes, flaky and stable failures fail")
    return 0


def main():
    if "--self-test" in sys.argv[1:]:
        return self_test()

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--runs", type=int, default=10,
                        help="number of consecutive runs (default 10)")
    parser.add_argument("--timeout-s", type=float, default=600.0,
                        help="per-run wall-clock budget (default 600s)")
    parser.add_argument("command", nargs=argparse.REMAINDER,
                        help="the test command, after a literal --")
    args = parser.parse_args()
    command = args.command
    if command and command[0] == "--":
        command = command[1:]
    if not command:
        parser.error("no command given (pass it after a literal --)")
    if args.runs < 1:
        parser.error("--runs must be at least 1")

    failed = []
    for run in range(1, args.runs + 1):
        passed, elapsed, detail = run_once(command, args.timeout_s)
        verdict = "ok" if passed else "FAIL"
        print(f"run {run:>3}/{args.runs}: {verdict} in {elapsed:.1f}s")
        if not passed:
            failed.append(run)
            print(f"  {detail}", file=sys.stderr)

    if failed:
        kind = ("nondeterministic (flaky)" if len(failed) < args.runs
                else "deterministic")
        print(f"\nFAIL: {len(failed)}/{args.runs} runs failed "
              f"(runs {failed}) — {kind} failure of: {' '.join(command)}",
              file=sys.stderr)
        return 1
    print(f"\nOK: {args.runs}/{args.runs} consecutive runs passed: "
          f"{' '.join(command)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
