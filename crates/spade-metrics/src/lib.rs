//! # spade-metrics
//!
//! Measurement machinery for the Spade reproduction:
//!
//! * [`latency`] — the latency metric `L(ΔG_τ)` of Eq. 4 and queueing-time
//!   bookkeeping (Fig. 8);
//! * [`prevention`] — the prevention ratio `R` (Fig. 8, Fig. 9a);
//! * [`runtime`] — the live observability subsystem: a lock-free
//!   metrics registry (atomic counters, gauges, log-scale latency
//!   histograms with mergeable snapshots) plus an event-trace ring;
//! * [`summary`] — mean / percentile summaries for benchmark reports;
//! * [`table`] — fixed-width table rendering for the paper-style harness
//!   binaries.

pub mod latency;
pub mod prevention;
pub mod runtime;
pub mod summary;
pub mod table;

pub use latency::LatencyRecorder;
pub use prevention::PreventionTracker;
pub use runtime::{
    Counter, EventKind, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot,
    TraceEvent,
};
pub use summary::Summary;
pub use table::Table;
