//! Latency of fraudulent activities (paper Eq. 4).
//!
//! For an update stream `ΔG_τ`, each labeled transaction `e_i` is
//! *generated* at `τ_i` and *responded to* (inserted + reflected in a
//! detection) at `τ_i^r`; the stream latency is
//! `L(ΔG_τ) = Σ (τ_i^r − τ_i)`. Queueing time — the portion spent waiting
//! in a batch or grouping buffer before reordering started — is tracked
//! separately because the paper observes that 99.99% of batch-mode latency
//! is queueing (§5.2).

/// Accumulates per-transaction latencies in stream time units.
#[derive(Clone, Debug, Default)]
pub struct LatencyRecorder {
    latencies: Vec<u64>,
    queueing: Vec<u64>,
}

impl LatencyRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one transaction: generated at `generated`, reordering
    /// started at `started`, response visible at `responded`.
    ///
    /// # Panics
    /// Panics (debug) if the timestamps are not monotone.
    pub fn record(&mut self, generated: u64, started: u64, responded: u64) {
        debug_assert!(generated <= started && started <= responded);
        self.latencies.push(responded.saturating_sub(generated));
        self.queueing.push(started.saturating_sub(generated));
    }

    /// Number of recorded transactions.
    pub fn count(&self) -> usize {
        self.latencies.len()
    }

    /// `L(ΔG_τ)`: the total latency (Eq. 4).
    pub fn total(&self) -> u64 {
        self.latencies.iter().sum()
    }

    /// Total queueing time.
    pub fn total_queueing(&self) -> u64 {
        self.queueing.iter().sum()
    }

    /// Mean latency per transaction, 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.latencies.is_empty() {
            0.0
        } else {
            self.total() as f64 / self.latencies.len() as f64
        }
    }

    /// Fraction of total latency that is queueing (the paper's 99.99%
    /// observation), 0 when empty.
    pub fn queueing_fraction(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.total_queueing() as f64 / t as f64
        }
    }

    /// `L` of this recorder normalized to a baseline's `L` — Table 5
    /// reports incremental latency normalized to the static algorithms.
    pub fn normalized_to(&self, baseline: &LatencyRecorder) -> f64 {
        let b = baseline.total();
        if b == 0 {
            0.0
        } else {
            self.total() as f64 / b as f64
        }
    }

    /// The raw latencies (for percentile summaries).
    pub fn latencies(&self) -> &[u64] {
        &self.latencies
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_mean() {
        let mut r = LatencyRecorder::new();
        r.record(0, 5, 10);
        r.record(10, 12, 14);
        assert_eq!(r.count(), 2);
        assert_eq!(r.total(), 14);
        assert_eq!(r.total_queueing(), 7);
        assert!((r.mean() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn queueing_fraction() {
        let mut r = LatencyRecorder::new();
        r.record(0, 9999, 10_000);
        assert!((r.queueing_fraction() - 0.9999).abs() < 1e-9);
    }

    #[test]
    fn normalization_against_baseline() {
        let mut inc = LatencyRecorder::new();
        inc.record(0, 0, 50);
        let mut base = LatencyRecorder::new();
        base.record(0, 0, 100);
        assert!((inc.normalized_to(&base) - 0.5).abs() < 1e-12);
        let empty = LatencyRecorder::new();
        assert_eq!(inc.normalized_to(&empty), 0.0);
    }

    #[test]
    fn empty_recorder_is_zeroes() {
        let r = LatencyRecorder::new();
        assert_eq!(r.count(), 0);
        assert_eq!(r.total(), 0);
        assert_eq!(r.mean(), 0.0);
        assert_eq!(r.queueing_fraction(), 0.0);
    }
}
