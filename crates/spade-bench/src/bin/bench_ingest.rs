//! Sustained ingest throughput of the service worker loop, with and
//! without drain coalescing.
//!
//! Two scenarios, both through a single [`SpadeService`] (the per-shard
//! hot path of the sharded runtime):
//!
//! * **bursty replay** — the producer pushes the whole stream as fast as
//!   the bounded queue accepts it, so the worker always has a backlog to
//!   drain. Swept over coalesce caps (1 = the pre-coalescing per-edge
//!   loop: one reorder pass and one publish per edge). This is the
//!   sustained-throughput number.
//! * **steady drip** — the producer submits one edge and waits for it to
//!   be applied before sending the next, so no coalescing is ever
//!   possible. This pins down the per-edge round-trip and shows the
//!   coalescing machinery costs nothing when there is no backlog.
//!
//! Writes a `BENCH_ingest.json` trajectory (see `--out`) and prints a
//! table. `--smoke` (or `SPADE_QUICK=1`) shrinks the workload for CI.
//!
//! `cargo run -p spade-bench --release --bin bench_ingest [-- --smoke]`

use spade_core::metric::WeightedDensity;
use spade_core::service::metric_names;
use spade_core::stream::StreamEdge;
use spade_core::{IngestConfig, ServiceStats, SpadeEngine, SpadeService};
use spade_gen::fraud::{FraudInjector, FraudInjectorConfig};
use spade_gen::transactions::{TransactionStream, TransactionStreamConfig};
use spade_metrics::{MetricsSnapshot, Table};
use std::fmt::Write as _;
use std::time::Instant;

/// One measured configuration.
struct Sample {
    scenario: &'static str,
    coalesce: usize,
    edges: usize,
    elapsed_us: f64,
    stats: ServiceStats,
    /// Registry snapshot taken right before shutdown, so the per-stage
    /// latency histograms (queue wait / reorder / publish) ride along.
    metrics: MetricsSnapshot,
}

impl Sample {
    fn throughput_eps(&self) -> f64 {
        self.edges as f64 / (self.elapsed_us / 1e6).max(1e-9)
    }

    /// Quantile of a per-stage histogram in nanoseconds (0 if the stage
    /// never recorded, e.g. reorder with grouping disabled).
    fn stage_q(&self, name: &str, q: f64) -> u64 {
        self.metrics.histograms.get(name).map_or(0, |h| h.quantile(q))
    }
}

/// Nanoseconds rendered as microseconds for the latency table.
fn us(ns: u64) -> String {
    format!("{:.1}", ns as f64 / 1e3)
}

/// Benign-heavy Zipf marketplace traffic plus injected dense rings, so
/// bursts repeatedly hammer the same communities (the regime batch
/// reordering amortizes).
fn workload(smoke: bool) -> Vec<StreamEdge> {
    let scale = if smoke { 0.1 } else { 1.0 };
    let base = TransactionStream::generate(&TransactionStreamConfig {
        customers: ((4_000.0 * scale) as usize).max(150),
        merchants: ((1_200.0 * scale) as usize).max(50),
        transactions: ((20_000.0 * scale) as usize).max(1_000),
        seed: 0x1465,
        ..Default::default()
    });
    let injected = FraudInjector::inject(
        &base,
        &FraudInjectorConfig {
            instances_per_pattern: 2,
            transactions_per_instance: ((400.0 * scale) as usize).max(60),
            amount: 250.0,
            ..Default::default()
        },
    );
    injected.edges
}

fn spawn_service(coalesce: usize) -> SpadeService {
    SpadeService::spawn_with(
        SpadeEngine::new(WeightedDensity),
        None,
        IngestConfig { queue_capacity: 4096, coalesce, deadline: None },
        format!("ingest-bench-{coalesce}"),
    )
}

/// Polls until the worker has consumed `target` commands, then snapshots
/// the counters (stats are unreadable after shutdown). Bounded so a
/// stalled worker aborts the benchmark instead of hanging CI.
fn drain_to(service: &SpadeService, target: u64) -> ServiceStats {
    let deadline = Instant::now() + std::time::Duration::from_secs(120);
    loop {
        let stats = service.stats();
        if stats.updates_applied >= target {
            return stats;
        }
        assert!(
            Instant::now() < deadline,
            "worker stalled at {}/{target} updates",
            stats.updates_applied
        );
        std::thread::yield_now();
    }
}

/// Bursty replay: submit everything, then time includes the drain.
fn run_bursty(edges: &[StreamEdge], coalesce: usize) -> Sample {
    let service = spawn_service(coalesce);
    let started = Instant::now();
    for e in edges {
        assert!(service.submit(e.src, e.dst, e.raw));
    }
    let stats = drain_to(&service, edges.len() as u64);
    let elapsed_us = started.elapsed().as_secs_f64() * 1e6;
    let metrics = service.metrics();
    let final_det = service.shutdown();
    assert_eq!(final_det.updates_applied, edges.len() as u64);
    Sample { scenario: "bursty", coalesce, edges: edges.len(), elapsed_us, stats, metrics }
}

/// Steady drip: one edge in flight at a time — no coalescing possible.
fn run_drip(edges: &[StreamEdge], coalesce: usize) -> Sample {
    let service = spawn_service(coalesce);
    let started = Instant::now();
    for (i, e) in edges.iter().enumerate() {
        assert!(service.submit(e.src, e.dst, e.raw));
        drain_to(&service, i as u64 + 1);
    }
    let stats = service.stats();
    let elapsed_us = started.elapsed().as_secs_f64() * 1e6;
    let metrics = service.metrics();
    service.shutdown();
    Sample { scenario: "drip", coalesce, edges: edges.len(), elapsed_us, stats, metrics }
}

fn write_json(path: &str, edges: usize, samples: &[Sample]) -> std::io::Result<()> {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"bench\": \"ingest\",");
    let _ = writeln!(out, "  \"workload_edges\": {edges},");
    let _ = writeln!(out, "  \"samples\": [");
    for (i, s) in samples.iter().enumerate() {
        let comma = if i + 1 < samples.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"scenario\": \"{}\", \"coalesce\": {}, \"edges\": {}, \
             \"elapsed_us\": {:.1}, \"throughput_eps\": {:.1}, \"publishes\": {}, \
             \"skipped_unchanged\": {}, \"rejected\": {}, \"flushes\": {}, \
             \"queue_wait_p50_ns\": {}, \"queue_wait_p99_ns\": {}, \
             \"publish_p50_ns\": {}, \"publish_p99_ns\": {}}}{comma}",
            s.scenario,
            s.coalesce,
            s.edges,
            s.elapsed_us,
            s.throughput_eps(),
            s.stats.publishes,
            s.stats.skipped_unchanged,
            s.stats.rejected,
            s.stats.flushes,
            s.stage_q(metric_names::STAGE_QUEUE_WAIT_NS, 0.50),
            s.stage_q(metric_names::STAGE_QUEUE_WAIT_NS, 0.99),
            s.stage_q(metric_names::STAGE_PUBLISH_NS, 0.50),
            s.stage_q(metric_names::STAGE_PUBLISH_NS, 0.99),
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    std::fs::write(path, out)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke") || std::env::var_os("SPADE_QUICK").is_some();
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_ingest.json".to_string());

    let edges = workload(smoke);
    println!(
        "ingest bench: {} edges ({}), 1 hardware-thread note: producer and worker share cores\n",
        edges.len(),
        if smoke { "smoke" } else { "full" },
    );

    let mut samples = Vec::new();
    for coalesce in [1usize, 8, 64, 256, 1024] {
        samples.push(run_bursty(&edges, coalesce));
    }
    // Drip is O(edges) round-trips; keep it shorter than the replay.
    let drip_cap = edges.len().min(if smoke { 300 } else { 2_000 });
    for coalesce in [1usize, 256] {
        samples.push(run_drip(&edges[..drip_cap], coalesce));
    }

    let mut table =
        Table::new(["scenario", "coalesce", "edges", "tx/s", "publishes", "skipped", "per-edge"]);
    for s in &samples {
        table.row([
            s.scenario.to_string(),
            s.coalesce.to_string(),
            s.edges.to_string(),
            format!("{:.0}", s.throughput_eps()),
            s.stats.publishes.to_string(),
            s.stats.skipped_unchanged.to_string(),
            format!("{:.2} us", s.elapsed_us / s.edges.max(1) as f64),
        ]);
    }
    table.print();

    // Per-stage latency from the always-on registry instrumentation:
    // queue wait (time an edge sat in the bounded queue) versus the
    // processing stages (reorder + publish). Under bursty replay the
    // queue wait dominates by orders of magnitude — the paper's §5.2
    // observation that batch-mode latency is almost entirely queueing.
    println!("\nper-stage latency (us, from the runtime metrics registry):");
    let mut stages = Table::new([
        "scenario",
        "coalesce",
        "q-wait p50",
        "q-wait p99",
        "reorder p99",
        "publish p50",
        "publish p99",
        "batch p99",
    ]);
    for s in &samples {
        stages.row([
            s.scenario.to_string(),
            s.coalesce.to_string(),
            us(s.stage_q(metric_names::STAGE_QUEUE_WAIT_NS, 0.50)),
            us(s.stage_q(metric_names::STAGE_QUEUE_WAIT_NS, 0.99)),
            us(s.stage_q(metric_names::STAGE_REORDER_NS, 0.99)),
            us(s.stage_q(metric_names::STAGE_PUBLISH_NS, 0.50)),
            us(s.stage_q(metric_names::STAGE_PUBLISH_NS, 0.99)),
            s.stage_q(metric_names::COALESCE_BATCH_SIZE, 0.99).to_string(),
        ]);
    }
    stages.print();

    let per_edge = samples.iter().find(|s| s.scenario == "bursty" && s.coalesce == 1);
    let coalesced = samples.iter().find(|s| s.scenario == "bursty" && s.coalesce == 256);
    if let (Some(base), Some(fast)) = (per_edge, coalesced) {
        println!(
            "\nbursty replay: coalesce=256 sustains {:.2}x the per-edge loop \
             ({:.0} vs {:.0} tx/s)",
            fast.throughput_eps() / base.throughput_eps().max(1e-9),
            fast.throughput_eps(),
            base.throughput_eps(),
        );
    }

    // Drip parity: with no backlog every drain is a single command, and
    // the worker short-circuits it onto the per-edge path — a high
    // coalesce cap must cost (essentially) nothing. Guard the fix with a
    // loose bound so noise doesn't flake CI but a real regression (the
    // old batch-path overhead was ~8%) fails loudly.
    let drip_base = samples.iter().find(|s| s.scenario == "drip" && s.coalesce == 1);
    let drip_coalesced = samples.iter().find(|s| s.scenario == "drip" && s.coalesce == 256);
    if let (Some(base), Some(capped)) = (drip_base, drip_coalesced) {
        let ratio = base.throughput_eps() / capped.throughput_eps().max(1e-9);
        println!(
            "drip parity: coalesce=256 runs at {:.2}x the per-edge cost \
             ({:.0} vs {:.0} tx/s)",
            ratio,
            capped.throughput_eps(),
            base.throughput_eps(),
        );
        assert!(
            ratio < 1.35,
            "drip regression: coalesce=256 is {ratio:.2}x slower than per-edge \
             (single-command drains must take the per-edge short circuit)"
        );
    }

    match write_json(&out_path, edges.len(), &samples) {
        Ok(()) => println!("trajectory written to {out_path}"),
        Err(e) => {
            eprintln!("error: cannot write {out_path}: {e}");
            std::process::exit(1);
        }
    }
}
