//! Density metrics and user-defined suspiciousness functions (paper §2.1,
//! §3.1, Appendix E/F).
//!
//! Spade supports every *arithmetic density* `g(S) = f(S) / |S|` with
//! non-negative vertex suspiciousness `a_i >= 0` and strictly positive edge
//! suspiciousness `c_ij > 0` (Property 3.1). A metric is specified by two
//! plug-in functions, mirroring the paper's `VSusp` / `ESusp` API:
//!
//! * `vertex_susp(u, g)` — the prior suspiciousness `a_u`, evaluated when a
//!   vertex first appears;
//! * `edge_susp(src, dst, raw, g)` — the suspiciousness `c_ij` of an
//!   arriving transaction, evaluated against the *current* graph (streaming
//!   semantics; weights are never retroactively rescaled — see DESIGN.md §4).
//!
//! Three built-in instances reproduce the paper's Table 1 competitors:
//! [`UnweightedDensity`] (DG, Charikar), [`WeightedDensity`] (DW, Gudapati
//! et al.) and [`Fraudar`] (FD, Hooi et al.).

use spade_graph::{DynamicGraph, VertexId};

/// A pluggable fraud-semantics definition: the pair of suspiciousness
/// functions that define an arithmetic density metric.
pub trait DensityMetric {
    /// The prior suspiciousness `a_u >= 0` of a newly observed vertex.
    fn vertex_susp(&self, u: VertexId, g: &DynamicGraph) -> f64;

    /// The suspiciousness `c_ij > 0` of an arriving transaction
    /// `(src, dst)` whose raw attribute (e.g. amount) is `raw`, evaluated
    /// against the current graph *before* the edge is inserted.
    fn edge_susp(&self, src: VertexId, dst: VertexId, raw: f64, g: &DynamicGraph) -> f64;

    /// Short name used in reports and benchmark tables.
    fn name(&self) -> &'static str {
        "custom"
    }

    /// Whether repeated transactions over the same ordered pair accumulate
    /// suspiciousness (amount semantics, like DW) or are redundant once
    /// the pair exists (set semantics, like DG and FD — `E ∪ ΔE` in the
    /// paper's update model). The edge-grouping buffer consults this to
    /// dedup not-yet-inserted pairs.
    fn accumulates_duplicates(&self) -> bool {
        true
    }
}

/// `DG` — unweighted dense subgraph density (Charikar): `g(S) = |E[S]| / |S|`.
///
/// Every **distinct** edge counts 1 and vertices carry no prior
/// suspiciousness. The paper's update model is a set union
/// (`G ⊕ ΔG = (V ∪ ΔV, E ∪ ΔE)`, §2.1), so a repeated transaction over an
/// existing pair is redundant — the metric returns 0 and the engine
/// treats the insertion as a no-op.
#[derive(Clone, Copy, Debug, Default)]
pub struct UnweightedDensity;

impl DensityMetric for UnweightedDensity {
    #[inline]
    fn vertex_susp(&self, _u: VertexId, _g: &DynamicGraph) -> f64 {
        0.0
    }

    #[inline]
    fn edge_susp(&self, src: VertexId, dst: VertexId, _raw: f64, g: &DynamicGraph) -> f64 {
        if g.contains_vertex(src) && g.contains_vertex(dst) && g.contains_edge(src, dst) {
            0.0
        } else {
            1.0
        }
    }

    fn name(&self) -> &'static str {
        "DG"
    }

    fn accumulates_duplicates(&self) -> bool {
        false
    }
}

/// `DW` — edge-weighted density (Gudapati, Malaguti, Monaci):
/// `g(S) = sum of c_ij over E[S] / |S|` where `c_ij` is the raw transaction
/// weight (e.g. amount).
#[derive(Clone, Copy, Debug, Default)]
pub struct WeightedDensity;

impl DensityMetric for WeightedDensity {
    #[inline]
    fn vertex_susp(&self, _u: VertexId, _g: &DynamicGraph) -> f64 {
        0.0
    }

    #[inline]
    fn edge_susp(&self, _src: VertexId, _dst: VertexId, raw: f64, _g: &DynamicGraph) -> f64 {
        raw
    }

    fn name(&self) -> &'static str {
        "DW"
    }
}

/// Which endpoint of a transaction is the *object* whose degree drives the
/// Fraudar edge weight.
///
/// The paper's prose (§3.1) says "the degree of the object vertex", i.e. the
/// merchant/product side (`Dst` for customer→merchant edges); its Listing 2
/// uses `g.deg[e.src]`. Both are supported; `Dst` is the default because it
/// matches the original Fraudar column-weighting.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum FraudarSide {
    /// Weight by the destination (object/merchant) degree — Fraudar's
    /// column weighting.
    #[default]
    Dst,
    /// Weight by the source degree — as written in the paper's Listing 2.
    Src,
}

/// `FD` — Fraudar (Hooi et al., KDD'16) with camouflage-resistant
/// logarithmic edge weighting:
/// `c_ij = 1 / ln(x + c)` where `x` is the degree of the object vertex at
/// edge-arrival time, plus optional per-vertex prior suspiciousness from
/// side information.
#[derive(Clone, Debug)]
pub struct Fraudar {
    /// The small positive constant `c` inside the logarithm (paper uses 5).
    pub log_offset: f64,
    /// Which endpoint's degree drives the weight.
    pub side: FraudarSide,
    /// Optional per-vertex prior suspiciousness (`a_u`); vertices beyond
    /// the table (or with no table) default to 0.
    prior: Option<Vec<f64>>,
}

impl Default for Fraudar {
    fn default() -> Self {
        Fraudar { log_offset: 5.0, side: FraudarSide::Dst, prior: None }
    }
}

impl Fraudar {
    /// Creates the standard Fraudar metric (`c = 5`, object = destination).
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides the logarithm offset constant.
    pub fn with_log_offset(mut self, c: f64) -> Self {
        assert!(c > 1.0, "log offset must exceed 1 so ln(x + c) > 0 for x >= 0");
        self.log_offset = c;
        self
    }

    /// Chooses which endpoint's degree drives the edge weight.
    pub fn with_side(mut self, side: FraudarSide) -> Self {
        self.side = side;
        self
    }

    /// Installs per-vertex prior suspiciousness from side information.
    pub fn with_prior(mut self, prior: Vec<f64>) -> Self {
        assert!(prior.iter().all(|&a| a >= 0.0), "prior suspiciousness must be >= 0");
        self.prior = Some(prior);
        self
    }
}

impl DensityMetric for Fraudar {
    #[inline]
    fn vertex_susp(&self, u: VertexId, _g: &DynamicGraph) -> f64 {
        match &self.prior {
            Some(p) => p.get(u.index()).copied().unwrap_or(0.0),
            None => 0.0,
        }
    }

    #[inline]
    fn edge_susp(&self, src: VertexId, dst: VertexId, _raw: f64, g: &DynamicGraph) -> f64 {
        // Set semantics like the original Fraudar: a duplicate review /
        // transaction over an existing pair adds no suspiciousness.
        if g.contains_vertex(src) && g.contains_vertex(dst) && g.contains_edge(src, dst) {
            return 0.0;
        }
        let object = match self.side {
            FraudarSide::Dst => dst,
            FraudarSide::Src => src,
        };
        let x = g.degree(object) as f64;
        1.0 / (x + self.log_offset).ln()
    }

    fn name(&self) -> &'static str {
        "FD"
    }

    fn accumulates_duplicates(&self) -> bool {
        false
    }
}

/// A metric assembled from runtime closures — the `VSusp` / `ESusp`
/// plug-in path of the paper's Listing 1/2.
pub struct CustomMetric {
    name: &'static str,
    vsusp: VertexSuspFn,
    esusp: EdgeSuspFn,
    accumulates: bool,
}

/// Boxed vertex-suspiciousness closure (`VSusp`).
pub type VertexSuspFn = Box<dyn Fn(VertexId, &DynamicGraph) -> f64 + Send + Sync>;

/// Boxed edge-suspiciousness closure (`ESusp`): receives
/// `(src, dst, raw, graph)`.
pub type EdgeSuspFn = Box<dyn Fn(VertexId, VertexId, f64, &DynamicGraph) -> f64 + Send + Sync>;

impl CustomMetric {
    /// Builds a metric from the two suspiciousness closures.
    pub fn new(
        name: &'static str,
        vsusp: impl Fn(VertexId, &DynamicGraph) -> f64 + Send + Sync + 'static,
        esusp: impl Fn(VertexId, VertexId, f64, &DynamicGraph) -> f64 + Send + Sync + 'static,
    ) -> Self {
        CustomMetric { name, vsusp: Box::new(vsusp), esusp: Box::new(esusp), accumulates: true }
    }

    /// Declares whether duplicate ordered pairs accumulate (amount
    /// semantics, the default) or are redundant (set semantics).
    pub fn with_duplicate_accumulation(mut self, accumulates: bool) -> Self {
        self.accumulates = accumulates;
        self
    }
}

impl std::fmt::Debug for CustomMetric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CustomMetric").field("name", &self.name).finish()
    }
}

impl DensityMetric for CustomMetric {
    #[inline]
    fn vertex_susp(&self, u: VertexId, g: &DynamicGraph) -> f64 {
        (self.vsusp)(u, g)
    }

    #[inline]
    fn edge_susp(&self, src: VertexId, dst: VertexId, raw: f64, g: &DynamicGraph) -> f64 {
        (self.esusp)(src, dst, raw, g)
    }

    fn name(&self) -> &'static str {
        self.name
    }

    fn accumulates_duplicates(&self) -> bool {
        self.accumulates
    }
}

impl<M: DensityMetric + ?Sized> DensityMetric for &M {
    fn vertex_susp(&self, u: VertexId, g: &DynamicGraph) -> f64 {
        (**self).vertex_susp(u, g)
    }

    fn edge_susp(&self, src: VertexId, dst: VertexId, raw: f64, g: &DynamicGraph) -> f64 {
        (**self).edge_susp(src, dst, raw, g)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn accumulates_duplicates(&self) -> bool {
        (**self).accumulates_duplicates()
    }
}

impl<M: DensityMetric + ?Sized> DensityMetric for Box<M> {
    fn vertex_susp(&self, u: VertexId, g: &DynamicGraph) -> f64 {
        (**self).vertex_susp(u, g)
    }

    fn edge_susp(&self, src: VertexId, dst: VertexId, raw: f64, g: &DynamicGraph) -> f64 {
        (**self).edge_susp(src, dst, raw, g)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn accumulates_duplicates(&self) -> bool {
        (**self).accumulates_duplicates()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    fn two_vertex_graph() -> DynamicGraph {
        let mut g = DynamicGraph::new();
        g.add_vertex(0.0).unwrap();
        g.add_vertex(0.0).unwrap();
        g
    }

    #[test]
    fn dg_is_unit_weight() {
        let g = two_vertex_graph();
        let m = UnweightedDensity;
        assert_eq!(m.vertex_susp(v(0), &g), 0.0);
        assert_eq!(m.edge_susp(v(0), v(1), 123.0, &g), 1.0);
        assert_eq!(m.name(), "DG");
    }

    #[test]
    fn dw_passes_raw_weight() {
        let g = two_vertex_graph();
        let m = WeightedDensity;
        assert_eq!(m.edge_susp(v(0), v(1), 7.5, &g), 7.5);
        assert_eq!(m.name(), "DW");
    }

    #[test]
    fn fraudar_logarithmic_weighting_decreases_with_degree() {
        let mut g = two_vertex_graph();
        let m = Fraudar::new();
        let fresh = m.edge_susp(v(0), v(1), 1.0, &g);
        assert!((fresh - 1.0 / 5.0f64.ln()).abs() < 1e-12);
        // Grow the destination's degree; the weight must shrink.
        for i in 2..12 {
            g.add_vertex(0.0).unwrap();
            g.insert_edge(v(i), v(1), 1.0).unwrap();
        }
        let loaded = m.edge_susp(v(0), v(1), 1.0, &g);
        assert!(loaded < fresh);
        assert!((loaded - 1.0 / 15.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn fraudar_side_selection() {
        let mut g = two_vertex_graph();
        g.add_vertex(0.0).unwrap();
        g.insert_edge(v(2), v(0), 1.0).unwrap(); // src 0 now has degree 1
        let by_dst = Fraudar::new().edge_susp(v(0), v(1), 1.0, &g);
        let by_src = Fraudar::new().with_side(FraudarSide::Src).edge_susp(v(0), v(1), 1.0, &g);
        assert!((by_dst - 1.0 / 5.0f64.ln()).abs() < 1e-12);
        assert!((by_src - 1.0 / 6.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn fraudar_prior_suspiciousness() {
        let g = two_vertex_graph();
        let m = Fraudar::new().with_prior(vec![0.5, 2.0]);
        assert_eq!(m.vertex_susp(v(0), &g), 0.5);
        assert_eq!(m.vertex_susp(v(1), &g), 2.0);
        // Out of table -> default 0.
        assert_eq!(m.vertex_susp(v(9), &g), 0.0);
    }

    #[test]
    #[should_panic(expected = "log offset")]
    fn fraudar_rejects_degenerate_log_offset() {
        let _ = Fraudar::new().with_log_offset(1.0);
    }

    #[test]
    fn custom_metric_closures() {
        let g = two_vertex_graph();
        let m = CustomMetric::new("amount-capped", |_u, _g| 0.25, |_s, _d, raw, _g| raw.min(10.0));
        assert_eq!(m.vertex_susp(v(0), &g), 0.25);
        assert_eq!(m.edge_susp(v(0), v(1), 50.0, &g), 10.0);
        assert_eq!(m.name(), "amount-capped");
    }

    #[test]
    fn metric_references_delegate() {
        let g = two_vertex_graph();
        let m = WeightedDensity;
        let r: &dyn DensityMetric = &m;
        assert_eq!(r.edge_susp(v(0), v(1), 2.0, &g), 2.0);
        let boxed: Box<dyn DensityMetric> = Box::new(UnweightedDensity);
        assert_eq!(boxed.edge_susp(v(0), v(1), 2.0, &g), 1.0);
        assert_eq!(boxed.name(), "DG");
    }
}
