//! Offline stand-in for the `serde` derive macros.
//!
//! This workspace builds in environments with no crates.io access, so the
//! handful of `#[derive(serde::Serialize, serde::Deserialize)]` attributes
//! in the data-model types resolve to these no-op derives. Nothing in the
//! workspace bounds on the serde traits — the snapshot format
//! (`spade_core::persist`) is a hand-rolled binary layout — so expanding to
//! an empty token stream is sufficient. Swapping in the real serde is a
//! one-line Cargo change once a registry is reachable.

use proc_macro::TokenStream;

/// No-op replacement for `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op replacement for `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
