//! Subcommand implementations for the `spade` binary.

use crate::args::Args;
use spade_core::metric::{DensityMetric, Fraudar, UnweightedDensity, WeightedDensity};
use spade_core::{
    load_engine, save_engine, EdgeGrouper, GroupingConfig, MigrationReport, PartitionStrategy,
    RepairConfig, RepairedDetection, ShardedConfig, ShardedSpadeService, SpadeConfig, SpadeEngine,
    SpadeService,
};
use spade_gen::datasets::DatasetSpec;
use spade_graph::io::{read_edge_list, EdgeRecord};
use spade_graph::VertexId;
use spade_metrics::Table;
use spade_net::{
    ClientConfig, MetricsHttpServer, NetStats, ReactorConfig, RouterConfig, ShardServer,
    ShardServerConfig, SpadeNetClient, SpadeNetServer, SpadeRouter,
};
use std::error::Error;
use std::sync::Arc;
use std::time::{Duration, Instant};

type AnyError = Box<dyn Error>;

/// Enum-dispatched metric chosen by `--metric`.
#[derive(Clone, Debug)]
pub enum CliMetric {
    /// DG.
    Dg(UnweightedDensity),
    /// DW.
    Dw(WeightedDensity),
    /// FD.
    Fd(Fraudar),
}

impl CliMetric {
    fn from_name(name: &str) -> Result<CliMetric, AnyError> {
        match name.to_ascii_lowercase().as_str() {
            "dg" => Ok(CliMetric::Dg(UnweightedDensity)),
            "dw" => Ok(CliMetric::Dw(WeightedDensity)),
            "fd" => Ok(CliMetric::Fd(Fraudar::new())),
            other => Err(format!("unknown metric {other:?} (expected dg, dw or fd)").into()),
        }
    }
}

impl DensityMetric for CliMetric {
    fn vertex_susp(&self, u: VertexId, g: &spade_graph::DynamicGraph) -> f64 {
        match self {
            CliMetric::Dg(m) => m.vertex_susp(u, g),
            CliMetric::Dw(m) => m.vertex_susp(u, g),
            CliMetric::Fd(m) => m.vertex_susp(u, g),
        }
    }

    fn edge_susp(&self, s: VertexId, d: VertexId, raw: f64, g: &spade_graph::DynamicGraph) -> f64 {
        match self {
            CliMetric::Dg(m) => m.edge_susp(s, d, raw, g),
            CliMetric::Dw(m) => m.edge_susp(s, d, raw, g),
            CliMetric::Fd(m) => m.edge_susp(s, d, raw, g),
        }
    }

    fn name(&self) -> &'static str {
        match self {
            CliMetric::Dg(m) => m.name(),
            CliMetric::Dw(m) => m.name(),
            CliMetric::Fd(m) => m.name(),
        }
    }

    fn accumulates_duplicates(&self) -> bool {
        match self {
            CliMetric::Dg(m) => m.accumulates_duplicates(),
            CliMetric::Dw(m) => m.accumulates_duplicates(),
            CliMetric::Fd(m) => m.accumulates_duplicates(),
        }
    }
}

/// Prints usage.
pub fn print_help() {
    eprintln!(
        "spade — real-time fraud detection on evolving transaction graphs

USAGE:
  spade detect   <edges.txt> [--metric dg|dw|fd] [--top N] [--shards N]
                 [--repair] [--repair-hops K] [--rebalance]
  spade stream   <edges.txt> [--metric dg|dw|fd] [--initial 0.9]
                 [--batch N | --grouping]
  spade serve    <edges.txt> [--shards N] [--metric dg|dw|fd] [--grouping]
                 [--queue N] [--coalesce N] [--deadline-ms F]
                 [--partition hash|connectivity|conn:<max_component>]
                 [--top N] [--repair] [--repair-hops K] [--rebalance]
  spade serve    --listen <addr> [--shards N] [--metric dg|dw|fd]
                 [--metrics <addr>] [--net-workers N] [...]
  spade ingest   <addr> <edges.txt> [--batch N] [--pipeline N]
                 [--deadline-ms F] [--detect] [--stats] [--shutdown]
  spade watch    <addr> [--interval ms] [--count N]
  spade shard-serve [--listen <addr>] [--metric dg|dw|fd] [--queue N]
                 [--grouping]
  spade route    <edges.txt> <addr>... [--batch N] [--repair-hops K]
                 [--partition hash|connectivity|conn:<max_component>]
                 [--no-replicate] [--consolidate] [--shutdown]
  spade gen      [--dataset Grab1] [--scale 0.01] [--seed 42] [--out FILE]
  spade snapshot <edges.txt> --out FILE [--metric dg|dw|fd]
  spade resume   <FILE> [--metric dg|dw|fd] [--top N]
  spade help

`serve` replays the file through the sharded parallel runtime (one engine
per shard, communities kept co-resident by the connectivity partitioner)
and reports per-shard statistics plus the `--top` densest per-shard
communities (overlapping shard views of one split community are deduped).
`detect --shards N` routes the same static input through N shards instead
of one engine. `--coalesce N` caps how many queued transactions a shard
worker drains and applies as one batch per wake-up (default 256; 1 =
per-edge processing). `--deadline-ms F` sets a per-transaction detection
latency budget (fractional ms allowed): shard workers then schedule
batch boundaries so every queued transaction is applied within its
budget — prefer it over tuning `--coalesce` directly. On `ingest` the
same flag stamps the budget onto every frame so the server paces those
edges; misses and remaining slack are exported as
`spade_deadline_miss_total` / `spade_deadline_slack_ns` and shown in
`spade watch`. `--partition` picks the routing policy
(`--partitioner` is accepted as an alias); `conn:<max_component>` sets
the connectivity policy's spill bound explicitly. `--repair` runs the
cross-shard repair pass after the replay: every shard exports its
community plus a `--repair-hops` frontier (default 1), overlapping
regions are unioned and re-peeled, and the repaired detection — never
less dense than the best per-shard view — is reported alongside the
dilution it recovered. `--rebalance` turns on the live migration
scheduler: components whose merge stranded edges on a losing home are
moved whole onto their surviving shard (extract, evict, replay through
the snapshot codec), and overloaded shards shed their largest pinned
component; a final pass runs before the report.

`serve --listen <addr>` takes no edge list: it binds a framed-TCP ingest
server on <addr> (port 0 picks a free port; the bound address is
printed) and bridges producer frames straight into the sharded runtime —
a full shard queue answers Busy over the wire instead of blocking the
connection. All connections are multiplexed onto a small reactor pool of
`--net-workers` event-loop threads (default 2) with a per-connection
frame budget per readiness cycle, so one firehose producer cannot starve
other connections of acks. The server runs until a producer sends the Shutdown frame
(`spade ingest --shutdown`), then prints the usual sharded report plus
connection/frame/busy transport counters. `spade ingest <addr> <file>`
is the matching producer: it replays an edge list with `--batch`-sized
pipelined frames (`--pipeline` in flight), retries Busy suffixes, and
with `--detect`/`--stats` reads the live detection and server counters
back; `--shutdown` stops the server when the replay ends.

`serve --listen ... --metrics <addr>` additionally serves the live
Prometheus text exposition on <addr> (scrape http://<addr>/metrics):
per-stage latency histograms (queue wait, reorder/peel, publish),
runtime totals, repair/migration counters, and transport counters with
per-connection series. `spade watch <addr>` polls a serving runtime over
the wire and prints a refreshing table of updates, per-shard queue
depths (back-pressure before Busy fires), and stage latencies; each poll
flushes, so watch a live workload rather than an idle server for
representative numbers.

`shard-serve` and `route` are the *multi-process* distributed runtime:
each `shard-serve` process hosts one detection engine behind the
protocol-v3 shard listener (its first stdout line is the bound address —
port 0 picks a free port), and `route` replays an edge list across N
such processes. The router journals every batch on the next shard over
before its home applies it, so a SIGKILL'd shard can be restarted and
reseeded from its replica's journal with zero acked-edge loss (single
failure tolerated). After the replay `route` runs the cross-shard repair
pass over the wire and reports the stitched detection;
`--consolidate` then migrates the repaired community whole onto its
baseline shard, and `--shutdown` stops the shard processes.

Edge lists are whitespace-separated `src dst [raw] [timestamp]` lines."
    );
}

fn load_records(path: &str) -> Result<Vec<EdgeRecord>, AnyError> {
    let file = std::fs::File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let (records, _) = read_edge_list(file)?;
    Ok(records)
}

fn metric_from(args: &Args) -> Result<CliMetric, AnyError> {
    CliMetric::from_name(&args.str_opt("metric", "dw"))
}

fn print_communities<M: DensityMetric>(engine: &mut SpadeEngine<M>, top: usize) {
    let det = engine.detect();
    if det.size == 0 {
        println!("no suspicious community detected");
        return;
    }
    let instances = spade_core::enumerate_static(
        engine.graph(),
        spade_core::EnumerationConfig {
            max_instances: top,
            min_density: det.density / 50.0,
            ..Default::default()
        },
    );
    let mut table = Table::new(["#", "members", "density", "sample accounts"]);
    for (i, inst) in instances.iter().enumerate() {
        let sample: Vec<String> = inst.members.iter().take(8).map(|m| m.0.to_string()).collect();
        table.row([
            (i + 1).to_string(),
            inst.members.len().to_string(),
            format!("{:.3}", inst.density),
            sample.join(","),
        ]);
    }
    table.print();
}

/// `--deadline-ms F`: the per-transaction detection-latency budget for
/// the SLO batch scheduler (fractional milliseconds allowed; 0 or absent
/// means unbudgeted drain-coalesce).
fn deadline_from(args: &Args) -> Result<Option<Duration>, AnyError> {
    let ms = args.num_opt("deadline-ms", 0.0f64)?;
    if ms < 0.0 || !ms.is_finite() {
        return Err("--deadline-ms must be a non-negative number of milliseconds".into());
    }
    Ok((ms > 0.0).then(|| Duration::from_secs_f64(ms / 1e3)))
}

/// Builds a [`ShardedConfig`] from the shared `--shards`, `--queue`,
/// `--partition` (alias `--partitioner`) and `--grouping` options.
fn sharded_config_from(args: &Args, shards: usize) -> Result<ShardedConfig, AnyError> {
    let named = args
        .options
        .get("partition")
        .or_else(|| args.options.get("partitioner"))
        .filter(|name| !name.is_empty());
    let strategy = match named {
        Some(name) => PartitionStrategy::from_name(name).ok_or_else(|| {
            format!(
                "unknown partitioner {name:?} (expected hash, connectivity, or \
                 conn:<max_component>)"
            )
        })?,
        None => PartitionStrategy::default(),
    };
    Ok(ShardedConfig {
        shards,
        queue_capacity: args.num_opt("queue", 1024usize)?.max(1),
        coalesce: args.num_opt("coalesce", ShardedConfig::default().coalesce)?.max(1),
        deadline: deadline_from(args)?,
        grouping: args.flag("grouping").then(GroupingConfig::default),
        strategy,
        top_k: shards,
        repair: RepairConfig {
            hops: args.num_opt("repair-hops", RepairConfig::default().hops)?,
            ..Default::default()
        },
        migration: Default::default(),
    })
}

/// Prints the per-shard statistics table (with per-shard repair columns
/// when a repair pass ran) and the `top` densest per-shard communities of
/// the merged view, overlap-deduplicated.
fn print_sharded_report(
    service: &ShardedSpadeService,
    elapsed_secs: f64,
    replayed: usize,
    top: usize,
    repaired: Option<&RepairedDetection>,
    rebalanced: Option<&MigrationReport>,
    net: Option<&NetStats>,
) {
    let stats = service.stats();
    let global = service.current_detection();
    println!(
        "{} transactions over {} shards in {:.1} ms ({:.0} tx/s)",
        replayed,
        stats.len(),
        elapsed_secs * 1e3,
        replayed as f64 / elapsed_secs.max(1e-9),
    );
    let mut table = Table::new([
        "shard",
        "updates",
        "queued",
        "rejected",
        "flushes",
        "publishes",
        "skipped",
        "det size",
        "det density",
        "region v/e",
        "merged",
    ]);
    for s in &stats {
        let (region, merged) = match repaired
            .and_then(|r| r.regions.iter().find(|summary| summary.shard == s.shard))
        {
            Some(summary) => (
                format!("{}/{}", summary.vertices, summary.edges),
                if summary.merged { "yes" } else { "no" }.to_string(),
            ),
            None => ("-".to_string(), "-".to_string()),
        };
        table.row([
            s.shard.to_string(),
            s.service.updates_applied.to_string(),
            s.service.queue_depth.to_string(),
            s.service.rejected.to_string(),
            s.service.flushes.to_string(),
            s.service.publishes.to_string(),
            s.service.skipped_unchanged.to_string(),
            s.service.detection_size.to_string(),
            format!("{:.3}", s.service.detection_density),
            region,
            merged,
        ]);
    }
    table.print();
    if let Some(n) = net {
        println!(
            "net: {} connection(s), {} frame(s), {} edges acked, {} busy repl(ies), \
             {} malformed frame(s)",
            n.connections, n.frames, n.edges_accepted, n.busy_replies, n.malformed_frames,
        );
    }
    if global.unique_members > 0 {
        println!("{} distinct suspicious accounts across all shard views", global.unique_members);
    }
    let ranked: Vec<_> =
        global.distinct.iter().filter(|s| s.detection.size > 0).take(top).collect();
    if ranked.is_empty() {
        println!("no suspicious community detected");
    }
    for (rank, s) in ranked.iter().enumerate() {
        let sample: Vec<String> =
            s.detection.members.iter().take(8).map(|m| m.0.to_string()).collect();
        println!(
            "#{}: shard {}, {} members, density {:.3} (accounts {})",
            rank + 1,
            s.shard,
            s.detection.size,
            s.detection.density,
            sample.join(","),
        );
    }
    if let Some(r) = repaired {
        let stats = service.repair_stats();
        println!(
            "repair: {} regions exported, {} merged group(s); best shard density {:.3} -> \
             repaired {:.3} ({})",
            r.regions.len(),
            stats.groups_merged,
            r.baseline_density,
            r.detection.density,
            if r.repaired {
                format!("+{:.1}% recovered by the union re-peel", {
                    let base = r.baseline_density.max(1e-12);
                    (r.detection.density / base - 1.0) * 100.0
                })
            } else {
                "no cross-shard merge needed".to_string()
            },
        );
        let sample: Vec<String> =
            r.detection.members.iter().take(8).map(|m| m.0.to_string()).collect();
        println!(
            "repaired community: {} members, density {:.3} (accounts {})",
            r.detection.size,
            r.detection.density,
            sample.join(","),
        );
    }
    if let Some(r) = rebalanced {
        let stats = service.migration_stats();
        println!(
            "rebalance: {} migration(s) ({} strand repair(s), {} load move(s)), {} edges \
             moved, {} empty slice(s) skipped, routing epoch {}",
            stats.migrations,
            stats.strand_repairs,
            stats.load_moves,
            stats.edges_moved,
            stats.skipped_empty,
            service.routing_epoch(),
        );
        for m in &r.moves {
            println!(
                "  moved component of {} vertices / {} edges (weight {:.1}) from shard {} to \
                 shard {} ({:?})",
                m.vertices, m.edges, m.edge_weight, m.from, m.to, m.trigger,
            );
        }
    }
}

/// `spade serve`: replay an edge list through the sharded parallel
/// runtime and report the merged detection.
pub fn serve(args: &Args) -> Result<(), AnyError> {
    let shards = args.num_opt("shards", 4usize)?.max(1);
    let listen = args.str_opt("listen", "");
    if !listen.is_empty() {
        return serve_listen(args, shards, &listen);
    }
    run_sharded(args, shards, "serve needs an edge-list path (or --listen <addr>)")
}

/// `spade serve --listen <addr>`: the network front end. Producers feed
/// the sharded runtime over framed TCP until one of them sends the
/// Shutdown frame; then the usual sharded report is printed, extended
/// with the transport counters.
fn serve_listen(args: &Args, shards: usize, addr: &str) -> Result<(), AnyError> {
    let metric = metric_from(args)?;
    let top = args.num_opt("top", 3usize)?.max(1);
    let config = sharded_config_from(args, shards)?;
    let rebalance = args.flag("rebalance");
    // `--net-workers N`: event-loop threads in the reactor pool. Every
    // connection is multiplexed onto one of these; 2 keeps accept and
    // drain responsive without dedicating a thread per connection.
    let net_workers = args.num_opt("net-workers", ReactorConfig::default().workers)?.max(1);
    let service = Arc::new(ShardedSpadeService::spawn(metric, config));
    let server = SpadeNetServer::bind_with(
        Arc::clone(&service),
        addr,
        ReactorConfig { workers: net_workers, ..Default::default() },
    )
    .map_err(|e| format!("cannot listen on {addr}: {e}"))?;
    println!(
        "listening on {} ({} shards, {} net workers); stop with a Shutdown frame \
         (`spade ingest ... --shutdown`)",
        server.local_addr(),
        shards,
        net_workers,
    );
    // `--metrics <addr>` serves the live Prometheus exposition over
    // HTTP: the runtime's merged registry snapshot plus the transport
    // counters — the identical rendering a wire `Metrics` request gets.
    let metrics_addr = args.str_opt("metrics", "");
    let exporter = if metrics_addr.is_empty() {
        None
    } else {
        let runtime = Arc::clone(&service);
        let net = server.metrics_provider();
        let exporter = MetricsHttpServer::bind(
            metrics_addr.as_str(),
            Arc::new(move || runtime.metrics().merge(&net()).render_prometheus()),
        )
        .map_err(|e| format!("cannot serve metrics on {metrics_addr}: {e}"))?;
        println!("metrics exposition on http://{}/metrics", exporter.local_addr());
        Some(exporter)
    };
    let started = Instant::now();
    while !server.is_stopped() {
        std::thread::sleep(std::time::Duration::from_millis(50));
        if rebalance {
            // Live scheduling while producers stream.
            let _ = service.rebalance_if_needed();
        }
    }
    let net = server.shutdown();
    // Every acknowledged edge sits in a shard queue; drain before the
    // report so the replay accounting is exact. The periodic flush
    // doubles as a liveness check (same discipline as the file-replay
    // drain loop): a dead shard worker fails the send and we error out
    // instead of spinning forever on a frozen counter.
    let mut next_liveness = Instant::now() + std::time::Duration::from_millis(100);
    while service.stats().iter().map(|s| s.service.updates_applied).sum::<u64>()
        < net.edges_accepted
    {
        if Instant::now() >= next_liveness {
            if !service.flush() {
                return Err("a shard shut down while draining acknowledged edges".into());
            }
            next_liveness = Instant::now() + std::time::Duration::from_millis(100);
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    let elapsed_secs = started.elapsed().as_secs_f64();
    let rebalanced = rebalance.then(|| service.rebalance());
    let repaired = if args.flag("repair") { Some(service.repair()) } else { None };
    print_sharded_report(
        &service,
        elapsed_secs,
        net.edges_accepted as usize,
        top,
        repaired.as_ref(),
        rebalanced.as_ref(),
        Some(&net),
    );
    // The exporter's render closure holds the runtime Arc — stop it
    // before unwrapping.
    if let Some(exporter) = exporter {
        exporter.shutdown();
    }
    let service =
        Arc::try_unwrap(service).map_err(|_| "a server thread still holds the runtime")?;
    service.shutdown();
    Ok(())
}

/// `spade ingest <addr> <edges.txt>`: a TCP producer replaying an edge
/// list into a `serve --listen` process with batched, pipelined frames.
pub fn ingest(args: &Args) -> Result<(), AnyError> {
    let addr = args.pos(0).ok_or("ingest needs a server address")?;
    let path = args.pos(1).ok_or("ingest needs an edge-list path")?;
    let records = load_records(path)?;
    let config = ClientConfig {
        batch: args.num_opt("batch", ClientConfig::default().batch)?.max(1),
        pipeline: args.num_opt("pipeline", ClientConfig::default().pipeline)?.max(1),
        // Attach a per-transaction budget to every frame (BatchBudget,
        // protocol v2) so the server's SLO scheduler paces these edges.
        budget: deadline_from(args)?,
        ..Default::default()
    };
    let mut client = SpadeNetClient::connect_with(addr, config)
        .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let started = Instant::now();
    for r in &records {
        client.submit(r.src, r.dst, r.weight)?;
    }
    client.flush()?;
    let elapsed = started.elapsed().as_secs_f64();
    let stats = client.stats();
    println!(
        "{} transactions acked over TCP in {:.1} ms ({:.0} tx/s, {} frames, {} busy retries)",
        stats.edges_acked,
        elapsed * 1e3,
        stats.edges_acked as f64 / elapsed.max(1e-9),
        stats.frames_sent,
        stats.busy_replies,
    );
    if args.flag("detect") {
        let det = client.detect()?;
        let sample: Vec<String> = det.members.iter().take(8).map(|m| m.0.to_string()).collect();
        println!(
            "server detection: {} members, density {:.3}, {} updates applied (accounts {})",
            det.size,
            det.density,
            det.updates_applied,
            sample.join(","),
        );
    }
    if args.flag("stats") {
        let s = client.server_stats()?;
        let depths: Vec<String> = s.shard_queue_depths.iter().map(u64::to_string).collect();
        println!(
            "server: {} shards, {} updates applied, {} queued ({}), up {:.1}s; net: \
             {} connection(s), {} frame(s), {} edges acked, {} busy repl(ies), \
             {} malformed frame(s)",
            s.shards,
            s.updates_applied,
            s.queue_depth,
            depths.join("/"),
            s.uptime_secs,
            s.connections,
            s.frames,
            s.edges_accepted,
            s.busy_replies,
            s.malformed_frames,
        );
    }
    if args.flag("shutdown") {
        client.shutdown_server()?;
        println!("server shutdown requested");
    }
    Ok(())
}

/// `spade shard-serve [--listen <addr>]`: one shard of the multi-process
/// distributed runtime. Hosts a single [`SpadeService`] behind the
/// protocol-v3 shard listener (ingest plus `Region`, `MigrateOut`,
/// `Absorb`, `Replicate`, and `Bootstrap`) and prints the bound address
/// on the first stdout line so a parent process can scrape the chosen
/// port. Runs until a router sends `Shutdown`.
pub fn shard_serve(args: &Args) -> Result<(), AnyError> {
    let metric = metric_from(args)?;
    let addr = args.str_opt("listen", &ShardServerConfig::default().addr);
    let queue = args.num_opt("queue", 1024usize)?.max(1);
    let grouping = args.flag("grouping").then(GroupingConfig::default);
    let service = Arc::new(SpadeService::spawn(SpadeEngine::new(metric), grouping, queue));
    let mut server = ShardServer::spawn(Arc::clone(&service), &ShardServerConfig { addr })
        .map_err(|e| format!("cannot listen: {e}"))?;
    // The first stdout line is machine-read by the router-side harness;
    // flush so a pipe reader sees it before the blocking serve loop.
    println!("{}", server.local_addr());
    use std::io::Write as _;
    std::io::stdout().flush()?;
    while !server.stopping() {
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    server.stop();
    drop(server);
    let service = Arc::try_unwrap(service)
        .map_err(|_| "a shard connection thread still holds the runtime")?;
    let det = service.shutdown();
    eprintln!(
        "shard stopped: {} members, density {:.3}, {} updates applied",
        det.size, det.density, det.updates_applied,
    );
    Ok(())
}

/// `spade route <edges.txt> <addr>...`: the router tier. Replays an edge
/// list across N shard-serve processes (replicated journaling on, so
/// every acked batch survives a single shard crash), runs the
/// cross-shard repair pass over the wire, optionally consolidates the
/// repaired community onto its baseline shard, and reports the
/// distributed detection plus router accounting.
pub fn route(args: &Args) -> Result<(), AnyError> {
    let path = args.pos(0).ok_or("route needs an edge-list path")?;
    let addrs: Vec<String> = (1..).map_while(|i| args.pos(i).map(str::to_string)).collect();
    if addrs.is_empty() {
        return Err("route needs at least one shard address".into());
    }
    let records = load_records(path)?;
    let strategy = match args.options.get("partition").filter(|name| !name.is_empty()) {
        Some(name) => PartitionStrategy::from_name(name).ok_or_else(|| {
            format!(
                "unknown partitioner {name:?} (expected hash, connectivity, or \
                 conn:<max_component>)"
            )
        })?,
        None => PartitionStrategy::default(),
    };
    let config = RouterConfig {
        batch_edges: args.num_opt("batch", RouterConfig::default().batch_edges)?.max(1),
        hops: args.num_opt("repair-hops", RouterConfig::default().hops)?,
        strategy,
        replicate: !args.flag("no-replicate"),
        ..Default::default()
    };
    let mut router = SpadeRouter::connect(&addrs, config)
        .map_err(|e| format!("cannot connect to shards: {e}"))?;
    let started = Instant::now();
    for r in &records {
        router.submit(r.src, r.dst, r.weight)?;
    }
    router.flush_batches()?;
    let outcome = router.repair()?;
    let elapsed = started.elapsed().as_secs_f64();
    let stats = router.stats();
    println!(
        "{} edges acked across {} shards in {:.1} ms ({:.0} tx/s, {} batches, \
         {} replicated, {} busy retries)",
        stats.edges_acked,
        router.num_shards(),
        elapsed * 1e3,
        stats.edges_acked as f64 / elapsed.max(1e-9),
        stats.batches,
        stats.replicated,
        stats.busy_retries,
    );
    let sample: Vec<String> = outcome.members.iter().take(8).map(|m| m.0.to_string()).collect();
    println!(
        "repaired detection: {} members, density {:.3} (baseline {:.3} on shard {}, \
         {} shard views merged, accounts {})",
        outcome.size,
        outcome.density,
        outcome.baseline_density,
        outcome.baseline_shard,
        outcome.merged_shards.len(),
        sample.join(","),
    );
    if args.flag("consolidate") {
        let moved = router.consolidate(&outcome)?;
        let baseline = router.detect(outcome.baseline_shard)?;
        println!(
            "consolidated {} edges onto shard {}: local detection now {} members, \
             density {:.3}",
            moved, outcome.baseline_shard, baseline.size, baseline.density,
        );
    }
    if args.flag("shutdown") {
        router.shutdown_shards()?;
        println!("shard shutdown requested");
    }
    Ok(())
}

/// One sample value out of a Prometheus text exposition: the line whose
/// full series name (labels included) equals `series`.
fn exposition_sample(text: &str, series: &str) -> Option<f64> {
    text.lines().find_map(|line| {
        let (name, value) = line.rsplit_once(' ')?;
        if name == series {
            value.parse().ok()
        } else {
            None
        }
    })
}

/// Formats a nanosecond latency sample for the watch table.
fn fmt_latency_us(ns: Option<f64>) -> String {
    match ns {
        Some(v) => format!("{:.0}", v / 1e3),
        None => "-".to_string(),
    }
}

/// `spade watch <addr>`: poll a serving runtime over the wire and print
/// a refreshing stats + per-stage-latency table — the operator's live
/// view of back-pressure (per-shard queue depths) building before Busy
/// replies fire.
pub fn watch(args: &Args) -> Result<(), AnyError> {
    let addr = args.pos(0).ok_or("watch needs a server address")?;
    let interval = Duration::from_millis(args.num_opt("interval", 1000u64)?.max(10));
    let count = args.num_opt("count", 0u64)?; // 0 = poll until the server goes away
    let mut client =
        SpadeNetClient::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let headers = [
        "tick",
        "uptime s",
        "updates",
        "queued",
        "per-shard",
        "busy",
        "q-wait p50/p99 us",
        "publish p50/p99 us",
        "ddl miss",
        "slack p50/p99 us",
    ];
    let mut tick = 0u64;
    loop {
        tick += 1;
        let s = client.server_stats()?;
        let m = client.server_metrics()?;
        let depths: Vec<String> = s.shard_queue_depths.iter().map(u64::to_string).collect();
        let quantiles = |name: &str| {
            let p50 = exposition_sample(&m.exposition, &format!("{name}{{quantile=\"0.5\"}}"));
            let p99 = exposition_sample(&m.exposition, &format!("{name}{{quantile=\"0.99\"}}"));
            format!("{}/{}", fmt_latency_us(p50), fmt_latency_us(p99))
        };
        // SLO columns: budgeted traffic shows its miss count and the
        // remaining-headroom distribution; unbudgeted traffic shows 0/-.
        let misses = exposition_sample(&m.exposition, "spade_deadline_miss_total")
            .map_or("-".to_string(), |v| format!("{v:.0}"));
        let mut table = Table::new(headers);
        table.row([
            tick.to_string(),
            format!("{:.1}", s.uptime_secs),
            s.updates_applied.to_string(),
            s.queue_depth.to_string(),
            depths.join("/"),
            s.busy_replies.to_string(),
            quantiles("spade_stage_queue_wait_ns"),
            quantiles("spade_stage_publish_ns"),
            misses,
            quantiles("spade_deadline_slack_ns"),
        ]);
        table.print();
        if count != 0 && tick >= count {
            break;
        }
        std::thread::sleep(interval);
    }
    Ok(())
}

/// `spade detect --shards N`: the same input, N parallel engines.
fn detect_sharded(args: &Args, shards: usize) -> Result<(), AnyError> {
    run_sharded(args, shards, "detect needs an edge-list path")
}

fn run_sharded(args: &Args, shards: usize, path_error: &'static str) -> Result<(), AnyError> {
    let path = args.pos(0).ok_or(path_error)?;
    let metric = metric_from(args)?;
    let top = args.num_opt("top", 3usize)?.max(1);
    let config = sharded_config_from(args, shards)?;
    let records = load_records(path)?;
    let service = ShardedSpadeService::spawn(metric, config);
    let started = Instant::now();
    for r in &records {
        if !service.submit(r.src, r.dst, r.weight) {
            return Err("a shard shut down while ingesting".into());
        }
    }
    // The flush command trails every insert in each shard's FIFO queue,
    // so once all shards have published post-flush counters covering
    // every record, the report is exact. The periodic re-flush doubles as
    // a liveness check — a dead shard fails the send and we error
    // instead of spinning forever — but runs on a coarse interval so the
    // drain isn't slowed by per-poll full publishes.
    if !service.flush() {
        return Err("a shard shut down while flushing".into());
    }
    let rebalance = args.flag("rebalance");
    let mut next_liveness = Instant::now() + std::time::Duration::from_millis(100);
    while service.stats().iter().map(|s| s.service.updates_applied).sum::<u64>()
        < records.len() as u64
    {
        if Instant::now() >= next_liveness {
            if !service.flush() {
                return Err("a shard shut down while draining".into());
            }
            if rebalance {
                // Live scheduling: strand events and load skew observed
                // so far are acted on while the drain continues.
                let _ = service.rebalance_if_needed();
            }
            next_liveness = Instant::now() + std::time::Duration::from_millis(100);
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    // Sample the replay clock before the (blocking) rebalance/repair
    // passes so the reported tx/s measures ingest alone.
    let elapsed_secs = started.elapsed().as_secs_f64();
    // Rebalance before repair: once stranded slices are home, the repair
    // pass sees whole components and its regions stay small.
    let rebalanced = rebalance.then(|| service.rebalance());
    let repaired = if args.flag("repair") { Some(service.repair()) } else { None };
    print_sharded_report(
        &service,
        elapsed_secs,
        records.len(),
        top,
        repaired.as_ref(),
        rebalanced.as_ref(),
        None,
    );
    service.shutdown();
    Ok(())
}

/// `spade detect`: one static detection over the whole file.
pub fn detect(args: &Args) -> Result<(), AnyError> {
    let path = args.pos(0).ok_or("detect needs an edge-list path")?;
    let metric = metric_from(args)?;
    let top = args.num_opt("top", 3usize)?;
    let shards = args.num_opt("shards", 1usize)?.max(1);
    if shards > 1 {
        return detect_sharded(args, shards);
    }
    let records = load_records(path)?;
    let started = Instant::now();
    let mut engine = SpadeEngine::bootstrap(
        metric,
        SpadeConfig::default(),
        records.iter().map(|r| (r.src, r.dst, r.weight)),
    )?;
    println!(
        "{} transactions -> {} vertices / {} edges, peeled in {:.1} ms ({})",
        records.len(),
        engine.graph().num_vertices(),
        engine.graph().num_edges(),
        started.elapsed().as_secs_f64() * 1e3,
        engine.metric().name(),
    );
    print_communities(&mut engine, top);
    Ok(())
}

/// `spade stream`: bootstrap on a prefix, replay the rest incrementally.
pub fn stream(args: &Args) -> Result<(), AnyError> {
    let path = args.pos(0).ok_or("stream needs an edge-list path")?;
    let metric = metric_from(args)?;
    let initial = args.num_opt("initial", 0.9f64)?;
    if !(0.0..=1.0).contains(&initial) {
        return Err("--initial must be within [0, 1]".into());
    }
    let batch = args.num_opt("batch", 1usize)?.max(1);
    let grouping = args.flag("grouping");
    let records = load_records(path)?;
    let cut = ((records.len() as f64) * initial) as usize;
    let (head, tail) = records.split_at(cut.min(records.len()));

    let mut engine = SpadeEngine::bootstrap(
        metric,
        SpadeConfig::default(),
        head.iter().map(|r| (r.src, r.dst, r.weight)),
    )?;
    println!(
        "bootstrapped on {} transactions; replaying {} increments ({}, {})",
        head.len(),
        tail.len(),
        engine.metric().name(),
        if grouping { "edge grouping".to_string() } else { format!("batch {batch}") },
    );

    let started = Instant::now();
    if grouping {
        let mut grouper = EdgeGrouper::new(GroupingConfig::default());
        for r in tail {
            grouper.submit(&mut engine, r.src, r.dst, r.weight)?;
        }
        grouper.flush(&mut engine)?;
        let s = grouper.stats();
        println!("grouping: {} submitted, {} urgent, {} flushes", s.submitted, s.urgent, s.flushes);
    } else {
        let mut buf = Vec::with_capacity(batch);
        for chunk in tail.chunks(batch) {
            buf.clear();
            buf.extend(chunk.iter().map(|r| (r.src, r.dst, r.weight)));
            engine.insert_batch(&buf)?;
        }
    }
    let elapsed = started.elapsed();
    let stats = engine.total_reorder_stats();
    println!(
        "replayed in {:.1} ms ({:.1} us/edge); affected: {} windows, {} moved vertices, {} scanned edges",
        elapsed.as_secs_f64() * 1e3,
        elapsed.as_secs_f64() * 1e6 / tail.len().max(1) as f64,
        stats.windows,
        stats.moved,
        stats.edges_scanned,
    );
    print_communities(&mut engine, args.num_opt("top", 3usize)?);
    Ok(())
}

/// `spade gen`: write a Table 3 surrogate dataset as an edge list.
pub fn generate(args: &Args) -> Result<(), AnyError> {
    let name = args.str_opt("dataset", "Grab1");
    let scale = args.num_opt("scale", 0.01f64)?;
    let seed = args.num_opt("seed", 42u64)?;
    let out = args.str_opt("out", "-");
    let spec = DatasetSpec::table3()
        .into_iter()
        .find(|s| s.name.eq_ignore_ascii_case(&name))
        .ok_or_else(|| format!("unknown dataset {name:?} (see `spade help`)"))?;
    let data = spec.generate(scale, seed);
    let mut lines = String::new();
    for e in data.initial.iter().chain(&data.increments) {
        use std::fmt::Write as _;
        let _ = writeln!(lines, "{} {} {} {}", e.src, e.dst, e.raw, e.timestamp);
    }
    if out == "-" {
        print!("{lines}");
    } else {
        std::fs::write(&out, lines)?;
        eprintln!(
            "wrote {} transactions of {} (scale {scale}) to {out}",
            data.initial.len() + data.increments.len(),
            spec.name
        );
    }
    Ok(())
}

/// `spade snapshot`: bootstrap and persist engine state.
pub fn snapshot(args: &Args) -> Result<(), AnyError> {
    let path = args.pos(0).ok_or("snapshot needs an edge-list path")?;
    let out = args.str_opt("out", "");
    if out.is_empty() {
        return Err("snapshot needs --out FILE".into());
    }
    let metric = metric_from(args)?;
    let records = load_records(path)?;
    let engine = SpadeEngine::bootstrap(
        metric,
        SpadeConfig::default(),
        records.iter().map(|r| (r.src, r.dst, r.weight)),
    )?;
    let file = std::fs::File::create(&out)?;
    save_engine(&engine, std::io::BufWriter::new(file))?;
    eprintln!(
        "snapshot of {} vertices / {} edges written to {out}",
        engine.graph().num_vertices(),
        engine.graph().num_edges()
    );
    Ok(())
}

/// `spade resume`: restore a snapshot and detect, with no re-peel.
pub fn resume(args: &Args) -> Result<(), AnyError> {
    let path = args.pos(0).ok_or("resume needs a snapshot path")?;
    let metric = metric_from(args)?;
    let file = std::fs::File::open(path)?;
    let started = Instant::now();
    let mut engine = load_engine(metric, SpadeConfig::default(), std::io::BufReader::new(file))?;
    println!(
        "restored {} vertices / {} edges in {:.1} ms (no re-peel)",
        engine.graph().num_vertices(),
        engine.graph().num_edges(),
        started.elapsed().as_secs_f64() * 1e3
    );
    print_communities(&mut engine, args.num_opt("top", 3usize)?);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(line: &str) -> Args {
        Args::parse(line.split_whitespace().map(String::from)).unwrap()
    }

    fn temp_dir() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("spade_cli_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write_sample_edges(dir: &std::path::Path) -> String {
        let path = dir.join("edges.txt");
        let mut content = String::new();
        // Background path + a dense ring.
        for i in 0..6 {
            content.push_str(&format!("u{i} u{} 1.0 {i}\n", i + 1));
        }
        for a in 0..4 {
            for b in 0..4 {
                if a != b {
                    content.push_str(&format!("f{a} f{b} 30.0 {}\n", 100 + a * 4 + b));
                }
            }
        }
        std::fs::write(&path, content).unwrap();
        path.to_string_lossy().into_owned()
    }

    #[test]
    fn metric_selection() {
        assert_eq!(CliMetric::from_name("dg").unwrap().name(), "DG");
        assert_eq!(CliMetric::from_name("DW").unwrap().name(), "DW");
        assert_eq!(CliMetric::from_name("fd").unwrap().name(), "FD");
        assert!(CliMetric::from_name("bogus").is_err());
    }

    #[test]
    fn detect_command_runs() {
        let dir = temp_dir();
        let path = write_sample_edges(&dir);
        detect(&args(&format!("detect {path} --metric dw --top 2"))).unwrap();
    }

    #[test]
    fn stream_command_runs_in_both_modes() {
        let dir = temp_dir();
        let path = write_sample_edges(&dir);
        stream(&args(&format!("stream {path} --metric dw --initial 0.5 --batch 4"))).unwrap();
        stream(&args(&format!("stream {path} --metric fd --initial 0.5 --grouping"))).unwrap();
    }

    #[test]
    fn gen_snapshot_resume_pipeline() {
        let dir = temp_dir();
        let edges = dir.join("gen.txt").to_string_lossy().into_owned();
        generate(&args(&format!("gen --dataset Wiki-Vote --scale 0.02 --seed 7 --out {edges}")))
            .unwrap();
        assert!(std::fs::metadata(&edges).unwrap().len() > 0);

        let snap = dir.join("state.spade").to_string_lossy().into_owned();
        snapshot(&args(&format!("snapshot {edges} --metric dg --out {snap}"))).unwrap();
        resume(&args(&format!("resume {snap} --metric dg --top 2"))).unwrap();
    }

    #[test]
    fn serve_command_runs_sharded() {
        let dir = temp_dir();
        let path = write_sample_edges(&dir);
        serve(&args(&format!("serve {path} --shards 4 --metric dw"))).unwrap();
        serve(&args(&format!("serve {path} --shards 2 --partitioner hash --grouping"))).unwrap();
        serve(&args(&format!("serve {path} --shards 2 --coalesce 1"))).unwrap();
        serve(&args(&format!("serve {path} --shards 2 --deadline-ms 20"))).unwrap();
        serve(&args(&format!("serve {path} --shards 2 --deadline-ms 0.5"))).unwrap();
        assert!(serve(&args(&format!("serve {path} --shards 2 --deadline-ms -1"))).is_err());
    }

    #[test]
    fn detect_with_shards_runs() {
        let dir = temp_dir();
        let path = write_sample_edges(&dir);
        detect(&args(&format!("detect {path} --metric dw --shards 3"))).unwrap();
    }

    #[test]
    fn repair_flag_runs_the_cross_shard_pass() {
        let dir = temp_dir();
        let path = write_sample_edges(&dir);
        detect(&args(&format!("detect {path} --metric dw --shards 4 --partitioner hash --repair")))
            .unwrap();
        serve(&args(&format!(
            "serve {path} --shards 2 --partitioner hash --repair --repair-hops 2"
        )))
        .unwrap();
    }

    /// Two fraud half-rings that merge through late bridge edges: the
    /// connectivity-routed replay strands the losing half until a
    /// rebalance pass migrates it.
    fn write_merging_edges(dir: &std::path::Path) -> String {
        let path = dir.join("merge.txt");
        let mut content = String::new();
        for i in 0..6 {
            content.push_str(&format!("u{i} u{} 1.0 {i}\n", i + 1));
        }
        for half in ["a", "b"] {
            for x in 0..3 {
                for y in 0..3 {
                    if x != y {
                        content.push_str(&format!("{half}{x} {half}{y} 25.0 50\n"));
                    }
                }
            }
        }
        content.push_str("a0 b0 25.0 90\n");
        content.push_str("b1 a2 25.0 91\n");
        std::fs::write(&path, content).unwrap();
        path.to_string_lossy().into_owned()
    }

    #[test]
    fn rebalance_flag_runs_the_migration_scheduler() {
        let dir = temp_dir();
        let path = write_merging_edges(&dir);
        serve(&args(&format!("serve {path} --shards 2 --rebalance"))).unwrap();
        detect(&args(&format!("detect {path} --shards 4 --rebalance --repair"))).unwrap();
    }

    #[test]
    fn partition_flag_accepts_aliases_and_spill_bounds() {
        let dir = temp_dir();
        let path = write_sample_edges(&dir);
        serve(&args(&format!("serve {path} --shards 2 --partition hash"))).unwrap();
        serve(&args(&format!("serve {path} --shards 2 --partition conn:64"))).unwrap();
        serve(&args(&format!("serve {path} --shards 2 --partitioner connectivity"))).unwrap();
        assert!(serve(&args(&format!("serve {path} --shards 2 --partition conn:x"))).is_err());
    }

    #[test]
    fn serve_listen_and_ingest_roundtrip_over_loopback() {
        let dir = temp_dir();
        let path = write_sample_edges(&dir);
        // Reserve a free port, then release it for the server. The tiny
        // window between drop and rebind is raced only by other local
        // processes grabbing ephemeral ports — retried below just in
        // case.
        let port = {
            let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            probe.local_addr().unwrap().port()
        };
        let addr = format!("127.0.0.1:{port}");
        let server = {
            let listen = addr.clone();
            std::thread::spawn(move || {
                serve(&args(&format!("serve --listen {listen} --shards 2 --repair")))
                    .map_err(|e| e.to_string())
            })
        };
        // The producer: retry until the server's listener is up.
        let mut attempts = 0;
        loop {
            match ingest(&args(&format!(
                "ingest {addr} {path} --batch 4 --pipeline 2 --detect --stats --shutdown"
            ))) {
                Ok(()) => break,
                Err(_) if attempts < 100 => {
                    attempts += 1;
                    std::thread::sleep(std::time::Duration::from_millis(20));
                }
                Err(e) => panic!("ingest never reached the server: {e}"),
            }
        }
        server.join().unwrap().unwrap();
    }

    #[test]
    fn serve_metrics_exporter_and_watch_over_loopback() {
        use std::io::{Read as _, Write as _};

        let dir = temp_dir();
        let path = write_sample_edges(&dir);
        let (port, mport) = {
            let a = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            let b = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            (a.local_addr().unwrap().port(), b.local_addr().unwrap().port())
        };
        let addr = format!("127.0.0.1:{port}");
        let maddr = format!("127.0.0.1:{mport}");
        let server = {
            let listen = addr.clone();
            let metrics = maddr.clone();
            std::thread::spawn(move || {
                serve(&args(&format!("serve --listen {listen} --shards 2 --metrics {metrics}")))
                    .map_err(|e| e.to_string())
            })
        };
        // Feed edges (retry until the listener is up), keeping the
        // server alive for the scrape + watch below.
        let mut attempts = 0;
        loop {
            match ingest(&args(&format!("ingest {addr} {path} --batch 4 --deadline-ms 50 --stats")))
            {
                Ok(()) => break,
                Err(_) if attempts < 100 => {
                    attempts += 1;
                    std::thread::sleep(std::time::Duration::from_millis(20));
                }
                Err(e) => panic!("ingest never reached the server: {e}"),
            }
        }

        // Scrape the HTTP exposition and check the per-stage histograms
        // and transport counters came through.
        let mut stream = std::net::TcpStream::connect(&maddr).expect("scrape connect");
        stream.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("scrape read");
        assert!(response.starts_with("HTTP/1.0 200 OK\r\n"), "got: {response}");
        for series in [
            "spade_stage_queue_wait_ns_count",
            "spade_stage_publish_ns_count",
            "spade_updates_total",
            "spade_net_edges_accepted_total",
            // The budgeted ingest above exercised the SLO scheduler: its
            // miss counter and slack histogram ride every scrape.
            "spade_deadline_miss_total",
            "spade_deadline_slack_ns_count",
        ] {
            assert!(response.contains(series), "missing {series} in:\n{response}");
        }

        // One watch tick renders the live table without error.
        watch(&args(&format!("watch {addr} --interval 10 --count 1"))).unwrap();

        ingest(&args(&format!("ingest {addr} {path} --batch 4 --shutdown"))).unwrap();
        server.join().unwrap().unwrap();
    }

    #[test]
    fn exposition_sample_parses_labeled_series() {
        let text = "# TYPE x summary\nx{quantile=\"0.5\"} 1200\nx_count 3\ny 7\n";
        assert_eq!(exposition_sample(text, "x{quantile=\"0.5\"}"), Some(1200.0));
        assert_eq!(exposition_sample(text, "x_count"), Some(3.0));
        assert_eq!(exposition_sample(text, "y"), Some(7.0));
        assert_eq!(exposition_sample(text, "missing"), None);
        assert_eq!(fmt_latency_us(Some(2500.0)), "2");
        assert_eq!(fmt_latency_us(None), "-");
    }

    #[test]
    fn helpful_errors() {
        assert!(detect(&args("detect")).is_err());
        assert!(detect(&args("detect /nonexistent/file")).is_err());
        assert!(stream(&args("stream missing.txt --initial 2.0")).is_err());
        assert!(generate(&args("gen --dataset NotADataset")).is_err());
        assert!(snapshot(&args("snapshot whatever.txt")).is_err());
        assert!(serve(&args("serve")).is_err());
        assert!(serve(&args("serve missing.txt --partitioner bogus")).is_err());
        assert!(ingest(&args("ingest")).is_err());
        assert!(ingest(&args("ingest 127.0.0.1:1 missing.txt")).is_err());
        assert!(watch(&args("watch")).is_err());
        assert!(watch(&args("watch 127.0.0.1:1 --count 1")).is_err());
        assert!(serve(&args("serve --listen 256.256.256.256:0")).is_err());
    }
}
