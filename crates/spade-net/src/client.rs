//! The producer side: a batching, pipelining TCP client.
//!
//! [`SpadeNetClient`] stages submitted transactions into `Batch` frames
//! of [`ClientConfig::batch`] edges and keeps up to
//! [`ClientConfig::pipeline`] frames in flight before draining a reply —
//! so a replay saturates the socket instead of paying a round trip per
//! batch. Replies map to in-flight frames in FIFO order (the server
//! processes one connection's frames sequentially). A [`WireFrame::Busy`]
//! reply parks the unaccepted suffix of its batch under a capped,
//! jittered exponential back-off while the rest of the pipeline keeps
//! draining — one full shard queue never sleeps the whole client;
//! [`flush`](Self::flush) drains every in-flight and parked frame, so
//! when it returns every submitted edge has been **acknowledged** — i.e.
//! enqueued into a shard on the server.

use crate::wire::{write_frame, DetectionReply, FrameDecoder, MetricsReply, StatsReply, WireFrame};
use spade_graph::VertexId;
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Tuning knobs of a [`SpadeNetClient`].
#[derive(Clone, Copy, Debug)]
pub struct ClientConfig {
    /// Edges staged per `Batch` frame. Clamped to
    /// [`crate::wire::MAX_BATCH_EDGES`].
    pub batch: usize,
    /// Batch frames kept in flight before a reply is drained.
    pub pipeline: usize,
    /// Base pause before re-sending the suffix a Busy reply bounced.
    /// Consecutive Busy replies double it (±25 % jitter, so a fleet of
    /// producers bounced together does not retry in lockstep) up to
    /// [`busy_backoff_cap`](Self::busy_backoff_cap). Only the bounced
    /// suffix waits — in-flight non-busy frames keep draining.
    pub busy_backoff: Duration,
    /// Ceiling of the exponential Busy back-off.
    pub busy_backoff_cap: Duration,
    /// Per-transaction detection-latency budget to attach to every batch
    /// (shipped as a `BatchBudget` frame, protocol v2). `None` sends
    /// plain `Batch` frames a v1 server also understands; the shards
    /// then fall back to their configured default deadline.
    pub budget: Option<Duration>,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            batch: 512,
            pipeline: 32,
            busy_backoff: Duration::from_micros(200),
            busy_backoff_cap: Duration::from_millis(50),
            budget: None,
        }
    }
}

/// Counters a client accumulates over its lifetime.
#[derive(Clone, Copy, Debug, Default)]
pub struct ClientStats {
    /// Edges handed to [`SpadeNetClient::submit`].
    pub edges_submitted: u64,
    /// Edges acknowledged by the server (enqueued into a shard).
    pub edges_acked: u64,
    /// Busy replies received (each one re-sent a batch suffix).
    pub busy_replies: u64,
    /// Request frames written (retries included).
    pub frames_sent: u64,
}

/// One staged edge: (source, destination, weight).
type Edge = (VertexId, VertexId, f64);

/// A connected producer.
pub struct SpadeNetClient {
    reader: TcpStream,
    writer: std::io::BufWriter<TcpStream>,
    decoder: FrameDecoder,
    staged: Vec<Edge>,
    /// Sent-but-unacknowledged batches, in send order (== reply order).
    inflight: VecDeque<Vec<Edge>>,
    /// Busy-bounced suffixes parked until their back-off elapses. The
    /// pipeline keeps moving while they wait: a Busy reply frees its
    /// in-flight slot immediately instead of sleeping the whole client.
    deferred: VecDeque<(Instant, Vec<Edge>)>,
    /// Consecutive Busy replies since the last Ack (back-off exponent).
    busy_streak: u32,
    /// xorshift state for retry jitter.
    jitter: u64,
    stats: ClientStats,
    config: ClientConfig,
}

impl SpadeNetClient {
    /// Connects with default tuning.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<SpadeNetClient> {
        Self::connect_with(addr, ClientConfig::default())
    }

    /// Connects with explicit batch/pipeline tuning.
    pub fn connect_with<A: ToSocketAddrs>(
        addr: A,
        mut config: ClientConfig,
    ) -> std::io::Result<SpadeNetClient> {
        config.batch = config.batch.clamp(1, crate::wire::MAX_BATCH_EDGES);
        config.pipeline = config.pipeline.max(1);
        config.busy_backoff_cap = config.busy_backoff_cap.max(config.busy_backoff);
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let reader = stream.try_clone()?;
        // Seed the retry jitter from the hasher RNG — no rand dependency
        // and no two clients sharing a lockstep sequence.
        let jitter = {
            use std::hash::{BuildHasher, Hasher};
            let h = std::collections::hash_map::RandomState::new().build_hasher();
            h.finish() | 1
        };
        Ok(SpadeNetClient {
            reader,
            writer: std::io::BufWriter::new(stream),
            decoder: FrameDecoder::new(),
            staged: Vec::new(),
            inflight: VecDeque::new(),
            deferred: VecDeque::new(),
            busy_streak: 0,
            jitter,
            stats: ClientStats::default(),
            config,
        })
    }

    /// Lifetime counters so far.
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// Stages one transaction, shipping a `Batch` frame whenever the
    /// staging buffer fills. May block draining a reply when the
    /// pipeline window is full.
    pub fn submit(&mut self, src: VertexId, dst: VertexId, raw: f64) -> std::io::Result<()> {
        self.stats.edges_submitted += 1;
        self.staged.push((src, dst, raw));
        if self.staged.len() >= self.config.batch {
            let batch = std::mem::take(&mut self.staged);
            self.send_batch(batch)?;
        }
        Ok(())
    }

    /// Ships every staged edge, drains every in-flight frame (retrying
    /// Busy suffixes until acknowledged), then issues a wire-level Flush
    /// so shards apply buffered benign edges. On return, every submitted
    /// edge sits in a shard queue on the server.
    pub fn flush(&mut self) -> std::io::Result<()> {
        if !self.staged.is_empty() {
            let batch = std::mem::take(&mut self.staged);
            self.send_batch(batch)?;
        }
        loop {
            self.pump_deferred()?;
            if !self.inflight.is_empty() {
                self.drain_one()?;
            } else if let Some(&(due, _)) = self.deferred.front() {
                // Nothing in flight to drain while the bounced suffix
                // waits out its back-off — sleeping here stalls only
                // this already-empty pipeline.
                let now = Instant::now();
                if due > now {
                    std::thread::sleep(due - now);
                }
            } else {
                break;
            }
        }
        self.request(&WireFrame::Flush)?;
        match self.read_reply()? {
            WireFrame::Ack { .. } => Ok(()),
            other => Err(unexpected(&other, "Ack")),
        }
    }

    /// Flushes, then asks for the merged global detection.
    pub fn detect(&mut self) -> std::io::Result<DetectionReply> {
        self.flush()?;
        self.request(&WireFrame::Detect)?;
        match self.read_reply()? {
            WireFrame::Detection(reply) => Ok(reply),
            other => Err(unexpected(&other, "Detection")),
        }
    }

    /// Flushes, then asks for runtime + transport statistics.
    pub fn server_stats(&mut self) -> std::io::Result<StatsReply> {
        self.flush()?;
        self.request(&WireFrame::Stats)?;
        match self.read_reply()? {
            WireFrame::StatsReply(reply) => Ok(reply),
            other => Err(unexpected(&other, "StatsReply")),
        }
    }

    /// Flushes, then asks for the merged metrics snapshot rendered as
    /// Prometheus text exposition (per-stage latency histograms, repair
    /// and migration counters, transport totals and per-connection
    /// series).
    pub fn server_metrics(&mut self) -> std::io::Result<MetricsReply> {
        self.flush()?;
        self.request(&WireFrame::Metrics)?;
        match self.read_reply()? {
            WireFrame::MetricsReply(reply) => Ok(reply),
            other => Err(unexpected(&other, "MetricsReply")),
        }
    }

    /// Flushes, then sends the end-of-stream Shutdown marker that stops
    /// the server (the replay coordinator calls this once all producers
    /// have finished).
    pub fn shutdown_server(&mut self) -> std::io::Result<()> {
        self.flush()?;
        self.request(&WireFrame::Shutdown)?;
        match self.read_reply()? {
            WireFrame::Ack { .. } => Ok(()),
            other => Err(unexpected(&other, "Ack")),
        }
    }

    /// Flushes and hands back the lifetime counters.
    pub fn finish(mut self) -> std::io::Result<ClientStats> {
        self.flush()?;
        Ok(self.stats)
    }

    /// Sends one request frame immediately (no pipelining).
    fn request(&mut self, frame: &WireFrame) -> std::io::Result<()> {
        write_frame(&mut self.writer, frame)?;
        self.stats.frames_sent += 1;
        self.writer.flush()
    }

    /// Ships `batch` as one frame, first re-sending any due Busy
    /// suffixes (so retries do not rot behind fresh traffic) and
    /// draining a reply if the pipeline window is full.
    fn send_batch(&mut self, batch: Vec<(VertexId, VertexId, f64)>) -> std::io::Result<()> {
        self.pump_deferred()?;
        while self.inflight.len() >= self.config.pipeline {
            self.drain_one()?;
        }
        self.write_batch(batch)
    }

    /// Re-sends every parked Busy suffix whose back-off has elapsed.
    fn pump_deferred(&mut self) -> std::io::Result<()> {
        while matches!(self.deferred.front(), Some(&(due, _)) if due <= Instant::now()) {
            let (_, batch) = self.deferred.pop_front().expect("checked non-empty");
            while self.inflight.len() >= self.config.pipeline {
                self.drain_one()?;
            }
            self.write_batch(batch)?;
        }
        Ok(())
    }

    /// The capped exponential back-off (with ±25 % jitter) for the
    /// current Busy streak.
    fn busy_delay(&mut self) -> Duration {
        let exp = self.busy_streak.min(16);
        let base = self
            .config
            .busy_backoff
            .saturating_mul(1u32 << exp.min(31))
            .min(self.config.busy_backoff_cap);
        // xorshift64 — cheap, seeded per client, never zero.
        self.jitter ^= self.jitter << 13;
        self.jitter ^= self.jitter >> 7;
        self.jitter ^= self.jitter << 17;
        let quarter = base.as_nanos() as u64 / 4;
        let offset = if quarter == 0 { 0 } else { self.jitter % (2 * quarter + 1) };
        // base - quarter + offset ∈ [0.75 · base, 1.25 · base].
        Duration::from_nanos((base.as_nanos() as u64 - quarter).saturating_add(offset))
    }

    /// Writes one `Batch` (or, with a configured budget, `BatchBudget`)
    /// frame and parks the edges in the in-flight window (moved, not
    /// cloned — the frame borrows them transiently so the hot path pays
    /// only the encode copy).
    fn write_batch(&mut self, batch: Vec<(VertexId, VertexId, f64)>) -> std::io::Result<()> {
        // Saturate instead of wrapping a >71-minute budget; u32::MAX
        // microseconds is already far beyond any real-time SLO.
        let budget_us =
            self.config.budget.map(|b| u32::try_from(b.as_micros()).unwrap_or(u32::MAX));
        let frame = match budget_us {
            Some(budget_us) => WireFrame::BatchBudget { budget_us, edges: batch },
            None => WireFrame::Batch { edges: batch },
        };
        write_frame(&mut self.writer, &frame)?;
        self.stats.frames_sent += 1;
        self.writer.flush()?;
        let (WireFrame::Batch { edges } | WireFrame::BatchBudget { edges, .. }) = frame else {
            unreachable!("constructed above")
        };
        self.inflight.push_back(edges);
        Ok(())
    }

    /// Consumes one reply, freeing one in-flight slot. A Busy reply
    /// parks the bounced suffix with a capped exponential back-off
    /// (jittered) instead of sleeping the whole client — the remaining
    /// in-flight non-busy frames keep draining while the suffix waits,
    /// and `pump_deferred` re-sends it once the back-off elapses.
    fn drain_one(&mut self) -> std::io::Result<()> {
        let reply = self.read_reply()?;
        let Some(batch) = self.inflight.pop_front() else {
            return Err(unexpected(&reply, "no request in flight"));
        };
        match reply {
            WireFrame::Ack { accepted } => {
                self.stats.edges_acked += accepted;
                self.busy_streak = 0;
                debug_assert_eq!(accepted as usize, batch.len());
                Ok(())
            }
            WireFrame::Busy { accepted } => {
                self.stats.edges_acked += accepted;
                self.stats.busy_replies += 1;
                // Clamp against a nonsensical accepted count — a
                // protocol violation must not become a panic.
                let rest = batch[(accepted as usize).min(batch.len())..].to_vec();
                let delay = self.busy_delay();
                self.busy_streak = self.busy_streak.saturating_add(1);
                self.deferred.push_back((Instant::now() + delay, rest));
                Ok(())
            }
            WireFrame::Error { message } => {
                Err(std::io::Error::other(format!("server error: {message}")))
            }
            other => Err(unexpected(&other, "Ack or Busy")),
        }
    }

    /// Blocks until one reply frame is reassembled.
    fn read_reply(&mut self) -> std::io::Result<WireFrame> {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            if let Some(frame) = self.decoder.next_frame().map_err(std::io::Error::from)? {
                return Ok(frame);
            }
            let n = self.reader.read(&mut chunk)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection mid-reply",
                ));
            }
            self.decoder.extend(&chunk[..n]);
        }
    }
}

fn unexpected(got: &WireFrame, wanted: &str) -> std::io::Error {
    std::io::Error::new(
        std::io::ErrorKind::InvalidData,
        format!("protocol violation: expected {wanted}, got {got:?}"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::read_frame;
    use std::net::TcpListener;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    /// A Busy reply must not stall the pipeline: the bounced suffix is
    /// parked under back-off while every other in-flight frame keeps
    /// draining, and the retry goes out only after the fresh traffic
    /// already in the pipeline. The scripted server bounces the first
    /// batch (Busy, zero accepted) and acknowledges everything else,
    /// recording the arrival order of batch frames by their first edge.
    #[test]
    fn busy_backoff_defers_only_the_bounced_suffix() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || -> Vec<u32> {
            let (mut stream, _) = listener.accept().expect("accept");
            let mut order = Vec::new();
            let mut batches = 0u32;
            loop {
                match read_frame(&mut stream).expect("frame") {
                    Some(WireFrame::Batch { edges }) => {
                        order.push(edges[0].0 .0);
                        batches += 1;
                        let reply = if batches == 1 {
                            WireFrame::Busy { accepted: 0 }
                        } else {
                            WireFrame::Ack { accepted: edges.len() as u64 }
                        };
                        write_frame(&mut stream, &reply).expect("reply");
                    }
                    Some(WireFrame::Flush) => {
                        write_frame(&mut stream, &WireFrame::Ack { accepted: 0 }).expect("reply");
                    }
                    Some(other) => panic!("unexpected frame: {other:?}"),
                    None => return order,
                }
            }
        });

        let mut client = SpadeNetClient::connect_with(
            addr,
            ClientConfig {
                batch: 1,
                pipeline: 4,
                busy_backoff: Duration::from_millis(40),
                busy_backoff_cap: Duration::from_millis(40),
                ..Default::default()
            },
        )
        .expect("connect");
        // Six single-edge batches, identified by src id 1..=6. The
        // pipeline holds 4, so batch 5 forces a drain that receives the
        // Busy for batch 1 — which must free the slot immediately.
        for i in 1..=6u32 {
            client.submit(v(i), v(100 + i), 1.0).expect("submit");
        }
        let stats = client.finish().expect("finish");
        let order = server.join().expect("server thread");

        assert_eq!(stats.edges_submitted, 6);
        assert_eq!(stats.edges_acked, 6, "the bounced suffix was retried and acknowledged");
        assert_eq!(stats.busy_replies, 1);

        // Every fresh batch reached the server before the retry of the
        // bounced batch 1: the old behavior (sleep + immediate re-send
        // inside the drain loop) would put the retry at position 5,
        // ahead of batches 5 and 6.
        assert_eq!(order.len(), 7, "six batches + one retry, got {order:?}");
        assert_eq!(&order[..6], &[1, 2, 3, 4, 5, 6], "fresh traffic drained first: {order:?}");
        assert_eq!(order[6], 1, "the retry carries the bounced suffix: {order:?}");
    }

    /// The exponential back-off is capped and jitter stays within
    /// ±25 % of the capped base.
    #[test]
    fn busy_delay_is_capped_and_jittered() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().unwrap();
        let accept = std::thread::spawn(move || listener.accept().map(|(s, _)| s));
        let mut client = SpadeNetClient::connect_with(
            addr,
            ClientConfig {
                busy_backoff: Duration::from_millis(10),
                busy_backoff_cap: Duration::from_millis(80),
                ..Default::default()
            },
        )
        .expect("connect");
        let _held = accept.join().unwrap().expect("accept");
        let cap = Duration::from_millis(80);
        for streak in 0..20u32 {
            client.busy_streak = streak;
            let d = client.busy_delay();
            assert!(d <= cap.mul_f64(1.25), "streak {streak}: {d:?} exceeds jittered cap");
            assert!(
                d >= Duration::from_millis(10).mul_f64(0.75),
                "streak {streak}: {d:?} under jittered base"
            );
        }
    }
}
