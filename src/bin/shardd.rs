//! `shardd` — a minimal shard-server process for the distributed test
//! harness (`tests/distributed_exactness.rs`,
//! `tests/distributed_recovery.rs`).
//!
//! Hosts one `WeightedDensity` detection engine behind the protocol-v3
//! shard listener and prints the bound address as the first stdout line
//! (always port 0 → a fresh kernel-chosen port, so a restarted shard
//! never trips over a `TIME_WAIT` predecessor). The harness SIGKILLs
//! these processes mid-ingest on purpose; all state is in-memory by
//! design — recovery comes from the replica journal on a peer, not from
//! local persistence.
//!
//! The full-featured operator-facing equivalent is `spade shard-serve`
//! in spade-cli; this binary exists so `CARGO_BIN_EXE_shardd` resolves
//! for the root package's integration tests without dragging the CLI's
//! argument surface into the fault-injection loop.

use spade::core::{SpadeEngine, SpadeService, WeightedDensity};
use spade::net::{ShardServer, ShardServerConfig};
use std::io::Write as _;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let service = Arc::new(SpadeService::spawn(SpadeEngine::new(WeightedDensity), None, 4096));
    let server = ShardServer::spawn(Arc::clone(&service), &ShardServerConfig::default())
        .expect("shardd: bind 127.0.0.1:0");
    println!("{}", server.local_addr());
    std::io::stdout().flush().expect("shardd: flush bound address");
    while !server.stopping() {
        std::thread::sleep(Duration::from_millis(20));
    }
    drop(server.into_service());
    let Ok(service) = Arc::try_unwrap(service) else {
        panic!("shardd: connection thread still live");
    };
    service.shutdown();
}
