//! Prevention ratio `R` (paper Fig. 8, §4.3).
//!
//! Once a fraudster is identified at time `τ_f`, their subsequent
//! transactions are banned. For a labeled fraud instance,
//! `R = |{e_i : τ_i > τ_f}| / |{e_i}|` — the fraction of the instance's
//! transactions that arrive *after* first detection and are therefore
//! prevented. The paper reports up to 88.34% prevention (§1, Fig. 9a).

use std::collections::HashMap;

#[derive(Clone, Copy, Debug, Default)]
struct InstanceState {
    total: usize,
    prevented: usize,
    detected_at: Option<u64>,
}

/// Tracks detection times and transaction counts per fraud instance.
///
/// Feed transactions in timestamp order; call
/// [`note_detection`](Self::note_detection) the first time the instance's
/// accounts appear in a detected community.
#[derive(Clone, Debug, Default)]
pub struct PreventionTracker {
    instances: HashMap<u32, InstanceState>,
}

impl PreventionTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one labeled transaction of `instance` generated at `ts`.
    pub fn note_transaction(&mut self, instance: u32, ts: u64) {
        let st = self.instances.entry(instance).or_default();
        st.total += 1;
        if st.detected_at.is_some_and(|t| ts > t) {
            st.prevented += 1;
        }
    }

    /// Records that `instance` was first detected at `ts` (later calls for
    /// the same instance are ignored — `τ_f` is the *first* detection).
    pub fn note_detection(&mut self, instance: u32, ts: u64) {
        let st = self.instances.entry(instance).or_default();
        if st.detected_at.is_none() {
            st.detected_at = Some(ts);
        }
    }

    /// When the instance was first detected.
    pub fn detected_at(&self, instance: u32) -> Option<u64> {
        self.instances.get(&instance).and_then(|s| s.detected_at)
    }

    /// Prevention ratio of one instance (`None` if unknown instance or no
    /// transactions).
    pub fn ratio(&self, instance: u32) -> Option<f64> {
        let st = self.instances.get(&instance)?;
        if st.total == 0 {
            return None;
        }
        Some(st.prevented as f64 / st.total as f64)
    }

    /// Overall prevention ratio across every tracked instance.
    pub fn overall_ratio(&self) -> f64 {
        let (prev, total) = self
            .instances
            .values()
            .fold((0usize, 0usize), |(p, t), s| (p + s.prevented, t + s.total));
        if total == 0 {
            0.0
        } else {
            prev as f64 / total as f64
        }
    }

    /// Number of instances with at least one transaction or detection.
    pub fn num_instances(&self) -> usize {
        self.instances.len()
    }

    /// Number of instances that were detected at all.
    pub fn num_detected(&self) -> usize {
        self.instances.values().filter(|s| s.detected_at.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prevention_counts_post_detection_transactions() {
        let mut t = PreventionTracker::new();
        t.note_transaction(1, 10);
        t.note_transaction(1, 20);
        t.note_detection(1, 25);
        t.note_transaction(1, 30);
        t.note_transaction(1, 40);
        assert_eq!(t.ratio(1), Some(0.5));
        assert_eq!(t.detected_at(1), Some(25));
    }

    #[test]
    fn first_detection_wins() {
        let mut t = PreventionTracker::new();
        t.note_detection(3, 100);
        t.note_detection(3, 50);
        assert_eq!(t.detected_at(3), Some(100));
    }

    #[test]
    fn undetected_instance_prevents_nothing() {
        let mut t = PreventionTracker::new();
        for ts in [1, 2, 3] {
            t.note_transaction(9, ts);
        }
        assert_eq!(t.ratio(9), Some(0.0));
        assert_eq!(t.num_detected(), 0);
    }

    #[test]
    fn overall_ratio_pools_instances() {
        let mut t = PreventionTracker::new();
        t.note_detection(1, 0);
        for ts in [1, 2, 3, 4] {
            t.note_transaction(1, ts); // all prevented
        }
        for ts in [1, 2, 3, 4] {
            t.note_transaction(2, ts); // none prevented
        }
        assert!((t.overall_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(t.num_instances(), 2);
        assert_eq!(t.num_detected(), 1);
    }

    #[test]
    fn transaction_at_detection_time_is_not_prevented() {
        // Fig. 8 uses a strict inequality: τ_i > τ_f.
        let mut t = PreventionTracker::new();
        t.note_detection(1, 10);
        t.note_transaction(1, 10);
        assert_eq!(t.ratio(1), Some(0.0));
    }
}
