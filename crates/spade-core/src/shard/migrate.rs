//! Live component migration: the routing-layer correctness fix for
//! stranded merges, and runtime skew adaptation in the same move.
//!
//! The connectivity partitioner pins each component to a home shard, but
//! routing is forward-only: when two already-homed components merge, the
//! losing side's earlier edges stay **stranded** on its old shard, so a
//! fraud ring assembled by such a merge is split across two shards and
//! its density diluted — exactly the failure mode hash routing has
//! everywhere (see `crate::shard::partition`). Real fraud workloads make
//! this worse, not rarer: fraud concentrates at points of compromise
//! (BreachRadar's hotspot finding), so the components that merge and the
//! shards that overload are precisely the ones that matter.
//!
//! A migration moves a component's slice between shards with the
//! extract → evict → replay primitive:
//!
//! 1. the **source** worker drains its queue, flushes its grouping
//!    buffer, extracts the induced subgraph over the component's members
//!    through the [`crate::persist::SubgraphSnapshot`] codec, and evicts
//!    that slice from its engine through the incremental deletion pass
//!    ([`crate::service::MigrationSlice`]);
//! 2. the **target** worker replays the slice: vertex suspiciousness
//!    installs max-wise, edge weights *accumulate* — a pair whose
//!    transactions were split across the shards by the home change sums
//!    back to the exact solo-engine weight;
//! 3. the partitioner's routing table is updated (`rehome` + routing
//!    epoch) **before** the source marker is enqueued, under the sharded
//!    runtime's routing lock, so every in-flight edge routed to the old
//!    home is already queued ahead of the eviction marker and drains into
//!    the slice — nothing is lost, nothing is double-counted.
//!
//! Two triggers drive the scheduler ([`MigrationPolicy`]):
//!
//! * **strand repair** — the partitioner records every home-vs-home
//!   merge as a [`crate::shard::partition::StrandEvent`]; each drained
//!   event moves the losing slice onto the surviving home, restoring
//!   single-engine exactness for the merged community;
//! * **load balancing** — when one shard's ingest counter runs
//!   [`MigrationPolicy::imbalance_ratio`] ahead of the mean (the
//!   [`crate::shard::ShardStats`] signal), the largest component homed
//!   there moves to the shard that is coldest by *windowed* load, with
//!   ties broken toward the smallest resident engine
//!   ([`crate::service::ServiceStats::edges_resident`]) — the SAD-F-style
//!   partition rebalance applied to pinned communities.

use spade_graph::VertexId;

/// Tuning of the migration scheduler.
#[derive(Clone, Copy, Debug)]
pub struct MigrationPolicy {
    /// Load trigger: a shard whose applied-update counter exceeds
    /// `imbalance_ratio × mean` is considered hot and sheds its largest
    /// pinned component. Values ≤ 1 disable the load trigger.
    pub imbalance_ratio: f64,
    /// Load moves only start once the runtime has applied at least this
    /// many updates in total — early traffic is always lumpy.
    pub min_updates: u64,
    /// Upper bound on load-balancing moves per pass (strand repairs are
    /// correctness fixes and are never capped).
    pub max_load_moves: usize,
}

impl Default for MigrationPolicy {
    fn default() -> Self {
        MigrationPolicy { imbalance_ratio: 1.75, min_updates: 2048, max_load_moves: 1 }
    }
}

/// Why a component was migrated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MigrationTrigger {
    /// A home-vs-home merge left this slice stranded on the losing home.
    StrandRepair,
    /// The source shard ran ahead of the configured imbalance ratio.
    LoadBalance,
    /// An operator (or benchmark) asked for the move explicitly.
    Manual,
}

/// One completed component move.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MigrationRecord {
    /// What triggered the move.
    pub trigger: MigrationTrigger,
    /// A member of the migrated component.
    pub member: VertexId,
    /// Source shard (slice evicted here).
    pub from: usize,
    /// Target shard (slice replayed here).
    pub to: usize,
    /// Vertices carried by the slice.
    pub vertices: usize,
    /// Edges carried by the slice.
    pub edges: usize,
    /// Edge suspiciousness carried by the slice.
    pub edge_weight: f64,
}

/// The product of one rebalance pass.
#[derive(Clone, Debug, Default)]
pub struct MigrationReport {
    /// Completed moves, in execution order.
    pub moves: Vec<MigrationRecord>,
    /// Strand events whose source shard turned out to hold nothing
    /// (already repaired, or the losing home never received an edge).
    pub skipped_empty: usize,
    /// The partitioner's routing-table revision after the pass.
    pub routing_epoch: u64,
}

impl MigrationReport {
    /// Total edges moved by this pass.
    pub fn edges_moved(&self) -> usize {
        self.moves.iter().map(|m| m.edges).sum()
    }
}

/// Monotonic counters of the migration subsystem.
#[derive(Clone, Copy, Debug, Default)]
pub struct MigrationStats {
    /// Rebalance passes executed.
    pub passes: u64,
    /// Components migrated (all triggers).
    pub migrations: u64,
    /// Migrations triggered by strand events.
    pub strand_repairs: u64,
    /// Migrations triggered by load imbalance.
    pub load_moves: u64,
    /// Directed edges moved across shards.
    pub edges_moved: u64,
    /// Edge suspiciousness moved across shards.
    pub edge_weight_moved: f64,
    /// Strand events that resolved to an empty slice (nothing to move).
    pub skipped_empty: u64,
    /// `rebalance_if_needed` calls that found no trigger and did nothing.
    pub served_idle: u64,
    /// Moves aborted mid-flight because a shard had shut down. When the
    /// target died the slice is re-absorbed by its source and routing is
    /// pointed back, so the fleet stays exact; when the source died its
    /// slice was unrecoverable regardless.
    pub failed_moves: u64,
    /// Wall time of the most recent completed move, nanoseconds. The
    /// full distribution lives in the runtime registry's
    /// `spade_migration_move_ns` histogram
    /// (`crate::shard::service::metric_names::MIGRATION_MOVE_NS`); this
    /// field keeps the latest sample visible in plain stats reports.
    pub last_move_ns: u64,
}

/// Picks a load-balancing move from per-shard **windowed** applied-update
/// counters (traffic since the load trigger last fired, not the raw
/// lifetime counter): `Some((hot, cold))` when the hottest shard exceeds
/// `imbalance_ratio × mean`. The target choice is size-aware: among the
/// candidate targets the coldest shard by windowed load wins, and a
/// windowed-load tie breaks toward the shard holding the **fewest
/// resident edges** (then the lower index) — a shard that was hammered
/// long ago has a cold window but a full engine, and piling the moved
/// component onto it would just mint the next hot spot. Pure so the
/// policy is unit-testable without a running fleet.
///
/// `resident_edges[i]` is shard `i`'s current graph size
/// (`ServiceStats::edges_resident`); a short slice is padded with zeros.
pub fn pick_load_move(
    window: &[u64],
    resident_edges: &[u64],
    policy: &MigrationPolicy,
) -> Option<(usize, usize)> {
    if window.len() < 2 || policy.imbalance_ratio <= 1.0 {
        return None;
    }
    let total: u64 = window.iter().sum();
    if total < policy.min_updates.max(1) {
        return None;
    }
    let mean = total as f64 / window.len() as f64;
    let (hot, &hot_load) = window.iter().enumerate().max_by_key(|&(_, &u)| u)?;
    if (hot_load as f64) <= policy.imbalance_ratio * mean {
        return None;
    }
    let resident = |i: usize| resident_edges.get(i).copied().unwrap_or(0);
    let cold =
        (0..window.len()).filter(|&i| i != hot).min_by_key(|&i| (window[i], resident(i), i))?;
    if window[cold] >= hot_load {
        return None;
    }
    Some((hot, cold))
}

/// Plans up to [`MigrationPolicy::max_load_moves`] load-balancing moves
/// from **one** observation of the windowed counters — the multi-move
/// upgrade of [`pick_load_move`]. The scheduler executes the whole plan
/// under a single window reset and one routing-lock session, so a pass
/// can drain several hot shards (or shed several components off one)
/// instead of re-observing — and re-waiting a full window — between
/// moves.
///
/// Each planned move transfers half of the hot/cold gap in simulation
/// (the expectation for shedding the dominant component: the move that
/// equalizes the pair); the next move is picked against the simulated
/// loads, so the plan never ping-pongs a component back. Planning stops
/// when the simulated fleet is balanced, the transfer rounds to zero, or
/// the cap is reached. Pure, like [`pick_load_move`].
pub fn pick_load_moves(
    window: &[u64],
    resident_edges: &[u64],
    policy: &MigrationPolicy,
) -> Vec<(usize, usize)> {
    let mut window = window.to_vec();
    let mut plan = Vec::new();
    while plan.len() < policy.max_load_moves {
        let Some((hot, cold)) = pick_load_move(&window, resident_edges, policy) else {
            break;
        };
        // Simulate the transfer before planning further. A zero
        // transfer (gap < 2) cannot change the picture; stop rather
        // than loop on an identical observation.
        let moved = (window[hot] - window[cold]) / 2;
        if moved == 0 {
            break;
        }
        window[hot] -= moved;
        window[cold] += moved;
        plan.push((hot, cold));
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    /// No resident-size signal: every shard reports an empty engine.
    const NO_SIZES: &[u64] = &[];

    #[test]
    fn balanced_loads_trigger_nothing() {
        let policy = MigrationPolicy::default();
        assert_eq!(pick_load_move(&[5000, 5100, 4900, 5050], NO_SIZES, &policy), None);
        assert_eq!(pick_load_move(&[0, 0, 0], NO_SIZES, &policy), None);
        assert_eq!(pick_load_move(&[9000], NO_SIZES, &policy), None, "nowhere to move");
    }

    #[test]
    fn a_hot_shard_moves_toward_the_coldest() {
        let policy = MigrationPolicy { min_updates: 100, ..Default::default() };
        // Shard 1 carries ~3x the mean; shard 2 is idle.
        assert_eq!(pick_load_move(&[200, 1200, 40, 160], NO_SIZES, &policy), Some((1, 2)));
    }

    #[test]
    fn min_updates_suppresses_early_noise() {
        let policy = MigrationPolicy { min_updates: 10_000, ..Default::default() };
        assert_eq!(pick_load_move(&[10, 900, 5, 20], NO_SIZES, &policy), None);
        let warm = MigrationPolicy { min_updates: 100, ..Default::default() };
        assert_eq!(pick_load_move(&[10, 900, 5, 20], NO_SIZES, &warm), Some((1, 2)));
    }

    #[test]
    fn ratio_at_or_below_one_disables_the_load_trigger() {
        let policy = MigrationPolicy { imbalance_ratio: 1.0, min_updates: 0, ..Default::default() };
        assert_eq!(pick_load_move(&[1, 1_000_000], NO_SIZES, &policy), None);
    }

    #[test]
    fn windowed_load_ties_break_toward_the_smallest_resident_engine() {
        let policy = MigrationPolicy { min_updates: 100, ..Default::default() };
        // Shards 1 and 3 are equally cold by window, but shard 1 already
        // holds 50k resident edges (hammered before the window reset) —
        // the move must target shard 3, not re-heat shard 1.
        assert_eq!(
            pick_load_move(&[2_000, 0, 300, 0], &[10, 50_000, 400, 12], &policy),
            Some((0, 3))
        );
        // With the resident sizes swapped the tie resolves the other way.
        assert_eq!(
            pick_load_move(&[2_000, 0, 300, 0], &[10, 12, 400, 50_000], &policy),
            Some((0, 1))
        );
        // A missing size entry counts as an empty engine.
        assert_eq!(pick_load_move(&[2_000, 0, 300, 0], &[10, 7], &policy), Some((0, 3)));
    }

    #[test]
    fn multi_move_plan_drains_several_hot_shards_in_one_pass() {
        let policy = MigrationPolicy { min_updates: 100, max_load_moves: 4, ..Default::default() };
        // Shards 0 and 2 both run far ahead of the mean; 1 and 3 are
        // idle. One observation must plan a move off each hot shard —
        // the single-move picker would shed only shard 2 and leave
        // shard 0 hot until the *next* pass re-observes.
        let window = [4_000, 0, 5_000, 0];
        let plan = pick_load_moves(&window, NO_SIZES, &policy);
        assert_eq!(plan[0], (2, 1), "hottest shard sheds first, toward the coldest");
        assert!(
            plan.iter().any(|&(hot, _)| hot == 0),
            "the second hot shard must be drained in the same pass: {plan:?}"
        );
        // Every planned source was hot in the original observation and
        // no pair repeats.
        for &(hot, cold) in &plan {
            assert_ne!(hot, cold);
        }
        let mut pairs = plan.clone();
        pairs.dedup();
        assert_eq!(pairs.len(), plan.len(), "a plan never repeats a pair back-to-back");
    }

    #[test]
    fn multi_move_plan_respects_the_cap_and_balanced_fleets() {
        let capped = MigrationPolicy { min_updates: 100, max_load_moves: 1, ..Default::default() };
        assert_eq!(pick_load_moves(&[4_000, 0, 5_000, 0], NO_SIZES, &capped).len(), 1);
        let policy = MigrationPolicy { min_updates: 100, max_load_moves: 8, ..Default::default() };
        assert!(pick_load_moves(&[500, 510, 490, 505], NO_SIZES, &policy).is_empty());
        // A mildly hot shard plans one equalizing move, after which the
        // simulated fleet is balanced — the plan must not thrash.
        let plan = pick_load_moves(&[2_000, 500, 600, 550], NO_SIZES, &policy);
        assert_eq!(plan, vec![(0, 1)]);
        // The simulation must terminate even with a pathological cap.
        let wide = MigrationPolicy { min_updates: 0, max_load_moves: 1_000, ..Default::default() };
        assert!(pick_load_moves(&[3, 0], NO_SIZES, &wide).len() < 1_000);
    }

    #[test]
    fn strictly_coldest_window_wins_over_a_smaller_engine() {
        let policy = MigrationPolicy { min_updates: 100, ..Default::default() };
        // Shard 2 is the coldest by window even though shard 1's engine
        // is smaller: windowed load dominates, size only breaks ties.
        assert_eq!(
            pick_load_move(&[2_000, 50, 20, 600], &[0, 5, 90_000, 0], &policy),
            Some((0, 2))
        );
    }
}
