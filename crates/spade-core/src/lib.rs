//! # spade-core
//!
//! The Spade framework: auto-incrementalized dense-subgraph peeling for
//! real-time fraud detection on evolving graphs.

pub mod deletion;
pub mod engine;
pub mod enumeration;
pub mod grouping;
pub mod kinetic;
pub mod metric;
pub mod order;
pub mod peel;
pub mod persist;
pub mod reorder;
pub mod service;
pub mod shard;
pub mod spade;
pub mod state;
pub mod stream;
pub mod timewindow;

pub use engine::{DetectionBackend, SpadeConfig, SpadeEngine};
pub use enumeration::{enumerate_incremental, enumerate_static, EnumerationConfig, FraudInstance};
pub use grouping::{EdgeGrouper, FlushReason, GroupingConfig, GroupingStats, SubmitOutcome};
pub use kinetic::KineticIndex;
pub use metric::{CustomMetric, DensityMetric, Fraudar, UnweightedDensity, WeightedDensity};
pub use peel::{peel, peel_with_queue, PeelingOutcome};
pub use persist::{load_engine, save_engine, SnapshotError, SubgraphSnapshot};
pub use reorder::{ReorderScratch, ReorderStats};
pub use service::{
    AbsorbReceipt, CandidateRegion, IngestConfig, MigrationSlice, PublishedDetection, ServiceStats,
    SpadeService, TrySubmit,
};
pub use shard::{
    BatchSubmit, GlobalDetection, MigrationPolicy, MigrationReport, MigrationStats,
    PartitionStrategy, Partitioner, RepairConfig, RepairStats, RepairedDetection, ShardStats,
    ShardedConfig, ShardedSpadeService, StrandEvent,
};
pub use spade::{Spade, SpadeBuilder};
pub use state::{Detection, PeelingState};
pub use stream::{FraudLabel, FraudPattern, StreamEdge};
pub use timewindow::{TimeWindowDetector, WindowMove, WindowRecord};
