//! Quickstart: detect a fraud ring in a transaction stream in ~30 lines.
//!
//! Run with: `cargo run --release --example quickstart`

use spade::core::{SpadeEngine, WeightedDensity};
use spade::graph::VertexId;

fn v(i: u32) -> VertexId {
    VertexId(i)
}

fn main() {
    // An engine with edge-weighted density semantics (DW): the density of
    // a community is the total transaction amount per member.
    let mut engine = SpadeEngine::new(WeightedDensity);

    // Organic marketplace traffic: customers 0..20 paying merchants
    // 100..105 small amounts.
    for i in 0..20u32 {
        for m in 100..105u32 {
            engine.insert_edge(v(i), v(m), 5.0).expect("valid edge");
        }
    }
    let before = engine.detect();
    println!(
        "before fraud: densest community has {} members at density {:.1}",
        before.size, before.density
    );

    // A collusion ring appears: accounts 200..205 wash money in a tight
    // loop. Every insertion reorders incrementally in microseconds — no
    // from-scratch recomputation.
    for a in 200..206u32 {
        for b in 200..206u32 {
            if a != b {
                engine.insert_edge(v(a), v(b), 50.0).expect("valid edge");
            }
        }
    }

    let after = engine.detect();
    let ring: Vec<u32> = engine.community(after).iter().map(|u| u.0).collect();
    println!(
        "after fraud:  densest community has {} members at density {:.1}: {ring:?}",
        after.size, after.density
    );
    assert!(ring.iter().all(|&id| (200..206).contains(&id)));

    let stats = engine.total_reorder_stats();
    println!(
        "incremental maintenance touched {} vertices / {} adjacency entries across {} windows",
        stats.moved, stats.edges_scanned, stats.windows
    );
}
