//! Integration tests of the sharded parallel detection runtime across
//! the full stack: generated workloads (spade-gen) streaming through N
//! parallel engines (spade-core shard module) with community-aware
//! routing, validated against the single-engine service.

use spade::core::{GroupingConfig, SpadeEngine, SpadeService, WeightedDensity};
use spade::gen::fraud::{FraudInjector, FraudInjectorConfig};
use spade::gen::transactions::{TransactionStream, TransactionStreamConfig};
use spade::graph::VertexId;
use spade::shard::{PartitionStrategy, ShardedConfig, ShardedSpadeService};
use std::collections::HashSet;

fn v(i: u32) -> VertexId {
    VertexId(i)
}

/// Background noise plus a dense ring on fresh accounts — the canonical
/// detection workload, fully deterministic.
fn ring_stream() -> Vec<(VertexId, VertexId, f64)> {
    let mut edges = Vec::new();
    for i in 0..40u32 {
        edges.push((v(i), v(i + 1), 1.0));
    }
    for a in 200..205u32 {
        for b in 200..205u32 {
            if a != b {
                edges.push((v(a), v(b), 40.0));
            }
        }
    }
    // More background after the burst, so shutdown ordering matters.
    for i in 50..70u32 {
        edges.push((v(i), v(i + 2), 0.5));
    }
    edges
}

#[test]
fn four_shards_find_the_same_ring_as_one_engine() {
    let stream = ring_stream();

    let single = SpadeService::spawn(SpadeEngine::new(WeightedDensity), None, 256);
    for &(a, b, w) in &stream {
        assert!(single.submit(a, b, w));
    }
    let want = single.shutdown();

    let sharded = ShardedSpadeService::spawn(WeightedDensity, ShardedConfig::with_shards(4));
    assert_eq!(sharded.num_shards(), 4);
    for &(a, b, w) in &stream {
        assert!(sharded.submit(a, b, w));
    }
    let got = sharded.shutdown();

    // The connectivity partitioner keeps the ring co-resident, so the
    // owning shard's detection is exactly the single-engine detection.
    assert_eq!(got.best.size, want.size);
    assert!((got.best.density - want.density).abs() < 1e-12);
    let got_members: HashSet<u32> = got.best.members.iter().map(|m| m.0).collect();
    let want_members: HashSet<u32> = want.members.iter().map(|m| m.0).collect();
    assert_eq!(got_members, want_members);
    assert!(want_members.iter().all(|m| (200..205).contains(m)));
}

#[test]
fn sharded_runtime_recovers_injected_fraud_from_generated_stream() {
    // The Fig. 9a protocol through the sharded runtime: a Zipf
    // marketplace stream with labeled fraud bursts; the merged global
    // detection must surface labeled fraudsters.
    let base = TransactionStream::generate(&TransactionStreamConfig {
        customers: 800,
        merchants: 250,
        transactions: 8_000,
        seed: 41,
        ..Default::default()
    });
    let injected = FraudInjector::inject(
        &base,
        &FraudInjectorConfig {
            instances_per_pattern: 1,
            transactions_per_instance: 220,
            amount: 500.0,
            ..Default::default()
        },
    );
    let config = ShardedConfig {
        shards: 4,
        strategy: PartitionStrategy::ConnectivityWithSpill { max_component: 256 },
        ..Default::default()
    };
    let service = ShardedSpadeService::spawn(WeightedDensity, config);
    for e in &injected.edges {
        assert!(service.submit(e.src, e.dst, e.raw));
    }
    let global = service.shutdown();
    assert_eq!(global.total_updates, injected.edges.len() as u64);

    let fraud_accounts: HashSet<u32> =
        injected.instances.iter().flat_map(|i| i.members.iter().map(|m| m.0)).collect();
    let caught = global.best.members.iter().filter(|m| fraud_accounts.contains(&m.0)).count();
    assert!(
        caught * 2 > global.best.size.max(1),
        "global densest community must be dominated by labeled fraudsters \
         ({caught}/{} members)",
        global.best.size
    );
}

#[test]
fn shutdown_drains_all_shards_and_aggregates_updates_exactly() {
    for shards in [1usize, 2, 4, 7] {
        let service =
            ShardedSpadeService::spawn(WeightedDensity, ShardedConfig::with_shards(shards));
        let stream = ring_stream();
        for &(a, b, w) in &stream {
            assert!(service.submit(a, b, w));
        }
        let global = service.shutdown();
        assert_eq!(
            global.total_updates,
            stream.len() as u64,
            "{shards} shards lost updates on shutdown"
        );
    }
}

#[test]
fn grouped_sharded_shutdown_flushes_every_buffer() {
    // With edge grouping on, benign edges sit in per-shard buffers;
    // shutdown must drain them so the aggregate covers every submission.
    let config = ShardedConfig {
        shards: 3,
        grouping: Some(GroupingConfig::default()),
        ..Default::default()
    };
    let service = ShardedSpadeService::spawn_with(config, |_| {
        let mut engine = SpadeEngine::new(WeightedDensity);
        for a in 500..503u32 {
            for b in 500..503u32 {
                if a != b {
                    engine.insert_edge(v(a), v(b), 30.0).unwrap();
                }
            }
        }
        engine
    });
    let stream = ring_stream();
    for &(a, b, w) in &stream {
        assert!(service.submit(a, b, w));
    }
    let global = service.shutdown();
    assert_eq!(global.total_updates, stream.len() as u64);
    // Every shard's final snapshot reflects its full share.
    let per_shard: u64 = global.top.iter().map(|s| s.detection.updates_applied).sum();
    assert_eq!(per_shard, stream.len() as u64, "top-k must cover all shards here");
}

#[test]
fn ten_thousand_edge_burst_coalesces_publishes_and_loses_nothing() {
    // A 10k burst through the coalescing sharded runtime: every
    // submission must be accounted for on shutdown, and the workers must
    // have amortized publishing (far fewer snapshot swaps than updates)
    // — the drain-coalescing win, observable end to end.
    let config = ShardedConfig { shards: 4, queue_capacity: 2048, ..Default::default() };
    assert!(config.coalesce > 1, "coalescing must be on by default");
    let service = ShardedSpadeService::spawn(WeightedDensity, config);
    let total: u32 = 10_000;
    for i in 0..total {
        // Zipf-ish self-similar traffic plus a hot ring every 1000th
        // submission, so bursts repeatedly hit the same communities.
        let (a, b, w) = if i % 1_000 < 20 {
            (3_000 + (i % 5), 3_000 + ((i + 1 + i / 1_000) % 5), 50.0)
        } else {
            (i % 700, 700 + (i * 13 % 350), 1.0 + (i % 7) as f64)
        };
        assert!(service.submit(v(a), v(b), w));
    }
    // Wait for the drain (bounded, so a worker panic fails the test
    // instead of hanging CI), then read the counters (stats are gone
    // after shutdown).
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
    loop {
        assert!(std::time::Instant::now() < deadline, "shards failed to drain 10k submissions");
        let stats = service.stats();
        let applied: u64 = stats.iter().map(|s| s.service.updates_applied).sum();
        if applied >= total as u64 {
            let publishes: u64 = stats.iter().map(|s| s.service.publishes).sum();
            assert!(
                publishes < total as u64,
                "coalescing must amortize publishing ({publishes} publishes for {total} updates)"
            );
            // Blocks 4 and 9 of the ring generator degenerate to
            // self-loops (20 each): rejected, counted, never fatal.
            let rejected: u64 = stats.iter().map(|s| s.service.rejected).sum();
            assert_eq!(rejected, 40, "malformed submissions must be counted exactly");
            break;
        }
        std::thread::yield_now();
    }
    let global = service.shutdown();
    assert_eq!(global.total_updates, total as u64, "shutdown drained inexactly");
    assert!(global.best.density > 10.0, "the hot ring must dominate the global detection");
}

#[test]
fn hash_partitioning_still_aggregates_exactly_and_detects_something() {
    let config = ShardedConfig {
        shards: 4,
        strategy: PartitionStrategy::HashBySource,
        ..Default::default()
    };
    let service = ShardedSpadeService::spawn(WeightedDensity, config);
    let stream = ring_stream();
    for &(a, b, w) in &stream {
        assert!(service.submit(a, b, w));
    }
    let global = service.shutdown();
    assert_eq!(global.total_updates, stream.len() as u64);
    // Hash routing may split the ring across shards (detection density is
    // diluted but never zero — each shard still sees a dense slice).
    assert!(global.best.density > 1.0);
}

#[test]
fn repair_pass_restores_hash_split_ring_to_single_engine_answer() {
    let stream = ring_stream();

    let single = SpadeService::spawn(SpadeEngine::new(WeightedDensity), None, 256);
    for &(a, b, w) in &stream {
        assert!(single.submit(a, b, w));
    }
    let want = single.shutdown();
    let want_members: HashSet<u32> = want.members.iter().map(|m| m.0).collect();

    let config = ShardedConfig {
        shards: 4,
        strategy: PartitionStrategy::HashBySource,
        ..Default::default()
    };
    let sharded = ShardedSpadeService::spawn(WeightedDensity, config);
    for &(a, b, w) in &stream {
        assert!(sharded.submit(a, b, w));
    }
    let (global, repaired) = sharded.shutdown_repaired();
    assert_eq!(global.total_updates, stream.len() as u64);
    assert_eq!(repaired.detection.updates_applied, stream.len() as u64);

    // The repaired snapshot is exactly the single-engine detection, even
    // though hash routing scattered the ring's edges across all shards.
    assert_eq!(repaired.detection.size, want.size);
    assert!((repaired.detection.density - want.density).abs() < 1e-9);
    let got_members: HashSet<u32> = repaired.detection.members.iter().map(|m| m.0).collect();
    assert_eq!(got_members, want_members);
    // And it can only improve on the diluted per-shard maximum.
    assert!(repaired.detection.density >= global.best.density - 1e-9);
    assert!(repaired.detection.density >= repaired.baseline_density - 1e-9);
}

#[test]
fn overlapping_shard_views_are_deduped_in_the_global_ranking() {
    // Every shard pre-seeded with the SAME community: the raw ranking
    // reports it once per shard, the distinct ranking exactly once, and
    // unique_members counts each account once.
    let config = ShardedConfig {
        shards: 3,
        strategy: PartitionStrategy::HashBySource,
        top_k: 3,
        ..Default::default()
    };
    let service = ShardedSpadeService::spawn_with(config, |_| {
        let mut engine = SpadeEngine::new(WeightedDensity);
        for a in 900..904u32 {
            for b in 900..904u32 {
                if a != b {
                    engine.insert_edge(v(a), v(b), 40.0).unwrap();
                }
            }
        }
        engine
    });
    for i in 0..6u32 {
        assert!(service.submit(v(i), v(i + 1), 0.5));
    }
    let global = service.shutdown();
    assert_eq!(global.top.len(), 3, "raw ranking keeps every shard");
    assert_eq!(global.distinct.len(), 1, "identical views collapse to the densest");
    assert_eq!(global.unique_members, 4, "members are counted once, not once per shard");
    assert_eq!(global.distinct[0].shard, global.best_shard);
}
