//! Percentile summaries for benchmark reports.

/// Mean / percentile summary of a sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum.
    pub min: f64,
    /// Median (p50).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarizes `samples` (unsorted; empty input yields all zeros).
    pub fn of(samples: &[f64]) -> Summary {
        if samples.is_empty() {
            return Summary {
                count: 0,
                mean: 0.0,
                min: 0.0,
                p50: 0.0,
                p95: 0.0,
                p99: 0.0,
                max: 0.0,
            };
        }
        let mut sorted: Vec<f64> = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        let pct = |q: f64| -> f64 {
            let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
            sorted[idx]
        };
        Summary {
            count: sorted.len(),
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
            min: sorted[0],
            p50: pct(0.50),
            p95: pct(0.95),
            p99: pct(0.99),
            max: *sorted.last().unwrap(),
        }
    }

    /// Summarizes integer samples (e.g. latencies in time units).
    pub fn of_u64(samples: &[u64]) -> Summary {
        let as_f64: Vec<f64> = samples.iter().map(|&x| x as f64).collect();
        Summary::of(&as_f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_zero() {
        let s = Summary::of(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.p50, 0.0);
        assert_eq!(s.p95, 0.0);
        assert_eq!(s.p99, 0.0);
        assert_eq!(s.max, 0.0);
    }

    #[test]
    fn single_sample_pins_every_percentile() {
        let s = Summary::of(&[42.0]);
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, 42.0);
        assert_eq!(s.min, 42.0);
        assert_eq!(s.p50, 42.0);
        assert_eq!(s.p95, 42.0);
        assert_eq!(s.p99, 42.0);
        assert_eq!(s.max, 42.0);
    }

    #[test]
    fn all_equal_samples_pin_every_percentile() {
        let s = Summary::of(&[7.5; 128]);
        assert_eq!(s.count, 128);
        assert_eq!(s.mean, 7.5);
        assert_eq!(s.min, 7.5);
        assert_eq!(s.p50, 7.5);
        assert_eq!(s.p95, 7.5);
        assert_eq!(s.p99, 7.5);
        assert_eq!(s.max, 7.5);
    }

    #[test]
    fn simple_statistics() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.count, 5);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.p50, 3.0);
        assert_eq!(s.max, 5.0);
    }

    #[test]
    fn percentiles_on_large_sample() {
        let samples: Vec<f64> = (1..=1000).map(|i| i as f64).collect();
        let s = Summary::of(&samples);
        assert!((s.p50 - 500.0).abs() <= 1.0);
        assert!((s.p95 - 950.0).abs() <= 1.0);
        assert!((s.p99 - 990.0).abs() <= 1.0);
    }

    #[test]
    fn unsorted_input_is_fine() {
        let s = Summary::of(&[5.0, 1.0, 3.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.p50, 3.0);
    }

    #[test]
    fn u64_conversion() {
        let s = Summary::of_u64(&[10, 20, 30]);
        assert!((s.mean - 20.0).abs() < 1e-12);
    }
}
