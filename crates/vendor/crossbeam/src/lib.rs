//! Offline stand-in for `crossbeam`.
//!
//! Implements the `crossbeam::channel` surface this workspace uses: a
//! bounded blocking MPMC channel (`bounded`, `Sender`, `Receiver`) with
//! disconnection semantics and O(1) `len()`. Built on `Mutex` + `Condvar`
//! — adequate for the per-shard ingest queues here, where contention is a
//! handful of producer threads against one consumer.

pub mod channel {
    //! Bounded blocking channels.

    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    #[cfg(feature = "audit")]
    use parking_lot::audit;

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        /// Signalled when the queue gains an item or all senders leave.
        not_empty: Condvar,
        /// Signalled when the queue loses an item or all receivers leave.
        not_full: Condvar,
        /// Lock class of `inner` in the order-audit graph, one per
        /// `bounded()` call site.
        #[cfg(feature = "audit")]
        class: audit::ClassId,
    }

    /// Guard type for `Shared::inner`: the raw std guard normally, an
    /// audit-tracked wrapper when the order graph is recording.
    #[cfg(not(feature = "audit"))]
    type Guard<'a, T> = std::sync::MutexGuard<'a, Inner<T>>;
    #[cfg(feature = "audit")]
    type Guard<'a, T> = TrackedGuard<'a, T>;

    /// Wraps the channel mutex guard so drops (and Condvar waits, which
    /// release and re-acquire) keep the audit's held-lock stack honest.
    #[cfg(feature = "audit")]
    struct TrackedGuard<'a, T> {
        /// `None` only transiently while parked in a Condvar wait.
        inner: Option<std::sync::MutexGuard<'a, Inner<T>>>,
        class: audit::ClassId,
    }

    #[cfg(feature = "audit")]
    impl<'a, T> TrackedGuard<'a, T> {
        /// Hands the std guard to a Condvar wait, recording the release.
        fn release_for_wait(mut self) -> std::sync::MutexGuard<'a, Inner<T>> {
            let g = self.inner.take().expect("guard already released");
            audit::on_release(self.class);
            g
        }
    }

    #[cfg(feature = "audit")]
    impl<T> std::ops::Deref for TrackedGuard<'_, T> {
        type Target = Inner<T>;
        fn deref(&self) -> &Inner<T> {
            self.inner.as_ref().expect("guard released")
        }
    }

    #[cfg(feature = "audit")]
    impl<T> std::ops::DerefMut for TrackedGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut Inner<T> {
            self.inner.as_mut().expect("guard released")
        }
    }

    #[cfg(feature = "audit")]
    impl<T> Drop for TrackedGuard<'_, T> {
        fn drop(&mut self) {
            if self.inner.is_some() {
                audit::on_release(self.class);
            }
        }
    }

    impl<T> Shared<T> {
        /// Single entry point for taking `inner`, so audit builds record
        /// every acquisition.
        #[cfg_attr(feature = "audit", track_caller)]
        fn lock_inner(&self) -> Guard<'_, T> {
            #[cfg(feature = "audit")]
            {
                audit::before_acquire(self.class, std::panic::Location::caller());
                let inner = self.inner.lock().unwrap();
                audit::after_acquire(self.class);
                TrackedGuard { inner: Some(inner), class: self.class }
            }
            #[cfg(not(feature = "audit"))]
            self.inner.lock().unwrap()
        }

        /// `cv.wait(guard)` with the audit stack updated across the
        /// park (the mutex is released while waiting).
        #[cfg_attr(feature = "audit", track_caller)]
        fn wait_on<'a>(&'a self, cv: &Condvar, guard: Guard<'a, T>) -> Guard<'a, T> {
            #[cfg(feature = "audit")]
            {
                let site = std::panic::Location::caller();
                let inner = cv.wait(guard.release_for_wait()).unwrap();
                audit::before_acquire(self.class, site);
                audit::after_acquire(self.class);
                TrackedGuard { inner: Some(inner), class: self.class }
            }
            #[cfg(not(feature = "audit"))]
            cv.wait(guard).unwrap()
        }

        /// `cv.wait_timeout(guard, dur)` with the audit stack updated
        /// across the park.
        #[cfg_attr(feature = "audit", track_caller)]
        fn wait_timeout_on<'a>(
            &'a self,
            cv: &Condvar,
            guard: Guard<'a, T>,
            dur: std::time::Duration,
        ) -> Guard<'a, T> {
            #[cfg(feature = "audit")]
            {
                let site = std::panic::Location::caller();
                let (inner, _timed_out) = cv.wait_timeout(guard.release_for_wait(), dur).unwrap();
                audit::before_acquire(self.class, site);
                audit::after_acquire(self.class);
                TrackedGuard { inner: Some(inner), class: self.class }
            }
            #[cfg(not(feature = "audit"))]
            {
                let (inner, _timed_out) = cv.wait_timeout(guard, dur).unwrap();
                inner
            }
        }
    }

    struct Inner<T> {
        queue: VecDeque<T>,
        capacity: usize,
        senders: usize,
        receivers: usize,
        /// Threads blocked in `recv` — `send` only signals `not_empty`
        /// when someone is actually waiting, keeping the futex out of the
        /// hot path while the consumer is busy draining.
        recv_waiters: usize,
        /// Threads blocked in `send` (queue full).
        send_waiters: usize,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone; the
    /// unsent message is handed back.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl<T: std::fmt::Debug> std::error::Error for SendError<T> {}

    /// Error returned by [`Sender::try_send`]; carries the message back.
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is at capacity; receivers remain.
        Full(T),
        /// Every receiver has been dropped.
        Disconnected(T),
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty but senders remain.
        Empty,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The wait elapsed without a message arriving.
        Timeout,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    /// The sending half; clone freely for multiple producers.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; clone freely for multiple consumers.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates a bounded channel holding at most `capacity` messages
    /// (minimum 1); `send` blocks while full, `recv` blocks while empty.
    /// In audit builds the caller's location names the channel's lock
    /// class.
    #[cfg_attr(feature = "audit", track_caller)]
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::with_capacity(capacity.max(1)),
                capacity: capacity.max(1),
                senders: 1,
                receivers: 1,
                recv_waiters: 0,
                send_waiters: 0,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            #[cfg(feature = "audit")]
            class: audit::register_class(std::panic::Location::caller()),
        });
        (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
    }

    impl<T> Sender<T> {
        /// Blocks until space is available, then enqueues `msg`. Fails and
        /// returns the message when every receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut inner = self.shared.lock_inner();
            loop {
                if inner.receivers == 0 {
                    return Err(SendError(msg));
                }
                if inner.queue.len() < inner.capacity {
                    inner.queue.push_back(msg);
                    let wake = inner.recv_waiters > 0;
                    drop(inner);
                    if wake {
                        self.shared.not_empty.notify_one();
                    }
                    return Ok(());
                }
                inner.send_waiters += 1;
                inner = self.shared.wait_on(&self.shared.not_full, inner);
                inner.send_waiters -= 1;
            }
        }

        /// Non-blocking send: enqueues `msg` only if space is available
        /// right now, handing the message back on a full or disconnected
        /// channel.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            let mut inner = self.shared.lock_inner();
            if inner.receivers == 0 {
                return Err(TrySendError::Disconnected(msg));
            }
            if inner.queue.len() >= inner.capacity {
                return Err(TrySendError::Full(msg));
            }
            inner.queue.push_back(msg);
            let wake = inner.recv_waiters > 0;
            drop(inner);
            if wake {
                self.shared.not_empty.notify_one();
            }
            Ok(())
        }

        /// Messages currently queued.
        pub fn len(&self) -> usize {
            self.shared.lock_inner().queue.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.lock_inner().senders += 1;
            Sender { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.lock_inner();
            inner.senders -= 1;
            if inner.senders == 0 {
                drop(inner);
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives; fails once the channel is empty
        /// and every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.shared.lock_inner();
            loop {
                if let Some(msg) = inner.queue.pop_front() {
                    let wake = inner.send_waiters > 0;
                    drop(inner);
                    if wake {
                        self.shared.not_full.notify_one();
                    }
                    return Ok(msg);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner.recv_waiters += 1;
                inner = self.shared.wait_on(&self.shared.not_empty, inner);
                inner.recv_waiters -= 1;
            }
        }

        /// Blocks until a message arrives or `timeout` elapses, whichever
        /// comes first. Fails with [`RecvTimeoutError::Disconnected`] once
        /// the channel is empty and every sender has been dropped.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut inner = self.shared.lock_inner();
            loop {
                if let Some(msg) = inner.queue.pop_front() {
                    let wake = inner.send_waiters > 0;
                    drop(inner);
                    if wake {
                        self.shared.not_full.notify_one();
                    }
                    return Ok(msg);
                }
                if inner.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = std::time::Instant::now();
                let Some(remaining) = deadline.checked_duration_since(now).filter(|d| !d.is_zero())
                else {
                    return Err(RecvTimeoutError::Timeout);
                };
                inner.recv_waiters += 1;
                inner = self.shared.wait_timeout_on(&self.shared.not_empty, inner, remaining);
                inner.recv_waiters -= 1;
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = self.shared.lock_inner();
            if let Some(msg) = inner.queue.pop_front() {
                let wake = inner.send_waiters > 0;
                drop(inner);
                if wake {
                    self.shared.not_full.notify_one();
                }
                return Ok(msg);
            }
            if inner.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Messages currently queued.
        pub fn len(&self) -> usize {
            self.shared.lock_inner().queue.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.lock_inner().receivers += 1;
            Receiver { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.lock_inner();
            inner.receivers -= 1;
            if inner.receivers == 0 {
                drop(inner);
                self.shared.not_full.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, RecvError, RecvTimeoutError, TryRecvError};

    #[test]
    fn fifo_roundtrip() {
        let (tx, rx) = bounded(4);
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        assert_eq!(tx.len(), 4);
        for i in 0..4 {
            assert_eq!(rx.recv(), Ok(i));
        }
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn backpressure_blocks_until_consumed() {
        let (tx, rx) = bounded(1);
        tx.send(1u32).unwrap();
        let producer = std::thread::spawn(move || {
            tx.send(2).unwrap(); // blocks until the consumer drains one
            tx.send(3).unwrap();
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
        producer.join().unwrap();
    }

    #[test]
    fn disconnection_semantics() {
        let (tx, rx) = bounded::<u32>(2);
        drop(rx);
        assert!(tx.send(1).is_err());

        let (tx, rx) = bounded(2);
        tx.send(7u32).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = bounded(2);
        let t0 = std::time::Instant::now();
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_millis(20)),
            Err(RecvTimeoutError::Timeout)
        );
        assert!(t0.elapsed() >= std::time::Duration::from_millis(20));

        let producer = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(10));
            tx.send(42u32).unwrap();
        });
        assert_eq!(rx.recv_timeout(std::time::Duration::from_secs(5)), Ok(42));
        producer.join().unwrap();
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_millis(1)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn multiple_producers_drain_completely() {
        let (tx, rx) = bounded(8);
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for i in 0..100u64 {
                        tx.send(t * 100 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let mut got = Vec::new();
        while let Ok(v) = rx.recv() {
            got.push(v);
        }
        for h in handles {
            h.join().unwrap();
        }
        got.sort_unstable();
        assert_eq!(got.len(), 400);
        got.dedup();
        assert_eq!(got.len(), 400);
    }
}
