//! Edge-to-shard routing policies.
//!
//! Spade's incremental reordering is local to a community (§4.2: an
//! insertion only perturbs the window between its endpoints), so the
//! transaction graph shards naturally — as long as a community's edges
//! land on the same shard, that shard's local detection is the global one.
//! Two built-in policies trade off balance against community locality:
//!
//! * [`HashPartitioner`] — stateless `fx`-hash of the source vertex.
//!   Perfectly balanced and O(1), but a community whose members span
//!   hash buckets is split across shards and its density diluted.
//! * [`ConnectivityPartitioner`] — a union-find over every edge seen so
//!   far. Each connected component is pinned to a *home shard* (chosen
//!   least-loaded at component birth), so observed communities stay
//!   co-resident. When a component outgrows `max_component` vertices —
//!   the giant component of any real transaction graph — its edges
//!   *spill* to hash routing, bounding the load any single shard can
//!   attract while fraud-sized components stay pinned.

use spade_graph::hash::FxHasher;
use spade_graph::VertexId;
use std::hash::Hasher;

/// Routes one edge to a shard in `[0, num_shards)`.
///
/// `route` takes `&mut self`: stateful partitioners (union-find) learn
/// the graph as it streams. Implementations must be deterministic per
/// input history — replaying a stream must reproduce the same routing.
pub trait Partitioner: Send {
    /// The shard that must process edge `(src, dst)`.
    fn route(&mut self, src: VertexId, dst: VertexId, num_shards: usize) -> usize;

    /// Policy name for reports.
    fn name(&self) -> &'static str {
        "custom"
    }
}

/// Built-in routing policies, as configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum PartitionStrategy {
    /// Stateless hash of the source vertex id.
    HashBySource,
    /// Union-find community co-residency with spill to hash for
    /// components larger than `max_component` vertices.
    #[default]
    Connectivity,
    /// [`PartitionStrategy::Connectivity`] with an explicit spill bound.
    ConnectivityWithSpill {
        /// Component size (vertices) above which edges spill to hash.
        max_component: usize,
    },
}

impl PartitionStrategy {
    /// Default spill bound: components larger than this are treated as
    /// the benign giant component and hash-routed. Fraud communities in
    /// the paper's case studies are orders of magnitude smaller.
    pub const DEFAULT_MAX_COMPONENT: usize = 4096;

    /// Materializes the policy.
    pub fn build(self) -> Box<dyn Partitioner> {
        match self {
            PartitionStrategy::HashBySource => Box::new(HashPartitioner),
            PartitionStrategy::Connectivity => {
                Box::new(ConnectivityPartitioner::new(PartitionStrategy::DEFAULT_MAX_COMPONENT))
            }
            PartitionStrategy::ConnectivityWithSpill { max_component } => {
                Box::new(ConnectivityPartitioner::new(max_component))
            }
        }
    }

    /// Parses a CLI name (`hash` | `connectivity`).
    pub fn from_name(name: &str) -> Option<PartitionStrategy> {
        match name.to_ascii_lowercase().as_str() {
            "hash" => Some(PartitionStrategy::HashBySource),
            "connectivity" | "conn" => Some(PartitionStrategy::Connectivity),
            _ => None,
        }
    }
}

#[inline]
fn hash_shard(v: VertexId, num_shards: usize) -> usize {
    let mut h = FxHasher::default();
    h.write_u32(v.0);
    (h.finish() % num_shards as u64) as usize
}

/// Stateless hash-by-source routing.
#[derive(Clone, Copy, Debug, Default)]
pub struct HashPartitioner;

impl Partitioner for HashPartitioner {
    #[inline]
    fn route(&mut self, src: VertexId, _dst: VertexId, num_shards: usize) -> usize {
        hash_shard(src, num_shards)
    }

    fn name(&self) -> &'static str {
        "hash"
    }
}

/// Union-find over seen edges keeping components shard-resident.
///
/// Routing is forward-only: edges already delivered to a shard are never
/// migrated. When two components that *each* already have a home merge,
/// one home survives (the larger component's) and all future edges
/// follow it — the smaller side's earlier edges stay stranded on its old
/// shard, so a community assembled by such a merge is split across two
/// shards until a rebalancing pass exists (ROADMAP: cross-shard
/// rebalancing). Components born from a single seed edge — the shape of
/// the paper's fraud bursts, which allocate fresh accounts — always keep
/// one home and are detected exactly.
#[derive(Clone, Debug)]
pub struct ConnectivityPartitioner {
    /// Union-find parent, dense by vertex id (`u32::MAX` = singleton not
    /// yet materialized is impossible: ids materialize on first sight).
    parent: Vec<u32>,
    /// Component vertex count, valid at roots.
    size: Vec<u32>,
    /// Home shard per component, valid at roots (`usize::MAX` = none).
    home: Vec<usize>,
    /// Edges routed per shard so far (least-loaded assignment for new
    /// components).
    load: Vec<u64>,
    /// Spill bound: components larger than this hash-route their edges.
    max_component: usize,
}

const NO_HOME: usize = usize::MAX;

impl ConnectivityPartitioner {
    /// Creates the partitioner with the given spill bound (0 = never
    /// pin; every edge hash-routes).
    pub fn new(max_component: usize) -> Self {
        ConnectivityPartitioner {
            parent: Vec::new(),
            size: Vec::new(),
            home: Vec::new(),
            load: Vec::new(),
            max_component,
        }
    }

    fn ensure(&mut self, v: VertexId) {
        let idx = v.index();
        if idx >= self.parent.len() {
            let old = self.parent.len();
            self.parent.extend(old as u32..=idx as u32);
            self.size.resize(idx + 1, 1);
            self.home.resize(idx + 1, NO_HOME);
        }
    }

    fn find(&mut self, v: u32) -> u32 {
        let mut root = v;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        // Path compression.
        let mut cur = v;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    /// Current component size of `v`'s component (test/introspection).
    pub fn component_size(&mut self, v: VertexId) -> usize {
        if v.index() >= self.parent.len() {
            return 0;
        }
        let root = self.find(v.0);
        self.size[root as usize] as usize
    }
}

impl Partitioner for ConnectivityPartitioner {
    fn route(&mut self, src: VertexId, dst: VertexId, num_shards: usize) -> usize {
        if self.load.len() < num_shards {
            self.load.resize(num_shards, 0);
        }
        self.ensure(src);
        self.ensure(dst);
        let ra = self.find(src.0);
        let rb = self.find(dst.0);

        // Union by size. The surviving (larger) root keeps its home when
        // it has one — so when both sides are homed, the larger
        // component's home wins and the smaller side's earlier edges
        // stay stranded on its old shard; only when the larger side is
        // home-less does it inherit the smaller side's home. Biasing
        // toward the larger component strands fewer already-routed
        // edges.
        let root = if ra == rb {
            ra
        } else {
            let (big, small) =
                if self.size[ra as usize] >= self.size[rb as usize] { (ra, rb) } else { (rb, ra) };
            self.parent[small as usize] = big;
            self.size[big as usize] += self.size[small as usize];
            if self.home[big as usize] == NO_HOME {
                self.home[big as usize] = self.home[small as usize];
            }
            big
        };

        let shard =
            if self.max_component > 0 && self.size[root as usize] as usize <= self.max_component {
                if self.home[root as usize] == NO_HOME {
                    // Component birth: pin to the least-loaded shard.
                    let least = self
                        .load
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, &l)| l)
                        .map(|(s, _)| s)
                        .unwrap_or(0);
                    self.home[root as usize] = least;
                    least
                } else {
                    self.home[root as usize]
                }
            } else {
                // Spill: the component outgrew a shard; route by source hash.
                hash_shard(src, num_shards)
            };
        self.load[shard] += 1;
        shard
    }

    fn name(&self) -> &'static str {
        "connectivity"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    #[test]
    fn hash_routing_is_deterministic_and_in_range() {
        let mut p = HashPartitioner;
        for i in 0..100u32 {
            let a = p.route(v(i), v(i + 1), 8);
            let b = p.route(v(i), v(i + 7), 8);
            assert_eq!(a, b, "route depends only on the source");
            assert!(a < 8);
        }
    }

    #[test]
    fn hash_routing_spreads_sources() {
        let mut p = HashPartitioner;
        let mut counts = [0usize; 4];
        for i in 0..4000u32 {
            counts[p.route(v(i), v(0), 4)] += 1;
        }
        for &c in &counts {
            assert!(c > 500, "a shard starved: {counts:?}");
        }
    }

    #[test]
    fn connected_component_stays_on_one_shard() {
        let mut p = ConnectivityPartitioner::new(1000);
        // A ring over 50..54 interleaved with unrelated noise edges.
        let first = p.route(v(50), v(51), 4);
        let mut noise_routes = Vec::new();
        for i in 0..10u32 {
            noise_routes.push(p.route(v(i), v(i + 1), 4));
        }
        for a in 50..54u32 {
            for b in 50..54u32 {
                if a != b {
                    assert_eq!(p.route(v(a), v(b), 4), first, "ring split across shards");
                }
            }
        }
        assert_eq!(p.component_size(v(52)), 4);
    }

    #[test]
    fn new_components_pick_least_loaded_shard() {
        let mut p = ConnectivityPartitioner::new(1000);
        let mut seen = std::collections::HashSet::new();
        // 8 disjoint pairs over 4 shards: loads must stay balanced, so all
        // 4 shards get used.
        for i in 0..8u32 {
            seen.insert(p.route(v(i * 2), v(i * 2 + 1), 4));
        }
        assert_eq!(seen.len(), 4, "least-loaded assignment must rotate shards");
    }

    #[test]
    fn merged_components_keep_the_larger_sides_home() {
        let mut p = ConnectivityPartitioner::new(1000);
        let home_a = p.route(v(0), v(1), 4);
        let _home_b = p.route(v(10), v(11), 4);
        // Equal sizes: the first (src-side) root survives and keeps its
        // home; subsequent edges of both sides follow it.
        let bridged = p.route(v(1), v(10), 4);
        assert_eq!(bridged, home_a);
        assert_eq!(bridged, p.route(v(11), v(0), 4));

        // Unequal sizes: the larger component's home wins even when the
        // smaller one was homed first.
        let mut p = ConnectivityPartitioner::new(1000);
        let _small_home = p.route(v(0), v(1), 4); // size-2 component, homed first
        let big_home = p.route(v(20), v(21), 4);
        p.route(v(21), v(22), 4);
        p.route(v(22), v(23), 4); // size-4 component
        let merged = p.route(v(0), v(20), 4);
        assert_eq!(merged, big_home);
        assert_eq!(merged, p.route(v(1), v(23), 4));
    }

    #[test]
    fn oversized_components_spill_to_hash() {
        let mut p = ConnectivityPartitioner::new(4);
        // Build a star of 6 vertices: component exceeds max_component=4.
        for i in 1..6u32 {
            p.route(v(0), v(i), 4);
        }
        assert!(p.component_size(v(0)) > 4);
        let mut h = HashPartitioner;
        // Post-spill edges route exactly as the hash policy would.
        assert_eq!(p.route(v(0), v(6), 4), h.route(v(0), v(6), 4));
        assert_eq!(p.route(v(3), v(7), 4), h.route(v(3), v(7), 4));
    }

    #[test]
    fn zero_spill_bound_degenerates_to_hash() {
        let mut p = ConnectivityPartitioner::new(0);
        let mut h = HashPartitioner;
        for i in 0..50u32 {
            assert_eq!(p.route(v(i), v(i + 1), 8), h.route(v(i), v(i + 1), 8));
        }
    }

    #[test]
    fn strategy_parsing() {
        assert_eq!(PartitionStrategy::from_name("hash"), Some(PartitionStrategy::HashBySource));
        assert_eq!(
            PartitionStrategy::from_name("Connectivity"),
            Some(PartitionStrategy::Connectivity)
        );
        assert_eq!(PartitionStrategy::from_name("bogus"), None);
    }
}
